#!/usr/bin/env python3
"""Splices the tables from bench_output.txt into EXPERIMENTS.md.

Run after `cargo bench --workspace 2>&1 | tee bench_output.txt`:

    python3 scripts/fill_experiments.py
"""
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
out = (ROOT / "bench_output.txt").read_text()
exp = (ROOT / "EXPERIMENTS.md").read_text()


def extract(name: str) -> str:
    """Grabs the printed table of one bench by its closing banner."""
    # Tables start at their header line and end at "[name] done".
    end = out.find(f"[{name}] done")
    if end < 0:
        return f"(bench `{name}` output not found in bench_output.txt)"
    # Walk back to the dashed separator's header line.
    chunk = out[:end]
    lines = chunk.splitlines()
    # Find last header: the line before the last ---- separator.
    sep_idx = max(i for i, l in enumerate(lines) if set(l.strip()) == {"-"} and l.strip())
    table = lines[sep_idx - 1 : ]
    return "```text\n" + "\n".join(l.rstrip() for l in table if l.strip()) + "\n```"


def extract_criterion() -> str:
    rows = re.findall(r"^([a-z_0-9]+)\s+time:\s*\[\S+ \S+ (\S+ \S+) \S+ \S+\]", out, re.M)
    if not rows:
        return "(criterion output not found)"
    body = "\n".join(f"| `{name.strip()}` | {t} |" for name, t in rows)
    return "| kernel | median time |\n|---|---|\n" + body


replacements = {
    "FILL_T4": None,  # handled separately below
    "FILL_TABLE6": extract("exp1_table6"),
    "FILL_FIG5_TABLE": extract("exp4_fig5"),
    "FILL_FIG6_TABLE": extract("exp5_fig6"),
    "FILL_FIG7_TABLE": extract("exp6_fig7"),
    "FILL_FIG8_TABLE": extract("exp7_fig8"),
    "FILL_FIG9_TABLE": extract("exp8_fig9"),
    "FILL_ABLATIONS": "\n\n".join(
        extract(n)
        for n in ["ablation_eager_check", "ablation_order", "ablation_dynamic"]
    ),
    "FILL_MICRO": extract_criterion(),
}

# Table IV cells: parse the three data rows.
t4 = extract("table4_bfs_counts")
t4_rows = {}
for line in t4.splitlines():
    m = re.match(r"\s*\S+\s+(Theorem 2|Theorem 3 \(DRL-\)|Theorem 4 \(DRL\))\s+(\d+)\s+(\d+)", line)
    if m:
        t4_rows[m.group(1)] = (m.group(2), m.group(3))
for key, label in [
    ("Theorem 2", "Theorem 2"),
    ("Theorem 3 (DRL-)", "Theorem 3 (DRL⁻)"),
    ("Theorem 4 (DRL)", "Theorem 4 (DRL)"),
]:
    if key in t4_rows:
        f, r = t4_rows[key]
        exp = exp.replace("FILL_T4", f"{f} filter / {r} refine BFSs", 1)

for marker, text in replacements.items():
    if text is not None:
        exp = exp.replace(marker, text)

missing = re.findall(r"FILL_\w+", exp)
(ROOT / "EXPERIMENTS.md").write_text(exp)
if missing:
    print(f"warning: unfilled markers remain: {missing}", file=sys.stderr)
print("EXPERIMENTS.md updated")
