//! Umbrella crate re-exporting the full reachability-labeling workspace.
pub use reach_bfl as bfl;
pub use reach_core as drl;
pub use reach_datasets as datasets;
pub use reach_drl_dist as dist;
pub use reach_graph as graph;
pub use reach_index as index;
pub use reach_ingest as ingest;
pub use reach_obs as obs;
pub use reach_serve as serve;
pub use reach_served as served;
pub use reach_tol as tol;
pub use reach_vcs as vcs;
