//! `reach` — command-line front end to the reachability-labeling library.
//!
//! ```text
//! reach build <edges.txt> -o <index.ridx> [--order degree|id] [--algorithm drlb|drl|tol]
//!             [--batch-b N] [--batch-k F] [--nodes N]
//!             [--compressed] [--codec plain|delta] [--bloom-bits N] [--bloom-k N]
//! reach query <index.ridx> [<s> <t>]...          # or s,t pairs on stdin
//! reach convert <in.ridx> <out.ridx> [--codec plain|delta] [--bloom-bits N]
//!             [--bloom-k N] [--v1]
//! reach stats <edges.txt>
//! reach gen <dataset-name> -o <edges.txt>        # Table V stand-ins
//! reach bench-query <index.ridx> [--count N]
//! ```
//!
//! Edge lists are SNAP-style whitespace-separated `u v` lines (`#`/`%`
//! comments allowed). Indexes use the binary `.ridx` formats of
//! `reach_index::storage`: v1 (plain CSR) or, with `--compressed`, the
//! v2 section-table format (delta-varint label runs, optional per-vertex
//! Bloom pre-filters) that `reach-served --compressed/--mmap` serves
//! without decoding. `docs/STORAGE.md` specifies both layouts.

use std::io::BufRead;
use std::process::ExitCode;
use std::time::Instant;

use reachability::drl::BatchParams;
use reachability::graph::{self, OrderAssignment, OrderKind};
use reachability::index::ReachIndex;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("bench-query") => cmd_bench_query(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; try `reach help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("reach: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "reach — TOL-equivalent reachability indexing (DRL/DRLb, ICDE 2022)\n\
         \n\
         USAGE:\n\
           reach build <edges.txt> -o <index.ridx> [--order degree|id]\n\
                       [--algorithm drlb|drl|tol] [--batch-b N] [--batch-k F]\n\
                       [--compressed] [--codec plain|delta] [--bloom-bits N] [--bloom-k N]\n\
           reach query <index.ridx> [<s> <t>]...   (or `s t` lines on stdin)\n\
           reach convert <in.ridx> <out.ridx>      (re-encode: v1 <-> v2, codec, Bloom)\n\
                       [--codec plain|delta] [--bloom-bits N] [--bloom-k N] [--v1]\n\
           reach stats <edges.txt>\n\
           reach gen <dataset> -o <edges.txt>      (Table V stand-ins, e.g. WEBW)\n\
           reach bench-query <index.ridx> [--count N]"
    );
}

/// Pulls the value following `flag` out of `args`, if present.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{flag} requires a value")),
    }
}

/// Flags that take no value (everything else consumes the next token).
const BOOL_FLAGS: &[&str] = &["--compressed", "--v1"];

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args.iter() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") || a == "-o" {
            skip = !BOOL_FLAGS.contains(&a.as_str());
            continue;
        }
        out.push(a);
    }
    out
}

fn bool_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Parses the `--codec` / `--bloom-bits` / `--bloom-k` trio shared by
/// `build --compressed` and `convert`.
fn v2_options(
    args: &[String],
) -> Result<
    (
        reachability::index::CodecId,
        Option<reachability::index::BloomConfig>,
    ),
    String,
> {
    use reachability::index::{BloomConfig, CodecId};
    let codec = match flag_value(args, "--codec")?.as_deref() {
        None | Some("delta") => CodecId::DeltaVarint,
        Some("plain") => CodecId::Plain,
        Some(other) => return Err(format!("unknown codec {other:?} (plain|delta)")),
    };
    let bits: u32 = parse_flag(args, "--bloom-bits", 0)?;
    let k: u32 = parse_flag(args, "--bloom-k", 2)?;
    let bloom = (bits > 0).then_some(BloomConfig {
        bits_per_vertex: bits,
        k: k.max(1),
    });
    Ok((codec, bloom))
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let input = pos.first().ok_or("build needs an edge-list path")?;
    let output = flag_value(args, "-o")?
        .or(flag_value(args, "--output")?)
        .ok_or("build needs -o <index.ridx>")?;
    let order = match flag_value(args, "--order")?.as_deref() {
        None | Some("degree") => OrderKind::DegreeProduct,
        Some("id") => OrderKind::InverseId,
        Some(other) => return Err(format!("unknown order {other:?} (degree|id)")),
    };
    let algorithm = flag_value(args, "--algorithm")?.unwrap_or_else(|| "drlb".into());
    let b: usize = parse_flag(args, "--batch-b", 2)?;
    let k: f64 = parse_flag(args, "--batch-k", 2.0)?;

    let t0 = Instant::now();
    let g = graph::io::read_edge_list_file(input).map_err(|e| e.to_string())?;
    eprintln!(
        "loaded {} vertices, {} edges in {:.2}s",
        g.num_vertices(),
        g.num_edges(),
        t0.elapsed().as_secs_f64()
    );

    let ord = OrderAssignment::new(&g, order);
    let t0 = Instant::now();
    let index = match algorithm.as_str() {
        "drlb" => reachability::drl::drlb(&g, &ord, BatchParams::new(b, k)),
        "drl" => reachability::drl::drl(&g, &ord),
        "tol" => reachability::tol::pruned::build(&g, &ord),
        other => return Err(format!("unknown algorithm {other:?} (drlb|drl|tol)")),
    };
    eprintln!(
        "built index with {algorithm} in {:.2}s — {}",
        t0.elapsed().as_secs_f64(),
        index.stats()
    );

    if bool_flag(args, "--compressed") {
        let (codec, bloom) = v2_options(args)?;
        reachability::index::save_index_v2(&index, &output, codec, bloom)
            .map_err(|e| e.to_string())?;
        let size = std::fs::metadata(&output).map(|m| m.len()).unwrap_or(0);
        eprintln!(
            "wrote {output} (v2, codec {}, bloom {}, {size} bytes)",
            codec.name(),
            if bloom.is_some() { "on" } else { "off" }
        );
    } else {
        reachability::index::save_index(&index, &output).map_err(|e| e.to_string())?;
        eprintln!("wrote {output}");
    }
    Ok(())
}

/// Re-encodes an existing index file: v1 → v2 (choosing codec and Bloom
/// parameters), v2 → v2 (re-tuning), or back to v1 with `--v1`.
fn cmd_convert(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let (input, output) = match pos.as_slice() {
        [i, o] => (i.as_str(), o.as_str()),
        _ => return Err("convert needs <in.ridx> <out.ridx>".into()),
    };
    let index = load(input)?;
    if bool_flag(args, "--v1") {
        reachability::index::save_index(&index, output).map_err(|e| e.to_string())?;
    } else {
        let (codec, bloom) = v2_options(args)?;
        reachability::index::save_index_v2(&index, output, codec, bloom)
            .map_err(|e| e.to_string())?;
    }
    let before = std::fs::metadata(input).map(|m| m.len()).unwrap_or(0);
    let after = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
    eprintln!(
        "converted {input} ({before} bytes) -> {output} ({after} bytes, {:.2}x)",
        if after > 0 {
            before as f64 / after as f64
        } else {
            0.0
        }
    );
    Ok(())
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match flag_value(args, flag)? {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value for {flag}: {v}")),
    }
}

fn load(path: &str) -> Result<ReachIndex, String> {
    reachability::index::load_index(path).map_err(|e| e.to_string())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let index = load(pos.first().ok_or("query needs an index path")?)?;
    let parse_vertex = |s: &str| -> Result<u32, String> {
        let v: u32 = s.parse().map_err(|_| format!("bad vertex id {s:?}"))?;
        if (v as usize) < index.num_vertices() {
            Ok(v)
        } else {
            Err(format!(
                "vertex {v} out of range (index covers {})",
                index.num_vertices()
            ))
        }
    };

    if pos.len() > 1 {
        if pos.len().is_multiple_of(2) {
            return Err("queries come in s t pairs".into());
        }
        for pair in pos[1..].chunks(2) {
            let (s, t) = (parse_vertex(pair[0])?, parse_vertex(pair[1])?);
            println!("{s} {t} {}", index.query(s, t));
        }
        return Ok(());
    }

    // Pairs from stdin.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let mut it = line.split_whitespace();
        let (Some(a), Some(b)) = (it.next(), it.next()) else {
            continue;
        };
        let (s, t) = (parse_vertex(a)?, parse_vertex(b)?);
        println!("{s} {t} {}", index.query(s, t));
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let input = pos.first().ok_or("stats needs an edge-list path")?;
    let g = graph::io::read_edge_list_file(input).map_err(|e| e.to_string())?;
    println!("{}", graph::stats::GraphStats::compute(&g));
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let pos = positional(args);
    let name = pos.first().ok_or("gen needs a dataset name (e.g. WEBW)")?;
    let output = flag_value(args, "-o")?.ok_or("gen needs -o <edges.txt>")?;
    let spec = reachability::datasets::by_name(&name.to_uppercase()).ok_or_else(|| {
        let names: Vec<_> = reachability::datasets::table5()
            .iter()
            .map(|s| s.name)
            .collect();
        format!("unknown dataset {name:?}; one of {}", names.join(", "))
    })?;
    let g = spec.generate();
    graph::io::write_edge_list_file(&g, &output).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} ({} vertices, {} edges — stand-in for {})",
        output,
        g.num_vertices(),
        g.num_edges(),
        spec.full_name
    );
    Ok(())
}

fn cmd_bench_query(args: &[String]) -> Result<(), String> {
    use rand::{Rng, SeedableRng};
    let pos = positional(args);
    let index = load(pos.first().ok_or("bench-query needs an index path")?)?;
    let count: usize = parse_flag(args, "--count", 1_000_000)?;
    let n = index.num_vertices() as u32;
    if n == 0 {
        return Err("index covers no vertices".into());
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xCAFE);
    let pairs: Vec<(u32, u32)> = (0..count)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    let t0 = Instant::now();
    let mut positive = 0usize;
    for &(s, t) in &pairs {
        if index.query(s, t) {
            positive += 1;
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "{count} queries in {:.3}s — {:.0} ns/query, {positive} reachable",
        dt,
        dt / count as f64 * 1e9
    );
    Ok(())
}
