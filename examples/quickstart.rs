//! Quickstart: build a reachability index for a directed graph and answer
//! queries in microseconds without touching the graph again.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use reachability::drl::BatchParams;
use reachability::graph::{GraphBuilder, OrderAssignment, OrderKind};

fn main() {
    // 1. Build a graph — any directed edge list works; cycles are fine.
    let mut builder = GraphBuilder::new();
    for (u, v) in [
        (0, 1),
        (1, 2),
        (2, 0), // a cycle
        (1, 3),
        (3, 4),
        (5, 3), // a second source
    ] {
        builder.add_edge(u, v);
    }
    let graph = builder.build();
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. Pick the total order (the paper's degree formula) and build the
    //    index with DRLb — the batched parallel labeling algorithm. The
    //    result is identical to serial TOL's index.
    let ord = OrderAssignment::new(&graph, OrderKind::DegreeProduct);
    let index = reachability::drl::drlb(&graph, &ord, BatchParams::default());
    println!(
        "index: {} label entries, largest label {}, {} bytes",
        index.num_entries(),
        index.max_label_size(),
        index.size_bytes()
    );

    // 3. Query: q(s, t) is a sorted-list intersection — no graph access.
    for (s, t, expect) in [
        (0, 4, true),  // 0 -> 1 -> 3 -> 4
        (2, 1, true),  // around the cycle
        (4, 0, false), // 4 is a sink
        (5, 2, false), // 5 only reaches 3 and 4
    ] {
        let got = index.query(s, t);
        assert_eq!(got, expect);
        println!("q({s}, {t}) = {got}");
    }

    // 4. The index satisfies the cover constraint — validated against a
    //    ground-truth transitive closure.
    index.validate_cover_on(&graph).expect("cover constraint");
    println!("cover constraint verified for all pairs");
}
