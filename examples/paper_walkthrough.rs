//! Walkthrough of the paper's running example (Fig. 1 + Tables I–IV).
//!
//! Reconstructs the 11-vertex example graph, reproduces the index of
//! Table II, the backward label sets of Table III, the trimmed BFS of
//! Fig. 3 / Example 8, the batch sequence of Example 12, and shows that
//! every algorithm in the workspace — serial TOL, DRL⁻, DRL, DRLb,
//! DRLb^M and the distributed versions — produces exactly the same index.
//!
//! ```sh
//! cargo run --release --example paper_walkthrough
//! ```

use reachability::drl::{BatchParams, BatchSchedule};
use reachability::graph::{fixtures, Direction, OrderAssignment, OrderKind, VisitBuffer};
use reachability::vcs::NetworkModel;

/// Prints a label set as the paper writes it: `{v1, v8}`.
fn fmt_set(vs: &[u32]) -> String {
    let names: Vec<String> = vs.iter().map(|v| format!("v{}", v + 1)).collect();
    format!("{{{}}}", names.join(", "))
}

fn main() {
    let g = fixtures::paper_graph();
    println!(
        "Fig. 1 graph: {} vertices, {} edges (cyclic: v2->v3->v4->v6->v2)",
        g.num_vertices(),
        g.num_edges()
    );

    // The worked examples use the subscript order (v1 highest).
    let ord = OrderAssignment::new(&g, OrderKind::InverseId);

    // --- Table II: the TOL index.
    let index = reachability::tol::naive::build(&g, &ord);
    println!("\nTable II — the index L:");
    println!("{:>6}  {:<22} {:<22}", "vertex", "L_in", "L_out");
    for v in g.vertices() {
        println!(
            "{:>6}  {:<22} {:<22}",
            format!("v{}", v + 1),
            fmt_set(index.in_label(v)),
            fmt_set(index.out_label(v))
        );
    }

    // Example 2: q(v2, v3) = true via the common vertex v2.
    assert!(index.query(1, 2));
    println!("\nExample 2: q(v2, v3) = {}", index.query(1, 2));

    // --- Table III: the backward label sets.
    let bw = index.to_backward();
    println!("\nTable III — backward label sets:");
    println!("{:>6}  {:<28} {:<28}", "vertex", "L⁻_in", "L⁻_out");
    for v in g.vertices() {
        println!(
            "{:>6}  {:<28} {:<28}",
            format!("v{}", v + 1),
            fmt_set(&bw.in_sets[v as usize]),
            fmt_set(&bw.out_sets[v as usize])
        );
    }

    // --- Fig. 3 / Example 8: the v3-sourced trimmed BFS.
    let mut visit = VisitBuffer::new(g.num_vertices());
    let t = reachability::drl::trimmed::trimmed_bfs(&g, 2, Direction::Forward, &ord, &mut visit);
    println!("\nExample 8 — v3-sourced trimmed BFS:");
    println!("  BFS_low(v3) = {}", fmt_set(&t.low));
    println!("  BFS_hig(v3) = {}", fmt_set(&t.hig));

    // --- Example 12: the batch sequence for b = k = 2.
    let schedule = BatchSchedule::new(g.num_vertices(), BatchParams::default());
    println!("\nExample 12 — batch sequence (b = 2, k = 2):");
    for i in 0..schedule.num_batches() {
        println!(
            "  V{} = {}",
            i + 1,
            fmt_set(&schedule.batch_vertices(i, &ord))
        );
    }

    // --- Every algorithm produces the same index.
    println!("\nCross-algorithm equivalence:");
    let algorithms: Vec<(&str, reachability::index::ReachIndex)> = vec![
        ("TOL (pruned)", reachability::tol::pruned::build(&g, &ord)),
        (
            "Theorem-2 framework",
            reachability::drl::framework::build(&g, &ord),
        ),
        ("DRL⁻ (basic)", reachability::drl::drl_minus(&g, &ord)),
        ("DRL (improved)", reachability::drl::drl(&g, &ord)),
        (
            "DRLb (batched)",
            reachability::drl::drlb(&g, &ord, BatchParams::default()),
        ),
        (
            "DRLb^M (multicore)",
            reachability::drl::drlb_multicore(&g, &ord, BatchParams::default(), 4),
        ),
        (
            "DRL distributed (4 nodes)",
            reachability::dist::drl::run(&g, &ord, 4, NetworkModel::default()).0,
        ),
        (
            "DRLb distributed (4 nodes)",
            reachability::dist::drlb::run(
                &g,
                &ord,
                BatchParams::default(),
                4,
                NetworkModel::default(),
            )
            .0,
        ),
    ];
    for (name, idx) in algorithms {
        assert_eq!(idx, index, "{name} must match TOL");
        println!("  {name:<28} == TOL index  ✓");
    }
    println!("\nAll algorithms agree with Table II.");
}
