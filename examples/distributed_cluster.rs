//! Index a graph that lives on a (simulated) cluster.
//!
//! The paper's headline scenario: the graph is partitioned across
//! computation nodes and no single machine could run serial TOL — but the
//! distributed DRLb produces TOL's exact index, which is then small enough
//! to serve from one machine. This example runs the same workload at
//! several cluster sizes and prints the modeled computation/communication
//! split and the speedup curve (the Exp 4 / Exp 5 quantities).
//!
//! ```sh
//! cargo run --release --example distributed_cluster
//! ```

use reachability::drl::BatchParams;
use reachability::graph::{OrderAssignment, OrderKind};
use reachability::vcs::NetworkModel;

fn main() {
    // A web-crawl-like graph, hash-partitioned by vertex id.
    let graph = reachability::datasets::generators::hierarchy(40_000, 100_000, 0.8, 7);
    let ord = OrderAssignment::new(&graph, OrderKind::DegreeProduct);
    println!(
        "graph: {} vertices, {} edges, partitioned by id\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    println!(
        "{:>5}  {:>9}  {:>9}  {:>9}  {:>8}  {:>11}  {:>10}",
        "nodes", "comp (s)", "comm (s)", "total (s)", "speedup", "remote MB", "supersteps"
    );
    let mut baseline = None;
    let mut reference_index = None;
    for nodes in [1usize, 2, 4, 8, 16, 32] {
        let (index, stats) = reachability::dist::drlb::run(
            &graph,
            &ord,
            BatchParams::default(),
            nodes,
            NetworkModel::default(),
        );
        let total = stats.total_seconds();
        let base = *baseline.get_or_insert(total);
        println!(
            "{:>5}  {:>9.4}  {:>9.4}  {:>9.4}  {:>8.2}  {:>11.2}  {:>10}",
            nodes,
            stats.compute_seconds,
            stats.comm_seconds,
            total,
            base / total,
            stats.comm.network_bytes() as f64 / (1024.0 * 1024.0),
            stats.supersteps
        );

        // The index is identical regardless of the cluster size.
        let reference = reference_index.get_or_insert_with(|| index.clone());
        assert_eq!(&index, reference, "cluster size must not change the index");
    }

    let index = reference_index.expect("at least one run");
    println!(
        "\nindex gathered to one machine: {:.2} MiB, answers q(s,t) in-memory",
        index.size_bytes() as f64 / (1024.0 * 1024.0)
    );
    // Spot-check a few queries against the online search.
    let online = reachability::index::OnlineBfsOracle::new(&graph);
    use reachability::index::ReachabilityOracle;
    for (s, t) in [(0, 100), (5, 4999), (17, 3), (1234, 4321)] {
        assert_eq!(index.query(s, t), online.reachable(s, t));
    }
    println!("distributed index verified against online search");
}
