//! Maintain the index while the graph changes.
//!
//! The paper names dynamic maintenance as the follow-up direction; this
//! example drives the incremental maintainer of `reach_core::dynamic`: a
//! road-closure / road-opening scenario where edges come and go and every
//! update repairs only the affected region, keeping the index equal to a
//! from-scratch rebuild.
//!
//! ```sh
//! cargo run --release --example dynamic_updates
//! ```

use reachability::drl::dynamic::DynamicIndex;
use reachability::graph::{dynamic::DynamicGraph, OrderAssignment, OrderKind};

fn main() {
    // A knowledge-base-like graph that will evolve.
    let base = reachability::datasets::generators::hierarchy(10_000, 25_000, 0.95, 3);
    let ord = OrderAssignment::new(&base, OrderKind::DegreeProduct);
    let t0 = std::time::Instant::now();
    let mut index = DynamicIndex::new(DynamicGraph::from_digraph(&base), ord);
    println!(
        "initial build: {} vertices, {} edges in {:.2}s",
        base.num_vertices(),
        base.num_edges(),
        t0.elapsed().as_secs_f64()
    );

    // A stream of updates: 60% insertions, 40% deletions of random edges.
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let n = base.num_vertices() as u32;
    let mut applied = 0;
    let mut refloods = 0usize;
    let mut label_changes = 0usize;
    let t0 = std::time::Instant::now();
    for _ in 0..200 {
        let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
        let stats = if rng.gen_bool(0.6) {
            index.insert_edge(u, v)
        } else {
            index.remove_edge(u, v)
        };
        if let Some(s) = stats {
            applied += 1;
            refloods += s.refloods_fwd + s.refloods_bwd;
            label_changes += s.label_changes;
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "applied {applied} updates in {dt:.2}s ({:.1} ms/update)",
        dt / applied as f64 * 1e3
    );
    println!(
        "average work per update: {:.1} refloods, {:.1} label changes",
        refloods as f64 / applied as f64,
        label_changes as f64 / applied as f64
    );

    // The maintained index matches a from-scratch rebuild bit for bit.
    let now = index.graph().to_digraph();
    let rebuilt = reachability::drl::drl(&now, index.order());
    assert_eq!(index.to_index(), rebuilt);
    println!(
        "verified: maintained index == full rebuild ({} entries, {} edges now)",
        rebuilt.num_entries(),
        now.num_edges()
    );

    // And it still answers correctly.
    use reachability::index::ReachabilityOracle;
    let online = reachability::index::OnlineBfsOracle::new(&now);
    for _ in 0..500 {
        let (s, t) = (rng.gen_range(0..n), rng.gen_range(0..n));
        assert_eq!(index.query(s, t), online.reachable(s, t));
    }
    println!("spot-checked 500 queries against online BFS");
}
