//! Ancestry analysis over a citation network (ontology-reasoning-style
//! workload from the paper's introduction).
//!
//! Builds the TOL index over a preferential-attachment citation DAG and
//! uses it to answer lineage questions — "does paper A transitively build
//! on paper B?" — plus derived analytics: foundational papers reached by
//! the most queries, and an influence-path existence matrix for a panel of
//! papers.
//!
//! ```sh
//! cargo run --release --example citation_analysis
//! ```

use reachability::drl::BatchParams;
use reachability::graph::{OrderAssignment, OrderKind};

fn main() {
    // 30k papers, each citing ~4 earlier ones (preferential attachment +
    // recent-window citations) — a DAG by construction.
    let graph = reachability::datasets::citation_dag(30_000, 120_000, 2024);
    let stats = reachability::graph::stats::GraphStats::compute(&graph);
    println!("citation graph: {stats}");
    assert!(stats.is_dag_modulo_self_loops());

    let ord = OrderAssignment::new(&graph, OrderKind::DegreeProduct);
    let index = reachability::drl::drlb(&graph, &ord, BatchParams::default());
    println!(
        "lineage index: {} entries ({:.2} MiB, Δ = {})\n",
        index.num_entries(),
        index.size_bytes() as f64 / (1024.0 * 1024.0),
        index.max_label_size()
    );

    // Lineage queries: later papers (larger ids) cite earlier ones, so
    // reachability flows from new to old.
    let panel = [29_999u32, 25_000, 20_000, 10_000, 1_000, 10, 0];
    println!("influence matrix (row builds-on column):");
    print!("{:>8}", "");
    for &t in &panel {
        print!("{t:>8}");
    }
    println!();
    for &s in &panel {
        print!("{s:>8}");
        for &t in &panel {
            print!("{:>8}", if index.query(s, t) { "yes" } else { "." });
        }
        println!();
    }

    // Foundational papers: the ones appearing in the most in-label sets
    // cover the most lineage queries.
    let bw = index.to_backward();
    let mut coverage: Vec<(usize, u32)> = graph
        .vertices()
        .map(|v| (bw.in_sets[v as usize].len(), v))
        .collect();
    coverage.sort_unstable_by(|a, b| b.cmp(a));
    println!("\nfoundational papers (widest lineage coverage):");
    for (cover, v) in coverage.iter().take(5) {
        println!(
            "  paper {v}: in {cover} papers' labels, cited by {}",
            graph.in_degree(*v)
        );
    }

    // Every "yes" above must have a real citation path; verify the panel
    // against the online search.
    use reachability::index::ReachabilityOracle;
    let online = reachability::index::OnlineBfsOracle::new(&graph);
    for &s in &panel {
        for &t in &panel {
            assert_eq!(index.query(s, t), online.reachable(s, t));
        }
    }
    println!("\npanel verified against online BFS");
}
