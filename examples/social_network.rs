//! Reachability analytics on a synthetic social network.
//!
//! Motivated by the paper's introduction (reachability as a building block
//! for the social sciences): generate a follower graph, build the index
//! once, then answer "can influence flow from A to B?" queries at memory
//! speed — and compare against the index-free online search the paper's
//! §V warns about.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use std::time::Instant;

use reachability::drl::BatchParams;
use reachability::graph::stats::GraphStats;
use reachability::graph::{OrderAssignment, OrderKind};
use reachability::index::{OnlineBfsOracle, ReachabilityOracle};

fn main() {
    // A 50k-member follower network with reciprocated edges and deep
    // influence chains.
    let graph =
        reachability::datasets::generators::social_with_depth(50_000, 120_000, 0.25, 0.7, 42);
    println!("social graph: {}", GraphStats::compute(&graph));

    // Build the index with the batched parallel labeling (DRLb).
    let ord = OrderAssignment::new(&graph, OrderKind::DegreeProduct);
    let t0 = Instant::now();
    let index = reachability::drl::drlb(&graph, &ord, BatchParams::default());
    println!(
        "index built in {:.2}s — {} entries, {:.2} MiB, Δ = {}",
        t0.elapsed().as_secs_f64(),
        index.num_entries(),
        index.size_bytes() as f64 / (1024.0 * 1024.0),
        index.max_label_size()
    );

    // A query workload: 100k random influence questions.
    let workload = {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let n = graph.num_vertices() as u32;
        (0..100_000)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect::<Vec<_>>()
    };

    // Index-only answering (no graph access — this is what makes the
    // approach viable when the graph itself is distributed).
    let t0 = Instant::now();
    let reachable_pairs = workload.iter().filter(|&&(s, t)| index.query(s, t)).count();
    let index_time = t0.elapsed().as_secs_f64();
    println!(
        "index-only: {} / {} pairs reachable, {:.2} ns/query",
        reachable_pairs,
        workload.len(),
        index_time / workload.len() as f64 * 1e9
    );

    // Index-free baseline on a sample (a full BFS per query).
    let online = OnlineBfsOracle::new(&graph);
    let sample = &workload[..200];
    let t0 = Instant::now();
    let online_pairs = sample
        .iter()
        .filter(|&&(s, t)| online.reachable(s, t))
        .count();
    let online_time = t0.elapsed().as_secs_f64();
    println!(
        "online BFS:  {} / {} pairs reachable, {:.0} µs/query — {:.0}x slower",
        online_pairs,
        sample.len(),
        online_time / sample.len() as f64 * 1e6,
        (online_time / sample.len() as f64) / (index_time / workload.len() as f64)
    );

    // Cross-check the two oracles on the sample.
    for &(s, t) in sample {
        assert_eq!(index.query(s, t), online.reachable(s, t));
    }
    println!("oracle agreement verified on the sample");

    // Who are the influence hubs? Vertices appearing in the most in-labels
    // are the ones covering the most reachability.
    let bw = index.to_backward();
    let mut by_cover: Vec<(usize, u32)> = graph
        .vertices()
        .map(|v| (bw.in_sets[v as usize].len(), v))
        .collect();
    by_cover.sort_unstable_by(|a, b| b.cmp(a));
    println!("top influence hubs (by backward in-label size):");
    for (cover, v) in by_cover.iter().take(5) {
        println!("  member {v}: covers {cover} members' reachability");
    }
}
