//! The cover constraint (Definition 3): every index built by any algorithm
//! must answer exactly the reachability relation — checked against the
//! ground-truth transitive closure for all pairs.

use reach_core::BatchParams;
use reach_graph::{fixtures, gen, OrderAssignment, OrderKind, TransitiveClosure};
use reach_index::ReachIndex;
use reach_vcs::NetworkModel;

fn check_all_builders(g: &reach_graph::DiGraph, label: &str) {
    let ord = OrderAssignment::new(g, OrderKind::DegreeProduct);
    let tc = TransitiveClosure::compute(g);
    let builders: Vec<(&str, ReachIndex)> = vec![
        ("tol", reach_tol::pruned::build(g, &ord)),
        ("drl", reach_core::drl(g, &ord)),
        ("drlb", reach_core::drlb(g, &ord, BatchParams::default())),
        (
            "drlb-dist",
            reach_drl_dist::drlb::run(g, &ord, BatchParams::default(), 4, NetworkModel::default())
                .0,
        ),
    ];
    for (name, idx) in builders {
        idx.validate_cover(&tc)
            .unwrap_or_else(|e| panic!("{label}/{name}: {e}"));
    }
}

#[test]
fn cover_on_fixtures() {
    for (label, g) in [
        ("paper", fixtures::paper_graph()),
        ("cycle", fixtures::cycle(9)),
        ("two_components", fixtures::two_components()),
        ("star", fixtures::out_star(12)),
    ] {
        check_all_builders(&g, label);
    }
}

#[test]
fn cover_on_random_graphs() {
    for seed in 0..6 {
        check_all_builders(&gen::gnm(50, 170, seed), &format!("gnm{seed}"));
    }
    for seed in 0..4 {
        check_all_builders(&gen::random_dag(50, 140, seed), &format!("dag{seed}"));
    }
}

#[test]
fn cover_on_dataset_generators() {
    check_all_builders(
        &reach_datasets::generators::hierarchy(250, 700, 0.95, 3),
        "hierarchy",
    );
    check_all_builders(
        &reach_datasets::generators::layered_dag(200, 600, 8, 4),
        "layered",
    );
    check_all_builders(&reach_datasets::citation_dag(250, 700, 5), "citation");
    check_all_builders(
        &reach_datasets::rmat(256, 700, 0.57, 0.19, 0.19, 0.05, 6),
        "rmat",
    );
}

/// The query is symmetric to the online search on every pair, including
/// unreachable ones and self-queries.
#[test]
fn query_answers_match_online_search_exactly() {
    let g = gen::gnm(70, 240, 99);
    let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
    let idx = reach_core::drlb(&g, &ord, BatchParams::default());
    for s in g.vertices() {
        for t in g.vertices() {
            assert_eq!(
                idx.query(s, t),
                reach_graph::traverse::reaches(&g, s, t),
                "q({s},{t})"
            );
        }
    }
}
