//! Integration tests for the dynamic-maintenance extension and the binary
//! index persistence, exercised through the public API end to end.

use proptest::prelude::*;
use reach_core::dynamic::DynamicIndex;
use reach_graph::{dynamic::DynamicGraph, gen, DiGraph, OrderAssignment, OrderKind};

#[test]
fn dynamic_index_survives_a_long_mixed_workload() {
    let g = gen::gnm(40, 80, 17);
    let mut idx = DynamicIndex::from_digraph(&g, OrderKind::DegreeProduct);
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    for step in 0..120 {
        let (a, b) = (rng.gen_range(0..40u32), rng.gen_range(0..40u32));
        if rng.gen_bool(0.55) {
            idx.insert_edge(a, b);
        } else {
            idx.remove_edge(a, b);
        }
        if step % 10 == 9 {
            // Periodic deep checks: equality with rebuild + cover.
            let now = idx.graph().to_digraph();
            assert_eq!(
                idx.to_index(),
                reach_core::drl(&now, idx.order()),
                "step {step}"
            );
            idx.to_index().validate_cover_on(&now).unwrap();
        }
    }
}

#[test]
fn dynamic_index_agrees_with_every_static_algorithm() {
    let g = gen::gnm(35, 90, 23);
    let mut idx = DynamicIndex::from_digraph(&g, OrderKind::DegreeProduct);
    idx.insert_edge(0, 34);
    idx.insert_edge(34, 0);
    idx.remove_edge(g.edges().next().unwrap().0, g.edges().next().unwrap().1);
    let now = idx.graph().to_digraph();
    let ord = idx.order().clone();
    let reference = idx.to_index();
    assert_eq!(reference, reach_tol::naive::build(&now, &ord));
    assert_eq!(reference, reach_tol::pruned::build(&now, &ord));
    assert_eq!(
        reference,
        reach_core::drlb(&now, &ord, reach_core::BatchParams::default())
    );
}

#[test]
fn storage_round_trips_every_builder_output() {
    let g = reach_datasets::generators::hierarchy(400, 1100, 0.9, 31);
    let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
    for idx in [
        reach_tol::pruned::build(&g, &ord),
        reach_core::drl(&g, &ord),
        reach_core::drlb(&g, &ord, reach_core::BatchParams::default()),
    ] {
        let mut buf = Vec::new();
        reach_index::storage::write_index(&idx, &mut buf).unwrap();
        let loaded = reach_index::storage::read_index(&buf[..]).unwrap();
        assert_eq!(loaded, idx);
        // The loaded index answers identically.
        for s in (0..g.num_vertices() as u32).step_by(13) {
            for t in (0..g.num_vertices() as u32).step_by(17) {
                assert_eq!(loaded.query(s, t), idx.query(s, t));
            }
        }
    }
}

#[test]
fn witness_queries_lie_on_real_paths() {
    let g = gen::gnm(60, 200, 41);
    let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
    let idx = reach_core::drlb(&g, &ord, reach_core::BatchParams::default());
    let tc = reach_graph::TransitiveClosure::compute(&g);
    for s in g.vertices() {
        for t in g.vertices() {
            match idx.query_witness(s, t) {
                Some(w) => {
                    assert!(tc.reaches(s, w), "s -> witness");
                    assert!(tc.reaches(w, t), "witness -> t");
                }
                None => assert!(!tc.reaches(s, t)),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random op sequences leave the dynamic index equal to a rebuild.
    #[test]
    fn dynamic_matches_rebuild_under_random_ops(
        edges in proptest::collection::vec((0..20u32, 0..20u32), 0..40),
        ops in proptest::collection::vec((0..20u32, 0..20u32, proptest::bool::ANY), 1..25),
    ) {
        let g = DiGraph::from_edges(20, edges);
        let mut idx = DynamicIndex::from_digraph(&g, OrderKind::DegreeProduct);
        for (a, b, insert) in ops {
            if insert {
                idx.insert_edge(a, b);
            } else {
                idx.remove_edge(a, b);
            }
        }
        let now = idx.graph().to_digraph();
        prop_assert_eq!(idx.to_index(), reach_core::drl(&now, idx.order()));
    }

    /// Storage rejects no valid index and round-trips exactly.
    #[test]
    fn storage_round_trip_property(
        edges in proptest::collection::vec((0..25u32, 0..25u32), 0..60),
    ) {
        let g = DiGraph::from_edges(25, edges);
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let idx = reach_tol::pruned::build(&g, &ord);
        let mut buf = Vec::new();
        reach_index::storage::write_index(&idx, &mut buf).unwrap();
        prop_assert_eq!(reach_index::storage::read_index(&buf[..]).unwrap(), idx);
    }

    /// A dynamic index built empty then fed all edges equals the static
    /// build of the final graph (order fixed up-front on the final graph).
    #[test]
    fn incremental_construction_equals_static(
        edges in proptest::collection::vec((0..18u32, 0..18u32), 0..45),
    ) {
        let target = DiGraph::from_edges(18, edges.clone());
        let ord = OrderAssignment::new(&target, OrderKind::DegreeProduct);
        let mut idx = DynamicIndex::new(DynamicGraph::new(18), ord.clone());
        for (a, b) in edges {
            idx.insert_edge(a, b);
        }
        prop_assert_eq!(idx.to_index(), reach_core::drl(&target, &ord));
    }
}
