//! Integration tests of the distributed stack: engine semantics, traffic
//! accounting invariants, and the qualitative claims Figs. 5–6 rest on —
//! all of which are deterministic counts, not timings.

use reach_core::BatchParams;
use reach_graph::{OrderAssignment, OrderKind};
use reach_vcs::NetworkModel;

fn medium_like() -> reach_graph::DiGraph {
    reach_datasets::generators::hierarchy(600, 1500, 0.95, 13)
}

#[test]
fn single_node_runs_have_zero_network_traffic() {
    let g = medium_like();
    let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
    for run in [
        reach_drl_dist::drl::run(&g, &ord, 1, NetworkModel::default()).1,
        reach_drl_dist::drlb::run(&g, &ord, BatchParams::default(), 1, NetworkModel::default()).1,
        reach_drl_dist::drl_minus::run(&g, &ord, 1, NetworkModel::default()).1,
    ] {
        assert_eq!(run.comm.remote_messages, 0);
        assert_eq!(run.comm.network_bytes(), 0);
        assert_eq!(run.comm_seconds, 0.0);
    }
}

#[test]
fn remote_traffic_grows_with_node_count() {
    let g = medium_like();
    let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
    let mut last = 0usize;
    for nodes in [2usize, 4, 16] {
        let (_, st) = reach_drl_dist::drlb::run(
            &g,
            &ord,
            BatchParams::default(),
            nodes,
            NetworkModel::default(),
        );
        assert!(
            st.comm.remote_messages >= last,
            "traffic should not shrink as nodes grow"
        );
        last = st.comm.remote_messages;
    }
}

#[test]
fn message_volume_is_nearly_node_count_invariant() {
    // The algorithmic work is partition-independent; only the *timing* of
    // opportunistic Check-pruning shifts with message arrival order (a
    // vertex processes its super-step inbox sequentially, and an earlier
    // visit can prune a later same-step message). The index is exactly
    // invariant; the message totals may wobble within a few percent.
    let g = medium_like();
    let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
    let runs: Vec<(reach_index::ReachIndex, usize)> = [1usize, 3, 8]
        .iter()
        .map(|&nodes| {
            let (idx, st) = reach_drl_dist::drlb::run(
                &g,
                &ord,
                BatchParams::default(),
                nodes,
                NetworkModel::default(),
            );
            (idx, st.comm.local_messages + st.comm.remote_messages)
        })
        .collect();
    assert_eq!(runs[0].0, runs[1].0);
    assert_eq!(runs[1].0, runs[2].0);
    let base = runs[0].1 as f64;
    for (_, total) in &runs {
        let dev = (*total as f64 - base).abs() / base;
        assert!(dev < 0.05, "message totals within 5%: {total} vs {base}");
    }
}

/// The Fig. 5 ordering as deterministic byte counts. DRL⁻'s blocker floods
/// dwarf everything on any graph; DRLb's flood-message savings over DRL
/// show on coverage-heavy (hub-dominated) graphs, where batch labels prune
/// most of the search space — on deep hierarchy graphs the savings shrink
/// and DRLb's Line-8 label broadcasts can offset them (its win there is
/// computation, which Fig. 5 also shows).
#[test]
fn fig5_traffic_ordering_holds() {
    let net = NetworkModel::default();
    let ordering = |g: &reach_graph::DiGraph| {
        let ord = OrderAssignment::new(g, OrderKind::DegreeProduct);
        let minus = reach_drl_dist::drl_minus::run(g, &ord, 8, net).1;
        let drl = reach_drl_dist::drl::run(g, &ord, 8, net).1;
        let drlb = reach_drl_dist::drlb::run(g, &ord, BatchParams::default(), 8, net).1;
        (minus, drl, drlb)
    };

    // Deep hierarchy: DRL⁻ ≫ DRL, and DRLb's flood messages shrink even
    // when its broadcast bytes do not.
    let (minus, drl, drlb) = ordering(&medium_like());
    assert!(
        minus.comm.network_bytes() > drl.comm.network_bytes(),
        "DRL⁻ {} vs DRL {}",
        minus.comm.network_bytes(),
        drl.comm.network_bytes()
    );
    assert!(
        drlb.comm.remote_messages < drl.comm.remote_messages,
        "DRLb flood {} vs DRL flood {}",
        drlb.comm.remote_messages,
        drl.comm.remote_messages
    );

    // Coverage-heavy random graph: the full byte ordering of Fig. 5.
    let g = reach_graph::gen::gnm(600, 4200, 23);
    let (minus, drl, drlb) = ordering(&g);
    assert!(minus.comm.network_bytes() > drl.comm.network_bytes());
    assert!(
        drl.comm.network_bytes() > drlb.comm.network_bytes(),
        "DRL {} vs DRLb {}",
        drl.comm.network_bytes(),
        drlb.comm.network_bytes()
    );
}

/// The batch-label broadcasts of Algorithm 4 Line 8 are visible in the
/// accounting (broadcast bytes strictly positive on multi-node runs).
#[test]
fn drlb_broadcasts_batch_labels() {
    let g = medium_like();
    let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
    let (_, st) =
        reach_drl_dist::drlb::run(&g, &ord, BatchParams::default(), 4, NetworkModel::default());
    assert!(st.comm.broadcast_bytes > 0);
}

/// A finer network makes the modeled communication time cheaper but never
/// changes the result.
#[test]
fn network_model_only_affects_modeled_time() {
    let g = medium_like();
    let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
    let slow = NetworkModel {
        superstep_latency: 1e-3,
        bandwidth: 1e6,
    };
    let fast = NetworkModel {
        superstep_latency: 1e-6,
        bandwidth: 1e12,
    };
    let (idx_slow, st_slow) = reach_drl_dist::drlb::run(&g, &ord, BatchParams::default(), 8, slow);
    let (idx_fast, st_fast) = reach_drl_dist::drlb::run(&g, &ord, BatchParams::default(), 8, fast);
    assert_eq!(idx_slow, idx_fast);
    assert_eq!(st_slow.comm.remote_bytes, st_fast.comm.remote_bytes);
    assert!(st_slow.comm_seconds > st_fast.comm_seconds);
}

/// Distributed BFL: the index answers match the centralized oracle, and
/// the distributed DFS pays for partition crossings.
#[test]
fn bfl_distributed_consistency() {
    use reach_index::ReachabilityOracle;
    let g = reach_datasets::generators::hierarchy(300, 800, 0.9, 21);
    let central = reach_bfl::BflOracle::build(&g);
    let dist = reach_bfl::BflDistributed::build(&g, 6, NetworkModel::default());
    for s in (0..g.num_vertices() as u32).step_by(7) {
        for t in (0..g.num_vertices() as u32).step_by(11) {
            assert_eq!(dist.query(&g, s, t).0, central.reachable(s, t));
        }
    }
    assert!(dist.build_stats.dfs_remote_hops > 0);
    assert!(dist.build_stats.comm_seconds > 0.0);
}
