//! Property-based tests (proptest) over random graphs: the paper's
//! theorems as machine-checked invariants.

use proptest::prelude::*;

use reach_core::{BatchParams, BatchSchedule};
use reach_graph::{DiGraph, Direction, OrderAssignment, OrderKind, TransitiveClosure, VisitBuffer};
use reach_vcs::NetworkModel;

/// Strategy: a directed graph with up to `max_n` vertices and `max_m`
/// (possibly duplicate, possibly self-loop) edges.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = DiGraph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m)
            .prop_map(move |edges| DiGraph::from_edges(n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline invariant: DRL and DRLb always reproduce TOL's index.
    #[test]
    fn drl_family_equals_tol(g in arb_graph(28, 80)) {
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let oracle = reach_tol::naive::build(&g, &ord);
        prop_assert_eq!(&reach_core::drl(&g, &ord), &oracle);
        prop_assert_eq!(&reach_core::drlb(&g, &ord, BatchParams::default()), &oracle);
    }

    /// Theorem 1, via the closure characterization: membership in the index
    /// is exactly "v reaches w and no higher-order vertex sits between".
    #[test]
    fn index_membership_matches_theorem1(g in arb_graph(22, 60)) {
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let idx = reach_tol::pruned::build(&g, &ord);
        let tc = TransitiveClosure::compute(&g);
        for w in g.vertices() {
            for v in g.vertices() {
                prop_assert_eq!(
                    idx.in_label(w).contains(&v),
                    tc.in_label_expected(&ord, v, w)
                );
            }
        }
    }

    /// Definition 3: the cover constraint holds for every pair.
    #[test]
    fn cover_constraint(g in arb_graph(26, 70)) {
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let idx = reach_core::drlb(&g, &ord, BatchParams::default());
        let tc = TransitiveClosure::compute(&g);
        prop_assert!(idx.validate_cover(&tc).is_ok());
    }

    /// Lemma 4: BFS_low(v) is a superset of the final backward in-labels;
    /// all its members except the source have strictly lower order.
    #[test]
    fn trimmed_bfs_postconditions(g in arb_graph(26, 70)) {
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let idx = reach_tol::pruned::build(&g, &ord);
        let bw = idx.to_backward();
        let mut visit = VisitBuffer::new(g.num_vertices());
        for v in g.vertices() {
            let t = reach_core::trimmed::trimmed_bfs(&g, v, Direction::Forward, &ord, &mut visit);
            for &w in &t.low {
                prop_assert!(w == v || ord.higher(v, w));
            }
            for &w in &bw.in_sets[v as usize] {
                prop_assert!(t.low.contains(&w), "L⁻_in ⊆ BFS_low");
            }
        }
    }

    /// Batch schedules partition the ranks, in order, regardless of (b, k).
    #[test]
    fn batch_schedule_partitions(n in 0usize..500, b in 1usize..40, k in 1.0f64..4.0) {
        let s = BatchSchedule::new(n, BatchParams::new(b, k));
        let mut covered = 0u32;
        for r in s.iter() {
            prop_assert_eq!(r.start, covered);
            prop_assert!(r.end > r.start);
            covered = r.end;
        }
        prop_assert_eq!(covered as usize, n);
        if n > 0 {
            prop_assert_eq!(s.batch(0).len().min(n), b.min(n));
        }
    }

    /// Backward labels invert the index losslessly (Definition 4 duality).
    #[test]
    fn backward_labels_round_trip(g in arb_graph(26, 70)) {
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let idx = reach_core::drl(&g, &ord);
        prop_assert_eq!(&idx.to_backward().to_index(), &idx);
    }

    /// The distributed engine is deterministic and node-count invariant.
    #[test]
    fn distributed_node_count_invariance(g in arb_graph(20, 55), nodes in 1usize..9) {
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let net = NetworkModel::default();
        let (one, _) = reach_drl_dist::drlb::run(&g, &ord, BatchParams::default(), 1, net);
        let (many, _) = reach_drl_dist::drlb::run(&g, &ord, BatchParams::default(), nodes, net);
        prop_assert_eq!(one, many);
    }

    /// BFL answers every query correctly (with its fallback search).
    #[test]
    fn bfl_oracle_is_exact(g in arb_graph(20, 55)) {
        let oracle = reach_bfl::BflOracle::build(&g);
        let tc = TransitiveClosure::compute(&g);
        use reach_index::ReachabilityOracle;
        for s in g.vertices() {
            for t in g.vertices() {
                prop_assert_eq!(oracle.reachable(s, t), tc.reaches(s, t));
            }
        }
    }

    /// Graph IO round-trips arbitrary graphs through the edge-list format.
    #[test]
    fn edge_list_io_round_trip(g in arb_graph(30, 90)) {
        let mut buf = Vec::new();
        reach_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = reach_graph::io::read_edge_list(&buf[..]).unwrap();
        prop_assert_eq!(
            g.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
    }
}
