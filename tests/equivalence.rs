//! Cross-crate equivalence: every labeling algorithm in the workspace must
//! produce exactly the index of serial TOL (Algorithm 1), on every kind of
//! graph, under every ordering, at every cluster size.

use reach_core::BatchParams;
use reach_graph::{fixtures, gen, DiGraph, OrderAssignment, OrderKind};
use reach_vcs::NetworkModel;

fn graph_zoo() -> Vec<(String, DiGraph)> {
    let mut zoo: Vec<(String, DiGraph)> = vec![
        ("paper".into(), fixtures::paper_graph()),
        ("diamond".into(), fixtures::diamond()),
        ("cycle8".into(), fixtures::cycle(8)),
        ("path10".into(), fixtures::path(10)),
        ("star".into(), fixtures::out_star(9)),
        ("two_components".into(), fixtures::two_components()),
    ];
    for seed in 0..4 {
        zoo.push((format!("gnm{seed}"), gen::gnm(42, 140, seed)));
        zoo.push((format!("dag{seed}"), gen::random_dag(42, 110, seed)));
    }
    zoo.push((
        "dataset_web".into(),
        reach_datasets::generators::hierarchy(300, 900, 0.9, 5),
    ));
    zoo.push((
        "dataset_social".into(),
        reach_datasets::generators::social_with_depth(300, 700, 0.3, 0.6, 6),
    ));
    zoo
}

#[test]
fn every_algorithm_reproduces_tol() {
    for (name, g) in graph_zoo() {
        for kind in [OrderKind::DegreeProduct, OrderKind::InverseId] {
            let ord = OrderAssignment::new(&g, kind);
            let oracle = reach_tol::naive::build(&g, &ord);
            let ctx = |alg: &str| format!("{name}/{kind:?}/{alg}");

            assert_eq!(
                reach_tol::pruned::build(&g, &ord),
                oracle,
                "{}",
                ctx("tol-pruned")
            );
            assert_eq!(
                reach_core::framework::build(&g, &ord),
                oracle,
                "{}",
                ctx("framework")
            );
            assert_eq!(
                reach_core::drl_minus(&g, &ord),
                oracle,
                "{}",
                ctx("drl-minus")
            );
            assert_eq!(reach_core::drl(&g, &ord), oracle, "{}", ctx("drl"));
            assert_eq!(
                reach_core::drlb(&g, &ord, BatchParams::default()),
                oracle,
                "{}",
                ctx("drlb")
            );
            assert_eq!(
                reach_core::drlb_multicore(&g, &ord, BatchParams::default(), 3),
                oracle,
                "{}",
                ctx("drlb-mc")
            );
            let net = NetworkModel::default();
            assert_eq!(
                reach_drl_dist::drl::run(&g, &ord, 4, net).0,
                oracle,
                "{}",
                ctx("drl-dist")
            );
            assert_eq!(
                reach_drl_dist::drl_minus::run(&g, &ord, 4, net).0,
                oracle,
                "{}",
                ctx("drl-minus-dist")
            );
            assert_eq!(
                reach_drl_dist::drlb::run(&g, &ord, BatchParams::default(), 4, net).0,
                oracle,
                "{}",
                ctx("drlb-dist")
            );
        }
    }
}

#[test]
fn batch_parameters_never_change_the_index() {
    let g = gen::gnm(60, 200, 77);
    let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
    let oracle = reach_tol::naive::build(&g, &ord);
    for b in [1usize, 2, 3, 7, 16, 61] {
        for k in [1.0, 1.5, 2.0, 3.5] {
            let params = BatchParams::new(b, k);
            assert_eq!(reach_core::drlb(&g, &ord, params), oracle, "b={b} k={k}");
        }
    }
}

#[test]
fn node_count_never_changes_the_index() {
    let g = reach_datasets::generators::hierarchy(400, 1200, 0.9, 9);
    let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
    let net = NetworkModel::default();
    let reference = reach_drl_dist::drlb::run(&g, &ord, BatchParams::default(), 1, net).0;
    for nodes in [2usize, 5, 16, 32, 64] {
        let (idx, _) = reach_drl_dist::drlb::run(&g, &ord, BatchParams::default(), nodes, net);
        assert_eq!(idx, reference, "nodes={nodes}");
    }
}

#[test]
fn explicit_custom_order_is_respected_by_all() {
    // A deliberately weird explicit order (reverse of degree order).
    let g = gen::gnm(30, 90, 5);
    let mut seq: Vec<u32> = OrderAssignment::new(&g, OrderKind::DegreeProduct)
        .processing_sequence()
        .to_vec();
    seq.reverse();
    let ord = OrderAssignment::from_processing_sequence(seq);
    let oracle = reach_tol::naive::build(&g, &ord);
    assert_eq!(reach_core::drl(&g, &ord), oracle);
    assert_eq!(reach_core::drlb(&g, &ord, BatchParams::default()), oracle);
    assert_eq!(
        reach_drl_dist::drl::run(&g, &ord, 3, NetworkModel::default()).0,
        oracle
    );
}
