//! Failure-injection and boundary tests across the whole stack.

use reach_core::BatchParams;
use reach_graph::{DiGraph, OrderAssignment, OrderKind};
use reach_vcs::{NetworkModel, Partition};

fn all_indexes(g: &DiGraph) -> Vec<reach_index::ReachIndex> {
    let ord = OrderAssignment::new(g, OrderKind::DegreeProduct);
    vec![
        reach_tol::naive::build(g, &ord),
        reach_tol::pruned::build(g, &ord),
        reach_core::drl(g, &ord),
        reach_core::drl_minus(g, &ord),
        reach_core::drlb(g, &ord, BatchParams::default()),
        reach_core::drlb_multicore(g, &ord, BatchParams::default(), 2),
        reach_drl_dist::drl::run(g, &ord, 3, NetworkModel::default()).0,
        reach_drl_dist::drlb::run(g, &ord, BatchParams::default(), 3, NetworkModel::default()).0,
    ]
}

#[test]
fn empty_graph_everywhere() {
    let g = DiGraph::from_edges(0, vec![]);
    for idx in all_indexes(&g) {
        assert_eq!(idx.num_vertices(), 0);
        assert_eq!(idx.num_entries(), 0);
    }
}

#[test]
fn single_vertex_no_edges() {
    let g = DiGraph::from_edges(1, vec![]);
    for idx in all_indexes(&g) {
        assert!(idx.query(0, 0), "self reachability");
        assert_eq!(idx.in_label(0), &[0]);
    }
}

#[test]
fn single_vertex_self_loop() {
    let g = DiGraph::from_edges(1, vec![(0, 0)]);
    for idx in all_indexes(&g) {
        assert!(idx.query(0, 0));
    }
}

#[test]
fn parallel_edges_and_self_loops_mixed() {
    let g = DiGraph::from_edges(4, vec![(0, 1), (0, 1), (1, 1), (1, 2), (2, 0), (3, 3)]);
    let reference = all_indexes(&g);
    for idx in &reference {
        assert_eq!(idx, &reference[0]);
        idx.validate_cover_on(&g).unwrap();
    }
}

#[test]
fn giant_single_cycle() {
    // Every vertex reaches every vertex; the highest-order vertex must
    // cover everything and nobody else labels.
    let g = reach_graph::fixtures::cycle(50);
    let ord = OrderAssignment::new(&g, OrderKind::InverseId);
    let idx = reach_core::drlb(&g, &ord, BatchParams::default());
    assert_eq!(idx, reach_tol::naive::build(&g, &ord));
    for v in g.vertices() {
        assert_eq!(idx.in_label(v), &[0], "only vertex 0 labels");
        assert_eq!(idx.out_label(v), &[0]);
    }
    idx.validate_cover_on(&g).unwrap();
}

#[test]
fn isolated_vertices_only() {
    let g = DiGraph::from_edges(6, vec![]);
    for idx in all_indexes(&g) {
        for v in g.vertices() {
            assert!(idx.query(v, v));
            for w in g.vertices() {
                assert_eq!(idx.query(v, w), v == w);
            }
        }
    }
}

#[test]
fn more_cluster_nodes_than_vertices() {
    let g = reach_graph::fixtures::diamond();
    let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
    let (idx, stats) = reach_drl_dist::drlb::run(
        &g,
        &ord,
        BatchParams::default(),
        64,
        NetworkModel::default(),
    );
    assert_eq!(idx, reach_tol::naive::build(&g, &ord));
    assert!(stats.supersteps > 0);
}

#[test]
fn batch_size_larger_than_graph() {
    let g = reach_graph::fixtures::paper_graph();
    let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
    let idx = reach_core::drlb(&g, &ord, BatchParams::new(10_000, 2.0));
    assert_eq!(idx, reach_core::drl(&g, &ord), "one batch == plain DRL");
}

#[test]
fn singleton_batches_equal_serial_tol_execution() {
    let g = reach_graph::gen::gnm(30, 100, 1);
    let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
    let idx = reach_core::drlb(&g, &ord, BatchParams::new(1, 1.0));
    assert_eq!(idx, reach_tol::naive::build(&g, &ord));
}

#[test]
fn partition_owned_covers_all_vertices_exactly_once() {
    let p = Partition::modulo(7);
    let n = 100;
    let mut seen = vec![0u8; n];
    for node in 0..7 {
        for v in p.owned(node, n) {
            seen[v as usize] += 1;
        }
    }
    assert!(seen.iter().all(|&c| c == 1));
}

#[test]
fn bfl_on_degenerate_graphs() {
    use reach_index::ReachabilityOracle;
    for g in [
        DiGraph::from_edges(1, vec![]),
        DiGraph::from_edges(2, vec![(0, 1), (1, 0)]),
        DiGraph::from_edges(5, vec![]),
    ] {
        let oracle = reach_bfl::BflOracle::build(&g);
        let tc = reach_graph::TransitiveClosure::compute(&g);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(oracle.reachable(s, t), tc.reaches(s, t));
            }
        }
    }
}

#[test]
fn order_with_extreme_degree_skew() {
    // A star: the center has the top degree-product order by far.
    let g = reach_graph::fixtures::out_star(40);
    let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
    assert_eq!(ord.vertex_at_rank(0), 0);
    let idx = reach_core::drlb(&g, &ord, BatchParams::default());
    idx.validate_cover_on(&g).unwrap();
    // Leaves carry only {center, self}-style labels.
    assert!(idx.max_label_size() <= 2);
}
