//! Literal transcription of Algorithm 1 (the TOL reference oracle).
//!
//! Round `i` selects the vertex `v_i` with the `i`-th largest order, runs a
//! full BFS from `v_i` in the current graph `G_i` and in its inverse, applies
//! the pruning operation to every reached vertex, then deletes `v_i` from the
//! graph. The shrinking graph is represented by a `removed` mask rather than
//! physical deletion.
//!
//! This implementation favours obviousness over speed — it exists to be the
//! oracle every optimized algorithm is tested against.

use reach_graph::{DiGraph, Direction, OrderAssignment, VertexId, VisitBuffer};
use reach_index::ReachIndex;

use crate::ranklist::RankLabels;

/// Builds the TOL index exactly as Algorithm 1 describes.
pub fn build(g: &DiGraph, ord: &OrderAssignment) -> ReachIndex {
    let n = g.num_vertices();
    assert_eq!(ord.len(), n, "order must cover the graph");
    let mut labels = RankLabels::new(n);
    let mut removed = vec![false; n];
    let mut visit = VisitBuffer::new(n);
    let mut frontier: Vec<VertexId> = Vec::new();

    for rank in 0..n as u32 {
        let vi = ord.vertex_at_rank(rank);

        // Line 5: DES^{G_i}(v_i) by forward BFS in the remaining graph.
        let descendants = masked_bfs(
            g,
            vi,
            Direction::Forward,
            &removed,
            &mut visit,
            &mut frontier,
        );
        // Lines 7-9: pruning operation for in-labels.
        for w in descendants {
            if !labels.out_in_intersect(vi, w) {
                labels.lin[w as usize].push(rank);
            }
        }

        // Line 6: ANC^{G_i}(v_i) by backward BFS in the remaining graph.
        let ancestors = masked_bfs(
            g,
            vi,
            Direction::Backward,
            &removed,
            &mut visit,
            &mut frontier,
        );
        // Lines 10-12: pruning operation for out-labels.
        for w in ancestors {
            if !labels.out_in_intersect(w, vi) {
                labels.lout[w as usize].push(rank);
            }
        }

        // Line 13: G_{i+1} = G_i \ {v_i}.
        removed[vi as usize] = true;
    }

    labels.into_index(ord)
}

/// BFS in `dir` from `source`, never entering removed vertices. Returns the
/// visited set (including `source`) by value; `frontier` is scratch space.
fn masked_bfs(
    g: &DiGraph,
    source: VertexId,
    dir: Direction,
    removed: &[bool],
    visit: &mut VisitBuffer,
    frontier: &mut Vec<VertexId>,
) -> Vec<VertexId> {
    debug_assert!(!removed[source as usize]);
    visit.reset();
    frontier.clear();
    visit.mark(source);
    frontier.push(source);
    let mut head = 0;
    while head < frontier.len() {
        let u = frontier[head];
        head += 1;
        for &w in g.neighbors(u, dir) {
            if !removed[w as usize] && visit.mark(w) {
                frontier.push(w);
            }
        }
    }
    std::mem::take(frontier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::{fixtures, OrderKind};

    /// Tables II of the paper, reproduced verbatim by the naive algorithm
    /// under the subscript order the examples use.
    #[test]
    fn reproduces_table2_exactly() {
        let g = fixtures::paper_graph();
        let ord = OrderAssignment::new(&g, OrderKind::InverseId);
        let idx = build(&g, &ord);

        let expected_in: [&[VertexId]; 11] = [
            &[0],
            &[1],
            &[1],
            &[1],
            &[0],
            &[1],
            &[0],
            &[0, 7],
            &[0, 7, 8],
            &[1, 9],
            &[1, 10],
        ];
        let expected_out: [&[VertexId]; 11] = [
            &[0],
            &[0, 1],
            &[0, 1],
            &[0, 1],
            &[0],
            &[0, 1],
            &[0],
            &[7],
            &[8],
            &[9],
            &[10],
        ];
        for v in g.vertices() {
            assert_eq!(idx.in_label(v), expected_in[v as usize], "L_in(v{})", v + 1);
            assert_eq!(
                idx.out_label(v),
                expected_out[v as usize],
                "L_out(v{})",
                v + 1
            );
        }
    }

    /// Table III: the backward label sets of the index.
    #[test]
    fn reproduces_table3_backward_sets() {
        let g = fixtures::paper_graph();
        let ord = OrderAssignment::new(&g, OrderKind::InverseId);
        let bw = build(&g, &ord).to_backward();
        assert_eq!(bw.in_sets[0], vec![0, 4, 6, 7, 8]);
        assert_eq!(bw.out_sets[0], vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(bw.in_sets[1], vec![1, 2, 3, 5, 9, 10]);
        assert_eq!(bw.out_sets[1], vec![1, 2, 3, 5]);
        for v in 2..=6 {
            assert!(bw.in_sets[v].is_empty(), "L⁻_in(v{}) = ∅", v + 1);
            assert!(bw.out_sets[v].is_empty(), "L⁻_out(v{}) = ∅", v + 1);
        }
        assert_eq!(bw.in_sets[7], vec![7, 8]);
        assert_eq!(bw.out_sets[7], vec![7]);
        for v in 8..11 {
            assert_eq!(bw.in_sets[v], vec![v as VertexId]);
            assert_eq!(bw.out_sets[v], vec![v as VertexId]);
        }
    }

    /// Example 4's narrative: in round 2, v2 is inserted into the in-label
    /// sets of {v2, v3, v4, v6, v10, v11} — v5 and v7 are pruned because
    /// v1 already covers them.
    #[test]
    fn example4_pruning_narrative() {
        let g = fixtures::paper_graph();
        let ord = OrderAssignment::new(&g, OrderKind::InverseId);
        let idx = build(&g, &ord);
        for w in [1u32, 2, 3, 5, 9, 10] {
            assert!(idx.in_label(w).contains(&1));
        }
        for w in [4u32, 6] {
            assert!(!idx.in_label(w).contains(&1), "v2 pruned at v{}", w + 1);
        }
    }

    #[test]
    fn cover_constraint_on_paper_graph() {
        let g = fixtures::paper_graph();
        for kind in [OrderKind::InverseId, OrderKind::DegreeProduct] {
            let ord = OrderAssignment::new(&g, kind);
            build(&g, &ord).validate_cover_on(&g).unwrap();
        }
    }
}
