//! Construction-time label lists sorted by processing rank.
//!
//! During index construction, vertices are appended to label sets in
//! processing order, i.e. in increasing *rank* (decreasing total order).
//! Keeping construction labels as rank lists makes the pruning test a
//! linear merge without any sorting, and conversion to the id-sorted
//! [`reach_index::ReachIndex`] is a single pass at the end.

use reach_graph::{OrderAssignment, VertexId};
use reach_index::ReachIndex;

/// Per-vertex in/out label lists holding *ranks*, each ascending.
#[derive(Clone, Debug)]
pub struct RankLabels {
    /// `lin[w]` = ranks of vertices in `L_in(w)`, ascending.
    pub lin: Vec<Vec<u32>>,
    /// `lout[w]` = ranks of vertices in `L_out(w)`, ascending.
    pub lout: Vec<Vec<u32>>,
}

impl RankLabels {
    /// Empty labels for `n` vertices.
    pub fn new(n: usize) -> Self {
        RankLabels {
            lin: vec![Vec::new(); n],
            lout: vec![Vec::new(); n],
        }
    }

    /// The pruning test of Algorithm 1: `L_out(a) ∩ L_in(b) ≠ ∅`, done as a
    /// merge over the ascending rank lists.
    #[inline]
    pub fn out_in_intersect(&self, a: VertexId, b: VertexId) -> bool {
        merge_intersects(&self.lout[a as usize], &self.lin[b as usize])
    }

    /// Converts rank lists back to an id-sorted [`ReachIndex`].
    pub fn into_index(self, ord: &OrderAssignment) -> ReachIndex {
        let to_ids = |lists: Vec<Vec<u32>>| {
            lists
                .into_iter()
                .map(|l| {
                    l.into_iter()
                        .map(|r| ord.vertex_at_rank(r))
                        .collect::<Vec<VertexId>>()
                })
                .collect::<Vec<_>>()
        };
        ReachIndex::from_labels(to_ids(self.lin), to_ids(self.lout))
    }
}

/// Merge-intersection test over two ascending `u32` slices.
#[inline]
pub fn merge_intersects(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::{fixtures, OrderKind};

    #[test]
    fn merge_intersects_basic() {
        assert!(merge_intersects(&[0, 2, 4], &[4]));
        assert!(!merge_intersects(&[0, 2], &[1, 3]));
        assert!(!merge_intersects(&[], &[]));
    }

    #[test]
    fn into_index_translates_ranks() {
        let g = fixtures::path(3);
        let ord = OrderAssignment::new(&g, OrderKind::InverseId); // rank r = vertex r
        let mut rl = RankLabels::new(3);
        rl.lin[2].push(0); // rank 0 = vertex 0 in L_in(2)
        rl.lout[0].push(0);
        let idx = rl.into_index(&ord);
        assert_eq!(idx.in_label(2), &[0]);
        assert_eq!(idx.out_label(0), &[0]);
    }
}
