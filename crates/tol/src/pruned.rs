//! Optimized TOL construction via pruned BFS.
//!
//! Instead of re-running full BFSs on a shrinking graph, each vertex `v`
//! (in decreasing order) runs one BFS per direction on the *full* graph
//! that (a) never enters vertices of higher order — they were processed
//! already, so the partial index covers anything beyond them — and
//! (b) prunes any vertex `w` for which the current partial index already
//! answers `v → w` (the pruning operation folded into the traversal).
//!
//! This is how practical TOL/PLL-style systems are implemented; it produces
//! exactly the same index as Algorithm 1 (see the crate-level equivalence
//! tests) in time proportional to the index it emits rather than O(n·m).

use reach_graph::{DiGraph, Direction, OrderAssignment, VertexId, VisitBuffer};
use reach_index::ReachIndex;

use crate::ranklist::RankLabels;

/// Counters describing one index construction, used by the experiment
/// harness to report search-space sizes (Table IV-style ablation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Vertices popped across all pruned BFSs.
    pub bfs_pops: usize,
    /// Edge relaxations across all pruned BFSs.
    pub edge_scans: usize,
    /// Pruning tests performed.
    pub prune_tests: usize,
    /// Pruning tests that fired (vertex skipped).
    pub prunes: usize,
}

/// Builds the TOL index with pruned BFS.
pub fn build(g: &DiGraph, ord: &OrderAssignment) -> ReachIndex {
    build_with_stats(g, ord).0
}

/// Builds the TOL index and returns instrumentation counters.
pub fn build_with_stats(g: &DiGraph, ord: &OrderAssignment) -> (ReachIndex, BuildStats) {
    let n = g.num_vertices();
    assert_eq!(ord.len(), n, "order must cover the graph");
    let mut labels = RankLabels::new(n);
    let mut stats = BuildStats::default();
    let mut visit = VisitBuffer::new(n);
    let mut queue: Vec<VertexId> = Vec::new();

    for rank in 0..n as u32 {
        let v = ord.vertex_at_rank(rank);
        pruned_bfs(
            g,
            v,
            rank,
            Direction::Forward,
            ord,
            &mut labels,
            &mut visit,
            &mut queue,
            &mut stats,
        );
        pruned_bfs(
            g,
            v,
            rank,
            Direction::Backward,
            ord,
            &mut labels,
            &mut visit,
            &mut queue,
            &mut stats,
        );
    }

    (labels.into_index(ord), stats)
}

/// One pruned BFS from `v` (rank `rank`). Forward direction appends `rank`
/// to `L_in(w)` of every surviving descendant `w`; backward appends to
/// `L_out(w)` of every surviving ancestor.
#[allow(clippy::too_many_arguments)]
fn pruned_bfs(
    g: &DiGraph,
    v: VertexId,
    rank: u32,
    dir: Direction,
    ord: &OrderAssignment,
    labels: &mut RankLabels,
    visit: &mut VisitBuffer,
    queue: &mut Vec<VertexId>,
    stats: &mut BuildStats,
) {
    visit.reset();
    queue.clear();
    visit.mark(v);

    // The pruning test at the root: if the partial index already certifies
    // v → v (a cycle through a processed, higher-order vertex), the whole
    // BFS is redundant — matches Algorithm 1, where every descendant then
    // fails the pruning test.
    stats.prune_tests += 1;
    if prunes(labels, v, v, dir) {
        stats.prunes += 1;
        return;
    }
    push_label(labels, v, rank, dir);
    queue.push(v);

    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        stats.bfs_pops += 1;
        for &w in g.neighbors(u, dir) {
            stats.edge_scans += 1;
            if !visit.mark(w) {
                continue;
            }
            // Higher-order vertices were already processed; anything they
            // cover is covered by the partial index, so the pruning test
            // below would fire anyway — skip the test for speed.
            if ord.rank(w) < rank {
                continue;
            }
            stats.prune_tests += 1;
            if prunes(labels, v, w, dir) {
                stats.prunes += 1;
                continue;
            }
            push_label(labels, w, rank, dir);
            queue.push(w);
        }
    }
}

/// The pruning operation: does the partial index already connect `v` and
/// `w` in the direction of travel?
#[inline]
fn prunes(labels: &RankLabels, v: VertexId, w: VertexId, dir: Direction) -> bool {
    match dir {
        Direction::Forward => labels.out_in_intersect(v, w),
        Direction::Backward => labels.out_in_intersect(w, v),
    }
}

/// Records `rank` in the label list appropriate to the direction.
#[inline]
fn push_label(labels: &mut RankLabels, w: VertexId, rank: u32, dir: Direction) {
    match dir {
        Direction::Forward => labels.lin[w as usize].push(rank),
        Direction::Backward => labels.lout[w as usize].push(rank),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::{fixtures, gen, OrderKind};

    #[test]
    fn reproduces_table2_like_naive() {
        let g = fixtures::paper_graph();
        let ord = OrderAssignment::new(&g, OrderKind::InverseId);
        let idx = build(&g, &ord);
        assert_eq!(idx, crate::naive::build(&g, &ord));
    }

    #[test]
    fn stats_reflect_pruning() {
        let g = fixtures::paper_graph();
        let ord = OrderAssignment::new(&g, OrderKind::InverseId);
        let (_, stats) = build_with_stats(&g, &ord);
        assert!(stats.prunes > 0, "the paper graph prunes (Example 4)");
        assert!(stats.prune_tests >= stats.prunes);
        assert!(stats.edge_scans > 0);
    }

    #[test]
    fn pruned_bfs_visits_less_than_full_closure() {
        // On a dense random graph, pruning must cut the search space well
        // below n reachability-closure-sized BFSs.
        let g = gen::gnm(200, 1200, 3);
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let (_idx, stats) = build_with_stats(&g, &ord);
        let tc = reach_graph::TransitiveClosure::compute(&g);
        assert!(
            stats.bfs_pops < 2 * tc.num_pairs(),
            "pops {} vs closure pairs {}",
            stats.bfs_pops,
            tc.num_pairs()
        );
    }

    #[test]
    fn disconnected_graph_gets_self_labels() {
        let g = fixtures::two_components();
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let idx = build(&g, &ord);
        for v in g.vertices() {
            assert!(idx.query(v, v));
        }
        assert!(!idx.query(0, 3));
        idx.validate_cover_on(&g).unwrap();
    }
}
