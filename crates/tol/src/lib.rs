//! Total Order Labeling (TOL) — the serial baseline (§II-B, Algorithm 1).
//!
//! TOL processes vertices in strictly decreasing total order; round `i`
//! labels the vertex `v_i` with the `i`-th largest order by adding `v_i` to
//! the in-label set of every descendant (and the out-label set of every
//! ancestor) that passes the *pruning operation*. The pruning operation is
//! what makes TOL's index small — and what makes TOL inherently serial
//! (Lemma 1): labeling `v_i` needs the labels of all higher-order vertices.
//!
//! Two implementations are provided:
//!
//! * [`naive::build`] — a literal transcription of Algorithm 1, including
//!   the shrinking graph `G_i`. O(n·(n+m)); used as the correctness oracle
//!   by every other algorithm's test suite.
//! * [`pruned::build`] — the optimized construction real TOL systems use:
//!   one *pruned BFS* per vertex on the full graph, skipping any vertex `w`
//!   for which the current partial index already certifies `v → w`. This is
//!   the baseline timed in the experiment harness.
//!
//! Both produce identical indexes (tested exhaustively and by property
//! tests), equal to the Theorem-1 characterization.

use reach_graph::{DiGraph, OrderAssignment, OrderKind};
use reach_index::ReachIndex;

pub mod naive;
pub mod pruned;

mod ranklist;

pub use pruned::BuildStats;

/// Builds the TOL index with the optimized (pruned-BFS) construction under
/// the given ordering strategy. Convenience wrapper over [`pruned::build`].
pub fn build(g: &DiGraph, kind: OrderKind) -> ReachIndex {
    let ord = OrderAssignment::new(g, kind);
    pruned::build(g, &ord)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::{fixtures, gen, TransitiveClosure};

    fn assert_matches_theorem1(g: &DiGraph, ord: &OrderAssignment, idx: &ReachIndex) {
        let tc = TransitiveClosure::compute(g);
        for w in g.vertices() {
            for v in g.vertices() {
                let expect_in = tc.in_label_expected(ord, v, w);
                let got_in = idx.in_label(w).contains(&v);
                assert_eq!(got_in, expect_in, "v{} in L_in(v{})", v + 1, w + 1);
                let expect_out = tc.out_label_expected(ord, v, w);
                let got_out = idx.out_label(w).contains(&v);
                assert_eq!(got_out, expect_out, "v{} in L_out(v{})", v + 1, w + 1);
            }
        }
    }

    #[test]
    fn naive_matches_theorem1_on_paper_graph_both_orders() {
        let g = fixtures::paper_graph();
        for kind in [OrderKind::InverseId, OrderKind::DegreeProduct] {
            let ord = OrderAssignment::new(&g, kind);
            let idx = naive::build(&g, &ord);
            assert_matches_theorem1(&g, &ord, &idx);
        }
    }

    #[test]
    fn pruned_equals_naive_on_fixtures() {
        for g in [
            fixtures::paper_graph(),
            fixtures::diamond(),
            fixtures::cycle(6),
            fixtures::path(8),
            fixtures::out_star(7),
            fixtures::two_components(),
        ] {
            for kind in [
                OrderKind::InverseId,
                OrderKind::DegreeProduct,
                OrderKind::ById,
            ] {
                let ord = OrderAssignment::new(&g, kind);
                assert_eq!(
                    pruned::build(&g, &ord),
                    naive::build(&g, &ord),
                    "kind {kind:?}"
                );
            }
        }
    }

    #[test]
    fn pruned_equals_naive_on_random_graphs() {
        for seed in 0..8 {
            let g = gen::gnm(40, 120, seed);
            let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
            let a = pruned::build(&g, &ord);
            let b = naive::build(&g, &ord);
            assert_eq!(a, b, "seed {seed}");
            a.validate_cover_on(&g).unwrap();
        }
        for seed in 0..8 {
            let g = gen::random_dag(40, 100, seed);
            let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
            assert_eq!(pruned::build(&g, &ord), naive::build(&g, &ord));
        }
    }

    #[test]
    fn build_convenience_satisfies_cover() {
        let g = gen::gnm(60, 150, 42);
        let idx = build(&g, OrderKind::DegreeProduct);
        idx.validate_cover_on(&g).unwrap();
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let empty = DiGraph::from_edges(0, vec![]);
        let ord = OrderAssignment::new(&empty, OrderKind::DegreeProduct);
        let idx = pruned::build(&empty, &ord);
        assert_eq!(idx.num_vertices(), 0);

        let one = DiGraph::from_edges(1, vec![]);
        let ord = OrderAssignment::new(&one, OrderKind::DegreeProduct);
        let idx = pruned::build(&one, &ord);
        assert_eq!(idx.in_label(0), &[0]);
        assert_eq!(idx.out_label(0), &[0]);
    }

    #[test]
    fn self_loop_vertex_keeps_self_label() {
        // A self-loop is a v -> v walk whose only vertex is v itself, so v
        // still labels itself (Theorem 1 over walks).
        let g = DiGraph::from_edges(2, vec![(0, 0), (0, 1)]);
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let idx = pruned::build(&g, &ord);
        assert!(idx.in_label(0).contains(&0));
        assert!(idx.out_label(0).contains(&0));
        assert_eq!(idx, naive::build(&g, &ord));
    }

    #[test]
    fn cycle_members_with_higher_order_peer_skip_self_label() {
        // cycle(3) under InverseId: vertex 0 has the highest order, so
        // vertices 1 and 2 sit on a cycle through a higher-order vertex and
        // must not label themselves (their reachability routes via 0).
        let g = fixtures::cycle(3);
        let ord = OrderAssignment::new(&g, OrderKind::InverseId);
        let idx = pruned::build(&g, &ord);
        assert_eq!(idx.in_label(0), &[0]);
        assert_eq!(idx.in_label(1), &[0]);
        assert_eq!(idx.in_label(2), &[0]);
        assert_eq!(idx.out_label(1), &[0]);
        idx.validate_cover_on(&g).unwrap();
    }
}
