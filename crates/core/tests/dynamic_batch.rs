//! The batched-repair equivalence property: for any interleaving of
//! insert/remove batches, [`DynamicIndex::apply_batch`] produces labels
//! bit-identical to (a) applying the same events through the per-op
//! `insert_edge`/`remove_edge` loop and (b) a from-scratch DRL rebuild of
//! the final edge set under the same frozen order — including when events
//! introduce previously-unseen vertex ids (capacity growth appends them
//! at the lowest order, so the rebuild sees the identical order).
//!
//! This is the correctness contract the ingest pipeline's delta batches
//! (and its publish-time verification gate) stand on.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reach_core::dynamic::DynamicIndex;
use reach_graph::{gen, DynamicGraph, EdgeEvent, GraphView, OrderAssignment, OrderKind, VertexId};
use reach_index::ReachIndex;

/// From-scratch DRL build of the index's current edge set under its own
/// (possibly grown) frozen order.
fn rebuild(idx: &DynamicIndex) -> ReachIndex {
    reach_core::improved::drl(&idx.graph().to_digraph(), idx.order())
}

/// A deterministic event stream over `n_base` vertices, optionally
/// naming up to `n_grow` extra ids that the base graph does not have.
fn event_stream(
    n_base: u32,
    n_grow: u32,
    count: usize,
    insert_bias: f64,
    seed: u64,
) -> Vec<EdgeEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = n_base + n_grow;
    (0..count)
        .map(|_| {
            let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
            if rng.gen_bool(insert_bias) {
                EdgeEvent::insert(u, v)
            } else {
                EdgeEvent::remove(u, v)
            }
        })
        .collect()
}

/// Replays `events` through the per-op loop, growing on demand exactly
/// like `apply_batch` does (inserts grow, removals out of range no-op).
fn apply_per_op(idx: &mut DynamicIndex, events: &[EdgeEvent]) {
    for ev in events {
        match ev.op {
            reach_graph::EdgeOp::Insert => {
                idx.ensure_vertex(ev.u.max(ev.v));
                idx.insert_edge(ev.u, ev.v);
            }
            reach_graph::EdgeOp::Remove => {
                let n = idx.graph().num_vertices() as VertexId;
                if ev.u < n && ev.v < n {
                    idx.remove_edge(ev.u, ev.v);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batched_equals_per_op_equals_rebuild(
        n in 8u32..28,
        edge_factor in 1usize..4,
        graph_seed in 0u64..1_000,
        event_seed in 0u64..1_000,
        batch_size in 1usize..17,
        insert_bias in 0.3f64..0.8,
        grow in 0u32..5,
    ) {
        let g = gen::gnm(n as usize, n as usize * edge_factor, graph_seed);
        let events = event_stream(n, grow, 48, insert_bias, event_seed);

        let mut batched = DynamicIndex::from_digraph(&g, OrderKind::DegreeProduct);
        let mut per_op = DynamicIndex::from_digraph(&g, OrderKind::DegreeProduct);

        for (k, batch) in events.chunks(batch_size).enumerate() {
            let stats = batched.apply_batch(batch);
            apply_per_op(&mut per_op, batch);
            prop_assert!(stats.applied_events <= batch.len());

            // Same edge set after every batch...
            prop_assert_eq!(
                batched.graph().to_digraph().edges().collect::<Vec<_>>(),
                per_op.graph().to_digraph().edges().collect::<Vec<_>>(),
                "edge sets diverged at batch {}", k
            );
            // ...same labels as the per-op loop...
            prop_assert_eq!(
                batched.to_index(),
                per_op.to_index(),
                "batched labels diverged from per-op at batch {}", k
            );
            // ...and both bit-identical to a from-scratch rebuild.
            prop_assert_eq!(
                batched.to_index(),
                rebuild(&batched),
                "batched labels diverged from rebuild at batch {}", k
            );
        }
    }
}

#[test]
fn one_batch_coalesces_overlapping_repairs() {
    // A path 0 -> 1 -> 2 -> 3: inserting (0,2) and (1,3) per-op refloods
    // the shared ancestors/descendants twice; one batch refloods each
    // affected source once, and the labels still match a rebuild.
    let g = reach_graph::fixtures::path(4);
    let mut idx = DynamicIndex::from_digraph(&g, OrderKind::DegreeProduct);
    let batch = [EdgeEvent::insert(0, 2), EdgeEvent::insert(1, 3)];

    let mut per_op = DynamicIndex::from_digraph(&g, OrderKind::DegreeProduct);
    let mut per_op_refloods = 0;
    for ev in &batch {
        per_op_refloods += per_op.insert_edge(ev.u, ev.v).unwrap().refloods();
    }

    let stats = idx.apply_batch(&batch);
    assert_eq!(stats.applied_events, 2);
    assert!(
        stats.refloods() < per_op_refloods,
        "coalescing must save flood work: batch {} vs per-op {}",
        stats.refloods(),
        per_op_refloods
    );
    assert_eq!(idx.to_index(), per_op.to_index());
    assert_eq!(idx.to_index(), rebuild(&idx));
}

#[test]
fn noop_heavy_batches_do_no_repair() {
    let g = reach_graph::fixtures::paper_graph();
    let mut idx = DynamicIndex::from_digraph(&g, OrderKind::DegreeProduct);
    let before = idx.to_index();
    // Removing absent edges, re-inserting present ones, and removing with
    // out-of-range endpoints are all no-ops.
    let stats = idx.apply_batch(&[
        EdgeEvent::remove(0, 0),
        EdgeEvent::insert(1, 0),
        EdgeEvent::remove(99, 3),
    ]);
    assert_eq!(stats.applied_events, 0);
    assert_eq!(stats.refloods(), 0);
    assert_eq!(idx.to_index(), before);
}

#[test]
fn insert_then_remove_in_one_batch_round_trips() {
    let g = reach_graph::fixtures::two_components();
    let mut idx = DynamicIndex::from_digraph(&g, OrderKind::DegreeProduct);
    let before = idx.to_index();
    let stats = idx.apply_batch(&[EdgeEvent::insert(2, 3), EdgeEvent::remove(2, 3)]);
    // Both ops are effective, but the net edge set is unchanged, so the
    // repaired labels equal the originals (and the rebuild).
    assert_eq!(stats.applied_events, 2);
    assert_eq!(idx.to_index(), before);
    assert_eq!(idx.to_index(), rebuild(&idx));
    assert!(!idx.query(0, 5));
}

#[test]
fn batch_growth_introduces_new_vertices() {
    let g = reach_graph::fixtures::path(3);
    let mut idx = DynamicIndex::from_digraph(&g, OrderKind::DegreeProduct);
    assert_eq!(idx.order().len(), 3);
    // Events name ids 3..6, unseen at construction.
    let stats = idx.apply_batch(&[
        EdgeEvent::insert(2, 3),
        EdgeEvent::insert(3, 5),
        EdgeEvent::insert(4, 0),
    ]);
    assert_eq!(stats.applied_events, 3);
    assert_eq!(idx.graph().num_vertices(), 6);
    assert_eq!(idx.order().len(), 6);
    assert!(idx.query(0, 5), "0 -> 1 -> 2 -> 3 -> 5");
    assert!(idx.query(4, 2), "4 -> 0 -> 1 -> 2");
    assert!(!idx.query(5, 0));
    assert_eq!(idx.to_index(), rebuild(&idx));
    // The grown index keeps following later updates.
    idx.apply_batch(&[EdgeEvent::remove(2, 3)]);
    assert!(!idx.query(0, 5));
    assert_eq!(idx.to_index(), rebuild(&idx));
}

#[test]
fn ensure_vertex_alone_matches_rebuild() {
    let g = reach_graph::fixtures::paper_graph();
    let mut idx = DynamicIndex::from_digraph(&g, OrderKind::DegreeProduct);
    idx.ensure_vertex(14);
    assert_eq!(idx.graph().num_vertices(), 15);
    // New vertices are isolated: reachable only from themselves.
    assert!(idx.query(12, 12));
    assert!(!idx.query(12, 0));
    assert!(!idx.query(0, 12));
    assert_eq!(idx.to_index(), rebuild(&idx));
    // Growth is idempotent.
    idx.ensure_vertex(10);
    assert_eq!(idx.graph().num_vertices(), 15);
}

#[test]
fn interleaved_batches_on_dynamic_graph_from_scratch() {
    // Start from an edgeless dynamic graph, grow it entirely through
    // batches, and tear it back down — rebuild-identical throughout.
    let empty = reach_graph::DiGraph::from_edges(4, vec![]);
    let ord = OrderAssignment::new(&empty, OrderKind::ById);
    let mut idx = DynamicIndex::new(DynamicGraph::new(4), ord);
    let mut rng = StdRng::seed_from_u64(0xfeed);
    let mut live: Vec<(VertexId, VertexId)> = Vec::new();
    for round in 0..12 {
        let mut batch = Vec::new();
        for _ in 0..6 {
            if !live.is_empty() && rng.gen_bool(0.35) {
                let at = rng.gen_range(0..live.len());
                let (u, v) = live.swap_remove(at);
                batch.push(EdgeEvent::remove(u, v));
            } else {
                let (u, v) = (rng.gen_range(0..8), rng.gen_range(0..8));
                batch.push(EdgeEvent::insert(u, v));
                live.push((u, v));
            }
        }
        idx.apply_batch(&batch);
        assert_eq!(idx.to_index(), rebuild(&idx), "round {round}");
    }
}
