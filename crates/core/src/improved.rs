//! DRL — the improved labeling method (Theorem 4, §III-C-2).
//!
//! The refinement phase needs **no extra BFS**: after every vertex has run
//! its trimmed BFS on `G` (candidates for `L⁻_in`) and on `Ḡ` (candidates
//! for `L⁻_out`), the `Ḡ` flood doubles as the inverted lists
//! `IBFS_low(v) = {u | v ∈ BFS_low^Ḡ(u)}` and a candidate `w ∈ BFS_low(v)`
//! is eliminated iff some `u ∈ IBFS_low(v)` also visited `w` on `G`
//! (Lemma 5). Each direction is therefore: one flood per vertex + a local
//! membership check — fully parallel across vertices.
//!
//! This module is the serial driver of that logic (the distributed version
//! in `reach-drl-dist` implements the same thing as a vertex program); it is
//! also the engine DRLb reuses per batch.

use reach_graph::{DiGraph, Direction, OrderAssignment, VertexId, VisitBuffer};
use reach_index::{BackwardLabels, ReachIndex};

use crate::refine::{build_inverted, refine_direction};
use crate::trimmed::trimmed_bfs;
use crate::LabelingStats;

/// Builds the TOL-equivalent index with DRL.
pub fn drl(g: &DiGraph, ord: &OrderAssignment) -> ReachIndex {
    drl_with_stats(g, ord).0
}

/// [`drl`] with instrumentation counters.
pub fn drl_with_stats(g: &DiGraph, ord: &OrderAssignment) -> (ReachIndex, LabelingStats) {
    let n = g.num_vertices();
    let mut stats = LabelingStats::default();
    let sources: Vec<VertexId> = (0..n as VertexId).collect();

    // Filtering (Steps 1-2): both direction floods for every vertex.
    let fwd_low = flood_all(g, &sources, Direction::Forward, ord, &mut stats);
    let bwd_low = flood_all(g, &sources, Direction::Backward, ord, &mut stats);

    // Inverted lists (Definition 6): from the opposite-direction floods.
    let inv_from_bwd = build_inverted(n, &sources, &bwd_low); // IBFS_low
    let inv_from_fwd = build_inverted(n, &sources, &fwd_low); // IBFS_low on Ḡ

    // Refinement (Steps 3-4, Lemma 5).
    let in_sets = refine_direction(&sources, &fwd_low, &inv_from_bwd, &mut stats);
    let out_sets = refine_direction(&sources, &bwd_low, &inv_from_fwd, &mut stats);

    let mut bw = BackwardLabels { in_sets, out_sets };
    bw.finalize();
    (bw.to_index(), stats)
}

/// Runs a trimmed BFS from every source in `dir`; returns per-vertex sorted
/// candidate lists (empty for non-sources).
pub(crate) fn flood_all(
    g: &DiGraph,
    sources: &[VertexId],
    dir: Direction,
    ord: &OrderAssignment,
    stats: &mut LabelingStats,
) -> Vec<Vec<VertexId>> {
    let n = g.num_vertices();
    let mut visit = VisitBuffer::new(n);
    let mut low: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for &v in sources {
        let t = trimmed_bfs(g, v, dir, ord, &mut visit);
        stats.filter_bfs += 1;
        stats.bfs_pops += t.pops;
        stats.edge_scans += t.edge_scans;
        stats.candidates += t.low.len();
        let mut l = t.low;
        l.sort_unstable();
        low[v as usize] = l;
    }
    low
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::{fixtures, gen, OrderKind};

    #[test]
    fn matches_tol_on_paper_graph_both_orders() {
        let g = fixtures::paper_graph();
        for kind in [OrderKind::InverseId, OrderKind::DegreeProduct] {
            let ord = OrderAssignment::new(&g, kind);
            assert_eq!(drl(&g, &ord), reach_tol::naive::build(&g, &ord), "{kind:?}");
        }
    }

    #[test]
    fn matches_tol_on_random_cyclic_graphs() {
        for seed in 0..10 {
            let g = gen::gnm(45, 140, seed);
            let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
            assert_eq!(
                drl(&g, &ord),
                reach_tol::naive::build(&g, &ord),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_tol_on_random_dags() {
        for seed in 0..6 {
            let g = gen::random_dag(45, 120, seed);
            let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
            assert_eq!(
                drl(&g, &ord),
                reach_tol::naive::build(&g, &ord),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn example11_elimination_via_inverted_list() {
        // Example 11: labeling v3, candidate v4 is eliminated because
        // v2 ∈ IBFS_low(v3) (v2's Ḡ-flood visits v3) and v2's G-flood
        // visits v4.
        let g = fixtures::paper_graph();
        let ord = OrderAssignment::new(&g, OrderKind::InverseId);
        let idx = drl(&g, &ord);
        let bw = idx.to_backward();
        assert!(!bw.in_sets[2].contains(&3), "v4 not in L⁻_in(v3)");
        assert!(bw.in_sets[2].is_empty());
    }

    #[test]
    fn refinement_uses_no_bfs() {
        let g = gen::gnm(40, 120, 3);
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let (_, stats) = drl_with_stats(&g, &ord);
        assert_eq!(stats.refine_bfs, 0, "Theorem 4 refinement is BFS-free");
        assert_eq!(stats.filter_bfs, 2 * g.num_vertices());
    }

    #[test]
    fn cycle_with_higher_member_drops_self_labels() {
        let g = fixtures::cycle(4);
        let ord = OrderAssignment::new(&g, OrderKind::InverseId);
        let idx = drl(&g, &ord);
        for v in 1..4 {
            assert!(!idx.in_label(v).contains(&v), "v{v} must not self-label");
        }
        assert_eq!(idx, reach_tol::naive::build(&g, &ord));
    }

    #[test]
    fn cover_constraint_on_disconnected_graph() {
        let g = fixtures::two_components();
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        drl(&g, &ord).validate_cover_on(&g).unwrap();
    }

    #[test]
    fn empty_and_singleton() {
        let empty = DiGraph::from_edges(0, vec![]);
        let ord = OrderAssignment::new(&empty, OrderKind::DegreeProduct);
        assert_eq!(drl(&empty, &ord).num_vertices(), 0);

        let single = DiGraph::from_edges(1, vec![(0, 0)]);
        let ord = OrderAssignment::new(&single, OrderKind::DegreeProduct);
        let idx = drl(&single, &ord);
        assert!(idx.query(0, 0));
    }
}
