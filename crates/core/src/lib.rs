//! The paper's primary contribution: parallel reachability labeling that
//! reproduces TOL's index (§III–§IV).
//!
//! TOL's pruning operation forces strictly serial execution (Lemma 1). The
//! paper's key insight (§III-A) is that labeling a vertex `v` is exactly
//! computing its *backward label sets* `L⁻_in(v)` and `L⁻_out(v)`
//! (Definition 4), and Theorem 1 characterizes membership without reference
//! to other vertices' labels — so all vertices can be labeled in parallel
//! under a *filtering-and-refinement* framework:
//!
//! 1. **Filter** — generate a superset of `L⁻_in(v)` (Theorem 2 uses
//!    `DES(v)`; Theorem 3 shrinks it to `BFS_low(v)` from a [trimmed
//!    BFS](trimmed)).
//! 2. **Refine** — eliminate every candidate reachable *through* a
//!    higher-order vertex (Theorem 2 uses `DES_hig(v)`; Theorem 3 uses
//!    `BFS_hig(v)`; Theorem 4 eliminates with no extra BFS at all via the
//!    inverted lists `IBFS_low`).
//!
//! Module map:
//!
//! * [`trimmed`] — Algorithm 2, the trimmed BFS producing
//!   `BFS_low(v)` / `BFS_hig(v)`.
//! * [`framework`] — the Theorem-2 reference framework (pedagogical).
//! * [`basic`] — **DRL⁻**, the basic labeling method (Theorem 3).
//! * [`improved`] — **DRL**, the improved labeling method (Theorem 4).
//! * [`batch`] — batch sequences (Definition 7) with parameters `b`, `k`.
//! * [`batched`] — **DRLb**, batch labeling (§IV / Algorithm 4 semantics).
//! * [`multicore`] — **DRLb^M**, the shared-memory parallel version
//!   benchmarked in Exp 3.
//!
//! All of them produce an index identical to serial TOL; the test suites
//! assert this against the `reach-tol` oracle on fixed and random graphs.

pub mod basic;
pub mod batch;
pub mod batched;
pub mod dynamic;
pub mod framework;
pub mod improved;
pub mod multicore;
mod refine;
pub mod trimmed;

pub use basic::drl_minus;
pub use batch::{BatchParams, BatchSchedule};
pub use batched::drlb;
pub use dynamic::DynamicIndex;
pub use improved::drl;
pub use multicore::drlb_multicore;

/// Instrumentation counters shared by the labeling algorithms; the Table-IV
/// ablation bench reports these to compare the three refinement strategies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LabelingStats {
    /// Trimmed BFSs run in the filtering phase (both directions).
    pub filter_bfs: usize,
    /// Full BFSs run in the refinement phase (Theorem 2 / Theorem 3 only).
    pub refine_bfs: usize,
    /// Candidate label entries produced by filtering.
    pub candidates: usize,
    /// Candidates eliminated by refinement.
    pub eliminated: usize,
    /// Vertices popped across all traversals.
    pub bfs_pops: usize,
    /// Edge relaxations across all traversals.
    pub edge_scans: usize,
    /// `Check()` probes performed (Theorem-4 refinement).
    pub check_probes: usize,
    /// Candidate sources pruned outright by batch labels (`DRLb` only).
    pub batch_pruned_sources: usize,
}

impl LabelingStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &LabelingStats) {
        self.filter_bfs += other.filter_bfs;
        self.refine_bfs += other.refine_bfs;
        self.candidates += other.candidates;
        self.eliminated += other.eliminated;
        self.bfs_pops += other.bfs_pops;
        self.edge_scans += other.edge_scans;
        self.check_probes += other.check_probes;
        self.batch_pruned_sources += other.batch_pruned_sources;
    }
}
