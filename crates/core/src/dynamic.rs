//! Incremental index maintenance on dynamic graphs.
//!
//! The paper's Remark (§II-B) notes that TOL's own paper maintains the
//! index under edge updates, and names *distributed dynamic* maintenance as
//! future work. This module implements the single-machine building block in
//! DRL's vocabulary: because Theorem 1 characterizes membership purely by
//! reachability under a **frozen total order**, an edge update `(u, v)`
//! can only affect
//!
//! * forward floods of sources that reach `u` (the ancestors `A` — only
//!   their trimmed BFSs can traverse the touched edge), and
//! * backward floods of sources reachable from `v` (the descendants `D`),
//!
//! so the maintenance recomputes exactly those floods, patches the shared
//! inverted lists by diff, re-refines the provably-affected sources, and
//! patches the label lists in place. The result is asserted (in tests,
//! including proptest sequences) to equal a from-scratch rebuild under the
//! same order after every operation.
//!
//! The total order is frozen at construction: recomputing the degree
//! formula after every update would reshuffle the entire index (and TOL's
//! dynamic variant likewise keeps its total order — hence the name).

use reach_graph::{
    dynamic::DynamicGraph, view::bfs_view, Direction, EdgeEvent, EdgeOp, GraphView,
    OrderAssignment, VertexId, VisitBuffer,
};
use reach_index::{intersects_sorted, ReachIndex, ReachabilityOracle};

use crate::trimmed::trimmed_bfs;

/// What one repair — an [`DynamicIndex::insert_edge`] /
/// [`DynamicIndex::remove_edge`] or a whole
/// [`DynamicIndex::apply_batch`] — did. Mirrored into the
/// `core.dynamic.*` obs counters (see docs/OBSERVABILITY.md) and
/// aggregated per batch by the ingest pipeline's `BatchStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Forward floods recomputed (`|A|`).
    pub refloods_fwd: usize,
    /// Backward floods recomputed (`|D|`).
    pub refloods_bwd: usize,
    /// Sources re-refined in the in-direction.
    pub refined_in: usize,
    /// Sources re-refined in the out-direction.
    pub refined_out: usize,
    /// Label entries inserted or removed across the index.
    pub label_changes: usize,
    /// Events that actually changed the edge set (inserts of absent
    /// edges, removes of present edges). Always 1 for the single-edge
    /// entry points, which return `None` instead of doing no-op work.
    pub applied_events: usize,
}

impl UpdateStats {
    /// Floods recomputed in either direction.
    pub fn refloods(&self) -> usize {
        self.refloods_fwd + self.refloods_bwd
    }

    /// Sources re-refined in either direction.
    pub fn refined(&self) -> usize {
        self.refined_in + self.refined_out
    }

    /// Accumulates `other` into `self` (for per-batch aggregation).
    pub fn merge(&mut self, other: &UpdateStats) {
        self.refloods_fwd += other.refloods_fwd;
        self.refloods_bwd += other.refloods_bwd;
        self.refined_in += other.refined_in;
        self.refined_out += other.refined_out;
        self.label_changes += other.label_changes;
        self.applied_events += other.applied_events;
    }
}

/// A reachability index that follows edge insertions and deletions while
/// staying bit-identical to a full rebuild under its frozen order.
pub struct DynamicIndex {
    graph: DynamicGraph,
    ord: OrderAssignment,
    /// Sorted forward candidates (`BFS_low`) per source.
    fwd_low: Vec<Vec<VertexId>>,
    /// Sorted backward candidates per source.
    bwd_low: Vec<Vec<VertexId>>,
    /// `fwd_visitors[h]` = sources `u ≠ h` whose forward flood visits `h`.
    fwd_visitors: Vec<Vec<VertexId>>,
    /// `bwd_visitors[h]` = sources `u ≠ h` whose backward flood visits `h`
    /// — exactly `IBFS_low(h)` (Definition 6).
    bwd_visitors: Vec<Vec<VertexId>>,
    /// Refined backward label sets per source (what each source stamps).
    bw_in: Vec<Vec<VertexId>>,
    bw_out: Vec<Vec<VertexId>>,
    /// The maintained label lists, sorted by id.
    lin: Vec<Vec<VertexId>>,
    lout: Vec<Vec<VertexId>>,
    visit: VisitBuffer,
}

impl DynamicIndex {
    /// Builds the index for `graph` under `ord` (which must cover it).
    pub fn new(graph: DynamicGraph, ord: OrderAssignment) -> Self {
        let n = graph.num_vertices();
        assert_eq!(ord.len(), n, "order must cover the graph");
        let mut idx = DynamicIndex {
            graph,
            ord,
            fwd_low: vec![Vec::new(); n],
            bwd_low: vec![Vec::new(); n],
            fwd_visitors: vec![Vec::new(); n],
            bwd_visitors: vec![Vec::new(); n],
            bw_in: vec![Vec::new(); n],
            bw_out: vec![Vec::new(); n],
            lin: vec![Vec::new(); n],
            lout: vec![Vec::new(); n],
            visit: VisitBuffer::new(n),
        };
        for x in 0..n as VertexId {
            idx.reflood(x, Direction::Forward);
            idx.reflood(x, Direction::Backward);
        }
        for h in 0..n as VertexId {
            idx.rerefine(h, Direction::Forward);
            idx.rerefine(h, Direction::Backward);
        }
        idx
    }

    /// Convenience constructor from a static graph + ordering strategy.
    pub fn from_digraph(g: &reach_graph::DiGraph, kind: reach_graph::OrderKind) -> Self {
        let ord = OrderAssignment::new(g, kind);
        Self::new(DynamicGraph::from_digraph(g), ord)
    }

    /// The current graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The frozen total order.
    pub fn order(&self) -> &OrderAssignment {
        &self.ord
    }

    /// Answers `q(s, t)` from the maintained labels.
    pub fn query(&self, s: VertexId, t: VertexId) -> bool {
        intersects_sorted(&self.lout[s as usize], &self.lin[t as usize])
    }

    /// Snapshots the maintained labels as a [`ReachIndex`].
    pub fn to_index(&self) -> ReachIndex {
        ReachIndex::from_labels(self.lin.clone(), self.lout.clone())
    }

    /// Inserts `u -> v` and repairs the index. Returns `None` if the edge
    /// already existed (no work done).
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Option<UpdateStats> {
        if !self.graph.insert_edge(u, v) {
            return None;
        }
        // Affected sources, on the *new* graph (a superset of the old
        // graph's sets, so both the created and any rerouted walks are
        // covered).
        Some(self.repair(u, v))
    }

    /// Removes `u -> v` and repairs the index. Returns `None` if the edge
    /// was absent.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Option<UpdateStats> {
        if !self.graph.has_edge(u, v) {
            return None;
        }
        // Affected sources must be computed on the graph that still *has*
        // the edge (walks through it exist only there).
        let anc = self.collect(u, Direction::Backward);
        let des = self.collect(v, Direction::Forward);
        self.graph.remove_edge(u, v);
        Some(self.repair_sets(anc, des, 1))
    }

    /// Grows the index (graph, frozen order, label state) so that `v` is
    /// a valid vertex id. New vertices are appended at the **lowest**
    /// order in first-seen order ([`OrderAssignment::push_lowest`]), so
    /// the extension is deterministic and a from-scratch rebuild under
    /// [`DynamicIndex::order`] stays bit-identical. Each new vertex is
    /// initialized exactly as [`DynamicIndex::new`] would initialize an
    /// isolated vertex (its own flood and refinement), which no existing
    /// vertex can observe until an edge connects it.
    pub fn ensure_vertex(&mut self, v: VertexId) {
        let need = v as usize + 1;
        let old = self.graph.num_vertices();
        if need <= old {
            return;
        }
        self.graph.ensure_vertex(v);
        self.visit.grow(need);
        self.fwd_low.resize_with(need, Vec::new);
        self.bwd_low.resize_with(need, Vec::new);
        self.fwd_visitors.resize_with(need, Vec::new);
        self.bwd_visitors.resize_with(need, Vec::new);
        self.bw_in.resize_with(need, Vec::new);
        self.bw_out.resize_with(need, Vec::new);
        self.lin.resize_with(need, Vec::new);
        self.lout.resize_with(need, Vec::new);
        for x in old as VertexId..need as VertexId {
            let pushed = self.ord.push_lowest();
            debug_assert_eq!(pushed, x, "order and graph grow in lockstep");
            self.reflood(x, Direction::Forward);
            self.reflood(x, Direction::Backward);
            self.rerefine(x, Direction::Forward);
            self.rerefine(x, Direction::Backward);
        }
    }

    /// Applies a whole batch of edge events and repairs the index
    /// **once**, coalescing the affected floods across the batch: a
    /// source whose flood would be recomputed by several per-op repairs
    /// is refloooded a single time against the post-batch graph, and the
    /// refinement pass runs once over the union of dirty sources. The
    /// result is bit-identical to applying the events one at a time (and
    /// to a from-scratch rebuild under the frozen order) — the
    /// `dynamic_batch` proptest pins the three-way equivalence — while
    /// doing strictly less flood work on overlapping updates.
    ///
    /// Insert events may name vertices beyond the current range; the
    /// index grows to cover them via [`DynamicIndex::ensure_vertex`].
    /// No-op events (inserting a present edge, removing an absent one,
    /// removing with an out-of-range endpoint) are skipped and not
    /// counted in [`UpdateStats::applied_events`].
    pub fn apply_batch(&mut self, events: &[EdgeEvent]) -> UpdateStats {
        // Growth first, so the affected-set scratch covers the whole
        // batch. Only inserts can introduce vertices; a removal naming an
        // unknown vertex is a no-op on an absent edge.
        for ev in events {
            if ev.op == EdgeOp::Insert {
                self.ensure_vertex(ev.u.max(ev.v));
            }
        }
        let n = self.graph.num_vertices();
        let mut anc = DirtySet::new(n);
        let mut des = DirtySet::new(n);
        let mut applied = 0usize;
        let mut scratch = Vec::new();
        // Sequentially mutate the graph, accumulating each op's affected
        // sources *at the time of the op* (inserts against the graph with
        // the edge, removals against the graph still holding it): any
        // source whose flood differs between the pre- and post-batch
        // graphs must differ across some intermediate step, so the union
        // covers every affected flood.
        for ev in events {
            match ev.op {
                EdgeOp::Insert => {
                    if !self.graph.insert_edge(ev.u, ev.v) {
                        continue;
                    }
                    applied += 1;
                    self.collect_into(ev.u, Direction::Backward, &mut scratch);
                    anc.extend(&scratch);
                    self.collect_into(ev.v, Direction::Forward, &mut scratch);
                    des.extend(&scratch);
                }
                EdgeOp::Remove => {
                    if !self.graph.has_edge(ev.u, ev.v) {
                        continue;
                    }
                    applied += 1;
                    self.collect_into(ev.u, Direction::Backward, &mut scratch);
                    anc.extend(&scratch);
                    self.collect_into(ev.v, Direction::Forward, &mut scratch);
                    des.extend(&scratch);
                    self.graph.remove_edge(ev.u, ev.v);
                }
            }
        }
        if applied == 0 {
            return UpdateStats::default();
        }
        self.repair_sets(anc.drain(), des.drain(), applied)
    }

    fn repair(&mut self, u: VertexId, v: VertexId) -> UpdateStats {
        let anc = self.collect(u, Direction::Backward);
        let des = self.collect(v, Direction::Forward);
        self.repair_sets(anc, des, 1)
    }

    /// Full BFS reach set of `r` in `dir` on the current graph.
    fn collect(&mut self, r: VertexId, dir: Direction) -> Vec<VertexId> {
        let mut out = Vec::new();
        bfs_view(&self.graph, r, dir, &mut self.visit, &mut out);
        out
    }

    /// [`DynamicIndex::collect`] into a reused scratch vector.
    fn collect_into(&mut self, r: VertexId, dir: Direction, out: &mut Vec<VertexId>) {
        bfs_view(&self.graph, r, dir, &mut self.visit, out);
    }

    /// Recomputes the affected floods and refinements given the ancestor
    /// set of `u` and descendant set of `v` (or their unions across a
    /// batch). `applied_events` is the number of effective edge changes
    /// this repair covers.
    fn repair_sets(
        &mut self,
        anc: Vec<VertexId>,
        des: Vec<VertexId>,
        applied_events: usize,
    ) -> UpdateStats {
        let _span = reach_obs::span("core.dynamic.repair");
        let mut stats = UpdateStats {
            refloods_fwd: anc.len(),
            refloods_bwd: des.len(),
            applied_events,
            ..UpdateStats::default()
        };

        // Phase 1: recompute floods; the dirty sets accumulate every vertex
        // whose inverted list or whose Check inputs may have changed.
        let mut dirty_in = DirtySet::new(self.graph.num_vertices());
        let mut dirty_out = DirtySet::new(self.graph.num_vertices());
        for &x in &anc {
            dirty_in.add(x);
            // Old and new forward candidates of x feed out-direction Checks
            // (x appears in their fwd_visitors) and x's own new candidates.
            for &h in &self.fwd_low[x as usize] {
                dirty_out.add(h);
            }
            self.reflood(x, Direction::Forward);
            for &h in &self.fwd_low[x as usize] {
                dirty_out.add(h);
            }
            // In-direction Checks of x consult bwd_visitors[x]; entries
            // u' ∈ A with changed fwd candidates are x's concern, handled
            // by x ∈ dirty_in. Conversely every h visited by x's *backward*
            // flood consults fwd_low[x], which just changed:
            for &h in &self.bwd_low[x as usize] {
                dirty_in.add(h);
            }
        }
        for &x in &des {
            dirty_out.add(x);
            for &h in &self.bwd_low[x as usize] {
                dirty_in.add(h);
            }
            self.reflood(x, Direction::Backward);
            for &h in &self.bwd_low[x as usize] {
                dirty_in.add(h);
            }
            for &h in &self.fwd_low[x as usize] {
                dirty_out.add(h);
            }
        }

        // Phase 2: re-refine the dirty sources and patch the labels.
        for h in dirty_in.drain() {
            stats.refined_in += 1;
            stats.label_changes += self.rerefine(h, Direction::Forward);
        }
        for h in dirty_out.drain() {
            stats.refined_out += 1;
            stats.label_changes += self.rerefine(h, Direction::Backward);
        }
        // The UpdateStats mirror, visible beyond the caller: the
        // core.dynamic.* catalog of docs/OBSERVABILITY.md.
        reach_obs::counter_add("core.dynamic.events", applied_events as u64);
        reach_obs::counter_add("core.dynamic.refloods.fwd", stats.refloods_fwd as u64);
        reach_obs::counter_add("core.dynamic.refloods.bwd", stats.refloods_bwd as u64);
        reach_obs::counter_add("core.dynamic.refined.in", stats.refined_in as u64);
        reach_obs::counter_add("core.dynamic.refined.out", stats.refined_out as u64);
        reach_obs::counter_add("core.dynamic.label_changes", stats.label_changes as u64);
        reach_obs::record("core.dynamic.repair.refloods", stats.refloods() as u64);
        reach_obs::record(
            "core.dynamic.repair.label_changes",
            stats.label_changes as u64,
        );
        stats
    }

    /// Recomputes one flood and patches the visitor lists by diff.
    fn reflood(&mut self, x: VertexId, dir: Direction) {
        let t = trimmed_bfs(&self.graph, x, dir, &self.ord, &mut self.visit);
        let mut new_low = t.low;
        new_low.sort_unstable();
        let (lows, visitors) = match dir {
            Direction::Forward => (&mut self.fwd_low, &mut self.fwd_visitors),
            Direction::Backward => (&mut self.bwd_low, &mut self.bwd_visitors),
        };
        let old_low = std::mem::replace(&mut lows[x as usize], new_low);
        let new_low = &lows[x as usize];
        // Diff the sorted lists to patch visitors[h] (which exclude the
        // source itself).
        diff_sorted(&old_low, new_low, |h, added| {
            if h == x {
                return;
            }
            let vis = &mut visitors[h as usize];
            if added {
                vis.push(x);
            } else if let Some(pos) = vis.iter().position(|&y| y == x) {
                vis.swap_remove(pos);
            }
        });
    }

    /// Re-refines one source in one direction; patches the label lists and
    /// returns how many entries changed.
    fn rerefine(&mut self, h: VertexId, dir: Direction) -> usize {
        let (cand, inv) = match dir {
            Direction::Forward => (&self.fwd_low, &self.bwd_visitors),
            Direction::Backward => (&self.bwd_low, &self.fwd_visitors),
        };
        let high_visitors = &inv[h as usize];
        let survivors: Vec<VertexId> = cand[h as usize]
            .iter()
            .copied()
            .filter(|&w| {
                !high_visitors
                    .iter()
                    .any(|&u| cand[u as usize].binary_search(&w).is_ok())
            })
            .collect();

        let (bw, labels) = match dir {
            Direction::Forward => (&mut self.bw_in, &mut self.lin),
            Direction::Backward => (&mut self.bw_out, &mut self.lout),
        };
        let old = std::mem::replace(&mut bw[h as usize], survivors);
        let new = &bw[h as usize];
        let mut changes = 0;
        diff_sorted(&old, new, |w, added| {
            changes += 1;
            let list = &mut labels[w as usize];
            match list.binary_search(&h) {
                Ok(pos) if !added => {
                    list.remove(pos);
                }
                Err(pos) if added => {
                    list.insert(pos, h);
                }
                _ => unreachable!("label list out of sync with backward set"),
            }
        });
        changes
    }
}

impl ReachabilityOracle for DynamicIndex {
    fn reachable(&self, s: VertexId, t: VertexId) -> bool {
        self.query(s, t)
    }
}

/// Walks two sorted slices, calling `f(elem, added)` for each element in
/// exactly one of them (`added = true` when only in `new`).
fn diff_sorted(old: &[VertexId], new: &[VertexId], mut f: impl FnMut(VertexId, bool)) {
    let (mut i, mut j) = (0, 0);
    while i < old.len() || j < new.len() {
        match (old.get(i), new.get(j)) {
            (Some(&a), Some(&b)) if a == b => {
                i += 1;
                j += 1;
            }
            (Some(&a), Some(&b)) if a < b => {
                f(a, false);
                i += 1;
            }
            (Some(_), Some(&b)) => {
                f(b, true);
                j += 1;
            }
            (Some(&a), None) => {
                f(a, false);
                i += 1;
            }
            (None, Some(&b)) => {
                f(b, true);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
}

/// A set with O(1) insert and iteration, reused across phases.
struct DirtySet {
    members: Vec<VertexId>,
    present: Vec<bool>,
}

impl DirtySet {
    fn new(n: usize) -> Self {
        DirtySet {
            members: Vec::new(),
            present: vec![false; n],
        }
    }

    fn add(&mut self, v: VertexId) {
        if !self.present[v as usize] {
            self.present[v as usize] = true;
            self.members.push(v);
        }
    }

    fn extend(&mut self, vs: &[VertexId]) {
        for &v in vs {
            self.add(v);
        }
    }

    fn drain(&mut self) -> Vec<VertexId> {
        for &v in &self.members {
            self.present[v as usize] = false;
        }
        std::mem::take(&mut self.members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::{fixtures, gen, DiGraph, OrderKind};

    /// Rebuilds from scratch under the same frozen order.
    fn rebuild(idx: &DynamicIndex) -> ReachIndex {
        let g = idx.graph().to_digraph();
        crate::improved::drl(&g, idx.order())
    }

    #[test]
    fn initial_build_matches_drl() {
        let g = fixtures::paper_graph();
        let idx = DynamicIndex::from_digraph(&g, OrderKind::InverseId);
        assert_eq!(idx.to_index(), reach_tol::naive::build(&g, idx.order()));
    }

    #[test]
    fn insert_edges_matches_rebuild() {
        let g = gen::gnm(30, 60, 3);
        let mut idx = DynamicIndex::from_digraph(&g, OrderKind::DegreeProduct);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for step in 0..40 {
            let (a, b) = (rng.gen_range(0..30), rng.gen_range(0..30));
            idx.insert_edge(a, b);
            assert_eq!(idx.to_index(), rebuild(&idx), "step {step}: +({a},{b})");
        }
    }

    #[test]
    fn remove_edges_matches_rebuild() {
        let g = gen::gnm(30, 120, 5);
        let edges: Vec<_> = g.edges().collect();
        let mut idx = DynamicIndex::from_digraph(&g, OrderKind::DegreeProduct);
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut order = edges.clone();
        order.shuffle(&mut rng);
        for (step, &(a, b)) in order.iter().take(40).enumerate() {
            assert!(idx.remove_edge(a, b).is_some());
            assert_eq!(idx.to_index(), rebuild(&idx), "step {step}: -({a},{b})");
        }
    }

    #[test]
    fn mixed_workload_matches_rebuild() {
        let g = gen::gnm(25, 50, 7);
        let mut idx = DynamicIndex::from_digraph(&g, OrderKind::DegreeProduct);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for step in 0..60 {
            let (a, b) = (rng.gen_range(0..25), rng.gen_range(0..25));
            if rng.gen_bool(0.6) {
                idx.insert_edge(a, b);
            } else {
                idx.remove_edge(a, b);
            }
            assert_eq!(idx.to_index(), rebuild(&idx), "step {step}");
            idx.to_index()
                .validate_cover_on(&idx.graph().to_digraph())
                .unwrap();
        }
    }

    #[test]
    fn noop_updates_do_no_work() {
        let g = fixtures::paper_graph();
        let mut idx = DynamicIndex::from_digraph(&g, OrderKind::InverseId);
        assert!(idx.insert_edge(1, 0).is_none(), "edge exists");
        assert!(idx.remove_edge(0, 1).is_none(), "edge absent");
    }

    #[test]
    fn update_stats_are_local() {
        // Bridging two 3-vertex paths (0->1->2, 3->4->5) touches only the
        // ancestors of the tail and the descendants of the head — not the
        // whole graph.
        let g = fixtures::two_components();
        let mut idx = DynamicIndex::from_digraph(&g, OrderKind::DegreeProduct);
        let stats = idx.insert_edge(2, 3).expect("new edge");
        assert_eq!(stats.refloods_fwd, 3, "{stats:?}"); // ancestors of 2
        assert_eq!(stats.refloods_bwd, 3, "{stats:?}"); // descendants of 3
        assert!(idx.query(0, 5));
        let stats = idx.remove_edge(2, 3).unwrap();
        assert_eq!(stats.refloods_fwd, 3, "{stats:?}");
        assert!(!idx.query(0, 5));
    }

    #[test]
    fn cycle_forming_and_breaking_updates() {
        // Close a long path into a cycle and open it again: the closure
        // changes reachability of every pair, and the index must follow.
        let g = fixtures::path(12);
        let mut idx = DynamicIndex::from_digraph(&g, OrderKind::InverseId);
        assert!(!idx.query(11, 0));
        idx.insert_edge(11, 0);
        assert!(idx.query(11, 0));
        assert!(idx.query(5, 2), "around the cycle");
        assert_eq!(idx.to_index(), rebuild(&idx));
        idx.remove_edge(11, 0);
        assert!(!idx.query(11, 0));
        assert_eq!(idx.to_index(), rebuild(&idx));
    }

    #[test]
    fn grows_from_empty_graph() {
        let n = 15;
        let empty = DiGraph::from_edges(n, vec![]);
        let ord = OrderAssignment::new(&empty, OrderKind::ById);
        let mut idx = DynamicIndex::new(DynamicGraph::new(n), ord);
        for i in 0..n as u32 - 1 {
            idx.insert_edge(i, i + 1);
        }
        assert!(idx.query(0, 14));
        assert_eq!(idx.to_index(), rebuild(&idx));
    }
}
