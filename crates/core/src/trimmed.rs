//! The trimmed BFS of Algorithm 2 (§III-C).
//!
//! A `v`-sourced trimmed BFS expands only through vertices of order lower
//! than `v`. Vertices of higher order *block* their branch and are recorded
//! in `BFS_hig(v)`; every expanded vertex lands in `BFS_low(v)`.
//!
//! * `BFS_low(v)` is a superset of the backward in-label set `L⁻_in(v)`
//!   (Lemma 4) — the candidates of the filtering phase.
//! * `BFS_hig(v)` suffices for refinement in place of the full
//!   `DES_hig(v)` (Lemma 3).

use reach_graph::{Direction, GraphView, OrderAssignment, VertexId, VisitBuffer};

/// Result of one trimmed BFS.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrimmedBfs {
    /// Vertices visited and expanded (order strictly lower than the source,
    /// plus the source itself), in visit order.
    pub low: Vec<VertexId>,
    /// Higher-order vertices that blocked an expansion branch, deduplicated,
    /// in first-encounter order.
    pub hig: Vec<VertexId>,
    /// Vertices popped from the queue.
    pub pops: usize,
    /// Edges scanned.
    pub edge_scans: usize,
}

/// Runs the `v`-sourced trimmed BFS in direction `dir` (Algorithm 2;
/// `Direction::Backward` gives the `Ḡ` variant used for out-labels and
/// inverted lists). `visit` is reset internally. Generic over
/// [`GraphView`] so the same code serves the static CSR graph and the
/// mutable graph of the dynamic-maintenance module.
pub fn trimmed_bfs<G: GraphView + ?Sized>(
    g: &G,
    v: VertexId,
    dir: Direction,
    ord: &OrderAssignment,
    visit: &mut VisitBuffer,
) -> TrimmedBfs {
    let mut out = TrimmedBfs::default();
    visit.reset();
    visit.mark(v);
    out.low.push(v);
    let rank_v = ord.rank(v);
    let mut head = 0;
    while head < out.low.len() {
        let u = out.low[head];
        head += 1;
        out.pops += 1;
        for &w in g.neighbors(u, dir) {
            out.edge_scans += 1;
            if !visit.mark(w) {
                continue; // status(w) ≠ unvisited (Line 8)
            }
            if ord.rank(w) > rank_v {
                out.low.push(w); // lower order: expand (Lines 9-10)
            } else {
                out.hig.push(w); // block the branch (Line 12)
            }
        }
    }
    reach_obs::counter_add("trimmed_bfs.runs", 1);
    reach_obs::counter_add("trimmed_bfs.edge_scans", out.edge_scans as u64);
    reach_obs::record("trimmed_bfs.low_size", out.low.len() as u64);
    reach_obs::record("trimmed_bfs.hig_size", out.hig.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::{fixtures, gen, OrderKind};

    #[test]
    fn example8_v3_sourced_trimmed_bfs() {
        // Fig. 3: BFS_low(v3) = {v3, v4, v10, v6, v11}, BFS_hig(v3) = {v1, v2}.
        let g = fixtures::paper_graph();
        let ord = OrderAssignment::new(&g, OrderKind::InverseId);
        let mut visit = VisitBuffer::new(g.num_vertices());
        let r = trimmed_bfs(&g, 2, Direction::Forward, &ord, &mut visit);
        let mut low = r.low.clone();
        low.sort_unstable();
        assert_eq!(low, vec![2, 3, 5, 9, 10]); // v3, v4, v6, v10, v11
        let mut hig = r.hig.clone();
        hig.sort_unstable();
        assert_eq!(hig, vec![0, 1]); // v1, v2
    }

    #[test]
    fn source_always_in_low_even_if_lowest_order() {
        let g = fixtures::path(3);
        let ord = OrderAssignment::new(&g, OrderKind::InverseId);
        let mut visit = VisitBuffer::new(3);
        let r = trimmed_bfs(&g, 2, Direction::Forward, &ord, &mut visit);
        assert_eq!(r.low, vec![2]);
        assert!(r.hig.is_empty());
    }

    #[test]
    fn low_vertices_have_strictly_lower_order() {
        for seed in 0..4 {
            let g = gen::gnm(40, 140, seed);
            let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
            let mut visit = VisitBuffer::new(g.num_vertices());
            for v in g.vertices() {
                let r = trimmed_bfs(&g, v, Direction::Forward, &ord, &mut visit);
                for &w in &r.low {
                    assert!(w == v || ord.higher(v, w));
                }
                for &w in &r.hig {
                    assert!(ord.higher(w, v));
                }
            }
        }
    }

    #[test]
    fn hig_has_no_duplicates() {
        // The source (1) reaches the high-order vertex 0 through two
        // lower-order branches (2 and 3); it must be recorded once.
        let g = reach_graph::DiGraph::from_edges(4, vec![(1, 2), (1, 3), (2, 0), (3, 0)]);
        let ord = OrderAssignment::new(&g, OrderKind::InverseId);
        let mut visit = VisitBuffer::new(4);
        let r = trimmed_bfs(&g, 1, Direction::Forward, &ord, &mut visit);
        assert_eq!(r.hig, vec![0]);
        let mut low = r.low.clone();
        low.sort_unstable();
        assert_eq!(low, vec![1, 2, 3]);
    }

    /// Lemma 3: the union of descendants of BFS_hig(v) equals the union of
    /// descendants of DES_hig(v).
    #[test]
    fn lemma3_hig_covers_des_hig() {
        use reach_graph::traverse::descendants;
        for seed in 0..4 {
            let g = gen::gnm(30, 90, seed);
            let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
            let mut visit = VisitBuffer::new(g.num_vertices());
            for v in g.vertices() {
                let r = trimmed_bfs(&g, v, Direction::Forward, &ord, &mut visit);
                let des: Vec<VertexId> = descendants(&g, v);
                let des_hig: Vec<VertexId> =
                    des.iter().copied().filter(|&u| ord.higher(u, v)).collect();
                let union_of = |set: &[VertexId]| {
                    let mut u: Vec<VertexId> =
                        set.iter().flat_map(|&x| descendants(&g, x)).collect();
                    u.sort_unstable();
                    u.dedup();
                    u
                };
                assert_eq!(union_of(&r.hig), union_of(&des_hig), "v={v} seed={seed}");
            }
        }
    }

    /// Lemma 4: BFS_low(v) ⊇ L⁻_in(v) (checked against the Theorem-1 oracle).
    #[test]
    fn lemma4_low_is_superset_of_backward_in_labels() {
        use reach_graph::TransitiveClosure;
        for seed in 0..4 {
            let g = gen::gnm(30, 90, seed);
            let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
            let tc = TransitiveClosure::compute(&g);
            let mut visit = VisitBuffer::new(g.num_vertices());
            for v in g.vertices() {
                let r = trimmed_bfs(&g, v, Direction::Forward, &ord, &mut visit);
                for w in g.vertices() {
                    if tc.in_label_expected(&ord, v, w) {
                        assert!(r.low.contains(&w), "w={w} must be a candidate for v={v}");
                    }
                }
            }
        }
    }

    #[test]
    fn counters_are_populated() {
        let g = fixtures::paper_graph();
        let ord = OrderAssignment::new(&g, OrderKind::InverseId);
        let mut visit = VisitBuffer::new(g.num_vertices());
        let r = trimmed_bfs(&g, 0, Direction::Forward, &ord, &mut visit);
        assert!(r.pops >= 1);
        assert!(r.edge_scans >= r.low.len() - 1);
    }
}
