//! Batch sequences (Definition 7) and batch label sets (Definition 8).
//!
//! DRLb splits the order-sorted vertices into batches
//! `[V_1, V_2, …, V_g]`: higher-order batches label first, so their labels
//! can prune the floods of later batches — TOL's pruning power traded
//! against DRL's parallelism. Batch `V_1` has `b` vertices and each later
//! batch is `k` times larger (the paper defaults to `b = k = 2`).

use reach_graph::{OrderAssignment, VertexId};

/// The two parameters of the batch-sequence procedure (§IV).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchParams {
    /// Initial batch size `b ∈ [1, |V|]`.
    pub initial_size: usize,
    /// Growth factor `k`; `k = 1` keeps the batch size constant (and is
    /// catastrophically slow, Exp 8), `k = |V|` degenerates to plain DRL.
    pub growth: f64,
}

impl Default for BatchParams {
    fn default() -> Self {
        // The paper sets both to 2 by default (§IV).
        BatchParams {
            initial_size: 2,
            growth: 2.0,
        }
    }
}

impl BatchParams {
    /// Convenience constructor.
    pub fn new(initial_size: usize, growth: f64) -> Self {
        assert!(initial_size >= 1, "b must be at least 1");
        assert!(growth >= 1.0, "k must be at least 1");
        BatchParams {
            initial_size,
            growth,
        }
    }
}

/// A batch sequence over the ranks `0..n`: because ranks already follow
/// decreasing order, batch `V_i` is simply a contiguous rank range.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchSchedule {
    bounds: Vec<u32>, // batch i covers ranks bounds[i]..bounds[i+1]
}

impl BatchSchedule {
    /// Builds the schedule for `n` vertices (Steps 1–3 of §IV).
    pub fn new(n: usize, params: BatchParams) -> Self {
        let mut bounds = vec![0u32];
        let mut size = params.initial_size as f64;
        let mut covered = 0usize;
        while covered < n {
            let take = (size.floor() as usize).max(1).min(n - covered);
            covered += take;
            bounds.push(covered as u32);
            size *= params.growth;
        }
        BatchSchedule { bounds }
    }

    /// Number of batches `g`.
    pub fn num_batches(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The rank range of batch `i` (0-based).
    pub fn batch(&self, i: usize) -> std::ops::Range<u32> {
        self.bounds[i]..self.bounds[i + 1]
    }

    /// Iterates over all batch rank-ranges in order.
    pub fn iter(&self) -> impl Iterator<Item = std::ops::Range<u32>> + '_ {
        (0..self.num_batches()).map(|i| self.batch(i))
    }

    /// The vertices of batch `i` under `ord`, in decreasing order.
    pub fn batch_vertices(&self, i: usize, ord: &OrderAssignment) -> Vec<VertexId> {
        self.batch(i).map(|r| ord.vertex_at_rank(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::{fixtures, OrderKind};

    #[test]
    fn example12_batches_of_paper_graph() {
        // Example 12: b = 2, k = 2 on 11 vertices gives batches of sizes
        // 2, 4, 5 — {v1, v2}, {v3..v6}, {v7..v11} under subscript order.
        let g = fixtures::paper_graph();
        let ord = OrderAssignment::new(&g, OrderKind::InverseId);
        let s = BatchSchedule::new(11, BatchParams::default());
        assert_eq!(s.num_batches(), 3);
        assert_eq!(s.batch_vertices(0, &ord), vec![0, 1]);
        assert_eq!(s.batch_vertices(1, &ord), vec![2, 3, 4, 5]);
        assert_eq!(s.batch_vertices(2, &ord), vec![6, 7, 8, 9, 10]);
    }

    #[test]
    fn batches_partition_all_ranks() {
        for n in [0usize, 1, 2, 7, 100, 1000] {
            for (b, k) in [(1, 1.0), (2, 2.0), (4, 1.5), (128, 3.0)] {
                let s = BatchSchedule::new(n, BatchParams::new(b, k));
                let mut covered = 0u32;
                for r in s.iter() {
                    assert_eq!(r.start, covered, "contiguous");
                    assert!(r.end > r.start, "non-empty");
                    covered = r.end;
                }
                assert_eq!(covered as usize, n, "n={n} b={b} k={k}");
            }
        }
    }

    #[test]
    fn growth_factor_one_gives_constant_batches() {
        let s = BatchSchedule::new(10, BatchParams::new(2, 1.0));
        assert_eq!(s.num_batches(), 5);
        for r in s.iter() {
            assert_eq!(r.len(), 2);
        }
    }

    #[test]
    fn batch_size_one_with_k1_is_fully_serial() {
        // b = 1, k = 1: |V| singleton batches — exactly TOL's execution.
        let s = BatchSchedule::new(6, BatchParams::new(1, 1.0));
        assert_eq!(s.num_batches(), 6);
    }

    #[test]
    fn huge_initial_batch_is_single_batch() {
        // b = |V|: one batch — exactly DRL's execution.
        let s = BatchSchedule::new(6, BatchParams::new(100, 2.0));
        assert_eq!(s.num_batches(), 1);
        assert_eq!(s.batch(0), 0..6);
    }

    #[test]
    fn fractional_growth_rounds_down_but_progresses() {
        let s = BatchSchedule::new(20, BatchParams::new(1, 1.5));
        // sizes: floor of 1, 1.5, 2.25, 3.375, 5.06, 7.59 = 1,1,2,3,5,7,
        // then a final clamped batch for the remaining vertex.
        let sizes: Vec<usize> = s.iter().map(|r| r.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 20);
        // Monotone except possibly the clamped last batch (§IV: "the number
        // of vertices in the last batch may not exceed b").
        let body = &sizes[..sizes.len() - 1];
        assert!(body.windows(2).all(|w| w[1] >= w[0]), "{sizes:?}");
    }

    #[test]
    #[should_panic(expected = "b must be at least 1")]
    fn zero_initial_size_rejected() {
        BatchParams::new(0, 2.0);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn sub_one_growth_rejected() {
        BatchParams::new(2, 0.5);
    }
}
