//! The Theorem-2 filtering-and-refinement framework (reference form).
//!
//! `L⁻_in(v) = DES(v) − ⋃_{u ∈ DES_hig(v)} DES(u)`: filter with the full
//! descendant set, refine with one BFS per higher-order descendant. This is
//! the starting point the paper improves on (Table IV compares the BFS
//! counts); it is kept here as the most-obviously-correct parallel labeling
//! and exercised by tests as a second oracle.

use reach_graph::{DiGraph, Direction, OrderAssignment, VertexId, VisitBuffer};
use reach_index::{BackwardLabels, ReachIndex};

use crate::LabelingStats;

/// Computes `L⁻_in(v)` (forward) or `L⁻_out(v)` (backward) per Theorem 2.
pub fn backward_labels_of(
    g: &DiGraph,
    v: VertexId,
    dir: Direction,
    ord: &OrderAssignment,
    stats: &mut LabelingStats,
) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut visit = VisitBuffer::new(n);

    // Filtering: DES(v) (or ANC(v) backward) by full BFS.
    let mut des = Vec::new();
    reach_graph::traverse::bfs_into(g, v, dir, &mut visit, &mut des);
    stats.filter_bfs += 1;
    stats.bfs_pops += des.len();
    stats.candidates += des.len();

    // DES_hig(v): higher-order descendants (Definition 5).
    let des_hig: Vec<VertexId> = des.iter().copied().filter(|&u| ord.higher(u, v)).collect();

    // Refinement: one BFS per element of DES_hig(v); anything they reach is
    // eliminated. `elim` marks are accumulated across all refinement BFSs.
    let mut elim = VisitBuffer::new(n);
    elim.reset();
    let mut scratch = Vec::new();
    for &u in &des_hig {
        reach_graph::traverse::bfs_into(g, u, dir, &mut visit, &mut scratch);
        stats.refine_bfs += 1;
        stats.bfs_pops += scratch.len();
        for &w in &scratch {
            elim.mark(w);
        }
    }

    let total = des.len();
    let kept: Vec<VertexId> = des.into_iter().filter(|&w| !elim.is_marked(w)).collect();
    stats.eliminated += total - kept.len();
    kept
}

/// Builds the full index with the Theorem-2 framework (every vertex, both
/// directions). Quadratic-ish; test-scale only.
pub fn build(g: &DiGraph, ord: &OrderAssignment) -> ReachIndex {
    build_with_stats(g, ord).0
}

/// [`build`] with instrumentation.
pub fn build_with_stats(g: &DiGraph, ord: &OrderAssignment) -> (ReachIndex, LabelingStats) {
    let n = g.num_vertices();
    let mut stats = LabelingStats::default();
    let mut bw = BackwardLabels::new(n);
    for v in g.vertices() {
        bw.in_sets[v as usize] = backward_labels_of(g, v, Direction::Forward, ord, &mut stats);
        bw.out_sets[v as usize] = backward_labels_of(g, v, Direction::Backward, ord, &mut stats);
    }
    bw.finalize();
    (bw.to_index(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::{fixtures, gen, OrderKind};

    #[test]
    fn example7_backward_in_labels_of_v3_is_empty() {
        let g = fixtures::paper_graph();
        let ord = OrderAssignment::new(&g, OrderKind::InverseId);
        let mut stats = LabelingStats::default();
        let l = backward_labels_of(&g, 2, Direction::Forward, &ord, &mut stats);
        assert!(l.is_empty(), "Example 7: L⁻_in(v3) = ∅");
        assert!(stats.refine_bfs >= 2, "DES_hig(v3) = {{v1, v2}}");
    }

    #[test]
    fn matches_tol_on_paper_graph() {
        let g = fixtures::paper_graph();
        for kind in [OrderKind::InverseId, OrderKind::DegreeProduct] {
            let ord = OrderAssignment::new(&g, kind);
            assert_eq!(build(&g, &ord), reach_tol::naive::build(&g, &ord));
        }
    }

    #[test]
    fn matches_tol_on_random_graphs() {
        for seed in 0..6 {
            let g = gen::gnm(35, 110, seed);
            let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
            assert_eq!(
                build(&g, &ord),
                reach_tol::naive::build(&g, &ord),
                "seed {seed}"
            );
        }
    }
}
