//! DRLb^M — the shared-memory multi-core version (§VI, Exp 3).
//!
//! Same batch schedule and per-batch logic as [`crate::batched`], but the
//! per-source floods and the refinement pass are spread over a pool of
//! scoped threads. Sources are independent within a batch (each flood reads
//! the graph and the earlier-batch labels, both immutable during the
//! batch), so the parallelization is embarrassingly clean: chunk the
//! sources, give every thread its own scratch buffers and stats, merge at
//! the batch barrier. The paper's Exp 3 finds this beats the distributed
//! version on graphs that fit one machine (no message passing) but cannot
//! scale past one machine's memory — exactly the trade-off our benches show.

use reach_graph::{DiGraph, Direction, OrderAssignment, VertexId, VisitBuffer};
use reach_index::ReachIndex;

use crate::batch::{BatchParams, BatchSchedule};
use crate::batched::{pruned_trimmed_bfs, BatchLabels};
use crate::refine::{build_inverted, refine_one};
use crate::LabelingStats;

/// Per-source result of a parallel phase: the vertex, its two produced
/// lists (flood candidates or refined survivors), and the worker's stats.
type SourceResult = (VertexId, Vec<VertexId>, Vec<VertexId>, LabelingStats);

/// Builds the TOL-equivalent index with `threads` worker threads.
pub fn drlb_multicore(
    g: &DiGraph,
    ord: &OrderAssignment,
    params: BatchParams,
    threads: usize,
) -> ReachIndex {
    drlb_multicore_with_stats(g, ord, params, threads).0
}

/// [`drlb_multicore`] with merged instrumentation counters.
pub fn drlb_multicore_with_stats(
    g: &DiGraph,
    ord: &OrderAssignment,
    params: BatchParams,
    threads: usize,
) -> (ReachIndex, LabelingStats) {
    assert!(threads >= 1, "need at least one worker thread");
    let n = g.num_vertices();
    let schedule = BatchSchedule::new(n, params);
    let mut stats = LabelingStats::default();
    let mut labels = BatchLabels::new(n);

    for i in 0..schedule.num_batches() {
        let sources = schedule.batch_vertices(i, ord);
        let active: Vec<VertexId> = sources
            .iter()
            .copied()
            .filter(|&v| {
                let pruned = labels.out_in_intersect(v, v);
                if pruned {
                    stats.batch_pruned_sources += 1;
                }
                !pruned
            })
            .collect();

        // Phase 1: parallel floods. Each worker owns a chunk of sources and
        // returns (vertex, fwd candidates, bwd candidates) triples.
        let chunk = active.len().div_ceil(threads).max(1);
        let flood_results: Vec<Vec<SourceResult>> = std::thread::scope(|scope| {
            let labels = &labels;
            let handles: Vec<_> = active
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || {
                        let mut visit = VisitBuffer::new(n);
                        part.iter()
                            .map(|&v| {
                                let mut st = LabelingStats::default();
                                let fwd = pruned_trimmed_bfs(
                                    g,
                                    v,
                                    Direction::Forward,
                                    ord,
                                    labels,
                                    &mut visit,
                                    &mut st,
                                );
                                let bwd = pruned_trimmed_bfs(
                                    g,
                                    v,
                                    Direction::Backward,
                                    ord,
                                    labels,
                                    &mut visit,
                                    &mut st,
                                );
                                (v, fwd, bwd, st)
                            })
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let mut fwd_low: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut bwd_low: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for part in flood_results {
            for (v, fwd, bwd, st) in part {
                fwd_low[v as usize] = fwd;
                bwd_low[v as usize] = bwd;
                stats.merge(&st);
            }
        }

        // Phase 2 (barrier): inverted lists over the whole batch.
        let inv_from_bwd = build_inverted(n, &active, &bwd_low);
        let inv_from_fwd = build_inverted(n, &active, &fwd_low);

        // Phase 3: parallel refinement over sources.
        let refine_results: Vec<Vec<SourceResult>> = std::thread::scope(|scope| {
            let fwd_low = &fwd_low;
            let bwd_low = &bwd_low;
            let inv_from_bwd = &inv_from_bwd;
            let inv_from_fwd = &inv_from_fwd;
            let handles: Vec<_> = active
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || {
                        part.iter()
                            .map(|&v| {
                                let mut st = LabelingStats::default();
                                let ins = refine_one(v, fwd_low, inv_from_bwd, &mut st);
                                let outs = refine_one(v, bwd_low, inv_from_fwd, &mut st);
                                (v, ins, outs, st)
                            })
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let mut in_sets: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut out_sets: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for part in refine_results {
            for (v, ins, outs, st) in part {
                in_sets[v as usize] = ins;
                out_sets[v as usize] = outs;
                stats.merge(&st);
            }
        }

        labels.append_batch(ord, &sources, &in_sets, &out_sets);
    }

    (labels.into_index(ord), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::{fixtures, gen, OrderKind};

    #[test]
    fn matches_serial_drlb_on_paper_graph() {
        let g = fixtures::paper_graph();
        let ord = OrderAssignment::new(&g, OrderKind::InverseId);
        let serial = crate::batched::drlb(&g, &ord, BatchParams::default());
        for threads in [1, 2, 4] {
            assert_eq!(
                drlb_multicore(&g, &ord, BatchParams::default(), threads),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn matches_tol_on_random_graphs() {
        for seed in 0..5 {
            let g = gen::gnm(60, 200, seed);
            let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
            let oracle = reach_tol::naive::build(&g, &ord);
            assert_eq!(
                drlb_multicore(&g, &ord, BatchParams::default(), 4),
                oracle,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn more_threads_than_sources_is_fine() {
        let g = fixtures::diamond();
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let idx = drlb_multicore(&g, &ord, BatchParams::default(), 16);
        idx.validate_cover_on(&g).unwrap();
    }

    #[test]
    fn stats_are_merged_across_threads() {
        let g = gen::gnm(80, 300, 2);
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let (_, st1) = drlb_multicore_with_stats(&g, &ord, BatchParams::default(), 1);
        let (_, st4) = drlb_multicore_with_stats(&g, &ord, BatchParams::default(), 4);
        // Same work regardless of thread count.
        assert_eq!(st1.filter_bfs, st4.filter_bfs);
        assert_eq!(st1.candidates, st4.candidates);
        assert_eq!(st1.eliminated, st4.eliminated);
    }
}
