//! DRLb — batch labeling (§IV, Algorithm 4 semantics).
//!
//! Vertices are processed batch by batch in decreasing order; within a
//! batch, the DRL improved method runs on every source in parallel, but the
//! labels accumulated by *earlier* batches prune the floods exactly the way
//! TOL's pruning operation would: a `v`-sourced flood never visits `w` once
//! `L^{V_i}_out(v) ∩ L^{V_i}_in(w) ≠ ∅`, and a source in a cycle with an
//! already-labeled higher-order vertex is pruned outright (Line 6 of
//! Algorithm 4).
//!
//! Note on Algorithm 4's listing: Line 12 prints the test
//! `L_out^{V_i}(w) ∩ L_in^{V_i}(w)`, but the proof of Theorem 6 uses
//! `s ∈ L^{V_i}_out(v)` and `s ∈ L^{V_i}_in(w)` — the per-visit test must
//! relate the *source* `v` to the visited vertex `w`. We implement the
//! proof's version; `tests::line12_literal_variant_would_be_wrong`
//! demonstrates the listing's literal reading diverges from TOL.

use reach_graph::{DiGraph, Direction, OrderAssignment, VertexId, VisitBuffer};
use reach_index::ReachIndex;

use crate::batch::{BatchParams, BatchSchedule};
use crate::refine::{build_inverted, refine_direction};
use crate::LabelingStats;

/// Builds the TOL-equivalent index with DRLb under the default `b = k = 2`.
pub fn drlb(g: &DiGraph, ord: &OrderAssignment, params: BatchParams) -> ReachIndex {
    drlb_with_stats(g, ord, params).0
}

/// [`drlb`] with instrumentation counters.
pub fn drlb_with_stats(
    g: &DiGraph,
    ord: &OrderAssignment,
    params: BatchParams,
) -> (ReachIndex, LabelingStats) {
    let n = g.num_vertices();
    let schedule = BatchSchedule::new(n, params);
    let mut stats = LabelingStats::default();
    let mut labels = BatchLabels::new(n);
    let mut visit = VisitBuffer::new(n);

    for i in 0..schedule.num_batches() {
        let sources = schedule.batch_vertices(i, ord);
        let (in_sets, out_sets) = label_batch(g, ord, &labels, &sources, &mut visit, &mut stats);
        labels.append_batch(ord, &sources, &in_sets, &out_sets);
    }

    (labels.into_index(ord), stats)
}

/// Labels one batch: floods both directions with batch-label pruning,
/// builds the intra-batch inverted lists, refines. Returns per-vertex
/// surviving backward in/out sets (indexed by vertex id; empty outside the
/// batch).
pub(crate) fn label_batch(
    g: &DiGraph,
    ord: &OrderAssignment,
    labels: &BatchLabels,
    sources: &[VertexId],
    visit: &mut VisitBuffer,
    stats: &mut LabelingStats,
) -> (Vec<Vec<VertexId>>, Vec<Vec<VertexId>>) {
    let n = g.num_vertices();

    // Line 6 of Algorithm 4: a source in a cycle with a previously labeled
    // higher-order vertex contributes nothing.
    let active: Vec<VertexId> = sources
        .iter()
        .copied()
        .filter(|&v| {
            let pruned = labels.out_in_intersect(v, v);
            if pruned {
                stats.batch_pruned_sources += 1;
            }
            !pruned
        })
        .collect();

    let mut fwd_low: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut bwd_low: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for &v in &active {
        fwd_low[v as usize] =
            pruned_trimmed_bfs(g, v, Direction::Forward, ord, labels, visit, stats);
        bwd_low[v as usize] =
            pruned_trimmed_bfs(g, v, Direction::Backward, ord, labels, visit, stats);
    }

    let inv_from_bwd = build_inverted(n, &active, &bwd_low);
    let inv_from_fwd = build_inverted(n, &active, &fwd_low);
    let in_sets = refine_direction(&active, &fwd_low, &inv_from_bwd, stats);
    let out_sets = refine_direction(&active, &bwd_low, &inv_from_fwd, stats);
    (in_sets, out_sets)
}

/// Trimmed BFS with the batch-label pruning of Algorithm 4 Line 12: the
/// flood never enters `w` when the earlier-batch labels already certify the
/// source-to-`w` connection. Returns the sorted candidate list.
pub(crate) fn pruned_trimmed_bfs(
    g: &DiGraph,
    v: VertexId,
    dir: Direction,
    ord: &OrderAssignment,
    labels: &BatchLabels,
    visit: &mut VisitBuffer,
    stats: &mut LabelingStats,
) -> Vec<VertexId> {
    visit.reset();
    visit.mark(v);
    let rank_v = ord.rank(v);
    let mut low = vec![v];
    let mut head = 0;
    while head < low.len() {
        let u = low[head];
        head += 1;
        stats.bfs_pops += 1;
        for &w in g.neighbors(u, dir) {
            stats.edge_scans += 1;
            if !visit.mark(w) {
                continue;
            }
            if ord.rank(w) <= rank_v {
                continue; // blocks the branch (BFS_hig; not needed by DRL)
            }
            let covered = match dir {
                Direction::Forward => labels.out_in_intersect(v, w),
                Direction::Backward => labels.out_in_intersect(w, v),
            };
            if covered {
                continue; // earlier-batch labels already certify v ↔ w
            }
            low.push(w);
        }
    }
    stats.filter_bfs += 1;
    stats.candidates += low.len();
    low.sort_unstable();
    low
}

/// Accumulated batch label sets (Definition 8), stored as per-vertex
/// ascending *rank* lists so the pruning test is a linear merge and the
/// final index conversion is a single pass.
#[derive(Clone, Debug)]
pub struct BatchLabels {
    lin: Vec<Vec<u32>>,
    lout: Vec<Vec<u32>>,
}

impl BatchLabels {
    /// Empty label sets for `n` vertices.
    pub fn new(n: usize) -> Self {
        BatchLabels {
            lin: vec![Vec::new(); n],
            lout: vec![Vec::new(); n],
        }
    }

    /// The pruning test `L_out(a) ∩ L_in(b) ≠ ∅` over rank lists.
    #[inline]
    pub fn out_in_intersect(&self, a: VertexId, b: VertexId) -> bool {
        merge_intersects(&self.lout[a as usize], &self.lin[b as usize])
    }

    /// Folds a completed batch into the accumulated labels. `sources` must
    /// be in decreasing order (as produced by
    /// [`BatchSchedule::batch_vertices`]) so rank lists stay ascending.
    pub fn append_batch(
        &mut self,
        ord: &OrderAssignment,
        sources: &[VertexId],
        in_sets: &[Vec<VertexId>],
        out_sets: &[Vec<VertexId>],
    ) {
        for &v in sources {
            let r = ord.rank(v);
            for &w in &in_sets[v as usize] {
                self.lin[w as usize].push(r);
            }
            for &w in &out_sets[v as usize] {
                self.lout[w as usize].push(r);
            }
        }
    }

    /// Converts the accumulated rank lists into the final id-sorted index.
    pub fn into_index(self, ord: &OrderAssignment) -> ReachIndex {
        let to_ids = |lists: Vec<Vec<u32>>| {
            lists
                .into_iter()
                .map(|l| l.into_iter().map(|r| ord.vertex_at_rank(r)).collect())
                .collect()
        };
        ReachIndex::from_labels(to_ids(self.lin), to_ids(self.lout))
    }
}

/// Merge-intersection over ascending rank lists.
#[inline]
fn merge_intersects(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::{fixtures, gen, OrderKind};

    #[test]
    fn matches_tol_on_paper_graph() {
        let g = fixtures::paper_graph();
        for kind in [OrderKind::InverseId, OrderKind::DegreeProduct] {
            let ord = OrderAssignment::new(&g, kind);
            assert_eq!(
                drlb(&g, &ord, BatchParams::default()),
                reach_tol::naive::build(&g, &ord)
            );
        }
    }

    #[test]
    fn matches_tol_for_many_batch_parameters() {
        let g = gen::gnm(50, 160, 9);
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let oracle = reach_tol::naive::build(&g, &ord);
        for (b, k) in [
            (1, 1.0),
            (1, 2.0),
            (2, 2.0),
            (8, 1.5),
            (64, 2.0),
            (100, 2.0),
        ] {
            assert_eq!(
                drlb(&g, &ord, BatchParams::new(b, k)),
                oracle,
                "b={b} k={k}"
            );
        }
    }

    #[test]
    fn matches_tol_on_random_graphs() {
        for seed in 0..8 {
            let g = gen::gnm(45, 150, seed);
            let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
            assert_eq!(
                drlb(&g, &ord, BatchParams::default()),
                reach_tol::naive::build(&g, &ord),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn example14_source_pruned_by_batch_labels() {
        // Example 14: with {v1, v2} labeled in batch 1, labeling v3 in
        // batch 2 prunes immediately: L_in(v3) ∋ v2 and L_out(v3) ∋ v2.
        let g = fixtures::paper_graph();
        let ord = OrderAssignment::new(&g, OrderKind::InverseId);
        let (_, stats) = drlb_with_stats(&g, &ord, BatchParams::default());
        assert!(stats.batch_pruned_sources >= 1, "v3 (and peers) pruned");
    }

    #[test]
    fn batching_reduces_search_space_vs_plain_drl() {
        // The point of §IV: earlier batches prune later floods, so DRLb
        // scans fewer edges than DRL on graphs with strong hubs.
        let g = gen::gnm(300, 2400, 17);
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let (_, drl_stats) = crate::improved::drl_with_stats(&g, &ord);
        let (_, drlb_stats) = drlb_with_stats(&g, &ord, BatchParams::default());
        assert!(
            drlb_stats.edge_scans < drl_stats.edge_scans,
            "DRLb {} vs DRL {}",
            drlb_stats.edge_scans,
            drl_stats.edge_scans
        );
    }

    /// The literal reading of Algorithm 4 Line 12 — testing
    /// `L_out^{V_i}(w) ∩ L_in^{V_i}(w)` at every visit — only prunes
    /// visited vertices that sit on an already-covered cycle and misses the
    /// prunes the proof of Theorem 6 relies on (`s ∈ L^{V_i}_out(v)` and
    /// `s ∈ L^{V_i}_in(w)`). On the graph below it keeps a candidate the
    /// intra-batch refinement cannot eliminate (the covering vertex is in
    /// an earlier batch), producing a wrong index. This pins down why we
    /// implement the proof's version (see DESIGN.md).
    #[test]
    fn line12_literal_variant_would_be_wrong() {
        // v1 -> v2 directly, and v1 -> v0 -> v2 through the highest-order
        // vertex; singleton batches put v0 strictly before v1.
        let g = DiGraph::from_edges(3, vec![(1, 2), (1, 0), (0, 2)]);
        let ord = OrderAssignment::new(&g, OrderKind::InverseId);
        let oracle = reach_tol::naive::build(&g, &ord);
        let params = BatchParams::new(1, 1.0);
        assert_eq!(drlb(&g, &ord, params), oracle, "proof version is right");

        // Re-run with the literal per-visit test.
        let n = g.num_vertices();
        let schedule = BatchSchedule::new(n, params);
        let mut labels = BatchLabels::new(n);
        let mut stats = LabelingStats::default();
        let mut visit = VisitBuffer::new(n);
        for i in 0..schedule.num_batches() {
            let sources = schedule.batch_vertices(i, &ord);
            let active: Vec<VertexId> = sources
                .iter()
                .copied()
                .filter(|&v| !labels.out_in_intersect(v, v))
                .collect();
            let mut fwd: Vec<Vec<VertexId>> = vec![Vec::new(); n];
            let mut bwd: Vec<Vec<VertexId>> = vec![Vec::new(); n];
            for &v in &active {
                for (dir, store) in [
                    (Direction::Forward, &mut fwd),
                    (Direction::Backward, &mut bwd),
                ] {
                    visit.reset();
                    visit.mark(v);
                    let mut low = vec![v];
                    let mut head = 0;
                    while head < low.len() {
                        let u = low[head];
                        head += 1;
                        for &w in g.neighbors(u, dir) {
                            if !visit.mark(w) || ord.rank(w) <= ord.rank(v) {
                                continue;
                            }
                            // literal Line 12: test w against itself
                            if labels.out_in_intersect(w, w) {
                                continue;
                            }
                            low.push(w);
                        }
                    }
                    low.sort_unstable();
                    store[v as usize] = low;
                }
            }
            let inv_b = build_inverted(n, &active, &bwd);
            let inv_f = build_inverted(n, &active, &fwd);
            let ins = refine_direction(&active, &fwd, &inv_b, &mut stats);
            let outs = refine_direction(&active, &bwd, &inv_f, &mut stats);
            labels.append_batch(&ord, &sources, &ins, &outs);
        }
        let literal = labels.into_index(&ord);
        assert_ne!(literal, oracle, "the literal Line-12 reading diverges");
    }

    #[test]
    fn empty_graph_ok() {
        let g = DiGraph::from_edges(0, vec![]);
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let idx = drlb(&g, &ord, BatchParams::default());
        assert_eq!(idx.num_vertices(), 0);
    }
}
