//! Shared Theorem-4 refinement machinery used by DRL, DRLb and DRLb^M.
//!
//! After the flooding phase, every source `v` has a sorted candidate list
//! `cand[v]` (its `BFS_low` in one direction). The inverted list
//! `IBFS_low(v)` (Definition 6) is derived from the *opposite*-direction
//! flood: `u ∈ inv[v]` iff `u ≠ v` and `v ∈ low(u)` there. A candidate
//! `w ∈ cand[v]` is eliminated iff some `u ∈ inv[v]` also has `w` in its
//! candidate list (Lemma 5) — a higher-order vertex sits on a `v → w` walk.

use reach_graph::VertexId;

use crate::LabelingStats;

/// Builds the inverted lists from per-source visit lists: `inv[w]` collects
/// every source `u ≠ w` whose flood visited `w`. Because trimmed BFS only
/// visits strictly-lower-order vertices (besides the source itself), every
/// entry of `inv[w]` has order higher than `w`.
pub(crate) fn build_inverted(
    n: usize,
    sources: &[VertexId],
    low: &[Vec<VertexId>],
) -> Vec<Vec<VertexId>> {
    let mut inv: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for &u in sources {
        for &w in &low[u as usize] {
            if w != u {
                inv[w as usize].push(u);
            }
        }
    }
    inv
}

/// Refines one direction: for every source `v`, keeps the candidates
/// `w ∈ cand[v]` that no inverted-list entry `u ∈ inv[v]` also visited.
/// `cand[v]` must be sorted by id (binary-searched). Returns the surviving
/// backward label sets, indexed by vertex id.
pub(crate) fn refine_direction(
    sources: &[VertexId],
    cand: &[Vec<VertexId>],
    inv: &[Vec<VertexId>],
    stats: &mut LabelingStats,
) -> Vec<Vec<VertexId>> {
    let mut kept: Vec<Vec<VertexId>> = vec![Vec::new(); cand.len()];
    for &v in sources {
        kept[v as usize] = refine_one(v, cand, inv, stats);
    }
    kept
}

/// Refines a single source (the unit the multicore version parallelizes).
pub(crate) fn refine_one(
    v: VertexId,
    cand: &[Vec<VertexId>],
    inv: &[Vec<VertexId>],
    stats: &mut LabelingStats,
) -> Vec<VertexId> {
    let high_visitors = &inv[v as usize];
    let survivors: Vec<VertexId> = cand[v as usize]
        .iter()
        .copied()
        .filter(|&w| {
            !high_visitors.iter().any(|&u| {
                stats.check_probes += 1;
                cand[u as usize].binary_search(&w).is_ok()
            })
        })
        .collect();
    stats.eliminated += cand[v as usize].len() - survivors.len();
    survivors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_inverted_excludes_self() {
        // sources 0 and 1; 0's flood visited {0, 2}; 1's visited {1, 2}.
        let low = vec![vec![0, 2], vec![1, 2], vec![]];
        let inv = build_inverted(3, &[0, 1], &low);
        assert!(inv[0].is_empty());
        assert!(inv[1].is_empty());
        assert_eq!(inv[2], vec![0, 1]);
    }

    #[test]
    fn refine_eliminates_covered_candidates() {
        // Source 2's candidates {2, 3}; source 0 (higher order) visited 3
        // and, in the opposite direction, visited 2 — so inv[2] = [0] and
        // candidate 3 must be eliminated while 2 survives.
        let cand = vec![vec![3], vec![], vec![2, 3], vec![]];
        let inv = vec![vec![], vec![], vec![0], vec![]];
        let mut stats = LabelingStats::default();
        let kept = refine_direction(&[2], &cand, &inv, &mut stats);
        assert_eq!(kept[2], vec![2]);
        assert_eq!(stats.eliminated, 1);
        assert!(stats.check_probes >= 1);
    }
}
