//! DRL⁻ — the basic labeling method (Theorem 3, §III-C-1).
//!
//! Filtering uses one trimmed BFS per vertex (`BFS_low(v)` as candidates);
//! refinement runs one full BFS per vertex of `BFS_hig(v)` and eliminates
//! everything those BFSs reach. Correct by Theorem 3:
//!
//! ```text
//! L⁻_in(v) = BFS_low(v) − ⋃_{u ∈ BFS_hig(v)} DES(u)
//! ```
//!
//! The refinement phase still needs `|BFS_hig(v)|` BFSs, which is what the
//! improved method (DRL, [`crate::improved`]) removes; the paper's Exp 4
//! shows DRL⁻ timing out where DRL finishes — the Fig. 5 bench reproduces
//! that gap.

use reach_graph::{DiGraph, Direction, OrderAssignment, VertexId, VisitBuffer};
use reach_index::{BackwardLabels, ReachIndex};

use crate::trimmed::trimmed_bfs;
use crate::LabelingStats;

/// Computes one backward label set per Theorem 3.
pub fn backward_labels_of(
    g: &DiGraph,
    v: VertexId,
    dir: Direction,
    ord: &OrderAssignment,
    visit: &mut VisitBuffer,
    elim: &mut VisitBuffer,
    stats: &mut LabelingStats,
) -> Vec<VertexId> {
    // Filtering: trimmed BFS (Step 1).
    let t = trimmed_bfs(g, v, dir, ord, visit);
    stats.filter_bfs += 1;
    stats.bfs_pops += t.pops;
    stats.edge_scans += t.edge_scans;
    stats.candidates += t.low.len();

    // Refinement: one full BFS per blocking vertex (Step 2).
    elim.reset();
    let mut scratch = Vec::new();
    for &u in &t.hig {
        reach_graph::traverse::bfs_into(g, u, dir, visit, &mut scratch);
        stats.refine_bfs += 1;
        stats.bfs_pops += scratch.len();
        for &w in &scratch {
            elim.mark(w);
        }
    }

    // Step 3: survivors.
    let total = t.low.len();
    let kept: Vec<VertexId> = t.low.into_iter().filter(|&w| !elim.is_marked(w)).collect();
    stats.eliminated += total - kept.len();
    kept
}

/// Builds the full index with DRL⁻ (serial driver; the distributed version
/// shares the per-vertex logic).
pub fn drl_minus(g: &DiGraph, ord: &OrderAssignment) -> ReachIndex {
    drl_minus_with_stats(g, ord).0
}

/// [`drl_minus`] with instrumentation counters.
pub fn drl_minus_with_stats(g: &DiGraph, ord: &OrderAssignment) -> (ReachIndex, LabelingStats) {
    let n = g.num_vertices();
    let mut stats = LabelingStats::default();
    let mut visit = VisitBuffer::new(n);
    let mut elim = VisitBuffer::new(n);
    let mut bw = BackwardLabels::new(n);
    for v in g.vertices() {
        bw.in_sets[v as usize] = backward_labels_of(
            g,
            v,
            Direction::Forward,
            ord,
            &mut visit,
            &mut elim,
            &mut stats,
        );
        bw.out_sets[v as usize] = backward_labels_of(
            g,
            v,
            Direction::Backward,
            ord,
            &mut visit,
            &mut elim,
            &mut stats,
        );
    }
    bw.finalize();
    (bw.to_index(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::{fixtures, gen, OrderKind};

    #[test]
    fn matches_tol_on_paper_graph() {
        let g = fixtures::paper_graph();
        for kind in [OrderKind::InverseId, OrderKind::DegreeProduct] {
            let ord = OrderAssignment::new(&g, kind);
            assert_eq!(drl_minus(&g, &ord), reach_tol::naive::build(&g, &ord));
        }
    }

    #[test]
    fn matches_tol_on_random_graphs() {
        for seed in 0..6 {
            let g = gen::gnm(35, 110, seed);
            let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
            assert_eq!(
                drl_minus(&g, &ord),
                reach_tol::naive::build(&g, &ord),
                "seed {seed}"
            );
        }
        for seed in 0..4 {
            let g = gen::random_dag(35, 90, seed);
            let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
            assert_eq!(drl_minus(&g, &ord), reach_tol::naive::build(&g, &ord));
        }
    }

    /// Table IV row: refinement BFS count is |BFS_hig(v)| ≤ |DES_hig(v)|.
    #[test]
    fn refinement_needs_no_more_bfs_than_theorem2() {
        let g = gen::gnm(40, 150, 5);
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let (_, basic) = drl_minus_with_stats(&g, &ord);
        let (_, framework) = crate::framework::build_with_stats(&g, &ord);
        assert!(basic.refine_bfs <= framework.refine_bfs);
        assert_eq!(basic.filter_bfs, framework.filter_bfs);
    }

    #[test]
    fn cover_constraint_holds() {
        let g = gen::gnm(50, 160, 11);
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        drl_minus(&g, &ord).validate_cover_on(&g).unwrap();
    }
}
