//! A fixed-footprint log₂-bucketed histogram for `u64` samples.
//!
//! Metric values in this workspace (label sizes, frontier sizes, per-step
//! byte counts) span many orders of magnitude, so the recorder keeps one
//! bucket per power of two — 65 buckets cover the whole `u64` range — plus
//! exact `count`/`sum`/`min`/`max`. Recording is O(1) with no allocation,
//! which keeps instrumented hot loops cheap even when recording is on.

/// Number of buckets: one for zero plus one per power of two.
pub const NUM_BUCKETS: usize = 65;

/// A log₂-bucketed histogram over `u64` samples.
///
/// Bucket `0` counts the value `0`; bucket `i ≥ 1` counts values in
/// `[2^(i-1), 2^i - 1]`. The struct is always compiled (it is plain data);
/// only the global recording entry points in the crate root are
/// feature-gated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// The bucket index of `value`: 0 for 0, else `⌊log₂ value⌋ + 1`.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts (`buckets[0]` = zeros, `buckets[i]` = values
    /// in `[2^(i-1), 2^i)`).
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.buckets
    }

    /// Upper-bound estimate of the `q`-quantile (`q ∈ [0, 1]`): the
    /// inclusive upper edge of the bucket containing the `⌈q·count⌉`-th
    /// smallest sample, clamped to the observed `max`. Returns 0 if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i == 0 {
                    0
                } else {
                    (1u64 << i) - (1 << (i - 1)) + ((1u64 << (i - 1)) - 1)
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// The non-empty buckets as `(lower_bound, upper_bound, count)` rows —
    /// the shape the run-report renders.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                if i == 0 {
                    (0, 0, c)
                } else {
                    (1u64 << (i - 1), (1u64 << (i - 1)) * 2 - 1, c)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn record_tracks_exact_aggregates() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.2).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn quantile_upper_bounds_the_rank() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // The median (50th sample = 50) lives in bucket [32, 63].
        let q50 = h.quantile(0.5);
        assert!((50..=63).contains(&q50), "q50 = {q50}");
        // The extreme quantiles clamp to observed bounds.
        assert_eq!(h.quantile(1.0), 100);
        assert!(h.quantile(0.0) >= 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new();
        a.record(4);
        let mut b = Histogram::new();
        b.record(1);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 1005);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn nonzero_buckets_report_ranges() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(5);
        h.record(6);
        let rows = h.nonzero_buckets();
        assert_eq!(rows, vec![(0, 0, 1), (4, 7, 2)]);
    }
}
