//! The metric store behind the crate's recording entry points.
//!
//! A [`Recorder`] owns four kinds of instruments, all keyed by `&'static
//! str` metric names (dotted lowercase, e.g. `engine.superstep.remote_bytes`):
//!
//! * **counters** — monotonically increasing `u64` totals,
//! * **histograms** — log₂-bucketed sample distributions ([`Histogram`]),
//! * **series** — per-index `u64` accumulators (index = logical superstep),
//! * **spans** — wall-clock time totals per named phase.
//!
//! The crate root wraps one `Recorder` in a thread local, so parallel test
//! threads never see each other's metrics. The types here are always
//! compiled (instrumentation tests construct them directly); only the
//! global entry points in the crate root are feature-gated.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::histogram::Histogram;

/// Aggregated timings for one named span (phase).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// How many times the span was entered and exited.
    pub count: u64,
    /// Total wall-clock time spent inside the span.
    pub total: Duration,
}

/// An in-memory metric store: counters, histograms, per-index series, and
/// span timings, each keyed by a static metric name.
///
/// `BTreeMap` keys give deterministic iteration order, so snapshots (and
/// the JSON/Markdown reports built from them) are stable across runs.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    series: BTreeMap<&'static str, Vec<u64>>,
    spans: BTreeMap<&'static str, SpanStats>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Discards all recorded metrics.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.histograms.clear();
        self.series.clear();
        self.spans.clear();
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    #[inline]
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Records `value` into the histogram `name`.
    #[inline]
    pub fn record(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// Adds `delta` to slot `index` of the series `name`, growing the
    /// series with zeros as needed. Replayed supersteps re-use their
    /// original index, so their traffic folds into the same slot — exactly
    /// how the engine's `CommStats` aggregates accumulate across recoveries.
    #[inline]
    pub fn series_add(&mut self, name: &'static str, index: usize, delta: u64) {
        let series = self.series.entry(name).or_default();
        if series.len() <= index {
            series.resize(index + 1, 0);
        }
        series[index] += delta;
    }

    /// Folds `elapsed` into the span `name`.
    #[inline]
    pub fn span_record(&mut self, name: &'static str, elapsed: Duration) {
        let s = self.spans.entry(name).or_default();
        s.count += 1;
        s.total += elapsed;
    }

    /// Current value of the counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The histogram `name`, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// The series `name`, if any slot was touched.
    pub fn series(&self, name: &str) -> Option<&[u64]> {
        self.series.get(name).map(|v| v.as_slice())
    }

    /// The span stats for `name`, if the span ever closed.
    pub fn span(&self, name: &str) -> Option<SpanStats> {
        self.spans.get(name).copied()
    }

    /// Folds every metric of `other` into `self`: counters and span stats
    /// add, histograms merge bucket-wise, series add element-wise (growing
    /// `self`'s series as needed).
    ///
    /// Merging is commutative and associative, so folding any number of
    /// worker-thread recorders into a parent — in any order — yields
    /// exactly the metrics a single-threaded run would have recorded.
    pub fn merge(&mut self, other: &Recorder) {
        for (&name, &delta) in &other.counters {
            self.counter_add(name, delta);
        }
        for (&name, hist) in &other.histograms {
            self.histograms.entry(name).or_default().merge(hist);
        }
        for (&name, series) in &other.series {
            let own = self.series.entry(name).or_default();
            if own.len() < series.len() {
                own.resize(series.len(), 0);
            }
            for (slot, &delta) in own.iter_mut().zip(series.iter()) {
                *slot += delta;
            }
        }
        for (&name, stats) in &other.spans {
            let s = self.spans.entry(name).or_default();
            s.count += stats.count;
            s.total += stats.total;
        }
    }

    /// A point-in-time copy of every metric, for reporting.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(&k, v)| (k.to_string(), v.clone()))
                .collect(),
            series: self
                .series
                .iter()
                .map(|(&k, v)| (k.to_string(), v.clone()))
                .collect(),
            spans: self
                .spans
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
        }
    }
}

/// An owned, ordered copy of a [`Recorder`]'s contents.
///
/// Snapshots decouple reporting from the thread-local store: `run_report`
/// takes one snapshot per pipeline run and renders JSON/Markdown from it
/// while the recorder keeps accumulating.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter totals, ordered by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms, ordered by metric name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Per-index series, ordered by metric name.
    pub series: BTreeMap<String, Vec<u64>>,
    /// Span timings, ordered by metric name.
    pub spans: BTreeMap<String, SpanStats>,
}

impl Snapshot {
    /// Current value of the counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// The series `name`, if present.
    pub fn series(&self, name: &str) -> Option<&[u64]> {
        self.series.get(name).map(|v| v.as_slice())
    }

    /// The span stats for `name`, if present.
    pub fn span(&self, name: &str) -> Option<SpanStats> {
        self.spans.get(name).copied()
    }

    /// True when no metric of any kind was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.series.is_empty()
            && self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = Recorder::new();
        r.counter_add("a.b", 2);
        r.counter_add("a.b", 3);
        assert_eq!(r.counter("a.b"), 5);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn series_grow_and_accumulate() {
        let mut r = Recorder::new();
        r.series_add("s", 2, 10);
        r.series_add("s", 0, 1);
        r.series_add("s", 2, 5); // replay of superstep 2 folds in
        assert_eq!(r.series("s"), Some(&[1, 0, 15][..]));
    }

    #[test]
    fn spans_fold_durations() {
        let mut r = Recorder::new();
        r.span_record("p", Duration::from_millis(10));
        r.span_record("p", Duration::from_millis(5));
        let s = r.span("p").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total, Duration::from_millis(15));
    }

    #[test]
    fn snapshot_is_decoupled_and_ordered() {
        let mut r = Recorder::new();
        r.counter_add("z", 1);
        r.counter_add("a", 1);
        r.record("h", 7);
        let snap = r.snapshot();
        r.counter_add("z", 100); // must not affect the snapshot
        assert_eq!(snap.counter("z"), 1);
        let names: Vec<_> = snap.counters.keys().cloned().collect();
        assert_eq!(names, vec!["a".to_string(), "z".to_string()]);
        assert_eq!(snap.histogram("h").unwrap().count(), 1);
        assert!(!snap.is_empty());
    }

    #[test]
    fn merge_folds_every_instrument() {
        let mut parent = Recorder::new();
        parent.counter_add("c", 1);
        parent.record("h", 4);
        parent.series_add("s", 0, 10);
        parent.span_record("p", Duration::from_millis(10));

        let mut worker = Recorder::new();
        worker.counter_add("c", 2);
        worker.counter_add("c2", 5);
        worker.record("h", 100);
        worker.series_add("s", 2, 7); // longer series than the parent's
        worker.span_record("p", Duration::from_millis(5));

        parent.merge(&worker);
        assert_eq!(parent.counter("c"), 3);
        assert_eq!(parent.counter("c2"), 5);
        let h = parent.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 100);
        assert_eq!(parent.series("s"), Some(&[10, 0, 7][..]));
        let p = parent.span("p").unwrap();
        assert_eq!(p.count, 2);
        assert_eq!(p.total, Duration::from_millis(15));
    }

    #[test]
    fn merge_order_is_immaterial() {
        let mut a = Recorder::new();
        a.counter_add("x", 1);
        a.series_add("s", 1, 2);
        let mut b = Recorder::new();
        b.counter_add("x", 4);
        b.series_add("s", 0, 3);

        let mut ab = Recorder::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = Recorder::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab.counter("x"), ba.counter("x"));
        assert_eq!(ab.series("s"), ba.series("s"));
    }

    #[test]
    fn reset_clears_everything() {
        let mut r = Recorder::new();
        r.counter_add("c", 1);
        r.record("h", 1);
        r.series_add("s", 0, 1);
        r.span_record("p", Duration::from_secs(1));
        r.reset();
        assert!(r.snapshot().is_empty());
    }
}
