//! `reach-obs` — feature-gated observability for the reachability workspace.
//!
//! The paper's evaluation (§V) judges distributed reachability labeling on
//! three axes: supersteps, communication volume, and response time. This
//! crate is the measurement substrate for those axes. It offers four
//! instruments, all keyed by dotted static names:
//!
//! * [`counter_add`] — monotonic totals (`engine.supersteps.first`, …),
//! * [`record`] — log₂-bucketed [`Histogram`] samples (label sizes,
//!   frontier sizes, intersection lengths),
//! * [`series_add`] — per-superstep accumulators (message bytes per
//!   logical superstep, replays folded into the original slot),
//! * [`span`] — RAII wall-clock timers for phase boundaries
//!   (filter/refine, checkpoint, recovery).
//!
//! # Zero overhead when disabled
//!
//! Recording is compiled out unless the `enabled` cargo feature is on.
//! Every entry point below is cfg-paired: with the feature it touches a
//! thread-local [`Recorder`]; without it, it is an empty `#[inline(always)]`
//! function (and [`Span`] is a zero-sized type), so instrumented call
//! sites optimize to nothing. Downstream crates expose an `obs` feature
//! that forwards to `reach-obs/enabled`, so a single
//! `cargo run -p reach-bench --features obs --bin run_report` flips
//! recording on across the whole workspace.
//!
//! The data structures ([`Recorder`], [`Histogram`], [`Snapshot`]) are
//! always compiled so their correctness tests run in default builds; only
//! the *global* entry points are gated.
//!
//! # Thread locality
//!
//! The global recorder is thread-local: metrics recorded on one thread are
//! invisible to others, so `cargo test`'s parallel test threads cannot
//! cross-contaminate. Single-threaded drivers (the simulated cluster and
//! the benches are single-threaded) see every metric they caused.
//!
//! # Example
//!
//! ```
//! reach_obs::reset();
//! {
//!     let _t = reach_obs::span("demo.phase");
//!     reach_obs::counter_add("demo.items", 3);
//!     reach_obs::record("demo.sizes", 17);
//!     reach_obs::series_add("demo.bytes", 0, 128);
//! }
//! if let Some(snap) = reach_obs::snapshot() {
//!     // Only reachable when built with `--features enabled`.
//!     assert_eq!(snap.counter("demo.items"), 3);
//!     assert_eq!(snap.span("demo.phase").unwrap().count, 1);
//! }
//! ```

#![warn(missing_docs)]

pub mod histogram;
pub mod json;
pub mod recorder;

pub use histogram::Histogram;
pub use json::snapshot_to_json;
pub use recorder::{Recorder, Snapshot, SpanStats};

/// True when the crate was built with the `enabled` feature, i.e. the
/// entry points below actually record.
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}

#[cfg(feature = "enabled")]
mod active {
    use super::recorder::{Recorder, Snapshot};
    use std::cell::RefCell;
    use std::time::Instant;

    thread_local! {
        static RECORDER: RefCell<Recorder> = RefCell::new(Recorder::new());
    }

    #[inline]
    pub fn with_recorder<R>(f: impl FnOnce(&mut Recorder) -> R) -> R {
        RECORDER.with(|r| f(&mut r.borrow_mut()))
    }

    /// Live span guard: measures from construction to drop.
    pub struct Span {
        name: &'static str,
        start: Instant,
    }

    impl Span {
        pub(super) fn new(name: &'static str) -> Self {
            Span {
                name,
                start: Instant::now(),
            }
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            let elapsed = self.start.elapsed();
            with_recorder(|r| r.span_record(self.name, elapsed));
        }
    }

    pub fn snapshot() -> Snapshot {
        with_recorder(|r| r.snapshot())
    }
}

// ---------------------------------------------------------------------------
// Recording entry points — real implementations (feature `enabled`).
// ---------------------------------------------------------------------------

/// Discards all metrics recorded on the current thread. No-op when disabled.
#[cfg(feature = "enabled")]
pub fn reset() {
    active::with_recorder(|r| r.reset());
}

/// Adds `delta` to the counter `name`. No-op when disabled.
#[cfg(feature = "enabled")]
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    active::with_recorder(|r| r.counter_add(name, delta));
}

/// Records `value` into the histogram `name`. No-op when disabled.
#[cfg(feature = "enabled")]
#[inline]
pub fn record(name: &'static str, value: u64) {
    active::with_recorder(|r| r.record(name, value));
}

/// Adds `delta` to slot `index` of the series `name` (index = logical
/// superstep; replays fold into their original slot). No-op when disabled.
#[cfg(feature = "enabled")]
#[inline]
pub fn series_add(name: &'static str, index: usize, delta: u64) {
    active::with_recorder(|r| r.series_add(name, index, delta));
}

/// A RAII phase timer returned by [`span`]: the wall-clock time between
/// construction and drop is folded into the span's [`SpanStats`].
///
/// When the `enabled` feature is off this is a zero-sized type with a
/// trivial drop, so `let _t = span("...")` costs nothing.
#[cfg(feature = "enabled")]
pub struct Span {
    _guard: active::Span,
}

/// Starts timing the span `name`; the guard records on drop.
#[cfg(feature = "enabled")]
#[inline]
pub fn span(name: &'static str) -> Span {
    Span {
        _guard: active::Span::new(name),
    }
}

/// A copy of every metric recorded on the current thread, or `None` when
/// the crate is built without the `enabled` feature.
#[cfg(feature = "enabled")]
pub fn snapshot() -> Option<Snapshot> {
    Some(active::snapshot())
}

// ---------------------------------------------------------------------------
// Recording entry points — empty stand-ins (default build).
// ---------------------------------------------------------------------------

/// Discards all metrics recorded on the current thread. No-op when disabled.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn reset() {}

/// Adds `delta` to the counter `name`. No-op when disabled.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn counter_add(_name: &'static str, _delta: u64) {}

/// Records `value` into the histogram `name`. No-op when disabled.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn record(_name: &'static str, _value: u64) {}

/// Adds `delta` to slot `index` of the series `name`. No-op when disabled.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn series_add(_name: &'static str, _index: usize, _delta: u64) {}

/// A RAII phase timer returned by [`span`]: the wall-clock time between
/// construction and drop is folded into the span's [`SpanStats`].
///
/// When the `enabled` feature is off this is a zero-sized type whose
/// `Drop` does nothing (the impl exists so drop semantics — and explicit
/// `drop(span)` calls at phase ends — are identical in both builds), so
/// `let _t = span("...")` costs nothing.
#[cfg(not(feature = "enabled"))]
pub struct Span;

#[cfg(not(feature = "enabled"))]
impl Drop for Span {
    #[inline(always)]
    fn drop(&mut self) {}
}

/// Starts timing the span `name`; the guard records on drop.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn span(_name: &'static str) -> Span {
    Span
}

/// A copy of every metric recorded on the current thread, or `None` when
/// the crate is built without the `enabled` feature.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn snapshot() -> Option<Snapshot> {
    None
}

#[cfg(test)]
mod tests {
    #[test]
    fn is_enabled_matches_feature() {
        assert_eq!(super::is_enabled(), cfg!(feature = "enabled"));
    }

    #[test]
    fn entry_points_are_callable_either_way() {
        super::reset();
        super::counter_add("t.counter", 1);
        super::record("t.hist", 42);
        super::series_add("t.series", 3, 9);
        {
            let _t = super::span("t.span");
        }
        match super::snapshot() {
            Some(snap) => {
                assert_eq!(snap.counter("t.counter"), 1);
                assert_eq!(snap.histogram("t.hist").unwrap().count(), 1);
                assert_eq!(snap.series("t.series"), Some(&[0, 0, 0, 9][..]));
                assert_eq!(snap.span("t.span").unwrap().count, 1);
            }
            None => assert!(!super::is_enabled()),
        }
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn reset_isolates_runs() {
        super::reset();
        super::counter_add("iso.c", 7);
        assert_eq!(super::snapshot().unwrap().counter("iso.c"), 7);
        super::reset();
        assert_eq!(super::snapshot().unwrap().counter("iso.c"), 0);
    }
}
