//! `reach-obs` — feature-gated observability for the reachability workspace.
//!
//! The paper's evaluation (§V) judges distributed reachability labeling on
//! three axes: supersteps, communication volume, and response time. This
//! crate is the measurement substrate for those axes. It offers four
//! instruments, all keyed by dotted static names:
//!
//! * [`counter_add`] — monotonic totals (`engine.supersteps.first`, …),
//! * [`record`] — log₂-bucketed [`Histogram`] samples (label sizes,
//!   frontier sizes, intersection lengths),
//! * [`series_add`] — per-superstep accumulators (message bytes per
//!   logical superstep, replays folded into the original slot),
//! * [`span`] — RAII wall-clock timers for phase boundaries
//!   (filter/refine, checkpoint, recovery).
//!
//! # Zero overhead when disabled
//!
//! Recording is compiled out unless the `enabled` cargo feature is on.
//! Every entry point below is cfg-paired: with the feature it touches a
//! thread-local [`Recorder`]; without it, it is an empty `#[inline(always)]`
//! function (and [`Span`] is a zero-sized type), so instrumented call
//! sites optimize to nothing. Downstream crates expose an `obs` feature
//! that forwards to `reach-obs/enabled`, so a single
//! `cargo run -p reach-bench --features obs --bin run_report` flips
//! recording on across the whole workspace.
//!
//! The data structures ([`Recorder`], [`Histogram`], [`Snapshot`]) are
//! always compiled so their correctness tests run in default builds; only
//! the *global* entry points are gated.
//!
//! # Thread locality
//!
//! The global recorder is thread-local: metrics recorded on one thread are
//! invisible to others, so `cargo test`'s parallel test threads cannot
//! cross-contaminate. Fork/join drivers (the threaded superstep engine)
//! bridge the gap explicitly: a worker wraps its slice of work in
//! [`scoped_worker`], which captures everything it records into a
//! detached, `Send`able [`WorkerMetrics`] bundle, and the coordinator
//! folds the bundles into its own recorder with [`merge_worker`] at the
//! barrier. Merging is commutative and associative, so the combined
//! metrics of any worker schedule are identical to a single-threaded
//! recording (span *totals* excepted — those sum real per-thread
//! wall-clock, which is the point of running concurrently).
//!
//! # Example
//!
//! ```
//! reach_obs::reset();
//! {
//!     let _t = reach_obs::span("demo.phase");
//!     reach_obs::counter_add("demo.items", 3);
//!     reach_obs::record("demo.sizes", 17);
//!     reach_obs::series_add("demo.bytes", 0, 128);
//! }
//! if let Some(snap) = reach_obs::snapshot() {
//!     // Only reachable when built with `--features enabled`.
//!     assert_eq!(snap.counter("demo.items"), 3);
//!     assert_eq!(snap.span("demo.phase").unwrap().count, 1);
//! }
//! ```

#![warn(missing_docs)]

pub mod histogram;
pub mod json;
pub mod recorder;

pub use histogram::Histogram;
pub use json::snapshot_to_json;
pub use recorder::{Recorder, Snapshot, SpanStats};

/// True when the crate was built with the `enabled` feature, i.e. the
/// entry points below actually record.
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}

#[cfg(feature = "enabled")]
mod active {
    use super::recorder::{Recorder, Snapshot};
    use std::cell::RefCell;
    use std::time::Instant;

    thread_local! {
        static RECORDER: RefCell<Recorder> = RefCell::new(Recorder::new());
    }

    #[inline]
    pub fn with_recorder<R>(f: impl FnOnce(&mut Recorder) -> R) -> R {
        RECORDER.with(|r| f(&mut r.borrow_mut()))
    }

    /// Live span guard: measures from construction to drop.
    pub struct Span {
        name: &'static str,
        start: Instant,
    }

    impl Span {
        pub(super) fn new(name: &'static str) -> Self {
            Span {
                name,
                start: Instant::now(),
            }
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            let elapsed = self.start.elapsed();
            with_recorder(|r| r.span_record(self.name, elapsed));
        }
    }

    pub fn snapshot() -> Snapshot {
        with_recorder(|r| r.snapshot())
    }

    pub fn scoped_worker<R>(f: impl FnOnce() -> R) -> (R, Recorder) {
        // Swap the thread-local store out so `f`'s metrics land in a fresh
        // recorder, then restore whatever the thread had recorded before.
        // This makes the call safe on any thread, not just pristine pool
        // threads.
        let saved = with_recorder(std::mem::take);
        let out = f();
        let captured = with_recorder(|r| std::mem::replace(r, saved));
        (out, captured)
    }
}

// ---------------------------------------------------------------------------
// Recording entry points — real implementations (feature `enabled`).
// ---------------------------------------------------------------------------

/// Discards all metrics recorded on the current thread. No-op when disabled.
#[cfg(feature = "enabled")]
pub fn reset() {
    active::with_recorder(|r| r.reset());
}

/// Adds `delta` to the counter `name`. No-op when disabled.
#[cfg(feature = "enabled")]
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    active::with_recorder(|r| r.counter_add(name, delta));
}

/// Records `value` into the histogram `name`. No-op when disabled.
#[cfg(feature = "enabled")]
#[inline]
pub fn record(name: &'static str, value: u64) {
    active::with_recorder(|r| r.record(name, value));
}

/// Adds `delta` to slot `index` of the series `name` (index = logical
/// superstep; replays fold into their original slot). No-op when disabled.
#[cfg(feature = "enabled")]
#[inline]
pub fn series_add(name: &'static str, index: usize, delta: u64) {
    active::with_recorder(|r| r.series_add(name, index, delta));
}

/// A RAII phase timer returned by [`span`]: the wall-clock time between
/// construction and drop is folded into the span's [`SpanStats`].
///
/// When the `enabled` feature is off this is a zero-sized type with a
/// trivial drop, so `let _t = span("...")` costs nothing.
#[cfg(feature = "enabled")]
pub struct Span {
    _guard: active::Span,
}

/// Starts timing the span `name`; the guard records on drop.
#[cfg(feature = "enabled")]
#[inline]
pub fn span(name: &'static str) -> Span {
    Span {
        _guard: active::Span::new(name),
    }
}

/// A copy of every metric recorded on the current thread, or `None` when
/// the crate is built without the `enabled` feature.
#[cfg(feature = "enabled")]
pub fn snapshot() -> Option<Snapshot> {
    Some(active::snapshot())
}

/// Metrics captured on a worker thread by [`scoped_worker`], to be folded
/// into another thread's recorder with [`merge_worker`].
///
/// The bundle is `Send`, so a fork/join executor (the threaded superstep
/// engine) can record on its workers and absorb everything into the
/// coordinator's thread-local store at the barrier. When the `enabled`
/// feature is off this is a zero-sized type.
#[cfg(feature = "enabled")]
pub struct WorkerMetrics(Recorder);

/// Runs `f`, capturing every metric it records into a detached
/// [`WorkerMetrics`] bundle instead of the calling thread's recorder.
///
/// Metrics the thread recorded *before* the call are preserved untouched.
/// Pass the bundle to [`merge_worker`] (typically on the parent thread) to
/// fold the captured counters, histograms, series, and span timings in —
/// merging is commutative, so the combined metrics of any fork/join
/// schedule equal a single-threaded recording.
#[cfg(feature = "enabled")]
pub fn scoped_worker<R>(f: impl FnOnce() -> R) -> (R, WorkerMetrics) {
    let (out, captured) = active::scoped_worker(f);
    (out, WorkerMetrics(captured))
}

/// Folds a [`scoped_worker`] capture into the current thread's recorder.
#[cfg(feature = "enabled")]
pub fn merge_worker(metrics: WorkerMetrics) {
    active::with_recorder(|r| r.merge(&metrics.0));
}

// ---------------------------------------------------------------------------
// Recording entry points — empty stand-ins (default build).
// ---------------------------------------------------------------------------

/// Discards all metrics recorded on the current thread. No-op when disabled.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn reset() {}

/// Adds `delta` to the counter `name`. No-op when disabled.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn counter_add(_name: &'static str, _delta: u64) {}

/// Records `value` into the histogram `name`. No-op when disabled.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn record(_name: &'static str, _value: u64) {}

/// Adds `delta` to slot `index` of the series `name`. No-op when disabled.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn series_add(_name: &'static str, _index: usize, _delta: u64) {}

/// A RAII phase timer returned by [`span`]: the wall-clock time between
/// construction and drop is folded into the span's [`SpanStats`].
///
/// When the `enabled` feature is off this is a zero-sized type whose
/// `Drop` does nothing (the impl exists so drop semantics — and explicit
/// `drop(span)` calls at phase ends — are identical in both builds), so
/// `let _t = span("...")` costs nothing.
#[cfg(not(feature = "enabled"))]
pub struct Span;

#[cfg(not(feature = "enabled"))]
impl Drop for Span {
    #[inline(always)]
    fn drop(&mut self) {}
}

/// Starts timing the span `name`; the guard records on drop.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn span(_name: &'static str) -> Span {
    Span
}

/// A copy of every metric recorded on the current thread, or `None` when
/// the crate is built without the `enabled` feature.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn snapshot() -> Option<Snapshot> {
    None
}

/// Metrics captured on a worker thread by [`scoped_worker`], to be folded
/// into another thread's recorder with [`merge_worker`].
///
/// The bundle is `Send`, so a fork/join executor (the threaded superstep
/// engine) can record on its workers and absorb everything into the
/// coordinator's thread-local store at the barrier. When the `enabled`
/// feature is off this is a zero-sized type.
#[cfg(not(feature = "enabled"))]
pub struct WorkerMetrics;

/// Runs `f`, capturing every metric it records into a detached
/// [`WorkerMetrics`] bundle instead of the calling thread's recorder.
/// No-op wrapper when disabled: `f` just runs.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn scoped_worker<R>(f: impl FnOnce() -> R) -> (R, WorkerMetrics) {
    (f(), WorkerMetrics)
}

/// Folds a [`scoped_worker`] capture into the current thread's recorder.
/// No-op when disabled.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn merge_worker(_metrics: WorkerMetrics) {}

#[cfg(test)]
mod tests {
    #[test]
    fn is_enabled_matches_feature() {
        assert_eq!(super::is_enabled(), cfg!(feature = "enabled"));
    }

    #[test]
    fn entry_points_are_callable_either_way() {
        super::reset();
        super::counter_add("t.counter", 1);
        super::record("t.hist", 42);
        super::series_add("t.series", 3, 9);
        {
            let _t = super::span("t.span");
        }
        match super::snapshot() {
            Some(snap) => {
                assert_eq!(snap.counter("t.counter"), 1);
                assert_eq!(snap.histogram("t.hist").unwrap().count(), 1);
                assert_eq!(snap.series("t.series"), Some(&[0, 0, 0, 9][..]));
                assert_eq!(snap.span("t.span").unwrap().count, 1);
            }
            None => assert!(!super::is_enabled()),
        }
    }

    #[test]
    fn scoped_worker_is_callable_either_way() {
        super::reset();
        super::counter_add("sw.outer", 1);
        let (value, metrics) = super::scoped_worker(|| {
            super::counter_add("sw.inner", 5);
            42
        });
        assert_eq!(value, 42);
        super::merge_worker(metrics);
        if let Some(snap) = super::snapshot() {
            // The capture must not have eaten the pre-existing metrics, and
            // the merge must have folded the worker's in.
            assert_eq!(snap.counter("sw.outer"), 1);
            assert_eq!(snap.counter("sw.inner"), 5);
        }
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn worker_capture_matches_inline_recording() {
        let record_all = || {
            super::counter_add("wk.c", 3);
            super::record("wk.h", 17);
            super::series_add("wk.s", 2, 9);
            drop(super::span("wk.p"));
        };
        super::reset();
        record_all();
        let inline = super::snapshot().unwrap();

        super::reset();
        let handle = std::thread::scope(|s| {
            s.spawn(|| {
                let ((), m) = super::scoped_worker(record_all);
                m
            })
            .join()
            .unwrap()
        });
        super::merge_worker(handle);
        let merged = super::snapshot().unwrap();
        assert_eq!(merged.counters, inline.counters);
        assert_eq!(merged.histograms, inline.histograms);
        assert_eq!(merged.series, inline.series);
        // Span totals are wall-clock, so only the counts are comparable.
        assert_eq!(
            merged.span("wk.p").unwrap().count,
            inline.span("wk.p").unwrap().count
        );
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn reset_isolates_runs() {
        super::reset();
        super::counter_add("iso.c", 7);
        assert_eq!(super::snapshot().unwrap().counter("iso.c"), 7);
        super::reset();
        assert_eq!(super::snapshot().unwrap().counter("iso.c"), 0);
    }
}
