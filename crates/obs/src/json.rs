//! Minimal hand-rolled JSON emission for [`Snapshot`]s.
//!
//! The workspace has no serde (no registry access), so the run-report JSON
//! is built by hand here. Output is deterministic: every map in a
//! [`Snapshot`] is a `BTreeMap`, so keys serialize in sorted order.

use crate::histogram::Histogram;
use crate::recorder::{Snapshot, SpanStats};

/// Escapes `s` for use inside a JSON string literal (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_histogram(out: &mut String, h: &Histogram) {
    out.push_str(&format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"buckets\":[",
        h.count(),
        h.sum(),
        h.min(),
        h.max(),
        h.mean()
    ));
    for (i, (lo, hi, count)) in h.nonzero_buckets().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"lo\":{lo},\"hi\":{hi},\"count\":{count}}}"));
    }
    out.push_str("]}");
}

fn push_span(out: &mut String, s: &SpanStats) {
    out.push_str(&format!(
        "{{\"count\":{},\"total_seconds\":{:.6}}}",
        s.count,
        s.total.as_secs_f64()
    ));
}

/// Renders `snapshot` as a pretty-stable, single-line JSON object with
/// top-level keys `counters`, `histograms`, `series`, and `spans`.
pub fn snapshot_to_json(snapshot: &Snapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", escape(name), value));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":", escape(name)));
        push_histogram(&mut out, h);
    }
    out.push_str("},\"series\":{");
    for (i, (name, values)) in snapshot.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":[", escape(name)));
        for (j, v) in values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&v.to_string());
        }
        out.push(']');
    }
    out.push_str("},\"spans\":{");
    for (i, (name, s)) in snapshot.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":", escape(name)));
        push_span(&mut out, s);
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use std::time::Duration;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn snapshot_serializes_all_sections() {
        let mut r = Recorder::new();
        r.counter_add("c.one", 3);
        r.record("h.sizes", 5);
        r.series_add("s.bytes", 1, 7);
        r.span_record("p.phase", Duration::from_millis(1500));
        let json = snapshot_to_json(&r.snapshot());
        assert!(json.contains("\"c.one\":3"), "{json}");
        assert!(
            json.contains("\"h.sizes\":{\"count\":1,\"sum\":5"),
            "{json}"
        );
        assert!(json.contains("\"s.bytes\":[0,7]"), "{json}");
        assert!(
            json.contains("\"p.phase\":{\"count\":1,\"total_seconds\":1.500000"),
            "{json}"
        );
        // Must be syntactically balanced (cheap sanity check without a parser).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn empty_snapshot_is_valid_json_skeleton() {
        let json = snapshot_to_json(&Recorder::new().snapshot());
        assert_eq!(
            json,
            "{\"counters\":{},\"histograms\":{},\"series\":{},\"spans\":{}}"
        );
    }
}
