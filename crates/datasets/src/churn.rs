//! Deterministic edge-churn streams for the ingest pipeline.
//!
//! The live-update benchmarks and the `reach-ingest` tests need
//! reproducible streams of *effective* edge events: every insert names an
//! edge that is absent at that point in the stream, every removal an edge
//! that is present. (No-op events would silently deflate per-event cost
//! measurements — the repair loop skips them — so the generator tracks
//! the live edge set and never emits one.)
//!
//! A stream is a pure function of `(graph, config)`, like the query
//! workloads in [`mod@crate::workload`]: replaying the same stream against
//! the same base graph always visits the same sequence of edge sets,
//! which is what lets the ingest correctness gate compare an
//! incrementally-repaired index against a from-scratch rebuild of the
//! final edge set.
//!
//! Streams can also *grow* the graph: a configurable fraction of inserts
//! attaches a brand-new vertex id (`n`, `n+1`, ... in first-seen order),
//! exercising the dynamic index's capacity-growth path end to end.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reach_graph::{DiGraph, EdgeEvent, VertexId};

/// Shape of a churn stream. All fields have sensible [`Default`]s.
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    /// Number of events to emit.
    pub events: usize,
    /// Probability that an event is an insert (the rest are removals of a
    /// random live edge). Removals fall back to inserts while no removable
    /// edge exists, so sparse starts stay effective.
    pub insert_fraction: f64,
    /// Fraction of *inserts* that attach a previously-unseen vertex id
    /// (new ids are allocated densely from `g.num_vertices()` upward).
    /// `0.0` keeps the vertex set fixed.
    pub growth_fraction: f64,
    /// RNG seed; same seed, same stream.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            events: 1_000,
            insert_fraction: 0.6,
            growth_fraction: 0.0,
            seed: 42,
        }
    }
}

/// Generates a churn stream over `g`'s edge set. Every event is effective
/// when applied in order starting from `g`: inserts are absent, removals
/// are present. Removals only target edges that are live *at that point*
/// (original edges may be removed; inserted edges may be removed again).
///
/// Events never name self-loops — a self-loop cannot change reachability,
/// so it would be repair work with no observable effect.
pub fn churn_stream(g: &DiGraph, cfg: &ChurnConfig) -> Vec<EdgeEvent> {
    assert!(
        (0.0..=1.0).contains(&cfg.insert_fraction),
        "insert_fraction must be in [0, 1]"
    );
    assert!(
        (0.0..=1.0).contains(&cfg.growth_fraction),
        "growth_fraction must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Live edge set: a dense list for O(1) uniform removal picks plus a
    // position map for O(1) membership and deletion.
    let mut live: Vec<(VertexId, VertexId)> = g.edges().filter(|(u, v)| u != v).collect();
    let mut pos: HashMap<(VertexId, VertexId), usize> =
        live.iter().enumerate().map(|(i, &e)| (e, i)).collect();
    let mut next_vertex = g.num_vertices() as VertexId;
    let mut out = Vec::with_capacity(cfg.events);

    while out.len() < cfg.events {
        let want_remove = !live.is_empty() && !rng.gen_bool(cfg.insert_fraction);
        if want_remove {
            let at = rng.gen_range(0..live.len());
            let (u, v) = live.swap_remove(at);
            pos.remove(&(u, v));
            if let Some(&moved) = live.get(at) {
                pos.insert(moved, at);
            }
            out.push(EdgeEvent::remove(u, v));
            continue;
        }
        // Insert: either attach a fresh vertex or draw a non-live pair
        // among the known vertices. `next_vertex` counts vertices the
        // stream has already introduced, so growth composes.
        let (u, v) = if next_vertex > 0 && rng.gen_bool(cfg.growth_fraction) {
            let old = rng.gen_range(0..next_vertex);
            let fresh = next_vertex;
            next_vertex += 1;
            // Fresh vertices get in- and out-edges alternately, so growth
            // extends the reachable structure in both directions.
            if rng.gen_bool(0.5) {
                (old, fresh)
            } else {
                (fresh, old)
            }
        } else {
            // Rejection-sample a currently-absent non-loop pair. The live
            // set is far below n² in every realistic config, so a few
            // draws suffice; the attempt bound keeps pathological configs
            // (near-complete graphs) from spinning.
            let mut pair = None;
            for _ in 0..64 {
                let c = (rng.gen_range(0..next_vertex), rng.gen_range(0..next_vertex));
                if c.0 != c.1 && !pos.contains_key(&c) {
                    pair = Some(c);
                    break;
                }
            }
            match pair {
                Some(c) => c,
                // Saturated graph: fall back to removing instead.
                None if !live.is_empty() => {
                    let at = rng.gen_range(0..live.len());
                    let (u, v) = live.swap_remove(at);
                    pos.remove(&(u, v));
                    if let Some(&moved) = live.get(at) {
                        pos.insert(moved, at);
                    }
                    out.push(EdgeEvent::remove(u, v));
                    continue;
                }
                None => panic!("cannot generate churn over an empty saturated graph"),
            }
        };
        pos.insert((u, v), live.len());
        live.push((u, v));
        out.push(EdgeEvent::insert(u, v));
    }
    out
}

/// The edge set obtained by applying `events` to `g` — the ground truth
/// the incremental pipeline's final index must match. Returns the final
/// vertex count and the surviving edges. Panics on an ineffective event,
/// making it double as a stream validity check in tests.
pub fn final_edge_set(g: &DiGraph, events: &[EdgeEvent]) -> (usize, Vec<(VertexId, VertexId)>) {
    let mut live: HashMap<(VertexId, VertexId), ()> = g.edges().map(|e| (e, ())).collect();
    let mut n = g.num_vertices();
    for ev in events {
        match ev.op {
            reach_graph::EdgeOp::Insert => {
                assert!(
                    live.insert((ev.u, ev.v), ()).is_none(),
                    "ineffective insert {ev}"
                );
                n = n.max(ev.u.max(ev.v) as usize + 1);
            }
            reach_graph::EdgeOp::Remove => {
                assert!(
                    live.remove(&(ev.u, ev.v)).is_some(),
                    "ineffective remove {ev}"
                );
            }
        }
    }
    let mut edges: Vec<_> = live.into_keys().collect();
    edges.sort_unstable();
    (n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::EdgeOp;

    fn test_graph() -> DiGraph {
        crate::by_name("WEBW")
            .map(|mut s| {
                s.vertices = 300;
                s.edges = 900;
                s.generate()
            })
            .unwrap()
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let g = test_graph();
        let cfg = ChurnConfig {
            events: 500,
            growth_fraction: 0.05,
            ..ChurnConfig::default()
        };
        let a = churn_stream(&g, &cfg);
        let b = churn_stream(&g, &cfg);
        assert_eq!(a, b);
        let c = churn_stream(&g, &ChurnConfig { seed: 43, ..cfg });
        assert_ne!(a, c, "stream must vary with the seed");
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn every_event_is_effective() {
        let g = test_graph();
        for seed in 0..5 {
            let events = churn_stream(
                &g,
                &ChurnConfig {
                    events: 800,
                    insert_fraction: 0.5,
                    growth_fraction: 0.1,
                    seed,
                },
            );
            // final_edge_set panics on any ineffective event.
            let (n, edges) = final_edge_set(&g, &events);
            assert!(n >= g.num_vertices());
            assert!(!edges.is_empty());
        }
    }

    #[test]
    fn growth_fraction_zero_keeps_the_vertex_set() {
        let g = test_graph();
        let events = churn_stream(&g, &ChurnConfig::default());
        let n = g.num_vertices() as VertexId;
        assert!(events.iter().all(|e| e.u < n && e.v < n));
    }

    #[test]
    fn growth_fraction_introduces_dense_new_ids() {
        let g = test_graph();
        let events = churn_stream(
            &g,
            &ChurnConfig {
                events: 1_000,
                growth_fraction: 0.2,
                ..ChurnConfig::default()
            },
        );
        let n = g.num_vertices() as VertexId;
        let mut fresh: Vec<VertexId> = events
            .iter()
            .flat_map(|e| [e.u, e.v])
            .filter(|&v| v >= n)
            .collect();
        fresh.sort_unstable();
        fresh.dedup();
        assert!(!fresh.is_empty(), "growth must introduce new ids");
        // Ids are allocated densely in first-seen order: n, n+1, ...
        assert_eq!(fresh, (n..n + fresh.len() as VertexId).collect::<Vec<_>>());
    }

    #[test]
    fn insert_fraction_is_roughly_honored() {
        let g = test_graph();
        let events = churn_stream(
            &g,
            &ChurnConfig {
                events: 2_000,
                insert_fraction: 0.7,
                ..ChurnConfig::default()
            },
        );
        let inserts = events.iter().filter(|e| e.op == EdgeOp::Insert).count();
        let frac = inserts as f64 / events.len() as f64;
        assert!((0.6..=0.8).contains(&frac), "insert fraction {frac}");
    }

    #[test]
    fn removals_can_hit_streamed_inserts() {
        // With heavy removal pressure the stream must eventually remove
        // edges it inserted itself (the live set shrinks below the base).
        let g = DiGraph::from_edges(10, vec![(0, 1)]);
        let events = churn_stream(
            &g,
            &ChurnConfig {
                events: 400,
                insert_fraction: 0.5,
                ..ChurnConfig::default()
            },
        );
        let base: Vec<(VertexId, VertexId)> = g.edges().collect();
        assert!(events
            .iter()
            .any(|e| e.op == EdgeOp::Remove && !base.contains(&(e.u, e.v))));
    }

    #[test]
    fn no_self_loops_emitted() {
        let g = test_graph();
        let events = churn_stream(
            &g,
            &ChurnConfig {
                events: 1_000,
                growth_fraction: 0.1,
                ..ChurnConfig::default()
            },
        );
        assert!(events.iter().all(|e| e.u != e.v));
    }
}
