//! The graph generators behind the Table V stand-ins.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reach_graph::{DiGraph, VertexId};

/// R-MAT / Kronecker generator (the Graph500 reference workload).
///
/// Each edge picks a quadrant of the adjacency matrix recursively with
/// probabilities `(a, b, c, d)`; skewed parameters produce the heavy-tailed
/// degree distributions of web and social graphs. `n` is rounded up to the
/// next power of two internally; endpoints are folded back below `n`.
pub fn rmat(n: usize, m: usize, a: f64, b: f64, c: f64, d: f64, seed: u64) -> DiGraph {
    assert!(n > 0 || m == 0);
    assert!(
        (a + b + c + d - 1.0).abs() < 1e-9,
        "quadrants must sum to 1"
    );
    let levels = (usize::BITS - (n.max(2) - 1).leading_zeros()) as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..levels {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < a {
                // top-left: no bits set
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        edges.push(((u % n) as VertexId, (v % n) as VertexId));
    }
    DiGraph::from_edges(n, edges)
}

/// A power-law web crawl: skewed R-MAT quadrants (hubs and authorities)
/// overlaid with a layered backbone that recreates the **deep reachability
/// structure** of real crawls (site hierarchies many hops tall). Pure
/// R-MAT at laptop scale collapses to near-trivial label sets (average
/// label ≈ 1), while real web graphs carry averages in the tens — the
/// overlay restores that regime. Cyclic like real crawls (the R-MAT part
/// supplies the cycles).
pub fn web(n: usize, m: usize, seed: u64) -> DiGraph {
    hierarchy(n, m, 0.85, seed)
}

/// The deep-hierarchy generator behind the web/knowledge/social stand-ins:
/// a `depth_frac` fraction of the edges forms a preferential-attachment
/// hierarchy ([`citation_dag`]-style: hubs with huge in-degree but small
/// out-reach, plus recent-window chains), the rest is a skewed cyclic
/// R-MAT overlay. The hierarchy is what gives the graph *reachability
/// depth*: its hubs absorb paths without covering them, so label sets grow
/// into the tens — the regime the paper's medium graphs occupy (their TOL
/// indexes average ~30 labels per vertex). `depth_frac = 0` degenerates to
/// plain R-MAT (shallow, hub-covered).
pub fn hierarchy(n: usize, m: usize, depth_frac: f64, seed: u64) -> DiGraph {
    assert!((0.0..=1.0).contains(&depth_frac));
    let m_deep = (m as f64 * depth_frac) as usize;
    // Cyclicity must stay *local*: a global random (R-MAT) up-edge closes
    // giant cycles through the hierarchy, merging most of the graph into
    // one SCC whose top-order vertex then covers everything — collapsing
    // label sizes to ~1 and destroying the regime we are reproducing.
    // Up-window edges (u -> u + δ, δ ≤ 4) close only short local cycles
    // against the hierarchy's down-window chains.
    let m_up = ((m as f64 * 0.05) as usize).min(m - m_deep);
    let m_rmat = m - m_deep - m_up;
    let mut edges: Vec<(VertexId, VertexId)> = citation_dag(n, m_deep, seed).edges().collect();
    edges.extend(window_chain(n, m_up, 4, seed ^ 0x0bc1));
    if m_rmat > 0 {
        edges.extend(rmat(n, m_rmat, 0.57, 0.19, 0.19, 0.05, seed ^ 0xC1C).edges());
    }
    DiGraph::from_edges(n, edges)
}

/// Deep-chain overlay: edges `u -> u + δ` for small random `δ`, creating
/// the long directory-style paths that give real crawls their reachability
/// depth. Acyclic on its own (always forward in id space).
pub fn window_chain(n: usize, m: usize, window: u32, seed: u64) -> Vec<(VertexId, VertexId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    if n < 2 {
        return edges;
    }
    for _ in 0..m {
        let u = rng.gen_range(0..n - 1) as VertexId;
        let delta = rng.gen_range(1..=window).min((n - 1) as u32 - u);
        edges.push((u, u + delta.max(1)));
    }
    edges
}

/// A social network: moderately skewed R-MAT plus reciprocation — each
/// generated edge is mirrored with probability `reciprocity`, creating the
/// dense 2-cycles of follower graphs.
pub fn social(n: usize, m: usize, reciprocity: f64, seed: u64) -> DiGraph {
    social_with_depth(n, m, reciprocity, 0.7, seed)
}

/// Social generator with an explicit depth fraction: `depth_frac` of the
/// edges form the follower hierarchy (celebrities = absorbing hubs, long
/// influence chains), the rest is R-MAT whose edges are mirrored with
/// probability `reciprocity` (mutual follows, creating the dense 2-cycles
/// of real follower graphs).
pub fn social_with_depth(
    n: usize,
    m: usize,
    reciprocity: f64,
    depth_frac: f64,
    seed: u64,
) -> DiGraph {
    assert!((0.0..=1.0).contains(&depth_frac));
    let m_deep = (m as f64 * depth_frac) as usize;
    // Local reciprocated cycles instead of global ones — see `hierarchy`
    // for why global up-edges would collapse the label sizes.
    let m_up = ((m as f64 * 0.05) as usize).min(m - m_deep);
    let m_rmat = m - m_deep - m_up;
    let mut edges: Vec<(VertexId, VertexId)> = citation_dag(n, m_deep, seed).edges().collect();
    edges.extend(window_chain(n, m_up, 4, seed ^ 0x0bc1));
    if m_rmat > 0 {
        let base = rmat(n, m_rmat, 0.45, 0.22, 0.22, 0.11, seed ^ 0xD1CE);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF0110);
        for (u, v) in base.edges() {
            edges.push((u, v));
            if rng.gen_bool(reciprocity) {
                edges.push((v, u));
            }
        }
    }
    DiGraph::from_edges(n, edges)
}

/// A citation network: vertices arrive in id order and cite earlier
/// vertices with preferential attachment — a DAG by construction, with the
/// in-degree skew of real citation graphs.
pub fn citation_dag(n: usize, m: usize, seed: u64) -> DiGraph {
    assert!(n > 0 || m == 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(m);
    // Preferential attachment via the repeated-endpoints trick: sampling a
    // uniform element of `targets` is sampling ∝ (in-degree + 1). A
    // fraction of citations instead go to *recent* papers (a small id
    // window), recreating the long citation chains that give real citation
    // networks their reachability depth.
    let mut targets: Vec<VertexId> = Vec::with_capacity(m + n);
    targets.push(0);
    let per_vertex = (m as f64 / n.max(1) as f64).max(1.0);
    for v in 1..n as VertexId {
        let cites = ((per_vertex * (0.5 + rng.gen::<f64>())) as usize).max(1);
        for _ in 0..cites {
            if edges.len() >= m {
                break;
            }
            let t = if rng.gen_bool(0.4) {
                // Recent-window citation: v cites one of its 4 predecessors.
                v - rng.gen_range(1..=v.min(4))
            } else {
                targets[rng.gen_range(0..targets.len())]
            };
            if t != v {
                edges.push((v, t));
                targets.push(t);
            }
        }
        targets.push(v);
    }
    // Citations point backward in time (v cites t < v), so cycles are
    // impossible.
    debug_assert!(edges.iter().all(|&(u, v)| v < u));
    DiGraph::from_edges(n, edges)
}

/// A layered ontology DAG (the Go-uniprot stand-in): vertices are split
/// into `layers` ranks; edges go from a layer to a strictly deeper one,
/// preferring the immediate next layer.
pub fn layered_dag(n: usize, m: usize, layers: usize, seed: u64) -> DiGraph {
    assert!(layers >= 2 && n >= layers);
    let mut rng = StdRng::seed_from_u64(seed);
    let layer_of = |v: usize| v * layers / n; // contiguous blocks of ids
    let layer_start = |l: usize| (l * n).div_ceil(layers);
    let layer_end = |l: usize| ((l + 1) * n).div_ceil(layers);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = rng.gen_range(0..n);
        let lu = layer_of(u);
        if lu + 1 >= layers {
            continue;
        }
        // 80% of edges go to the next layer, the rest skip deeper.
        let lv = if lu + 2 >= layers || rng.gen_bool(0.8) {
            lu + 1
        } else {
            rng.gen_range(lu + 2..layers)
        };
        let v = rng.gen_range(layer_start(lv)..layer_end(lv));
        edges.push((u as VertexId, v as VertexId));
    }
    DiGraph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::scc::tarjan_scc;
    use reach_graph::stats::GraphStats;

    #[test]
    fn rmat_respects_bounds_and_seed() {
        let g = rmat(1000, 5000, 0.57, 0.19, 0.19, 0.05, 1);
        assert_eq!(g.num_vertices(), 1000);
        assert!(g.num_edges() <= 5000);
        assert!(g.num_edges() > 4000, "few duplicates at this density");
        let h = rmat(1000, 5000, 0.57, 0.19, 0.19, 0.05, 1);
        assert_eq!(g.edges().collect::<Vec<_>>(), h.edges().collect::<Vec<_>>());
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(4096, 40_000, 0.57, 0.19, 0.19, 0.05, 3);
        let s = GraphStats::compute(&g);
        assert!(
            s.max_out_degree > 100,
            "hub expected, got {}",
            s.max_out_degree
        );
    }

    #[test]
    #[should_panic(expected = "quadrants must sum to 1")]
    fn rmat_rejects_bad_quadrants() {
        rmat(10, 10, 0.5, 0.5, 0.5, 0.5, 1);
    }

    #[test]
    fn social_has_reciprocated_pairs() {
        let g = social(2000, 10_000, 0.4, 5);
        let recip = g
            .edges()
            .filter(|&(u, v)| u < v && g.has_edge(v, u))
            .count();
        assert!(recip > 100, "expected many 2-cycles, got {recip}");
    }

    #[test]
    fn citation_dag_is_acyclic_and_skewed() {
        let g = citation_dag(5000, 25_000, 9);
        assert!(tarjan_scc(&g).is_acyclic());
        let s = GraphStats::compute(&g);
        assert!(s.max_in_degree > 50, "preferential attachment hub");
    }

    #[test]
    fn layered_dag_is_acyclic_with_depth() {
        let g = layered_dag(3000, 15_000, 10, 2);
        assert!(tarjan_scc(&g).is_acyclic());
        // Depth: some vertex in layer 0 reaches a vertex in the last layer.
        let des = reach_graph::traverse::descendants(&g, 0);
        assert!(des.len() > 1);
    }

    #[test]
    fn generators_tolerate_tiny_sizes() {
        assert!(rmat(2, 4, 0.25, 0.25, 0.25, 0.25, 1).num_vertices() == 2);
        assert!(citation_dag(2, 2, 1).num_vertices() == 2);
        assert!(layered_dag(4, 4, 2, 1).num_vertices() == 4);
    }
}
