//! Deterministic query workloads for the serving layer.
//!
//! The serve bench (`crates/bench/src/bin/serve_bench.rs`) and the
//! service determinism tests drive `reach-serve` with reproducible query
//! streams. Three mixes model the traffic shapes a production oracle
//! sees:
//!
//! * [`QueryMix::Uniform`] — independent uniform `(s, t)` pairs. On
//!   sparse graphs almost every answer is *false*, which is the
//!   worst case for a result cache and the common case for random
//!   pair probes.
//! * [`QueryMix::PositiveBiased`] — a tunable fraction of queries is
//!   drawn as a *sampled reachable pair*: pick a source from a small
//!   seeded pool, then a target uniformly from its descendant set. This
//!   exercises the positive (`true`) answer path, whose label scans run
//!   to the first common hub instead of to exhaustion.
//! * [`QueryMix::ZipfHotSources`] — sources follow a Zipf law over a
//!   seeded permutation of the vertices (so the hot set is arbitrary,
//!   not the low ids), targets are uniform. Skewed hot keys are what
//!   makes result caches and shard balance interesting.
//!
//! Every mix is a pure function of `(graph, mix, count, seed)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reach_graph::{traverse, DiGraph, VertexId};

/// The shape of a query stream. See the module docs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueryMix {
    /// Independent uniform `(s, t)` pairs.
    Uniform,
    /// With probability `positive_fraction`, a guaranteed-reachable pair
    /// sampled from the descendant sets of `source_pool` seeded source
    /// vertices; otherwise a uniform pair.
    PositiveBiased {
        /// Probability of drawing a sampled reachable pair.
        positive_fraction: f64,
        /// Number of distinct pool sources whose descendant sets supply
        /// the positive pairs.
        source_pool: usize,
    },
    /// Sources Zipf-distributed with the given exponent over a seeded
    /// vertex permutation; targets uniform.
    ZipfHotSources {
        /// Zipf exponent (`1.0` = classic harmonic skew; larger = hotter
        /// hot set).
        exponent: f64,
    },
    /// With probability `negative_fraction`, a guaranteed-*unreachable*
    /// pair: a pool source plus a target rejection-sampled out of its
    /// descendant set; otherwise a uniform pair. This is the stress mix
    /// for negative-query short-circuits (the Bloom pre-filter in
    /// compressed indexes): label scans run to exhaustion, never to an
    /// early common hub.
    NegativeBiased {
        /// Probability of drawing a sampled unreachable pair.
        negative_fraction: f64,
        /// Number of distinct pool sources whose descendant sets drive
        /// the rejection sampling.
        source_pool: usize,
    },
}

/// The named mixes the serve bench sweeps.
pub fn standard_mixes() -> Vec<(&'static str, QueryMix)> {
    vec![
        ("uniform", QueryMix::Uniform),
        (
            "positive",
            QueryMix::PositiveBiased {
                positive_fraction: 0.8,
                source_pool: 32,
            },
        ),
        ("zipf", QueryMix::ZipfHotSources { exponent: 1.1 }),
    ]
}

/// The negative-dominated mix used by the compression bench and the
/// Bloom pre-filter tests. Kept out of [`standard_mixes`] so existing
/// bench sweeps and their recorded baselines are unchanged.
pub fn negative_mix() -> (&'static str, QueryMix) {
    (
        "negative",
        QueryMix::NegativeBiased {
            negative_fraction: 0.9,
            source_pool: 32,
        },
    )
}

/// Generates `count` queries over `g`'s vertices — deterministic in
/// `(g, mix, count, seed)`. Returns an empty workload for an empty graph.
pub fn workload(g: &DiGraph, mix: QueryMix, count: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    let n = g.num_vertices() as VertexId;
    if n == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    match mix {
        QueryMix::Uniform => (0..count)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect(),
        QueryMix::PositiveBiased {
            positive_fraction,
            source_pool,
        } => {
            assert!(
                (0.0..=1.0).contains(&positive_fraction),
                "positive_fraction must be in [0, 1]"
            );
            // Pool of sampled sources with their descendant sets, computed
            // once — positives are then O(1) draws from the pool.
            let pool: Vec<(VertexId, Vec<VertexId>)> = (0..source_pool.max(1))
                .map(|_| {
                    let s = rng.gen_range(0..n);
                    (s, traverse::descendants(g, s))
                })
                .collect();
            (0..count)
                .map(|_| {
                    if rng.gen_bool(positive_fraction) {
                        let (s, des) = &pool[rng.gen_range(0..pool.len())];
                        (*s, des[rng.gen_range(0..des.len())])
                    } else {
                        (rng.gen_range(0..n), rng.gen_range(0..n))
                    }
                })
                .collect()
        }
        QueryMix::NegativeBiased {
            negative_fraction,
            source_pool,
        } => {
            assert!(
                (0.0..=1.0).contains(&negative_fraction),
                "negative_fraction must be in [0, 1]"
            );
            // Pool of sampled sources with their descendant sets (as hash
            // sets, for O(1) rejection tests), computed once.
            let pool: Vec<(VertexId, std::collections::HashSet<VertexId>)> = (0..source_pool
                .max(1))
                .map(|_| {
                    let s = rng.gen_range(0..n);
                    (s, traverse::descendants(g, s).into_iter().collect())
                })
                .collect();
            (0..count)
                .map(|_| {
                    if rng.gen_bool(negative_fraction) {
                        let (s, des) = &pool[rng.gen_range(0..pool.len())];
                        // Rejection-sample a target outside the descendant
                        // set. If the source reaches (almost) everything the
                        // retry cap keeps us deterministic and terminating —
                        // the final draw is used as-is, uniform.
                        let mut t = rng.gen_range(0..n);
                        for _ in 0..64 {
                            if !des.contains(&t) {
                                break;
                            }
                            t = rng.gen_range(0..n);
                        }
                        (*s, t)
                    } else {
                        (rng.gen_range(0..n), rng.gen_range(0..n))
                    }
                })
                .collect()
        }
        QueryMix::ZipfHotSources { exponent } => {
            assert!(exponent > 0.0, "Zipf exponent must be positive");
            // Rank-to-vertex map: a seeded shuffle so the hot vertices are
            // arbitrary rather than the low ids.
            let mut by_rank: Vec<VertexId> = (0..n).collect();
            rand::seq::SliceRandom::shuffle(&mut by_rank[..], &mut rng);
            // Cumulative Zipf weights; inverse-CDF sampling by binary search.
            let mut cumulative = Vec::with_capacity(n as usize);
            let mut total = 0.0f64;
            for rank in 0..n as usize {
                total += 1.0 / ((rank + 1) as f64).powf(exponent);
                cumulative.push(total);
            }
            (0..count)
                .map(|_| {
                    let u: f64 = rng.gen::<f64>() * total;
                    let rank = cumulative.partition_point(|&c| c <= u).min(n as usize - 1);
                    (by_rank[rank], rng.gen_range(0..n))
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::TransitiveClosure;

    fn test_graph() -> DiGraph {
        crate::by_name("WEBW")
            .map(|mut s| {
                s.vertices = 400;
                s.edges = 1200;
                s.generate()
            })
            .unwrap()
    }

    #[test]
    fn workloads_are_deterministic_per_seed_and_mix() {
        let g = test_graph();
        for (_, mix) in standard_mixes() {
            let a = workload(&g, mix, 500, 9);
            let b = workload(&g, mix, 500, 9);
            let c = workload(&g, mix, 500, 10);
            assert_eq!(a, b);
            assert_ne!(a, c, "{mix:?} must vary with the seed");
            assert_eq!(a.len(), 500);
            let n = g.num_vertices() as VertexId;
            assert!(a.iter().all(|&(s, t)| s < n && t < n));
        }
    }

    #[test]
    fn positive_bias_actually_biases_toward_reachable_pairs() {
        let g = test_graph();
        let tc = TransitiveClosure::compute(&g);
        let reach_rate = |w: &[(VertexId, VertexId)]| {
            w.iter().filter(|&&(s, t)| tc.reaches(s, t)).count() as f64 / w.len() as f64
        };
        let uniform = workload(&g, QueryMix::Uniform, 2000, 3);
        let biased = workload(
            &g,
            QueryMix::PositiveBiased {
                positive_fraction: 0.8,
                source_pool: 16,
            },
            2000,
            3,
        );
        // Sampled pairs are reachable by construction, so the biased mix
        // must answer true at (roughly) its positive fraction or above.
        assert!(reach_rate(&biased) >= 0.75, "rate {}", reach_rate(&biased));
        assert!(reach_rate(&biased) > reach_rate(&uniform) + 0.3);
    }

    #[test]
    fn negative_bias_actually_biases_toward_unreachable_pairs() {
        let g = test_graph();
        let tc = TransitiveClosure::compute(&g);
        let (_, mix) = negative_mix();
        let w = workload(&g, mix, 2000, 7);
        assert_eq!(w.len(), 2000);
        let unreachable = w.iter().filter(|&&(s, t)| !tc.reaches(s, t)).count() as f64;
        // Sampled pairs are unreachable by construction (modulo the retry
        // cap); uniform fill on a sparse graph is mostly unreachable too.
        assert!(
            unreachable / w.len() as f64 >= 0.85,
            "unreachable rate {}",
            unreachable / w.len() as f64
        );
        // Deterministic per seed, varies with it.
        assert_eq!(w, workload(&g, mix, 2000, 7));
        assert_ne!(w, workload(&g, mix, 2000, 8));
    }

    #[test]
    fn zipf_sources_are_skewed_and_not_the_low_ids() {
        let g = test_graph();
        let w = workload(&g, QueryMix::ZipfHotSources { exponent: 1.1 }, 4000, 5);
        let mut freq = std::collections::HashMap::new();
        for &(s, _) in &w {
            *freq.entry(s).or_insert(0usize) += 1;
        }
        let hottest = freq.values().max().copied().unwrap();
        // Uniform sources over 400 vertices would put ~10 queries on each;
        // the Zipf head must be far above that.
        assert!(hottest > 200, "hottest source only {hottest}/4000");
        // The permutation decouples heat from vertex id: the hottest
        // vertex is the same under the same seed...
        let w2 = workload(&g, QueryMix::ZipfHotSources { exponent: 1.1 }, 4000, 5);
        assert_eq!(w, w2);
        // ...and moves when the seed changes.
        let w3 = workload(&g, QueryMix::ZipfHotSources { exponent: 1.1 }, 4000, 6);
        let hottest_v = |w: &[(VertexId, VertexId)]| {
            let mut f = std::collections::HashMap::new();
            for &(s, _) in w {
                *f.entry(s).or_insert(0usize) += 1;
            }
            f.into_iter().max_by_key(|&(_, c)| c).unwrap().0
        };
        assert_ne!(hottest_v(&w), hottest_v(&w3));
    }

    #[test]
    fn empty_and_tiny_graphs_do_not_panic() {
        let empty = DiGraph::from_edges(0, Vec::<(VertexId, VertexId)>::new());
        for (_, mix) in standard_mixes() {
            assert!(workload(&empty, mix, 10, 1).is_empty());
        }
        let single = DiGraph::from_edges(1, Vec::<(VertexId, VertexId)>::new());
        for (_, mix) in standard_mixes() {
            let w = workload(&single, mix, 10, 1);
            assert_eq!(w.len(), 10);
            assert!(w.iter().all(|&p| p == (0, 0)));
        }
    }
}
