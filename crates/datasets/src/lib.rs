//! Synthetic stand-ins for the paper's 18 evaluation graphs (Table V).
//!
//! The originals (SNAP / Koblenz / LAW / NetworkRepository, up to 3.7 B
//! edges) are not redistributable at reproduction scale, so each dataset is
//! replaced by a **seeded generator matched to its type**: power-law web
//! crawls via R-MAT, citation networks as preferential-attachment DAGs,
//! social networks as R-MAT with edge reciprocation, Go-uniprot as a
//! layered ontology DAG, Graph500 as the reference R-MAT. Sizes are scaled
//! to laptop scale while preserving each graph's qualitative character —
//! skew, cyclicity, density class — which is what the evaluation's *shape*
//! claims depend on (see DESIGN.md §3).
//!
//! [`table5`] is the registry: the same 18 names, each tagged with its
//! paper-scale |V|/|E| for the EXPERIMENTS.md comparison, and whether the
//! paper treats it as one of the six "medium" graphs (used by Figs. 5–9).
//!
//! Real edge lists can be substituted at any time via
//! `reach_graph::io::read_edge_list_file` — every consumer only sees a
//! [`DiGraph`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reach_graph::{DiGraph, VertexId};

pub mod churn;
pub mod generators;
pub mod workload;

pub use churn::{churn_stream, final_edge_set, ChurnConfig};
pub use generators::{citation_dag, layered_dag, rmat, social, web};
pub use workload::{negative_mix, standard_mixes, workload, QueryMix};

/// The qualitative family of a dataset (Table V's "Type" column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphKind {
    /// Power-law web crawl (cyclic, very skewed).
    Web,
    /// Knowledge base (skewed, mixed cyclicity).
    Knowledge,
    /// Citation network (a DAG by construction).
    Citation,
    /// Social network (cyclic, reciprocated edges).
    Social,
    /// Ontology / biology (layered DAG).
    Biology,
    /// Synthetic R-MAT (Graph500).
    Synthetic,
}

/// One entry of the dataset registry.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// The paper's short name (Table V column 1).
    pub name: &'static str,
    /// The paper's dataset name.
    pub full_name: &'static str,
    /// Family driving the generator choice.
    pub kind: GraphKind,
    /// Scaled vertex count.
    pub vertices: usize,
    /// Scaled target edge count (before deduplication).
    pub edges: usize,
    /// Generator seed (fixed for reproducibility).
    pub seed: u64,
    /// |V| of the real graph, for reporting.
    pub paper_vertices: u64,
    /// |E| of the real graph, for reporting.
    pub paper_edges: u64,
    /// One of the six medium graphs used in Figs. 5, 6, 8, 9.
    pub medium: bool,
    /// Whether the paper's single 32 GB node could hold the graph **and**
    /// the TOL index — the Table VI "-" pattern for TOL and DRLb^M.
    pub tol_single_node: bool,
    /// Whether BFL^C could run on one node (its index is smaller, so this
    /// gate additionally admits SINA).
    pub bflc_single_node: bool,
    /// Fraction of edges forming the deep hierarchy (see
    /// [`generators::hierarchy`]); ignored by the Citation/Biology/
    /// Synthetic kinds, whose structure fixes it.
    pub depth_frac: f64,
}

impl DatasetSpec {
    /// Generates the graph for this spec.
    pub fn generate(&self) -> DiGraph {
        match self.kind {
            GraphKind::Web | GraphKind::Knowledge => {
                generators::hierarchy(self.vertices, self.edges, self.depth_frac, self.seed)
            }
            GraphKind::Citation => citation_dag(self.vertices, self.edges, self.seed),
            GraphKind::Social => generators::social_with_depth(
                self.vertices,
                self.edges,
                0.25,
                self.depth_frac,
                self.seed,
            ),
            GraphKind::Biology => layered_dag(self.vertices, self.edges, 12, self.seed),
            GraphKind::Synthetic => {
                rmat(self.vertices, self.edges, 0.57, 0.19, 0.19, 0.05, self.seed)
            }
        }
    }
}

/// The 18-dataset registry mirroring Table V. The first six are the
/// mediums the paper uses for Figs. 5–9.
pub fn table5() -> Vec<DatasetSpec> {
    use GraphKind::*;
    // Per-row flags (medium, tol_single_node, bflc_single_node) transcribe
    // Table VI's "-" pattern: TOL and DRLb^M ran only on the mediums plus
    // LINK, GRPH and TWIT; BFL^C additionally ran on SINA.
    let spec =
        |name, full_name, kind, vertices, edges, seed, pv, pe, medium, tol1, bflc1, depth| {
            DatasetSpec {
                name,
                full_name,
                kind,
                vertices,
                edges,
                seed,
                paper_vertices: pv,
                paper_edges: pe,
                medium,
                tol_single_node: tol1,
                bflc_single_node: bflc1,
                depth_frac: depth,
            }
        };
    vec![
        spec(
            "WEBW",
            "Web-wikipedia",
            Web,
            40_000,
            100_000,
            101,
            1_864_433,
            4_507_315,
            true,
            true,
            true,
            0.95,
        ),
        spec(
            "DBPE", "Dbpedia", Knowledge, 50_000, 120_000, 102, 3_365_623, 7_989_191, true, true,
            true, 0.95,
        ),
        spec(
            "CITE",
            "Citeseerx",
            Citation,
            60_000,
            140_000,
            103,
            6_540_401,
            15_011_260,
            true,
            true,
            true,
            1.0,
        ),
        spec(
            "CITP",
            "Cit-patent",
            Citation,
            40_000,
            170_000,
            104,
            3_774_768,
            16_518_947,
            true,
            true,
            true,
            1.0,
        ),
        spec(
            "TW", "Twitter", Social, 70_000, 160_000, 105, 18_121_168, 18_359_487, true, true,
            true, 0.95,
        ),
        spec(
            "GO",
            "Go-uniprot",
            Biology,
            40_000,
            120_000,
            106,
            6_967_956,
            34_770_235,
            true,
            true,
            true,
            1.0,
        ),
        spec(
            "SINA",
            "Soc-sinaweibo",
            Social,
            150_000,
            660_000,
            107,
            58_655_849,
            261_321_071,
            false,
            false,
            true,
            0.3,
        ),
        spec(
            "LINK",
            "Wikipedia-link",
            Web,
            150_000,
            350_000,
            108,
            13_593_032,
            437_217_424,
            false,
            true,
            true,
            0.95,
        ),
        spec(
            "WEBB",
            "Webbase-2001",
            Web,
            300_000,
            1_300_000,
            109,
            118_142_155,
            1_019_903_190,
            false,
            false,
            false,
            0.25,
        ),
        spec(
            "GRPH",
            "Graph500",
            Synthetic,
            100_000,
            1_300_000,
            110,
            17_043_780,
            1_046_934_896,
            false,
            true,
            true,
            0.0,
        ),
        spec(
            "TWIT",
            "Twitter-2010",
            Social,
            175_000,
            410_000,
            111,
            41_652_230,
            1_468_365_182,
            false,
            true,
            true,
            0.95,
        ),
        spec(
            "HOST",
            "Host-linkage",
            Web,
            190_000,
            1_450_000,
            112,
            57_383_985,
            1_643_624_227,
            false,
            false,
            false,
            0.25,
        ),
        spec(
            "GSH",
            "Gsh-2015-host",
            Web,
            210_000,
            1_500_000,
            113,
            68_660_142,
            1_802_747_600,
            false,
            false,
            false,
            0.25,
        ),
        spec(
            "SK",
            "Sk-2005",
            Web,
            160_000,
            1_550_000,
            114,
            50_636_154,
            1_949_412_601,
            false,
            false,
            false,
            0.25,
        ),
        spec(
            "TWIM",
            "Twitter-mpi",
            Social,
            170_000,
            1_600_000,
            115,
            52_579_682,
            1_963_263_821,
            false,
            false,
            false,
            0.25,
        ),
        spec(
            "FRIE",
            "Friendster",
            Social,
            210_000,
            1_750_000,
            116,
            68_349_466,
            2_586_147_869,
            false,
            false,
            false,
            0.25,
        ),
        spec(
            "UK",
            "Uk-2006-05",
            Web,
            240_000,
            1_850_000,
            117,
            77_741_046,
            2_965_197_340,
            false,
            false,
            false,
            0.25,
        ),
        spec(
            "WEBS",
            "Webspam-uk",
            Web,
            310_000,
            2_000_000,
            118,
            105_896_555,
            3_738_733_648,
            false,
            false,
            false,
            0.25,
        ),
    ]
}

/// The six medium graphs of Figs. 5, 6, 8, 9.
pub fn mediums() -> Vec<DatasetSpec> {
    table5().into_iter().filter(|s| s.medium).collect()
}

/// Looks a dataset up by its short name.
pub fn by_name(name: &str) -> Option<DatasetSpec> {
    table5().into_iter().find(|s| s.name == name)
}

/// Exp 6's scalability slices: the edges are shuffled into `parts` disjoint
/// groups; slice `i` (1-based) contains the first `i` groups. Returns the
/// cumulative graphs, all over the same vertex set.
pub fn edge_fraction_slices(g: &DiGraph, parts: usize, seed: u64) -> Vec<DiGraph> {
    assert!(parts >= 1);
    let mut edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    // Fisher-Yates shuffle.
    for i in (1..edges.len()).rev() {
        let j = rng.gen_range(0..=i);
        edges.swap(i, j);
    }
    let n = g.num_vertices();
    (1..=parts)
        .map(|i| {
            let take = edges.len() * i / parts;
            DiGraph::from_edges(n, edges[..take].to_vec())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::stats::GraphStats;

    #[test]
    fn registry_has_18_entries_and_6_mediums() {
        let t = table5();
        assert_eq!(t.len(), 18);
        assert_eq!(mediums().len(), 6);
        assert_eq!(t[0].name, "WEBW");
        assert_eq!(t[17].name, "WEBS");
        // Paper order: the first six are exactly the mediums.
        assert!(t[..6].iter().all(|s| s.medium));
        assert!(t[6..].iter().all(|s| !s.medium));
        // Table VI "-" pattern: 9 TOL-capable rows, 10 BFL^C-capable rows.
        assert_eq!(t.iter().filter(|s| s.tol_single_node).count(), 9);
        assert_eq!(t.iter().filter(|s| s.bflc_single_node).count(), 10);
        // Every medium runs everywhere; larges are strictly larger.
        let max_medium = t
            .iter()
            .filter(|s| s.medium)
            .map(|s| s.edges)
            .max()
            .unwrap();
        let min_large = t
            .iter()
            .filter(|s| !s.medium)
            .map(|s| s.edges)
            .min()
            .unwrap();
        assert!(min_large > max_medium);
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("GRPH").is_some());
        assert!(by_name("NOPE").is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = by_name("WEBW").unwrap();
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn citation_datasets_are_dags() {
        for name in ["CITE", "CITP", "GO"] {
            let g = by_name(name).unwrap().generate();
            let s = GraphStats::compute(&g);
            assert!(s.is_dag_modulo_self_loops(), "{name} must be acyclic");
        }
    }

    #[test]
    fn web_and_social_datasets_are_cyclic_and_skewed() {
        for name in ["WEBW", "TW"] {
            let g = by_name(name).unwrap().generate();
            let s = GraphStats::compute(&g);
            assert!(s.largest_scc > 1, "{name} must contain cycles");
            // Hierarchy hubs are authorities: the skew shows in in-degree
            // (heavily cited pages / followed celebrities).
            assert!(
                s.max_in_degree > 20 * (s.avg_degree.ceil() as usize),
                "{name} must be skewed: max_in {} avg {:.1}",
                s.max_in_degree,
                s.avg_degree
            );
        }
    }

    #[test]
    fn edge_fraction_slices_are_cumulative() {
        let g = by_name("WEBW").unwrap().generate();
        let slices = edge_fraction_slices(&g, 5, 7);
        assert_eq!(slices.len(), 5);
        assert_eq!(slices[4].num_edges(), g.num_edges());
        for w in slices.windows(2) {
            assert!(w[0].num_edges() < w[1].num_edges());
            // Every edge of the smaller slice is in the larger one.
            for (u, v) in w[0].edges() {
                assert!(w[1].has_edge(u, v));
            }
        }
    }
}
