//! Statistical contract of the workload generator: for fixed seeds, the
//! empirical properties the serving and hot-swap benchmarks rely on must
//! land within tight tolerances of their analytical targets — the
//! positive-biased mix's reachable-answer rate, the Zipf mix's head mass,
//! and the uniform mix's flatness. These are fixed-seed determinism tests,
//! not flaky Monte-Carlo runs: the generator is a pure function of
//! `(graph, mix, count, seed)`, so each assertion is reproducible
//! bit-for-bit and the tolerance only has to absorb sampling variance
//! across the listed seeds, not run-to-run noise.

use reach_datasets::{workload, QueryMix};
use reach_graph::{DiGraph, TransitiveClosure, VertexId};

const SEEDS: [u64; 4] = [3, 17, 99, 2024];

fn test_graph() -> DiGraph {
    reach_datasets::by_name("WEBW")
        .map(|mut s| {
            s.vertices = 400;
            s.edges = 1200;
            s.generate()
        })
        .unwrap()
}

fn reach_rate(tc: &TransitiveClosure, w: &[(VertexId, VertexId)]) -> f64 {
    w.iter().filter(|&&(s, t)| tc.reaches(s, t)).count() as f64 / w.len() as f64
}

/// Positive-biased mix: sampled pairs are reachable by construction and
/// the uniform remainder answers true at the graph's base rate, so the
/// empirical rate must sit within sampling tolerance of
/// `fraction + (1 - fraction) · base` for every sweep fraction.
#[test]
fn positive_bias_rate_matches_its_fraction_within_tolerance() {
    let g = test_graph();
    let tc = TransitiveClosure::compute(&g);
    let n = g.num_vertices();
    let reachable_pairs: usize = (0..n as VertexId)
        .map(|s| (0..n as VertexId).filter(|&t| tc.reaches(s, t)).count())
        .sum();
    let base = reachable_pairs as f64 / (n * n) as f64;
    for fraction in [0.2, 0.5, 0.8] {
        let expect = fraction + (1.0 - fraction) * base;
        for seed in SEEDS {
            let w = workload(
                &g,
                QueryMix::PositiveBiased {
                    positive_fraction: fraction,
                    source_pool: 32,
                },
                4_000,
                seed,
            );
            let rate = reach_rate(&tc, &w);
            assert!(
                (rate - expect).abs() < 0.05,
                "fraction {fraction}, seed {seed}: rate {rate:.3} vs expected {expect:.3}"
            );
        }
    }
}

/// Zipf mix: the hottest source's share of the stream must match the
/// analytical head mass `1 / H(n, e)` (rank-1 weight over the harmonic
/// normaliser), and the top-10 ranks must carry their predicted cumulative
/// share — the skew the result cache's hit rate depends on.
#[test]
fn zipf_head_mass_matches_the_analytical_share() {
    let g = test_graph();
    let n = g.num_vertices();
    let exponent = 1.1f64;
    let harmonic: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(exponent)).sum();
    let head_share = 1.0 / harmonic;
    let top10_share: f64 = (1..=10)
        .map(|k| 1.0 / (k as f64).powf(exponent) / harmonic)
        .sum();
    for seed in SEEDS {
        let w = workload(&g, QueryMix::ZipfHotSources { exponent }, 8_000, seed);
        let mut freq = std::collections::HashMap::new();
        for &(s, _) in &w {
            *freq.entry(s).or_insert(0usize) += 1;
        }
        let mut counts: Vec<usize> = freq.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let hottest = counts[0] as f64 / w.len() as f64;
        assert!(
            (hottest - head_share).abs() < 0.05,
            "seed {seed}: head share {hottest:.3} vs analytical {head_share:.3}"
        );
        let top10: usize = counts.iter().take(10).sum();
        let top10 = top10 as f64 / w.len() as f64;
        assert!(
            (top10 - top10_share).abs() < 0.06,
            "seed {seed}: top-10 share {top10:.3} vs analytical {top10_share:.3}"
        );
        // Skew sanity: the head alone out-draws the uniform per-vertex
        // share by an order of magnitude.
        assert!(hottest > 10.0 / n as f64);
    }
}

/// Uniform mix: flat by construction — no source may run hot, and the
/// empirical reachable rate must match the graph's exact base rate.
#[test]
fn uniform_mix_is_flat_and_answers_at_the_base_rate() {
    let g = test_graph();
    let tc = TransitiveClosure::compute(&g);
    let n = g.num_vertices();
    let reachable_pairs: usize = (0..n as VertexId)
        .map(|s| (0..n as VertexId).filter(|&t| tc.reaches(s, t)).count())
        .sum();
    let base = reachable_pairs as f64 / (n * n) as f64;
    for seed in SEEDS {
        let w = workload(&g, QueryMix::Uniform, 8_000, seed);
        let rate = reach_rate(&tc, &w);
        assert!(
            (rate - base).abs() < 0.03,
            "seed {seed}: uniform rate {rate:.3} vs base {base:.3}"
        );
        let mut freq = std::collections::HashMap::new();
        for &(s, _) in &w {
            *freq.entry(s).or_insert(0usize) += 1;
        }
        let mean = w.len() as f64 / n as f64;
        let hottest = freq.values().max().copied().unwrap() as f64;
        assert!(
            hottest < 3.0 * mean,
            "seed {seed}: hottest uniform source {hottest} vs mean {mean:.1}"
        );
    }
}
