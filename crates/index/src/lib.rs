//! The reachability label index (Definitions 2–4 of the paper).
//!
//! Every labeling algorithm in this workspace — TOL, DRL⁻, DRL, DRLb, their
//! distributed versions — produces a [`ReachIndex`]: an in-label set
//! `L_in(v) ⊆ ANC(v)` and an out-label set `L_out(v) ⊆ DES(v)` per vertex,
//! satisfying the *cover constraint* (Definition 3)
//!
//! ```text
//! ∀ s, t:   L_out(s) ∩ L_in(t) ≠ ∅  ⇔  s → t
//! ```
//!
//! so a query `q(s, t)` is a sorted-list intersection in
//! `O(|L_out(s)| + |L_in(t)|)` time with no access to the graph — the
//! property that makes the index usable for distributed graphs (§I).
//!
//! The crate also defines:
//!
//! * [`ReachabilityOracle`] — the common query interface implemented by the
//!   index, by the ground-truth closure, and by the BFL baseline.
//! * [`BackwardLabels`] — the backward label sets `L⁻` of Definition 4 (the
//!   representation DRL naturally produces), convertible to a [`ReachIndex`].
//! * Validation ([`ReachIndex::validate_cover`]) and size accounting used by
//!   the experiment harness.

#![warn(missing_docs)]

use reach_graph::{DiGraph, TransitiveClosure, VertexId};

pub mod bloom;
pub mod codec;
pub mod compressed;
pub mod mmap;
pub mod oracle;
pub mod source;
pub mod stats;
pub mod storage;

pub use codec::{CodecId, LabelCodec, LabelCursor};
pub use compressed::{CompressedIndex, EncodedIndex};
pub use mmap::MmapIndex;
pub use oracle::{OnlineBfsOracle, ReachabilityOracle};
pub use source::IndexSource;
pub use stats::IndexStats;
pub use storage::{load_index, save_index, save_index_v2, BloomConfig, StorageError};

/// A 2-hop reachability label index over `n` vertices.
///
/// Label lists are kept sorted by vertex id (the paper's convention for
/// merge-join queries); [`ReachIndex::finalize`] establishes that invariant
/// after bulk insertion. Two indexes compare equal iff every label set is
/// identical, which the cross-algorithm equivalence tests rely on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReachIndex {
    in_labels: Vec<Vec<VertexId>>,
    out_labels: Vec<Vec<VertexId>>,
}

impl ReachIndex {
    /// An empty index (no labels yet) for `n` vertices.
    pub fn new(n: usize) -> Self {
        ReachIndex {
            in_labels: vec![Vec::new(); n],
            out_labels: vec![Vec::new(); n],
        }
    }

    /// Builds from complete label sets; lists are sorted and deduplicated.
    pub fn from_labels(in_labels: Vec<Vec<VertexId>>, out_labels: Vec<Vec<VertexId>>) -> Self {
        assert_eq!(in_labels.len(), out_labels.len());
        let mut idx = ReachIndex {
            in_labels,
            out_labels,
        };
        idx.finalize();
        idx
    }

    /// Number of vertices the index covers.
    pub fn num_vertices(&self) -> usize {
        self.in_labels.len()
    }

    /// Appends `v` to `L_in(w)` (call [`ReachIndex::finalize`] before querying).
    #[inline]
    pub fn add_in_label(&mut self, w: VertexId, v: VertexId) {
        self.in_labels[w as usize].push(v);
    }

    /// Appends `v` to `L_out(w)`.
    #[inline]
    pub fn add_out_label(&mut self, w: VertexId, v: VertexId) {
        self.out_labels[w as usize].push(v);
    }

    /// Sorts and deduplicates every label list, establishing the query
    /// invariant. Idempotent.
    pub fn finalize(&mut self) {
        for l in self.in_labels.iter_mut().chain(self.out_labels.iter_mut()) {
            l.sort_unstable();
            l.dedup();
        }
    }

    /// `L_in(v)`, sorted by id.
    #[inline]
    pub fn in_label(&self, v: VertexId) -> &[VertexId] {
        &self.in_labels[v as usize]
    }

    /// `L_out(v)`, sorted by id.
    #[inline]
    pub fn out_label(&self, v: VertexId) -> &[VertexId] {
        &self.out_labels[v as usize]
    }

    /// The reachability query `q(s, t)` (Definition 3): sorted-merge
    /// intersection test over `L_out(s)` and `L_in(t)`.
    pub fn query(&self, s: VertexId, t: VertexId) -> bool {
        let (lout, lin) = (self.out_label(s), self.in_label(t));
        reach_obs::counter_add("index.query.probes", 1);
        reach_obs::record("index.query.scan_len", (lout.len() + lin.len()) as u64);
        intersects_sorted(lout, lin)
    }

    /// Like [`ReachIndex::query`], but returns the *witness* hub `w` with
    /// `s -> w -> t` when reachable — useful for explaining answers (`w` is
    /// a label vertex on an actual path).
    ///
    /// The witness is *order-minimal*: labels are sorted by vertex id, so
    /// the sorted merge surfaces the smallest-id vertex of
    /// `L_out(s) ∩ L_in(t)`. Callers can rely on that choice being stable
    /// across runs.
    ///
    /// ```
    /// use reach_index::ReachIndex;
    ///
    /// // Path 0 -> 1 -> 2 as a 2-hop cover: every vertex advertises
    /// // itself, and vertex 0's out-label additionally carries hub 1.
    /// let idx = ReachIndex::from_labels(
    ///     vec![vec![0], vec![1], vec![1, 2]], // L_in
    ///     vec![vec![0, 1], vec![1], vec![2]], // L_out
    /// );
    /// assert_eq!(idx.query_witness(0, 2), Some(1)); // 0 -> 2 via hub 1
    /// assert_eq!(idx.query_witness(2, 0), None); // 2 cannot reach 0
    /// ```
    pub fn query_witness(&self, s: VertexId, t: VertexId) -> Option<VertexId> {
        first_common_sorted(self.out_label(s), self.in_label(t))
    }

    /// The largest label size `Δ = max_v max(|L_in(v)|, |L_out(v)|)`.
    pub fn max_label_size(&self) -> usize {
        self.in_labels
            .iter()
            .chain(self.out_labels.iter())
            .map(Vec::len)
            .max()
            .unwrap_or(0)
    }

    /// Total number of label entries across all vertices.
    pub fn num_entries(&self) -> usize {
        self.in_labels
            .iter()
            .chain(self.out_labels.iter())
            .map(Vec::len)
            .sum()
    }

    /// Index size in bytes as the paper reports it: 4 bytes (one `u32`
    /// vertex id) per label entry, plus two offsets per vertex for the CSR
    /// packing an on-disk index would use.
    pub fn size_bytes(&self) -> usize {
        self.num_entries() * std::mem::size_of::<VertexId>()
            + (self.num_vertices() + 1) * 2 * std::mem::size_of::<u32>()
    }

    /// Summary statistics for reporting.
    pub fn stats(&self) -> IndexStats {
        IndexStats::of(self)
    }

    /// The backward label sets (Definition 4) of this index:
    /// `L⁻_in(v) = {w | v ∈ L_in(w)}` and `L⁻_out(v) = {w | v ∈ L_out(w)}`.
    pub fn to_backward(&self) -> BackwardLabels {
        let n = self.num_vertices();
        let mut bw = BackwardLabels::new(n);
        for w in 0..n as VertexId {
            for &v in self.in_label(w) {
                bw.in_sets[v as usize].push(w);
            }
            for &v in self.out_label(w) {
                bw.out_sets[v as usize].push(w);
            }
        }
        bw.finalize();
        bw
    }

    /// Checks the cover constraint (Definition 3) against the ground-truth
    /// closure for **all** vertex pairs. Returns the first violating pair.
    /// Test-scale graphs only (O(n²) queries).
    pub fn validate_cover(&self, truth: &TransitiveClosure) -> Result<(), CoverViolation> {
        let n = self.num_vertices();
        assert_eq!(n, truth.num_vertices());
        for s in 0..n as VertexId {
            for t in 0..n as VertexId {
                let q = self.query(s, t);
                let r = truth.reaches(s, t);
                if q != r {
                    return Err(CoverViolation {
                        s,
                        t,
                        indexed: q,
                        actual: r,
                    });
                }
            }
        }
        Ok(())
    }

    /// Convenience: compute the closure of `g` and validate against it.
    pub fn validate_cover_on(&self, g: &DiGraph) -> Result<(), CoverViolation> {
        self.validate_cover(&TransitiveClosure::compute(g))
    }
}

/// A cover-constraint violation found by [`ReachIndex::validate_cover`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoverViolation {
    /// Query source.
    pub s: VertexId,
    /// Query target.
    pub t: VertexId,
    /// What the index answered.
    pub indexed: bool,
    /// The true reachability.
    pub actual: bool,
}

impl std::fmt::Display for CoverViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cover violation: q({}, {}) = {} but reachability is {}",
            self.s, self.t, self.indexed, self.actual
        )
    }
}

impl std::error::Error for CoverViolation {}

/// The backward label sets of Definition 4 — what the DRL family computes
/// directly: `L⁻_in(v)` is the set of vertices whose in-label contains `v`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackwardLabels {
    /// `in_sets[v] = L⁻_in(v)`, sorted by id after [`BackwardLabels::finalize`].
    pub in_sets: Vec<Vec<VertexId>>,
    /// `out_sets[v] = L⁻_out(v)`.
    pub out_sets: Vec<Vec<VertexId>>,
}

impl BackwardLabels {
    /// Empty backward label sets for `n` vertices.
    pub fn new(n: usize) -> Self {
        BackwardLabels {
            in_sets: vec![Vec::new(); n],
            out_sets: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.in_sets.len()
    }

    /// Sorts and deduplicates each set.
    pub fn finalize(&mut self) {
        for l in self.in_sets.iter_mut().chain(self.out_sets.iter_mut()) {
            l.sort_unstable();
            l.dedup();
        }
    }

    /// Inverts back to the forward index (the symmetric relationship the
    /// paper's §III-A Remark describes): `v ∈ L_in(w) ⇔ w ∈ L⁻_in(v)`.
    pub fn to_index(&self) -> ReachIndex {
        let n = self.num_vertices();
        let mut idx = ReachIndex::new(n);
        for v in 0..n as VertexId {
            for &w in &self.in_sets[v as usize] {
                idx.add_in_label(w, v);
            }
            for &w in &self.out_sets[v as usize] {
                idx.add_out_label(w, v);
            }
        }
        idx.finalize();
        idx
    }
}

/// Merge-intersection test over two id-sorted slices.
#[inline]
pub fn intersects_sorted(a: &[VertexId], b: &[VertexId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Returns the first common element of two id-sorted slices, if any — used
/// by callers that want the *witness* vertex `w` with `s → w → t`.
pub fn first_common_sorted(a: &[VertexId], b: &[VertexId]) -> Option<VertexId> {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return Some(a[i]),
        }
    }
    None
}

impl ReachabilityOracle for ReachIndex {
    fn reachable(&self, s: VertexId, t: VertexId) -> bool {
        self.query(s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::fixtures;

    /// The Table II index of the paper graph, hand-entered (zero-based).
    pub(crate) fn table2_index() -> ReachIndex {
        let in_labels: Vec<Vec<VertexId>> = vec![
            vec![0],
            vec![1],
            vec![1],
            vec![1],
            vec![0],
            vec![1],
            vec![0],
            vec![0, 7],
            vec![0, 7, 8],
            vec![1, 9],
            vec![1, 10],
        ];
        let out_labels: Vec<Vec<VertexId>> = vec![
            vec![0],
            vec![0, 1],
            vec![0, 1],
            vec![0, 1],
            vec![0],
            vec![0, 1],
            vec![0],
            vec![7],
            vec![8],
            vec![9],
            vec![10],
        ];
        ReachIndex::from_labels(in_labels, out_labels)
    }

    #[test]
    fn table2_index_satisfies_cover_constraint() {
        let g = fixtures::paper_graph();
        let idx = table2_index();
        idx.validate_cover_on(&g).unwrap();
    }

    #[test]
    fn example2_query() {
        // Example 2: q(v2, v3) = true via witness v2.
        let idx = table2_index();
        assert!(idx.query(1, 2));
        assert_eq!(
            first_common_sorted(idx.out_label(1), idx.in_label(2)),
            Some(1)
        );
    }

    #[test]
    fn backward_round_trip_matches_table3() {
        // Table III: backward label sets of the Table II index.
        let idx = table2_index();
        let bw = idx.to_backward();
        assert_eq!(bw.in_sets[0], vec![0, 4, 6, 7, 8]); // L⁻_in(v1)
        assert_eq!(bw.out_sets[0], vec![0, 1, 2, 3, 4, 5, 6]); // L⁻_out(v1)
        assert_eq!(bw.in_sets[1], vec![1, 2, 3, 5, 9, 10]); // L⁻_in(v2)
        assert_eq!(bw.out_sets[1], vec![1, 2, 3, 5]); // L⁻_out(v2)
        assert!(bw.in_sets[2].is_empty()); // L⁻_in(v3) = ∅
        assert_eq!(bw.in_sets[7], vec![7, 8]); // L⁻_in(v8)
        assert_eq!(idx, bw.to_index(), "inversion round-trips");
    }

    #[test]
    fn max_label_size_is_delta() {
        let idx = table2_index();
        assert_eq!(idx.max_label_size(), 3); // |L_in(v9)| = 3
    }

    #[test]
    fn num_entries_and_size_bytes() {
        let idx = table2_index();
        let entries: usize = (0..11)
            .map(|v| idx.in_label(v).len() + idx.out_label(v).len())
            .sum();
        assert_eq!(idx.num_entries(), entries);
        assert_eq!(idx.size_bytes(), entries * 4 + 12 * 2 * 4);
    }

    #[test]
    fn finalize_sorts_and_dedups() {
        let mut idx = ReachIndex::new(2);
        idx.add_in_label(0, 1);
        idx.add_in_label(0, 0);
        idx.add_in_label(0, 1);
        idx.finalize();
        assert_eq!(idx.in_label(0), &[0, 1]);
    }

    #[test]
    fn validate_detects_violation() {
        let g = fixtures::path(2); // 0 -> 1
        let truth = TransitiveClosure::compute(&g);
        // An index that misses the 0 -> 1 pair.
        let idx = ReachIndex::from_labels(vec![vec![0], vec![1]], vec![vec![0], vec![1]]);
        let err = idx.validate_cover(&truth).unwrap_err();
        assert_eq!((err.s, err.t), (0, 1));
        assert!(!err.indexed);
        assert!(err.actual);
        assert!(err.to_string().contains("cover violation"));
    }

    #[test]
    fn intersects_sorted_cases() {
        assert!(intersects_sorted(&[1, 3, 5], &[5, 7]));
        assert!(!intersects_sorted(&[1, 3, 5], &[2, 4, 6]));
        assert!(!intersects_sorted(&[], &[1]));
        assert!(intersects_sorted(&[2], &[2]));
    }

    #[test]
    fn length_prefixed_round_trip() {
        let idx = table2_index();
        let decoded = encode_decode(&idx);
        assert_eq!(idx, decoded);
    }

    /// Round-trips an index through a minimal length-prefixed encoding —
    /// an independent check that the label sets fully determine the index
    /// (the binary persistence in [`crate::storage`] has its own tests).
    fn encode_decode(idx: &ReachIndex) -> ReachIndex {
        // Minimal self-describing encode: lengths + entries.
        let mut buf: Vec<u32> = Vec::new();
        let n = idx.num_vertices() as u32;
        buf.push(n);
        for v in 0..n {
            let l = idx.in_label(v);
            buf.push(l.len() as u32);
            buf.extend_from_slice(l);
        }
        for v in 0..n {
            let l = idx.out_label(v);
            buf.push(l.len() as u32);
            buf.extend_from_slice(l);
        }
        // decode
        let mut it = buf.into_iter();
        let n = it.next().unwrap() as usize;
        let read_sets = |it: &mut std::vec::IntoIter<u32>| {
            (0..n)
                .map(|_| {
                    let k = it.next().unwrap() as usize;
                    (0..k).map(|_| it.next().unwrap()).collect::<Vec<u32>>()
                })
                .collect::<Vec<_>>()
        };
        let ins = read_sets(&mut it);
        let outs = read_sets(&mut it);
        ReachIndex::from_labels(ins, outs)
    }

    #[test]
    fn query_witness_returns_a_real_hub() {
        let g = fixtures::paper_graph();
        let idx = table2_index();
        let tc = TransitiveClosure::compute(&g);
        for s in g.vertices() {
            for t in g.vertices() {
                match idx.query_witness(s, t) {
                    Some(w) => {
                        assert!(idx.query(s, t));
                        assert!(tc.reaches(s, w) && tc.reaches(w, t), "witness on path");
                    }
                    None => assert!(!idx.query(s, t)),
                }
            }
        }
    }

    #[test]
    fn query_witness_negative_path_yields_none() {
        let g = fixtures::paper_graph();
        let idx = table2_index();
        let tc = TransitiveClosure::compute(&g);
        let mut unreachable_pairs = 0;
        for s in g.vertices() {
            for t in g.vertices() {
                if !tc.reaches(s, t) {
                    unreachable_pairs += 1;
                    assert_eq!(idx.query_witness(s, t), None, "{s} -/-> {t}");
                }
            }
        }
        assert!(unreachable_pairs > 0, "fixture must contain negative pairs");
    }

    #[test]
    fn query_witness_is_order_minimal() {
        // L_out(0) ∩ L_in(1) = {2, 3}: the witness must be the smallest
        // common hub, not an arbitrary member.
        let idx =
            ReachIndex::from_labels(vec![vec![0], vec![1, 2, 3]], vec![vec![0, 2, 3], vec![1]]);
        assert_eq!(idx.query_witness(0, 1), Some(2));
    }

    #[test]
    fn oracle_impl_answers_like_query() {
        let idx = table2_index();
        assert!(ReachabilityOracle::reachable(&idx, 1, 6)); // v2 -> v7
        assert!(!ReachabilityOracle::reachable(&idx, 8, 0)); // v9 cannot reach v1
    }
}
