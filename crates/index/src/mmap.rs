//! The out-of-core read path: a v2 index served straight off a
//! memory-mapped file.
//!
//! [`MmapIndex::open`] maps the file read-only (raw `mmap(2)` FFI on
//! unix — no new dependencies; a buffered-read fallback elsewhere) and
//! validates it with the same [`parse_v2`](crate::storage::parse_v2)
//! pass every reader runs. After open, queries touch only the pages
//! they need: the offset tables, the two label runs (or just the
//! in-run plus one Bloom filter slot on a pre-filtered negative), while
//! the OS pages label data in and out on demand — so the served index
//! may exceed RAM.
//!
//! Validation at open intentionally faults every page once (that cost
//! is what `compression_bench` reports as *cold-open latency*); it buys
//! an infallible, panic-free query path on an arbitrary on-disk file.

use std::ops::Deref;
use std::path::Path;

use crate::compressed::EncodedIndex;
use crate::storage::StorageError;

/// A v2 index over a memory-mapped file — the out-of-core
/// [`IndexSource`](crate::source::IndexSource).
pub type MmapIndex = EncodedIndex<Mmap>;

impl MmapIndex {
    /// Maps `path` read-only and validates it as a v2 index image.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<MmapIndex, StorageError> {
        let map = Mmap::map_file(path.as_ref())?;
        EncodedIndex::from_backing(map)
    }
}

#[cfg(unix)]
pub use unix::Mmap;

#[cfg(unix)]
mod unix {
    use std::fs::File;
    use std::ops::Deref;
    use std::os::unix::io::AsRawFd;
    use std::path::Path;

    use crate::storage::StorageError;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    /// A read-only, private memory mapping of a whole file. Dereferences
    /// to `&[u8]`; unmapped on drop.
    #[derive(Debug)]
    pub struct Mmap {
        ptr: *mut core::ffi::c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ + MAP_PRIVATE — immutable shared
    // bytes, the same sharing contract as Arc<[u8]>.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps `path` in full. A zero-length file cannot be a valid
        /// index and `mmap` rejects zero-length maps, so it is reported
        /// as corruption up front.
        pub(crate) fn map_file(path: &Path) -> Result<Mmap, StorageError> {
            let file = File::open(path)?;
            let len = file.metadata()?.len();
            if len == 0 {
                return Err(StorageError::Corrupt("unexpected end of file"));
            }
            if len > usize::MAX as u64 {
                return Err(StorageError::Corrupt("file exceeds address space"));
            }
            let len = len as usize;
            // SAFETY: fd is valid for the duration of the call; a
            // MAP_FAILED return (-1) is checked before use.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(StorageError::Io(std::io::Error::last_os_error()));
            }
            Ok(Mmap { ptr, len })
        }
    }

    impl Deref for Mmap {
        type Target = [u8];

        fn deref(&self) -> &[u8] {
            // SAFETY: ptr is a live PROT_READ mapping of exactly len
            // bytes, valid until drop.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: ptr/len are the exact values a successful mmap
            // returned; double-unmap is impossible (no Clone).
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(not(unix))]
pub use fallback::Mmap;

#[cfg(not(unix))]
mod fallback {
    use std::ops::Deref;
    use std::path::Path;

    use crate::storage::StorageError;

    /// Portable stand-in for the unix mapping: the whole file buffered
    /// in memory. Same API, no out-of-core benefit.
    #[derive(Debug)]
    pub struct Mmap {
        bytes: Vec<u8>,
    }

    impl Mmap {
        pub(crate) fn map_file(path: &Path) -> Result<Mmap, StorageError> {
            Ok(Mmap {
                bytes: std::fs::read(path)?,
            })
        }
    }

    impl Deref for Mmap {
        type Target = [u8];

        fn deref(&self) -> &[u8] {
            &self.bytes
        }
    }
}

/// Compile-time check that the active backing satisfies the byte-slice
/// + thread-sharing contract the serving stack requires.
#[allow(dead_code)]
fn _assert_backing() {
    fn requires<T: Deref<Target = [u8]> + Send + Sync>() {}
    requires::<Mmap>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::CodecId;
    use crate::storage::{self, BloomConfig};
    use crate::ReachIndex;

    fn sample() -> ReachIndex {
        ReachIndex::from_labels(
            vec![vec![0], vec![0, 1], vec![2]],
            vec![vec![0, 2], vec![1], vec![]],
        )
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("reach_index_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn mmap_answers_match_in_memory() {
        let idx = sample();
        let path = temp_path("sample_v2.ridx");
        storage::save_index_v2(
            &idx,
            &path,
            CodecId::DeltaVarint,
            Some(BloomConfig::default()),
        )
        .unwrap();
        let m = MmapIndex::open(&path).unwrap();
        assert_eq!(m.num_vertices(), 3);
        for s in 0..3 {
            for t in 0..3 {
                assert_eq!(m.query(s, t), idx.query(s, t));
                assert_eq!(m.query_witness(s, t), idx.query_witness(s, t));
            }
        }
        assert_eq!(m.to_reach_index(), idx);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn mmap_rejects_v1_and_garbage() {
        let path = temp_path("v1.ridx");
        storage::save_index(&sample(), &path).unwrap();
        assert!(matches!(
            MmapIndex::open(&path).unwrap_err(),
            StorageError::BadVersion(1)
        ));
        std::fs::write(&path, b"JUNKJUNKJUNKJUNK").unwrap();
        assert!(matches!(
            MmapIndex::open(&path).unwrap_err(),
            StorageError::BadMagic
        ));
        std::fs::write(&path, b"").unwrap();
        assert!(matches!(
            MmapIndex::open(&path).unwrap_err(),
            StorageError::Corrupt(_)
        ));
        std::fs::remove_file(path).ok();
    }
}
