//! A small fixed-width Bloom filter over vertex ids.
//!
//! Lives in `reach-index` so two consumers share one implementation:
//!
//! * `reach-bfl` summarizes ancestor/descendant sets with
//!   [`BloomFilter`] (it re-exports this module).
//! * The compressed v2 index (see [`crate::storage`]) stores one filter
//!   per vertex over `L_out(v)` as raw bytes in the BLOM section and
//!   probes them **in place** — [`probe_bits`] works directly on a byte
//!   slice of the file (or mmap), no deserialization — to short-circuit
//!   negative queries before the label merge.
//!
//! Bit addressing is defined on the little-endian serialized form:
//! global bit `b` lives in byte `b / 8` at bit `b % 8`, which coincides
//! with bit `b % 64` of LE word `b / 64` — so [`BloomFilter`] (word
//! storage) and the byte-slice helpers see identical filters.

use reach_graph::VertexId;

/// A Bloom filter of `bits` width (rounded up to 64) with `k` hash
/// functions, used to summarize descendant/ancestor sets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BloomFilter {
    words: Vec<u64>,
}

impl BloomFilter {
    /// An empty filter of the given width.
    pub fn empty(bits: usize) -> Self {
        BloomFilter {
            words: vec![0; bits.div_ceil(64).max(1)],
        }
    }

    /// Width in bits.
    pub fn bits(&self) -> usize {
        self.words.len() * 64
    }

    /// Size on the wire / in the index, in bytes.
    pub fn bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Inserts `v` under `k` hash functions.
    pub fn insert(&mut self, v: VertexId, k: usize) {
        let bits = self.bits() as u64;
        for i in 0..k {
            let bit = bit_position(v, i, bits);
            self.words[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
    }

    /// `true` iff every probe bit of `v` is set — `false` proves `v` was
    /// never inserted (no false negatives); `true` may be a false
    /// positive.
    pub fn contains(&self, v: VertexId, k: usize) -> bool {
        let bits = self.bits() as u64;
        (0..k).all(|i| {
            let bit = bit_position(v, i, bits);
            self.words[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
        })
    }

    /// `self |= other`; returns `true` if any bit changed (drives the
    /// fixpoint propagation).
    pub fn union_with(&mut self, other: &BloomFilter) -> bool {
        debug_assert_eq!(self.words.len(), other.words.len());
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `true` iff every set bit of `self` is set in `other` — the sound
    /// subset test (`DES(t) ⊆ DES(s)` necessary condition).
    pub fn subset_of(&self, other: &BloomFilter) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Serializes to little-endian bytes — the BLOM-section form that
    /// [`probe_bits`] addresses.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }
}

/// Kirsch–Mitzenmacher double hashing: one `splitmix64` call yields two
/// 32-bit halves `h1`, `h2` (forced odd), and probe `i` lands on
/// `h1 + i·h2 mod bits`. One hash per *element* instead of one per
/// *probe* — the compressed index's gate probes every entry of `L_in(t)`
/// on every negative query, so probe cost is on the serving hot path.
#[inline]
fn hash_pair(v: VertexId) -> (u64, u64) {
    let h = splitmix64(v as u64);
    (h & 0xFFFF_FFFF, (h >> 32) | 1)
}

/// The `i`-th probe bit of `v` in a filter of `bits` width (`bits > 0`).
#[inline]
fn bit_position(v: VertexId, i: usize, bits: u64) -> u64 {
    let (h1, h2) = hash_pair(v);
    h1.wrapping_add(h2.wrapping_mul(i as u64)) % bits
}

/// Sets the `k` probe bits of `v` in a serialized filter. The slice
/// length defines the filter width (`len × 8` bits); must be non-empty.
#[inline]
pub fn set_bits(bytes: &mut [u8], v: VertexId, k: usize) {
    let bits = (bytes.len() * 8) as u64;
    let (h1, h2) = hash_pair(v);
    for i in 0..k as u64 {
        let bit = h1.wrapping_add(h2.wrapping_mul(i)) % bits;
        bytes[(bit / 8) as usize] |= 1u8 << (bit % 8);
    }
}

/// Probes the `k` bits of `v` in a serialized filter: `false` proves `v`
/// absent, `true` is "possibly present". Works directly on file or mmap
/// bytes; must be non-empty and byte-identical in width to the filter
/// the bits were set in.
#[inline]
pub fn probe_bits(bytes: &[u8], v: VertexId, k: usize) -> bool {
    let bits = (bytes.len() * 8) as u64;
    let (h1, h2) = hash_pair(v);
    (0..k as u64).all(|i| {
        let bit = h1.wrapping_add(h2.wrapping_mul(i)) % bits;
        bytes[(bit / 8) as usize] & (1u8 << (bit % 8)) != 0
    })
}

/// The 64-bit finalizer of splitmix64 — a cheap, well-mixed hash.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_makes_self_subset() {
        let mut f = BloomFilter::empty(128);
        f.insert(42, 2);
        let mut g = BloomFilter::empty(128);
        g.insert(42, 2);
        g.insert(7, 2);
        assert!(f.subset_of(&g));
        assert!(!g.subset_of(&f));
    }

    #[test]
    fn union_reports_changes() {
        let mut a = BloomFilter::empty(64);
        let mut b = BloomFilter::empty(64);
        b.insert(3, 2);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union is a no-op");
        assert!(b.subset_of(&a));
    }

    #[test]
    fn empty_is_subset_of_everything() {
        let e = BloomFilter::empty(128);
        let mut f = BloomFilter::empty(128);
        f.insert(1, 2);
        assert!(e.subset_of(&f));
        assert!(e.subset_of(&e));
    }

    #[test]
    fn width_rounds_up_to_words() {
        assert_eq!(BloomFilter::empty(1).bits(), 64);
        assert_eq!(BloomFilter::empty(65).bits(), 128);
        assert_eq!(BloomFilter::empty(128).bytes(), 16);
    }

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn contains_never_false_negative() {
        let mut f = BloomFilter::empty(128);
        for v in [0u32, 5, 17, 100_000, u32::MAX] {
            f.insert(v, 3);
        }
        for v in [0u32, 5, 17, 100_000, u32::MAX] {
            assert!(f.contains(v, 3), "{v} was inserted");
        }
    }

    #[test]
    fn byte_slice_probes_match_word_filter() {
        // The serialized-bytes view and the word view must address
        // identical bits: set via BloomFilter, probe via probe_bits, and
        // vice versa.
        let k = 3;
        let mut f = BloomFilter::empty(192);
        let inserted: Vec<u32> = (0..64u32)
            .map(|i| i.wrapping_mul(2_654_435_761) % 1_000_000)
            .collect();
        for &v in &inserted {
            f.insert(v, k);
        }
        let bytes = f.to_le_bytes();
        for &v in &inserted {
            assert!(probe_bits(&bytes, v, k));
        }
        for v in 0..2_000u32 {
            assert_eq!(probe_bits(&bytes, v, k), f.contains(v, k), "vertex {v}");
        }

        let mut raw = vec![0u8; 24];
        for &v in &inserted {
            set_bits(&mut raw, v, k);
        }
        assert_eq!(raw, bytes, "set_bits builds the identical serialized form");
    }
}
