//! Index size reporting used by the experiment harness (Table VI columns).

use crate::ReachIndex;

/// Summary statistics of a built index.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexStats {
    /// Total label entries (in + out).
    pub num_entries: usize,
    /// The largest single label set `Δ`.
    pub max_label_size: usize,
    /// Mean label size per vertex per direction.
    pub avg_label_size: f64,
    /// Bytes as reported in Table VI (4 B per entry + CSR offsets).
    pub size_bytes: usize,
}

impl IndexStats {
    /// Computes the statistics of `idx`.
    pub fn of(idx: &ReachIndex) -> Self {
        let n = idx.num_vertices();
        let entries = idx.num_entries();
        IndexStats {
            num_entries: entries,
            max_label_size: idx.max_label_size(),
            avg_label_size: if n == 0 {
                0.0
            } else {
                entries as f64 / (2.0 * n as f64)
            },
            size_bytes: idx.size_bytes(),
        }
    }

    /// Size in mebibytes, the unit of Table VI.
    pub fn size_mib(&self) -> f64 {
        self.size_bytes as f64 / (1024.0 * 1024.0)
    }
}

impl std::fmt::Display for IndexStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "entries={} Δ={} avg={:.2} size={:.2} MiB",
            self.num_entries,
            self.max_label_size,
            self.avg_label_size,
            self.size_mib()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_small_index() {
        let idx = ReachIndex::from_labels(vec![vec![0], vec![0, 1]], vec![vec![0], vec![1]]);
        let s = IndexStats::of(&idx);
        assert_eq!(s.num_entries, 5);
        assert_eq!(s.max_label_size, 2);
        assert!((s.avg_label_size - 1.25).abs() < 1e-12);
        assert!(s.size_mib() > 0.0);
        assert!(s.to_string().contains("Δ=2"));
    }

    #[test]
    fn stats_of_empty_index() {
        let idx = ReachIndex::new(0);
        let s = IndexStats::of(&idx);
        assert_eq!(s.num_entries, 0);
        assert_eq!(s.avg_label_size, 0.0);
    }
}
