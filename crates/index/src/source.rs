//! [`IndexSource`] — the common query surface over every index backing.
//!
//! `reach-serve` historically served an in-RAM [`ReachIndex`]; the
//! compressed and mmap-backed forms answer the same queries from their
//! encoded bytes. This trait is what the serving stack now holds: a
//! `dyn IndexSource` can be a decoded index, a heap-compressed image,
//! or a memory-mapped file larger than RAM — the differential harness
//! (`crates/index/tests/codec_differential.rs`) pins all of them
//! bit-identical, answers and witnesses both.

use std::ops::Deref;

use reach_graph::VertexId;

use crate::compressed::EncodedIndex;
use crate::ReachIndex;

/// A queryable reachability index, whatever its physical form.
///
/// `Send + Sync` because the serving stack shares one source across
/// worker threads behind an `Arc`.
pub trait IndexSource: Send + Sync {
    /// Number of vertices covered (valid query ids are `0..n`).
    fn num_vertices(&self) -> usize;

    /// `q(s, t)` plus the scan cost (label entries consumed) — the pair
    /// the serve layer's shard scan reports.
    fn query_scan(&self, s: VertexId, t: VertexId) -> (bool, usize);

    /// The reachability query `q(s, t)`.
    fn query(&self, s: VertexId, t: VertexId) -> bool {
        self.query_scan(s, t).0
    }

    /// The order-minimal witness hub `w` with `s → w → t`, when
    /// reachable. Identical across every backing of the same index.
    fn query_witness(&self, s: VertexId, t: VertexId) -> Option<VertexId>;

    /// A short human-readable description of the backing (for logs).
    fn describe(&self) -> String;
}

impl IndexSource for ReachIndex {
    fn num_vertices(&self) -> usize {
        ReachIndex::num_vertices(self)
    }

    fn query_scan(&self, s: VertexId, t: VertexId) -> (bool, usize) {
        let (lout, lin) = (self.out_label(s), self.in_label(t));
        (crate::intersects_sorted(lout, lin), lout.len() + lin.len())
    }

    fn query(&self, s: VertexId, t: VertexId) -> bool {
        ReachIndex::query(self, s, t)
    }

    fn query_witness(&self, s: VertexId, t: VertexId) -> Option<VertexId> {
        ReachIndex::query_witness(self, s, t)
    }

    fn describe(&self) -> String {
        format!("ram index ({} vertices)", ReachIndex::num_vertices(self))
    }
}

impl<B: Deref<Target = [u8]> + Send + Sync> IndexSource for EncodedIndex<B> {
    fn num_vertices(&self) -> usize {
        EncodedIndex::num_vertices(self)
    }

    fn query_scan(&self, s: VertexId, t: VertexId) -> (bool, usize) {
        EncodedIndex::query_scan(self, s, t)
    }

    fn query_witness(&self, s: VertexId, t: VertexId) -> Option<VertexId> {
        EncodedIndex::query_witness(self, s, t)
    }

    fn describe(&self) -> String {
        format!(
            "encoded index ({} vertices, codec {}, bloom {})",
            self.num_vertices(),
            self.codec().name(),
            if self.bloom_config().is_some() {
                "on"
            } else {
                "off"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::CodecId;
    use crate::compressed::CompressedIndex;
    use std::sync::Arc;

    #[test]
    fn dyn_source_answers_for_every_backing() {
        let idx = ReachIndex::from_labels(
            vec![vec![0], vec![0, 1], vec![2]],
            vec![vec![0, 2], vec![1], vec![]],
        );
        let compressed = CompressedIndex::build(&idx, CodecId::DeltaVarint, None);
        let sources: Vec<Arc<dyn IndexSource>> = vec![Arc::new(idx.clone()), Arc::new(compressed)];
        for src in &sources {
            assert_eq!(src.num_vertices(), 3);
            for s in 0..3 {
                for t in 0..3 {
                    assert_eq!(src.query(s, t), idx.query(s, t));
                    assert_eq!(src.query_scan(s, t).0, idx.query(s, t));
                    assert_eq!(src.query_witness(s, t), idx.query_witness(s, t));
                }
            }
            assert!(!src.describe().is_empty());
        }
    }
}
