//! Compact binary persistence for [`ReachIndex`].
//!
//! The paper's deployment model stores the finished index on one query
//! machine; this module provides the on-disk formats:
//!
//! * **v1** — a little-endian CSR packing (`4 B` per label entry plus
//!   one `u64` offset per vertex per direction), matching the byte
//!   counts [`ReachIndex::size_bytes`] reports. Layout: magic `RIDX` +
//!   version, `n`, then per direction an offset array (`n + 1` × u64)
//!   followed by the entry array (u32s).
//! * **v2** — a section-table container for **compressed** and
//!   **out-of-core** serving: magic `RIDX`, version 2, a tagged section
//!   table, then sections `META` (counts + codec + Bloom parameters),
//!   `IOFF`/`IDAT` and `OOFF`/`ODAT` (per-direction offset tables and
//!   codec-encoded label runs, see [`crate::codec`]), and optionally
//!   `BLOM` (per-vertex Bloom pre-filters over `L_out(v)`). Offsets are
//!   4-byte when the data sections fit in `u32`, else 8-byte. Readers
//!   **ignore unknown section tags**, the forward-compat rule that lets
//!   future versions add sections without breaking old readers.
//!   `docs/STORAGE.md` is the normative byte-level spec.
//!
//! Both readers share the hardening contract: every malformed input is a
//! typed [`StorageError`], never a panic, and no allocation is sized
//! from unvalidated input. [`read_index`] transparently loads either
//! version into a [`ReachIndex`]; the v2-only zero-copy paths live in
//! [`crate::compressed`] and [`crate::mmap`].

use std::io::{BufReader, BufWriter, Read, Write};
use std::ops::Range;
use std::path::Path;

use reach_graph::VertexId;

use crate::bloom;
use crate::codec::CodecId;
use crate::ReachIndex;

const MAGIC: [u8; 4] = *b"RIDX";
const VERSION: u32 = 1;
/// Version tag of the section-table container format.
pub const VERSION_V2: u32 = 2;

/// v2 section tags. Unknown tags are skipped by readers.
pub(crate) const SEC_META: [u8; 4] = *b"META";
pub(crate) const SEC_IOFF: [u8; 4] = *b"IOFF";
pub(crate) const SEC_IDAT: [u8; 4] = *b"IDAT";
pub(crate) const SEC_OOFF: [u8; 4] = *b"OOFF";
pub(crate) const SEC_ODAT: [u8; 4] = *b"ODAT";
pub(crate) const SEC_BLOM: [u8; 4] = *b"BLOM";

/// Hard cap on the declared section count: bounds the only
/// header-driven allocation a hostile file could inflate.
const MAX_SECTIONS: u32 = 1024;

/// Bytes per section-table entry: tag + offset + len.
pub const SECTION_ENTRY_LEN: usize = 4 + 8 + 8;

/// Fixed length of the META section payload.
const META_LEN: usize = 8 + 4 + 4 + 4 + 4;

/// Parameters of the optional per-vertex Bloom pre-filter stored in a
/// v2 file's BLOM section (one filter per vertex, over `L_out(v)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BloomConfig {
    /// Filter width per vertex in bits; rounded up to whole 64-bit
    /// words (so the stored width is `bits_per_vertex.div_ceil(64) × 64`).
    pub bits_per_vertex: u32,
    /// Number of hash probes per element.
    pub k: u32,
}

impl Default for BloomConfig {
    /// 256 bits (32 B) per vertex with 2 probes — sized so typical DRL
    /// label lists keep the false-positive rate in the low percent.
    fn default() -> Self {
        BloomConfig {
            bits_per_vertex: 256,
            k: 2,
        }
    }
}

impl BloomConfig {
    /// Stored filter width in bytes (whole words).
    pub fn bytes_per_vertex(&self) -> usize {
        (self.bits_per_vertex as usize).div_ceil(64).max(1) * 8
    }

    /// A filter sized to the index's label density: ~12 bits per stored
    /// `L_out` entry (k = 2 probes), rounded up to whole words and
    /// clamped to [256, 2048] bits. Dense label sets (tens of entries
    /// per vertex) saturate the fixed default — its false-positive rate
    /// then erases the gate's win on negative queries — while sparse
    /// sets waste bytes above 256 bits. Benchmarks and the CLI's
    /// auto mode use this.
    pub fn sized_for(idx: &crate::ReachIndex) -> BloomConfig {
        let n = idx.num_vertices().max(1);
        let out_entries: usize = (0..n as u32).map(|v| idx.out_label(v).len()).sum();
        let avg = out_entries.div_ceil(n);
        let bits = (avg * 12).next_multiple_of(64).clamp(256, 2048) as u32;
        BloomConfig {
            bits_per_vertex: bits,
            k: 2,
        }
    }
}

/// Errors from index persistence.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The bytes are not an index file (bad magic).
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Structurally invalid content (truncated or inconsistent offsets).
    Corrupt(&'static str),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::BadMagic => write!(f, "not a reachability index file"),
            StorageError::BadVersion(v) => write!(f, "unsupported index version {v}"),
            StorageError::Corrupt(what) => write!(f, "corrupt index file: {what}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Writes the index to a writer in the binary format.
pub fn write_index<W: Write>(idx: &ReachIndex, writer: W) -> Result<(), StorageError> {
    let mut w = BufWriter::new(writer);
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let n = idx.num_vertices() as u64;
    w.write_all(&n.to_le_bytes())?;
    for side in [false, true] {
        let label = |v: VertexId| {
            if side {
                idx.out_label(v)
            } else {
                idx.in_label(v)
            }
        };
        let mut offset = 0u64;
        w.write_all(&offset.to_le_bytes())?;
        for v in 0..n as VertexId {
            offset += label(v).len() as u64;
            w.write_all(&offset.to_le_bytes())?;
        }
        for v in 0..n as VertexId {
            for &x in label(v) {
                w.write_all(&x.to_le_bytes())?;
            }
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads an index back from a reader.
///
/// Every malformed input — wrong magic, truncation anywhere in the
/// stream, non-monotone or overflowing offsets, unsorted or out-of-range
/// label entries — is reported as a typed [`StorageError`]
/// ([`StorageError::BadMagic`] / [`StorageError::Corrupt`], or
/// [`StorageError::BadVersion`]); the reader never panics and never
/// allocates based on unvalidated lengths. [`StorageError::Io`] is
/// reserved for genuine transport failures.
pub fn read_index<R: Read>(reader: R) -> Result<ReachIndex, StorageError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    read_exact(&mut r, &mut magic)?;
    if magic != MAGIC {
        return Err(StorageError::BadMagic);
    }
    let version = read_u32(&mut r)?;
    if version == VERSION_V2 {
        // Reassemble the full byte image (magic + version + rest) and
        // decode through the validated v2 parser.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION_V2.to_le_bytes());
        r.read_to_end(&mut bytes)?;
        return crate::compressed::CompressedIndex::from_bytes(bytes).map(|c| c.to_reach_index());
    }
    if version != VERSION {
        return Err(StorageError::BadVersion(version));
    }
    let n = read_u64(&mut r)? as usize;
    if n > u32::MAX as usize {
        return Err(StorageError::Corrupt("vertex count exceeds u32"));
    }
    // Cap speculative reservations: a hostile header can claim up to
    // u32::MAX vertices, so growth beyond this bound must be earned by
    // actually supplying the bytes (truncation then fails fast as Corrupt).
    const PREALLOC_CAP: usize = 1 << 16;
    let mut sides: Vec<Vec<Vec<VertexId>>> = Vec::with_capacity(2);
    for _ in 0..2 {
        let mut offsets = Vec::with_capacity((n + 1).min(PREALLOC_CAP));
        for _ in 0..=n {
            offsets.push(read_u64(&mut r)?);
        }
        if offsets[0] != 0 || offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(StorageError::Corrupt("offsets not monotone from zero"));
        }
        let mut lists = Vec::with_capacity(n.min(PREALLOC_CAP));
        for v in 0..n {
            let len = offsets[v + 1] - offsets[v];
            // A label list is a strictly sorted set of vertex ids < n, so
            // any claimed length above n is an offset overflow — reject it
            // before reserving memory for it.
            if len > n as u64 {
                return Err(StorageError::Corrupt("label list longer than vertex count"));
            }
            let len = len as usize;
            let mut list = Vec::with_capacity(len.min(PREALLOC_CAP));
            for _ in 0..len {
                list.push(read_u32(&mut r)?);
            }
            if list.windows(2).any(|w| w[0] >= w[1]) {
                return Err(StorageError::Corrupt("label list not strictly sorted"));
            }
            if list.last().is_some_and(|&x| x as usize >= n) {
                return Err(StorageError::Corrupt("label entry out of vertex range"));
            }
            lists.push(list);
        }
        sides.push(lists);
    }
    let out_labels = sides.pop().expect("two sides");
    let in_labels = sides.pop().expect("two sides");
    Ok(ReachIndex::from_labels(in_labels, out_labels))
}

/// Saves the index to a file path.
pub fn save_index<P: AsRef<Path>>(idx: &ReachIndex, path: P) -> Result<(), StorageError> {
    write_index(idx, std::fs::File::create(path)?)
}

/// Loads an index from a file path.
pub fn load_index<P: AsRef<Path>>(path: P) -> Result<ReachIndex, StorageError> {
    read_index(std::fs::File::open(path)?)
}

/// Serializes the index in the v2 section-table format and returns the
/// byte image — the form [`write_index_v2`] writes and
/// [`parse_v2`] reads back.
pub fn encode_index_v2(
    idx: &ReachIndex,
    codec_id: CodecId,
    bloom_cfg: Option<BloomConfig>,
) -> Vec<u8> {
    let codec = codec_id.codec();
    let n = idx.num_vertices();

    // Encode both directions' label runs and their offset tables.
    let encode_side = |out_side: bool| {
        let mut dat = Vec::new();
        let mut offs = Vec::with_capacity(n + 1);
        offs.push(0u64);
        for v in 0..n as VertexId {
            let list = if out_side {
                idx.out_label(v)
            } else {
                idx.in_label(v)
            };
            codec.encode(list, &mut dat);
            offs.push(dat.len() as u64);
        }
        (offs, dat)
    };
    let (ioffs, idat) = encode_side(false);
    let (ooffs, odat) = encode_side(true);

    // Offsets shrink to u32 whenever both data sections allow it — for
    // typical label sizes the v1 format's fixed 16 B/vertex of u64
    // offsets is most of what compression claws back.
    let max_dat = idat.len().max(odat.len()) as u64;
    let offset_width: u32 = if max_dat <= u64::from(u32::MAX) { 4 } else { 8 };
    let pack_offsets = |offs: &[u64]| {
        let mut out = Vec::with_capacity(offs.len() * offset_width as usize);
        for &o in offs {
            if offset_width == 4 {
                out.extend_from_slice(&(o as u32).to_le_bytes());
            } else {
                out.extend_from_slice(&o.to_le_bytes());
            }
        }
        out
    };
    let ioff = pack_offsets(&ioffs);
    let ooff = pack_offsets(&ooffs);

    // Optional per-vertex Bloom filters over L_out(v), serialized as
    // whole little-endian words so probes address bytes directly.
    let blom = bloom_cfg.map(|cfg| {
        let bpv = cfg.bytes_per_vertex();
        let mut buf = vec![0u8; n * bpv];
        for v in 0..n as VertexId {
            let slot = &mut buf[v as usize * bpv..(v as usize + 1) * bpv];
            for &x in idx.out_label(v) {
                bloom::set_bits(slot, x, cfg.k as usize);
            }
        }
        buf
    });

    let (bloom_k, bloom_bpv) = match bloom_cfg {
        Some(cfg) => (cfg.k, cfg.bytes_per_vertex() as u32),
        None => (0, 0),
    };
    let mut meta = Vec::with_capacity(META_LEN);
    meta.extend_from_slice(&(n as u64).to_le_bytes());
    meta.extend_from_slice(&(codec_id as u32).to_le_bytes());
    meta.extend_from_slice(&offset_width.to_le_bytes());
    meta.extend_from_slice(&bloom_k.to_le_bytes());
    meta.extend_from_slice(&bloom_bpv.to_le_bytes());

    let mut sections: Vec<([u8; 4], &[u8])> = vec![
        (SEC_META, &meta),
        (SEC_IOFF, &ioff),
        (SEC_IDAT, &idat),
        (SEC_OOFF, &ooff),
        (SEC_ODAT, &odat),
    ];
    if let Some(b) = &blom {
        sections.push((SEC_BLOM, b));
    }

    let header_len = 4 + 4 + 4 + sections.len() * SECTION_ENTRY_LEN;
    let total = header_len + sections.iter().map(|(_, s)| s.len()).sum::<usize>();
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION_V2.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    let mut offset = header_len as u64;
    for (tag, data) in &sections {
        out.extend_from_slice(tag);
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        offset += data.len() as u64;
    }
    for (_, data) in &sections {
        out.extend_from_slice(data);
    }
    out
}

/// Writes the index in the v2 section-table format.
pub fn write_index_v2<W: Write>(
    idx: &ReachIndex,
    codec_id: CodecId,
    bloom_cfg: Option<BloomConfig>,
    writer: W,
) -> Result<(), StorageError> {
    let mut w = BufWriter::new(writer);
    w.write_all(&encode_index_v2(idx, codec_id, bloom_cfg))?;
    w.flush()?;
    Ok(())
}

/// Saves the index to a file path in the v2 format.
pub fn save_index_v2<P: AsRef<Path>>(
    idx: &ReachIndex,
    path: P,
    codec_id: CodecId,
    bloom_cfg: Option<BloomConfig>,
) -> Result<(), StorageError> {
    write_index_v2(idx, codec_id, bloom_cfg, std::fs::File::create(path)?)
}

/// The validated shape of a v2 byte image: byte *ranges* of every
/// section (never borrowed slices, so one layout serves any backing —
/// heap buffer or mmap) plus the decoded META parameters.
///
/// Produced only by [`parse_v2`], which guarantees every range is in
/// bounds, every offset table is monotone and consistent with its data
/// section, and **every label run passes its codec's full validation**
/// — so query-time decoding is infallible.
#[derive(Clone, Debug)]
pub struct V2Layout {
    pub(crate) n: usize,
    pub(crate) codec: CodecId,
    pub(crate) offset_width: usize,
    pub(crate) bloom_k: u32,
    pub(crate) bloom_bytes_per_vertex: usize,
    pub(crate) in_off: Range<usize>,
    pub(crate) in_dat: Range<usize>,
    pub(crate) out_off: Range<usize>,
    pub(crate) out_dat: Range<usize>,
    pub(crate) blom: Option<Range<usize>>,
}

impl V2Layout {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// The label-run codec.
    pub fn codec(&self) -> CodecId {
        self.codec
    }

    /// The Bloom pre-filter parameters, when a BLOM section is present.
    pub fn bloom(&self) -> Option<BloomConfig> {
        self.blom.as_ref().map(|_| BloomConfig {
            bits_per_vertex: (self.bloom_bytes_per_vertex * 8) as u32,
            k: self.bloom_k,
        })
    }

    /// Reads the `i`-th entry of an offset table (`i ≤ n`).
    #[inline]
    pub(crate) fn offset_at(&self, bytes: &[u8], table: &Range<usize>, i: usize) -> usize {
        let base = table.start + i * self.offset_width;
        if self.offset_width == 4 {
            u32::from_le_bytes(bytes[base..base + 4].try_into().expect("offset bytes")) as usize
        } else {
            u64::from_le_bytes(bytes[base..base + 8].try_into().expect("offset bytes")) as usize
        }
    }
}

/// Parses and fully validates a v2 byte image.
///
/// Same contract as [`read_index`]: every malformed input — bad magic or
/// version, an oversized or out-of-bounds section table, duplicate or
/// missing required sections, inconsistent META, non-monotone offsets,
/// or any label run its codec rejects — yields a typed [`StorageError`];
/// the parser never panics and its only header-driven allocation is the
/// section table, capped at 1024 entries. Unknown section
/// tags are ignored (forward compatibility).
pub fn parse_v2(bytes: &[u8]) -> Result<V2Layout, StorageError> {
    let corrupt = |m: &'static str| StorageError::Corrupt(m);
    if bytes.len() < 12 {
        return Err(corrupt("unexpected end of file"));
    }
    if bytes[..4] != MAGIC {
        return Err(StorageError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("version bytes"));
    if version != VERSION_V2 {
        return Err(StorageError::BadVersion(version));
    }
    let count = u32::from_le_bytes(bytes[8..12].try_into().expect("count bytes"));
    if count > MAX_SECTIONS {
        return Err(corrupt("section table too large"));
    }
    let header_len = 12 + count as usize * SECTION_ENTRY_LEN;
    if bytes.len() < header_len {
        return Err(corrupt("unexpected end of file"));
    }

    let mut meta: Option<Range<usize>> = None;
    let mut ioff: Option<Range<usize>> = None;
    let mut idat: Option<Range<usize>> = None;
    let mut ooff: Option<Range<usize>> = None;
    let mut odat: Option<Range<usize>> = None;
    let mut blom: Option<Range<usize>> = None;
    for i in 0..count as usize {
        let base = 12 + i * SECTION_ENTRY_LEN;
        let tag: [u8; 4] = bytes[base..base + 4].try_into().expect("tag bytes");
        let offset = u64::from_le_bytes(bytes[base + 4..base + 12].try_into().expect("offset"));
        let len = u64::from_le_bytes(bytes[base + 12..base + 20].try_into().expect("len"));
        let end = offset
            .checked_add(len)
            .ok_or(corrupt("section bounds overflow"))?;
        if end > bytes.len() as u64 {
            return Err(corrupt("section out of bounds"));
        }
        let range = offset as usize..end as usize;
        let slot = match tag {
            SEC_META => &mut meta,
            SEC_IOFF => &mut ioff,
            SEC_IDAT => &mut idat,
            SEC_OOFF => &mut ooff,
            SEC_ODAT => &mut odat,
            SEC_BLOM => &mut blom,
            // Forward compatibility: a tag this reader does not know is
            // simply skipped, exactly like unknown opcodes in PROTOCOL.md.
            _ => continue,
        };
        if slot.is_some() {
            return Err(corrupt("duplicate section"));
        }
        *slot = Some(range);
    }

    let meta = meta.ok_or(corrupt("missing META section"))?;
    if meta.len() != META_LEN {
        return Err(corrupt("META section length mismatch"));
    }
    let m = &bytes[meta];
    let n64 = u64::from_le_bytes(m[0..8].try_into().expect("n bytes"));
    if n64 > u64::from(u32::MAX) {
        return Err(corrupt("vertex count exceeds u32"));
    }
    let n = n64 as usize;
    let codec = CodecId::from_u32(u32::from_le_bytes(m[8..12].try_into().expect("codec")))
        .ok_or(corrupt("unknown label codec"))?;
    let offset_width = match u32::from_le_bytes(m[12..16].try_into().expect("width")) {
        4 => 4usize,
        8 => 8usize,
        _ => return Err(corrupt("offset width must be 4 or 8")),
    };
    let bloom_k = u32::from_le_bytes(m[16..20].try_into().expect("bloom k"));
    let bloom_bpv = u32::from_le_bytes(m[20..24].try_into().expect("bloom width")) as usize;
    match (&blom, bloom_bpv) {
        (None, 0) => {
            if bloom_k != 0 {
                return Err(corrupt("bloom probes without bloom section"));
            }
        }
        (None, _) => return Err(corrupt("missing BLOM section")),
        (Some(_), 0) => return Err(corrupt("BLOM section without bloom config")),
        (Some(range), bpv) => {
            if bpv % 8 != 0 {
                return Err(corrupt("bloom width not whole words"));
            }
            if !(1..=32).contains(&bloom_k) {
                return Err(corrupt("bloom probe count out of range"));
            }
            let want = (n as u64)
                .checked_mul(bpv as u64)
                .ok_or(corrupt("bloom section bounds overflow"))?;
            if range.len() as u64 != want {
                return Err(corrupt("BLOM section length mismatch"));
            }
        }
    }

    let layout = V2Layout {
        n,
        codec,
        offset_width,
        bloom_k,
        bloom_bytes_per_vertex: bloom_bpv,
        in_off: ioff.ok_or(corrupt("missing IOFF section"))?,
        in_dat: idat.ok_or(corrupt("missing IDAT section"))?,
        out_off: ooff.ok_or(corrupt("missing OOFF section"))?,
        out_dat: odat.ok_or(corrupt("missing ODAT section"))?,
        blom,
    };

    // Offset tables: exactly n+1 entries, monotone from zero, last entry
    // equal to the data section length; every run codec-validated.
    let c = codec.codec();
    for (off, dat) in [
        (&layout.in_off, &layout.in_dat),
        (&layout.out_off, &layout.out_dat),
    ] {
        let want = (n as u64 + 1)
            .checked_mul(offset_width as u64)
            .ok_or(corrupt("offset table bounds overflow"))?;
        if off.len() as u64 != want {
            return Err(corrupt("offset table length mismatch"));
        }
        let mut prev = 0usize;
        for i in 0..=n {
            let o = layout.offset_at(bytes, off, i);
            if (i == 0 && o != 0) || o < prev {
                return Err(corrupt("offsets not monotone from zero"));
            }
            if o > dat.len() {
                return Err(corrupt("offset beyond data section"));
            }
            if i > 0 {
                let run = &bytes[dat.start + prev..dat.start + o];
                c.validate_list(run, n).map_err(StorageError::Corrupt)?;
            }
            prev = o;
        }
        if prev != dat.len() {
            return Err(corrupt("data section has trailing bytes"));
        }
    }
    Ok(layout)
}

/// `read_exact` with truncation reported as data corruption: a file that
/// ends mid-record is a malformed index, not an I/O fault.
fn read_exact<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), StorageError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StorageError::Corrupt("unexpected end of file")
        } else {
            StorageError::Io(e)
        }
    })
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, StorageError> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, StorageError> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReachIndex {
        ReachIndex::from_labels(
            vec![vec![0], vec![0, 1], vec![2]],
            vec![vec![0, 2], vec![1], vec![]],
        )
    }

    #[test]
    fn round_trip() {
        let idx = sample();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        assert_eq!(read_index(&buf[..]).unwrap(), idx);
    }

    #[test]
    fn empty_index_round_trips() {
        let idx = ReachIndex::new(0);
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        assert_eq!(read_index(&buf[..]).unwrap(), idx);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_index(&b"NOPE...."[..]).unwrap_err();
        assert!(matches!(err, StorageError::BadMagic), "{err}");
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_index(&sample(), &mut buf).unwrap();
        buf[4] = 99;
        assert!(matches!(
            read_index(&buf[..]).unwrap_err(),
            StorageError::BadVersion(99)
        ));
    }

    #[test]
    fn truncation_at_every_prefix_is_corrupt_or_bad_magic() {
        // Cutting the file anywhere — mid-magic, mid-header, mid-offsets,
        // mid-entries — must yield a typed malformed-input error, never a
        // panic and never a raw I/O error for what is really corruption.
        let mut buf = Vec::new();
        write_index(&sample(), &mut buf).unwrap();
        for cut in 0..buf.len() {
            match read_index(&buf[..cut]).unwrap_err() {
                StorageError::Corrupt(_) | StorageError::BadMagic => {}
                other => panic!("prefix of {cut} bytes: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn offset_overflow_rejected_before_allocation() {
        // A single-vertex index whose offset table claims u64::MAX label
        // entries: must be rejected as Corrupt without attempting the
        // (astronomically large) allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes()); // n = 1
        buf.extend_from_slice(&0u64.to_le_bytes()); // offsets[0]
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // offsets[1]
        assert!(matches!(
            read_index(&buf[..]).unwrap_err(),
            StorageError::Corrupt("label list longer than vertex count")
        ));
    }

    #[test]
    fn non_monotone_offsets_rejected() {
        let mut buf = Vec::new();
        write_index(&sample(), &mut buf).unwrap();
        // The in-side offset table [0, 1, 3, 4] starts right after
        // magic+version+n; raise offsets[1] to 7 so the table decreases.
        let off1 = 4 + 4 + 8 + 8;
        buf[off1..off1 + 8].copy_from_slice(&7u64.to_le_bytes());
        assert!(matches!(
            read_index(&buf[..]).unwrap_err(),
            StorageError::Corrupt("offsets not monotone from zero")
        ));
    }

    #[test]
    fn nonzero_first_offset_rejected() {
        let mut buf = Vec::new();
        write_index(&sample(), &mut buf).unwrap();
        let off0 = 4 + 4 + 8;
        buf[off0..off0 + 8].copy_from_slice(&1u64.to_le_bytes());
        assert!(matches!(
            read_index(&buf[..]).unwrap_err(),
            StorageError::Corrupt("offsets not monotone from zero")
        ));
    }

    #[test]
    fn out_of_range_label_entry_rejected() {
        // Overwrite the first entry of L_in(0) (value 0) with 99 — a
        // vertex id the 3-vertex index cannot contain.
        let mut buf = Vec::new();
        write_index(&sample(), &mut buf).unwrap();
        let entry_base = 4 + 4 + 8 + 4 * 8; // magic+version+n+offsets[0..=3]
        buf[entry_base..entry_base + 4].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            read_index(&buf[..]).unwrap_err(),
            StorageError::Corrupt("label entry out of vertex range")
        ));
    }

    #[test]
    fn single_byte_flips_never_panic() {
        // Flip every byte of a valid file in turn: each variant must
        // either decode (the flip may hit an entry and still form a valid
        // index) or fail with a typed error — never panic or abort.
        let mut buf = Vec::new();
        write_index(&sample(), &mut buf).unwrap();
        for pos in 0..buf.len() {
            let mut mutated = buf.clone();
            mutated[pos] ^= 0xFF;
            let _ = read_index(&mutated[..]);
        }
    }

    #[test]
    fn unsorted_content_detected() {
        // Hand-craft a file whose single label list is (2, 1).
        let idx = ReachIndex::from_labels(vec![vec![1, 2]], vec![vec![]]);
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        // Entries of L_in(0) start right after magic+version+n+offsets.
        let entry_base = 4 + 4 + 8 + 2 * 8;
        buf[entry_base..entry_base + 4].copy_from_slice(&2u32.to_le_bytes());
        buf[entry_base + 4..entry_base + 8].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            read_index(&buf[..]).unwrap_err(),
            StorageError::Corrupt(_)
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("reach_index_storage_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.ridx");
        save_index(&sample(), &path).unwrap();
        assert_eq!(load_index(&path).unwrap(), sample());
        std::fs::remove_file(path).ok();
    }
}
