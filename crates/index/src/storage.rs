//! Compact binary persistence for [`ReachIndex`].
//!
//! The paper's deployment model stores the finished index on one query
//! machine; this module provides the on-disk format: a little-endian CSR
//! packing (`4 B` per label entry plus one offset per vertex per
//! direction), matching the byte counts [`ReachIndex::size_bytes`]
//! reports.
//!
//! Layout: magic `RIDX` + version, `n`, then for each direction an offset
//! array (`n + 1` × u64) followed by the entry array (u32s).

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use reach_graph::VertexId;

use crate::ReachIndex;

const MAGIC: [u8; 4] = *b"RIDX";
const VERSION: u32 = 1;

/// Errors from index persistence.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The bytes are not an index file (bad magic).
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Structurally invalid content (truncated or inconsistent offsets).
    Corrupt(&'static str),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::BadMagic => write!(f, "not a reachability index file"),
            StorageError::BadVersion(v) => write!(f, "unsupported index version {v}"),
            StorageError::Corrupt(what) => write!(f, "corrupt index file: {what}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Writes the index to a writer in the binary format.
pub fn write_index<W: Write>(idx: &ReachIndex, writer: W) -> Result<(), StorageError> {
    let mut w = BufWriter::new(writer);
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let n = idx.num_vertices() as u64;
    w.write_all(&n.to_le_bytes())?;
    for side in [false, true] {
        let label = |v: VertexId| {
            if side {
                idx.out_label(v)
            } else {
                idx.in_label(v)
            }
        };
        let mut offset = 0u64;
        w.write_all(&offset.to_le_bytes())?;
        for v in 0..n as VertexId {
            offset += label(v).len() as u64;
            w.write_all(&offset.to_le_bytes())?;
        }
        for v in 0..n as VertexId {
            for &x in label(v) {
                w.write_all(&x.to_le_bytes())?;
            }
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads an index back from a reader.
///
/// Every malformed input — wrong magic, truncation anywhere in the
/// stream, non-monotone or overflowing offsets, unsorted or out-of-range
/// label entries — is reported as a typed [`StorageError`]
/// ([`StorageError::BadMagic`] / [`StorageError::Corrupt`], or
/// [`StorageError::BadVersion`]); the reader never panics and never
/// allocates based on unvalidated lengths. [`StorageError::Io`] is
/// reserved for genuine transport failures.
pub fn read_index<R: Read>(reader: R) -> Result<ReachIndex, StorageError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    read_exact(&mut r, &mut magic)?;
    if magic != MAGIC {
        return Err(StorageError::BadMagic);
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(StorageError::BadVersion(version));
    }
    let n = read_u64(&mut r)? as usize;
    if n > u32::MAX as usize {
        return Err(StorageError::Corrupt("vertex count exceeds u32"));
    }
    // Cap speculative reservations: a hostile header can claim up to
    // u32::MAX vertices, so growth beyond this bound must be earned by
    // actually supplying the bytes (truncation then fails fast as Corrupt).
    const PREALLOC_CAP: usize = 1 << 16;
    let mut sides: Vec<Vec<Vec<VertexId>>> = Vec::with_capacity(2);
    for _ in 0..2 {
        let mut offsets = Vec::with_capacity((n + 1).min(PREALLOC_CAP));
        for _ in 0..=n {
            offsets.push(read_u64(&mut r)?);
        }
        if offsets[0] != 0 || offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(StorageError::Corrupt("offsets not monotone from zero"));
        }
        let mut lists = Vec::with_capacity(n.min(PREALLOC_CAP));
        for v in 0..n {
            let len = offsets[v + 1] - offsets[v];
            // A label list is a strictly sorted set of vertex ids < n, so
            // any claimed length above n is an offset overflow — reject it
            // before reserving memory for it.
            if len > n as u64 {
                return Err(StorageError::Corrupt("label list longer than vertex count"));
            }
            let len = len as usize;
            let mut list = Vec::with_capacity(len.min(PREALLOC_CAP));
            for _ in 0..len {
                list.push(read_u32(&mut r)?);
            }
            if list.windows(2).any(|w| w[0] >= w[1]) {
                return Err(StorageError::Corrupt("label list not strictly sorted"));
            }
            if list.last().is_some_and(|&x| x as usize >= n) {
                return Err(StorageError::Corrupt("label entry out of vertex range"));
            }
            lists.push(list);
        }
        sides.push(lists);
    }
    let out_labels = sides.pop().expect("two sides");
    let in_labels = sides.pop().expect("two sides");
    Ok(ReachIndex::from_labels(in_labels, out_labels))
}

/// Saves the index to a file path.
pub fn save_index<P: AsRef<Path>>(idx: &ReachIndex, path: P) -> Result<(), StorageError> {
    write_index(idx, std::fs::File::create(path)?)
}

/// Loads an index from a file path.
pub fn load_index<P: AsRef<Path>>(path: P) -> Result<ReachIndex, StorageError> {
    read_index(std::fs::File::open(path)?)
}

/// `read_exact` with truncation reported as data corruption: a file that
/// ends mid-record is a malformed index, not an I/O fault.
fn read_exact<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), StorageError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StorageError::Corrupt("unexpected end of file")
        } else {
            StorageError::Io(e)
        }
    })
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, StorageError> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, StorageError> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReachIndex {
        ReachIndex::from_labels(
            vec![vec![0], vec![0, 1], vec![2]],
            vec![vec![0, 2], vec![1], vec![]],
        )
    }

    #[test]
    fn round_trip() {
        let idx = sample();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        assert_eq!(read_index(&buf[..]).unwrap(), idx);
    }

    #[test]
    fn empty_index_round_trips() {
        let idx = ReachIndex::new(0);
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        assert_eq!(read_index(&buf[..]).unwrap(), idx);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_index(&b"NOPE...."[..]).unwrap_err();
        assert!(matches!(err, StorageError::BadMagic), "{err}");
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_index(&sample(), &mut buf).unwrap();
        buf[4] = 99;
        assert!(matches!(
            read_index(&buf[..]).unwrap_err(),
            StorageError::BadVersion(99)
        ));
    }

    #[test]
    fn truncation_at_every_prefix_is_corrupt_or_bad_magic() {
        // Cutting the file anywhere — mid-magic, mid-header, mid-offsets,
        // mid-entries — must yield a typed malformed-input error, never a
        // panic and never a raw I/O error for what is really corruption.
        let mut buf = Vec::new();
        write_index(&sample(), &mut buf).unwrap();
        for cut in 0..buf.len() {
            match read_index(&buf[..cut]).unwrap_err() {
                StorageError::Corrupt(_) | StorageError::BadMagic => {}
                other => panic!("prefix of {cut} bytes: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn offset_overflow_rejected_before_allocation() {
        // A single-vertex index whose offset table claims u64::MAX label
        // entries: must be rejected as Corrupt without attempting the
        // (astronomically large) allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes()); // n = 1
        buf.extend_from_slice(&0u64.to_le_bytes()); // offsets[0]
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // offsets[1]
        assert!(matches!(
            read_index(&buf[..]).unwrap_err(),
            StorageError::Corrupt("label list longer than vertex count")
        ));
    }

    #[test]
    fn non_monotone_offsets_rejected() {
        let mut buf = Vec::new();
        write_index(&sample(), &mut buf).unwrap();
        // The in-side offset table [0, 1, 3, 4] starts right after
        // magic+version+n; raise offsets[1] to 7 so the table decreases.
        let off1 = 4 + 4 + 8 + 8;
        buf[off1..off1 + 8].copy_from_slice(&7u64.to_le_bytes());
        assert!(matches!(
            read_index(&buf[..]).unwrap_err(),
            StorageError::Corrupt("offsets not monotone from zero")
        ));
    }

    #[test]
    fn nonzero_first_offset_rejected() {
        let mut buf = Vec::new();
        write_index(&sample(), &mut buf).unwrap();
        let off0 = 4 + 4 + 8;
        buf[off0..off0 + 8].copy_from_slice(&1u64.to_le_bytes());
        assert!(matches!(
            read_index(&buf[..]).unwrap_err(),
            StorageError::Corrupt("offsets not monotone from zero")
        ));
    }

    #[test]
    fn out_of_range_label_entry_rejected() {
        // Overwrite the first entry of L_in(0) (value 0) with 99 — a
        // vertex id the 3-vertex index cannot contain.
        let mut buf = Vec::new();
        write_index(&sample(), &mut buf).unwrap();
        let entry_base = 4 + 4 + 8 + 4 * 8; // magic+version+n+offsets[0..=3]
        buf[entry_base..entry_base + 4].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            read_index(&buf[..]).unwrap_err(),
            StorageError::Corrupt("label entry out of vertex range")
        ));
    }

    #[test]
    fn single_byte_flips_never_panic() {
        // Flip every byte of a valid file in turn: each variant must
        // either decode (the flip may hit an entry and still form a valid
        // index) or fail with a typed error — never panic or abort.
        let mut buf = Vec::new();
        write_index(&sample(), &mut buf).unwrap();
        for pos in 0..buf.len() {
            let mut mutated = buf.clone();
            mutated[pos] ^= 0xFF;
            let _ = read_index(&mutated[..]);
        }
    }

    #[test]
    fn unsorted_content_detected() {
        // Hand-craft a file whose single label list is (2, 1).
        let idx = ReachIndex::from_labels(vec![vec![1, 2]], vec![vec![]]);
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        // Entries of L_in(0) start right after magic+version+n+offsets.
        let entry_base = 4 + 4 + 8 + 2 * 8;
        buf[entry_base..entry_base + 4].copy_from_slice(&2u32.to_le_bytes());
        buf[entry_base + 4..entry_base + 8].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            read_index(&buf[..]).unwrap_err(),
            StorageError::Corrupt(_)
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("reach_index_storage_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.ridx");
        save_index(&sample(), &path).unwrap();
        assert_eq!(load_index(&path).unwrap(), sample());
        std::fs::remove_file(path).ok();
    }
}
