//! The common query interface over reachability back-ends.
//!
//! The paper's taxonomy (§I) has three kinds of approach: index-free (online
//! search), index-assisted (BFL), and index-only (TOL / DRL). All three are
//! benchmarked through this one trait so the harness treats them uniformly.

use reach_graph::{traverse, DiGraph, VertexId};

/// Anything that can answer "can `s` reach `t`?".
pub trait ReachabilityOracle {
    /// `true` iff there is a (possibly empty) path from `s` to `t`.
    fn reachable(&self, s: VertexId, t: VertexId) -> bool;
}

// Forwarding impls so references and owning pointers are oracles
// themselves — generic harness code takes `impl ReachabilityOracle`
// and callers hand it `&idx`, a boxed trait object, or a shared
// `Arc<ReachIndex>` directly, with no adapter shims.
impl<T: ReachabilityOracle + ?Sized> ReachabilityOracle for &T {
    fn reachable(&self, s: VertexId, t: VertexId) -> bool {
        (**self).reachable(s, t)
    }
}

impl<T: ReachabilityOracle + ?Sized> ReachabilityOracle for Box<T> {
    fn reachable(&self, s: VertexId, t: VertexId) -> bool {
        (**self).reachable(s, t)
    }
}

impl<T: ReachabilityOracle + ?Sized> ReachabilityOracle for std::sync::Arc<T> {
    fn reachable(&self, s: VertexId, t: VertexId) -> bool {
        (**self).reachable(s, t)
    }
}

/// The index-free baseline: a fresh forward BFS per query.
pub struct OnlineBfsOracle<'g> {
    graph: &'g DiGraph,
}

impl<'g> OnlineBfsOracle<'g> {
    /// Wraps a graph for online querying.
    pub fn new(graph: &'g DiGraph) -> Self {
        OnlineBfsOracle { graph }
    }
}

impl ReachabilityOracle for OnlineBfsOracle<'_> {
    fn reachable(&self, s: VertexId, t: VertexId) -> bool {
        traverse::reaches(self.graph, s, t)
    }
}

impl ReachabilityOracle for reach_graph::TransitiveClosure {
    fn reachable(&self, s: VertexId, t: VertexId) -> bool {
        self.reaches(s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::{fixtures, TransitiveClosure};

    #[test]
    fn pointer_forwarding_needs_no_adapters() {
        fn answer(o: impl ReachabilityOracle) -> bool {
            o.reachable(0, 8)
        }
        let g = fixtures::paper_graph();
        let tc = TransitiveClosure::compute(&g);
        let expect = tc.reachable(0, 8);
        assert_eq!(answer(&tc), expect, "&T");
        let boxed: Box<dyn ReachabilityOracle> = Box::new(TransitiveClosure::compute(&g));
        assert_eq!(answer(boxed), expect, "Box<dyn T>");
        let shared = std::sync::Arc::new(TransitiveClosure::compute(&g));
        assert_eq!(answer(std::sync::Arc::clone(&shared)), expect, "Arc<T>");
        assert_eq!(answer(&shared), expect, "&Arc<T>");
    }

    #[test]
    fn online_oracle_matches_closure() {
        let g = fixtures::paper_graph();
        let tc = TransitiveClosure::compute(&g);
        let online = OnlineBfsOracle::new(&g);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(online.reachable(s, t), tc.reachable(s, t));
            }
        }
    }
}
