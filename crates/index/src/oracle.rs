//! The common query interface over reachability back-ends.
//!
//! The paper's taxonomy (§I) has three kinds of approach: index-free (online
//! search), index-assisted (BFL), and index-only (TOL / DRL). All three are
//! benchmarked through this one trait so the harness treats them uniformly.

use reach_graph::{traverse, DiGraph, VertexId};

/// Anything that can answer "can `s` reach `t`?".
pub trait ReachabilityOracle {
    /// `true` iff there is a (possibly empty) path from `s` to `t`.
    fn reachable(&self, s: VertexId, t: VertexId) -> bool;
}

/// The index-free baseline: a fresh forward BFS per query.
pub struct OnlineBfsOracle<'g> {
    graph: &'g DiGraph,
}

impl<'g> OnlineBfsOracle<'g> {
    /// Wraps a graph for online querying.
    pub fn new(graph: &'g DiGraph) -> Self {
        OnlineBfsOracle { graph }
    }
}

impl ReachabilityOracle for OnlineBfsOracle<'_> {
    fn reachable(&self, s: VertexId, t: VertexId) -> bool {
        traverse::reaches(self.graph, s, t)
    }
}

impl ReachabilityOracle for reach_graph::TransitiveClosure {
    fn reachable(&self, s: VertexId, t: VertexId) -> bool {
        self.reaches(s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::{fixtures, TransitiveClosure};

    #[test]
    fn online_oracle_matches_closure() {
        let g = fixtures::paper_graph();
        let tc = TransitiveClosure::compute(&g);
        let online = OnlineBfsOracle::new(&g);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(online.reachable(s, t), tc.reachable(s, t));
            }
        }
    }
}
