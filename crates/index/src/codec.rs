//! Label-list codecs: pluggable encodings of a vertex's sorted label list.
//!
//! A [`ReachIndex`](crate::ReachIndex) stores each `L_in(v)` / `L_out(v)`
//! as a strictly id-sorted `Vec<u32>`. For the compressed v2 on-disk
//! format (see [`crate::storage`]) and the out-of-core read path, each
//! list is instead a byte run decoded through a [`LabelCodec`]:
//!
//! * [`Plain`] — 4 little-endian bytes per entry; the identity encoding.
//! * [`DeltaVarint`] — the first entry as a LEB128 varint, then
//!   `varint(delta − 1)` per subsequent entry. Strict sortedness means
//!   every delta is ≥ 1, so the `− 1` bias shaves the common
//!   delta-of-one down to a single `0x00` byte.
//!
//! Decoding is a **streaming cursor** ([`LabelCursor`]): the sorted-merge
//! intersection that answers `q(s, t)` walks both encoded lists without
//! materializing a `Vec` — the property that keeps the mmap-backed read
//! path allocation-free per query.
//!
//! # Validation contract
//!
//! [`LabelCodec::validate_list`] checks a byte run completely — canonical
//! varints only (no overlong forms), no truncation mid-varint, no `u32`
//! overflow, strict sortedness, entries in `0..n` — so that
//! [`LabelCodec::cursor`] may assume well-formed bytes and stay
//! infallible on the hot path. All v2 readers validate every list at
//! open time before serving a single query.

use reach_graph::VertexId;

/// Identifies a label-list encoding; stored in the v2 file's META section.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum CodecId {
    /// 4 LE bytes per entry (the v1 representation, sectioned).
    Plain = 0,
    /// Delta + LEB128 varint with a `−1` bias on deltas.
    DeltaVarint = 1,
}

impl CodecId {
    /// Decodes a META-section codec tag. Unknown tags are a format error.
    pub fn from_u32(v: u32) -> Option<CodecId> {
        match v {
            0 => Some(CodecId::Plain),
            1 => Some(CodecId::DeltaVarint),
            _ => None,
        }
    }

    /// Stable lowercase name, used in bench JSON and obs labels.
    pub fn name(self) -> &'static str {
        match self {
            CodecId::Plain => "plain",
            CodecId::DeltaVarint => "delta-varint",
        }
    }

    /// The codec implementation behind this id.
    pub fn codec(self) -> &'static dyn LabelCodec {
        match self {
            CodecId::Plain => &Plain,
            CodecId::DeltaVarint => &DeltaVarint,
        }
    }
}

/// A label-list encoding. Implementations are stateless singletons.
pub trait LabelCodec: Send + Sync {
    /// The id written into the v2 META section.
    fn id(&self) -> CodecId;

    /// Appends the encoding of a strictly sorted list to `out`.
    fn encode(&self, list: &[VertexId], out: &mut Vec<u8>);

    /// A streaming decoder over bytes previously accepted by
    /// [`LabelCodec::validate_list`]. Infallible: feeding unvalidated
    /// bytes is a logic error (the cursor may then stop early or yield
    /// garbage, but never panics or reads out of bounds).
    fn cursor<'a>(&self, bytes: &'a [u8]) -> LabelCursor<'a>;

    /// Fully validates one encoded list against the vertex count,
    /// returning the number of entries. Errors name the defect and map
    /// to [`StorageError::Corrupt`](crate::storage::StorageError).
    fn validate_list(&self, bytes: &[u8], num_vertices: usize) -> Result<u32, &'static str>;
}

/// The identity codec: 4 little-endian bytes per entry.
#[derive(Clone, Copy, Debug, Default)]
pub struct Plain;

impl LabelCodec for Plain {
    fn id(&self) -> CodecId {
        CodecId::Plain
    }

    fn encode(&self, list: &[VertexId], out: &mut Vec<u8>) {
        for &v in list {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn cursor<'a>(&self, bytes: &'a [u8]) -> LabelCursor<'a> {
        LabelCursor::Plain { bytes }
    }

    fn validate_list(&self, bytes: &[u8], num_vertices: usize) -> Result<u32, &'static str> {
        if !bytes.len().is_multiple_of(4) {
            return Err("plain label run not a multiple of 4 bytes");
        }
        let mut prev: Option<u32> = None;
        for chunk in bytes.chunks_exact(4) {
            let v = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            if let Some(p) = prev {
                if v <= p {
                    return Err("label list not strictly sorted");
                }
            }
            if v as usize >= num_vertices {
                return Err("label entry out of vertex range");
            }
            prev = Some(v);
        }
        Ok((bytes.len() / 4) as u32)
    }
}

/// Delta + varint codec: `varint(l[0])`, then `varint(l[i] − l[i−1] − 1)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeltaVarint;

impl LabelCodec for DeltaVarint {
    fn id(&self) -> CodecId {
        CodecId::DeltaVarint
    }

    fn encode(&self, list: &[VertexId], out: &mut Vec<u8>) {
        let mut prev = 0u32;
        for (i, &v) in list.iter().enumerate() {
            let delta = if i == 0 { v } else { v - prev - 1 };
            write_varint(delta, out);
            prev = v;
        }
    }

    fn cursor<'a>(&self, bytes: &'a [u8]) -> LabelCursor<'a> {
        LabelCursor::Delta {
            bytes,
            pos: 0,
            prev: 0,
            first: true,
        }
    }

    fn validate_list(&self, bytes: &[u8], num_vertices: usize) -> Result<u32, &'static str> {
        let mut pos = 0usize;
        let mut prev = 0u64;
        let mut first = true;
        let mut count = 0u32;
        while pos < bytes.len() {
            let (raw, next) = read_varint_checked(bytes, pos)?;
            pos = next;
            let v = if first {
                first = false;
                raw
            } else {
                prev + 1 + raw
            };
            if v > u32::MAX as u64 {
                return Err("label entry exceeds u32");
            }
            if v >= num_vertices as u64 {
                return Err("label entry out of vertex range");
            }
            prev = v;
            count = count
                .checked_add(1)
                .ok_or("label list longer than vertex count")?;
            if count as usize > num_vertices {
                return Err("label list longer than vertex count");
            }
        }
        Ok(count)
    }
}

/// LEB128-encodes `v` (1–5 bytes for a `u32`).
#[inline]
pub fn write_varint(mut v: u32, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one canonical LEB128 `u32` at `pos`, returning `(value, next_pos)`.
///
/// Rejects truncation mid-varint, encodings longer than 5 bytes, values
/// above `u32::MAX`, and non-canonical (overlong) forms whose final byte
/// contributes no bits.
fn read_varint_checked(bytes: &[u8], mut pos: usize) -> Result<(u64, usize), &'static str> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(pos).ok_or("varint truncated mid-value")?;
        pos += 1;
        let payload = u64::from(byte & 0x7F);
        if shift == 28 && payload > 0x0F {
            return Err("varint exceeds u32");
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            if shift > 0 && payload == 0 {
                return Err("overlong varint encoding");
            }
            return Ok((value, pos));
        }
        shift += 7;
        if shift > 28 {
            return Err("varint exceeds u32");
        }
    }
}

/// A streaming decoder over one validated encoded label list.
///
/// Yields entries in strictly ascending order; `Iterator` is implemented
/// so cursors compose with adapters, but the merge helpers below are the
/// intended hot-path consumers.
#[derive(Clone, Debug)]
pub enum LabelCursor<'a> {
    /// Cursor over 4-byte LE entries.
    Plain {
        /// Remaining undecoded bytes.
        bytes: &'a [u8],
    },
    /// Cursor over delta-varint bytes.
    Delta {
        /// The full encoded run.
        bytes: &'a [u8],
        /// Byte position of the next varint.
        pos: usize,
        /// Last decoded value (delta base).
        prev: u32,
        /// Whether the next varint is the absolute first entry.
        first: bool,
    },
}

impl LabelCursor<'_> {
    /// The next entry, or `None` at end of list.
    #[inline]
    pub fn next_value(&mut self) -> Option<VertexId> {
        match self {
            LabelCursor::Plain { bytes } => {
                if bytes.len() < 4 {
                    return None;
                }
                let v = u32::from_le_bytes(bytes[..4].try_into().expect("4-byte head"));
                *bytes = &bytes[4..];
                Some(v)
            }
            LabelCursor::Delta {
                bytes,
                pos,
                prev,
                first,
            } => {
                if *pos >= bytes.len() {
                    return None;
                }
                // Bytes were validated at open; decode without re-checking
                // canonicality, but stay in-bounds regardless.
                let mut value = 0u32;
                let mut shift = 0u32;
                loop {
                    let byte = *bytes.get(*pos)?;
                    *pos += 1;
                    value |= u32::from(byte & 0x7F).wrapping_shl(shift);
                    if byte & 0x80 == 0 {
                        break;
                    }
                    shift += 7;
                    if shift > 28 {
                        return None;
                    }
                }
                let v = if *first {
                    *first = false;
                    value
                } else {
                    prev.wrapping_add(1).wrapping_add(value)
                };
                *prev = v;
                Some(v)
            }
        }
    }
}

impl Iterator for LabelCursor<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        self.next_value()
    }
}

/// Merge-intersection test over two streaming cursors; the encoded
/// counterpart of [`intersects_sorted`](crate::intersects_sorted).
/// Returns `(hit, scanned)` where `scanned` counts entries consumed —
/// the cost metric `query_scan` reports.
pub fn intersects_cursors(mut a: LabelCursor<'_>, mut b: LabelCursor<'_>) -> (bool, usize) {
    let mut scanned = 0usize;
    let (mut x, mut y) = (a.next_value(), b.next_value());
    loop {
        match (x, y) {
            (Some(va), Some(vb)) => match va.cmp(&vb) {
                std::cmp::Ordering::Less => {
                    scanned += 1;
                    x = a.next_value();
                }
                std::cmp::Ordering::Greater => {
                    scanned += 1;
                    y = b.next_value();
                }
                std::cmp::Ordering::Equal => return (true, scanned + 2),
            },
            _ => {
                return (
                    false,
                    scanned + usize::from(x.is_some()) + usize::from(y.is_some()),
                )
            }
        }
    }
}

/// First common element of two streaming cursors — the witness hub. Like
/// [`first_common_sorted`](crate::first_common_sorted), the result is
/// order-minimal because cursors yield ascending ids.
pub fn first_common_cursors(mut a: LabelCursor<'_>, mut b: LabelCursor<'_>) -> Option<VertexId> {
    let (mut x, mut y) = (a.next_value(), b.next_value());
    while let (Some(va), Some(vb)) = (x, y) {
        match va.cmp(&vb) {
            std::cmp::Ordering::Less => x = a.next_value(),
            std::cmp::Ordering::Greater => y = b.next_value(),
            std::cmp::Ordering::Equal => return Some(va),
        }
    }
    None
}

/// Decodes an entire validated run to a `Vec` — conversion and test
/// paths only; queries use cursors.
pub fn decode_to_vec(codec: &dyn LabelCodec, bytes: &[u8]) -> Vec<VertexId> {
    codec.cursor(bytes).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(codec: &dyn LabelCodec, list: &[u32]) {
        let mut buf = Vec::new();
        codec.encode(list, &mut buf);
        let n = list.last().map_or(1, |&m| m as usize + 1);
        let count = codec.validate_list(&buf, n).unwrap();
        assert_eq!(count as usize, list.len());
        assert_eq!(decode_to_vec(codec, &buf), list);
    }

    #[test]
    fn both_codecs_round_trip_edge_shapes() {
        let cases: &[&[u32]] = &[
            &[],
            &[0],
            &[u32::MAX - 1],
            &[0, 1, 2, 3, 4],
            &[0, u32::MAX - 1],
            &[7, 130, 16_384, 2_097_152, 268_435_456],
        ];
        for codec in [&Plain as &dyn LabelCodec, &DeltaVarint] {
            for &case in cases {
                roundtrip(codec, case);
            }
        }
    }

    #[test]
    fn dense_runs_compress_to_one_byte_per_entry() {
        let list: Vec<u32> = (1000..2000).collect();
        let mut buf = Vec::new();
        DeltaVarint.encode(&list, &mut buf);
        // varint(1000) = 2 bytes, then 999 × varint(0) = 1 byte each.
        assert_eq!(buf.len(), 2 + 999);
    }

    #[test]
    fn overlong_varint_rejected() {
        // 0x80 0x00 encodes 0 in two bytes — non-canonical.
        assert_eq!(
            DeltaVarint.validate_list(&[0x80, 0x00], 10),
            Err("overlong varint encoding")
        );
    }

    #[test]
    fn truncated_varint_rejected() {
        assert_eq!(
            DeltaVarint.validate_list(&[0x80], 10),
            Err("varint truncated mid-value")
        );
        assert_eq!(
            DeltaVarint.validate_list(&[0x00, 0xFF, 0xFF], 10),
            Err("varint truncated mid-value")
        );
    }

    #[test]
    fn varint_overflow_rejected() {
        // Five continuation-heavy bytes pushing past 32 bits.
        let err = DeltaVarint.validate_list(&[0xFF, 0xFF, 0xFF, 0xFF, 0x7F], usize::MAX);
        assert_eq!(err, Err("varint exceeds u32"));
        let err = DeltaVarint.validate_list(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01], usize::MAX);
        assert_eq!(err, Err("varint exceeds u32"));
    }

    #[test]
    fn out_of_range_entry_rejected_by_both() {
        let mut plain = Vec::new();
        Plain.encode(&[5], &mut plain);
        assert_eq!(
            Plain.validate_list(&plain, 5),
            Err("label entry out of vertex range")
        );
        let mut dv = Vec::new();
        DeltaVarint.encode(&[5], &mut dv);
        assert_eq!(
            DeltaVarint.validate_list(&dv, 5),
            Err("label entry out of vertex range")
        );
    }

    #[test]
    fn plain_unsorted_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes());
        assert_eq!(
            Plain.validate_list(&buf, 10),
            Err("label list not strictly sorted")
        );
    }

    #[test]
    fn plain_ragged_length_rejected() {
        assert_eq!(
            Plain.validate_list(&[1, 2, 3], 10),
            Err("plain label run not a multiple of 4 bytes")
        );
    }

    #[test]
    fn delta_sum_overflow_rejected() {
        // First entry u32::MAX − 1, then delta 5: the decoded value
        // overflows u32 and must be rejected, not wrapped.
        let mut buf = Vec::new();
        write_varint(u32::MAX - 1, &mut buf);
        write_varint(5, &mut buf);
        assert_eq!(
            DeltaVarint.validate_list(&buf, usize::MAX),
            Err("label entry exceeds u32")
        );
    }

    #[test]
    fn cursor_merge_matches_slice_merge() {
        let a: Vec<u32> = vec![1, 3, 5, 7, 1000];
        let b: Vec<u32> = vec![2, 4, 7, 9];
        for codec in [&Plain as &dyn LabelCodec, &DeltaVarint] {
            let (mut ea, mut eb) = (Vec::new(), Vec::new());
            codec.encode(&a, &mut ea);
            codec.encode(&b, &mut eb);
            let (hit, scanned) = intersects_cursors(codec.cursor(&ea), codec.cursor(&eb));
            assert!(hit);
            assert!(scanned >= 2);
            assert_eq!(
                first_common_cursors(codec.cursor(&ea), codec.cursor(&eb)),
                Some(7)
            );
            let disjoint: Vec<u32> = vec![0, 6, 8];
            let mut ed = Vec::new();
            codec.encode(&disjoint, &mut ed);
            let (hit, _) = intersects_cursors(codec.cursor(&ea), codec.cursor(&ed));
            assert!(!hit);
            assert_eq!(
                first_common_cursors(codec.cursor(&ea), codec.cursor(&ed)),
                None
            );
        }
    }

    #[test]
    fn codec_id_round_trips() {
        for id in [CodecId::Plain, CodecId::DeltaVarint] {
            assert_eq!(CodecId::from_u32(id as u32), Some(id));
            assert_eq!(id.codec().id(), id);
        }
        assert_eq!(CodecId::from_u32(77), None);
    }
}
