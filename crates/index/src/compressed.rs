//! Querying a v2-encoded index in place — heap-backed here, mmap-backed
//! in [`crate::mmap`].
//!
//! [`EncodedIndex`] answers `q(s, t)` directly over the validated v2
//! byte image ([`crate::storage::parse_v2`]): label runs decode through
//! streaming [`LabelCursor`]s (no `Vec` per
//! query), and when the file carries a BLOM section the per-vertex Bloom
//! pre-filter over `L_out(s)` is probed with the entries of `L_in(t)`
//! first — if no probe hits, the intersection is provably empty and the
//! merge is skipped entirely (`index.codec.bloom.skip`). A Bloom *pass*
//! that the merge then refutes is a false positive
//! (`index.codec.bloom.fp`); false **negatives** cannot occur by
//! construction, which `tests/bloom_prefilter.rs` pins.

use std::ops::Deref;
use std::path::Path;

use reach_graph::VertexId;

use crate::bloom;
use crate::codec::{self, CodecId, LabelCursor};
use crate::storage::{self, BloomConfig, StorageError, V2Layout};
use crate::ReachIndex;

/// A v2-encoded index over any contiguous byte backing (`Vec<u8>`,
/// `&[u8]`, or an [`Mmap`](crate::mmap::Mmap)), queryable in place.
///
/// Construction always runs the full [`storage::parse_v2`] validation,
/// so every query-path decode is infallible.
#[derive(Debug)]
pub struct EncodedIndex<B> {
    bytes: B,
    layout: V2Layout,
}

/// A heap-backed encoded index: the whole v2 image in memory, but in its
/// compressed form — typically several times smaller than [`ReachIndex`].
pub type CompressedIndex = EncodedIndex<Vec<u8>>;

impl<B: Deref<Target = [u8]>> EncodedIndex<B> {
    /// Validates `bytes` as a v2 image and takes ownership of the backing.
    pub fn from_backing(bytes: B) -> Result<Self, StorageError> {
        let layout = storage::parse_v2(&bytes)?;
        Ok(EncodedIndex { bytes, layout })
    }

    /// Number of vertices the index covers.
    pub fn num_vertices(&self) -> usize {
        self.layout.num_vertices()
    }

    /// The label-run codec this image was written with.
    pub fn codec(&self) -> CodecId {
        self.layout.codec()
    }

    /// The Bloom pre-filter parameters, when present.
    pub fn bloom_config(&self) -> Option<BloomConfig> {
        self.layout.bloom()
    }

    /// Total size of the backing image in bytes.
    pub fn image_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The encoded byte run of `L_in(v)`.
    #[inline]
    fn in_run(&self, v: VertexId) -> &[u8] {
        let l = &self.layout;
        let a = l.offset_at(&self.bytes, &l.in_off, v as usize);
        let b = l.offset_at(&self.bytes, &l.in_off, v as usize + 1);
        &self.bytes[l.in_dat.start + a..l.in_dat.start + b]
    }

    /// The encoded byte run of `L_out(v)`.
    #[inline]
    fn out_run(&self, v: VertexId) -> &[u8] {
        let l = &self.layout;
        let a = l.offset_at(&self.bytes, &l.out_off, v as usize);
        let b = l.offset_at(&self.bytes, &l.out_off, v as usize + 1);
        &self.bytes[l.out_dat.start + a..l.out_dat.start + b]
    }

    /// The serialized Bloom filter of `L_out(v)`, when the image has one.
    #[inline]
    fn bloom_of(&self, v: VertexId) -> Option<&[u8]> {
        let l = &self.layout;
        let blom = l.blom.as_ref()?;
        let bpv = l.bloom_bytes_per_vertex;
        let base = blom.start + v as usize * bpv;
        Some(&self.bytes[base..base + bpv])
    }

    /// A streaming cursor over `L_in(v)`.
    #[inline]
    fn in_cursor(&self, v: VertexId) -> LabelCursor<'_> {
        self.layout.codec().codec().cursor(self.in_run(v))
    }

    /// A streaming cursor over `L_out(v)`.
    #[inline]
    fn out_cursor(&self, v: VertexId) -> LabelCursor<'_> {
        self.layout.codec().codec().cursor(self.out_run(v))
    }

    /// The Bloom gate: `Some(false)` proves the intersection empty
    /// (no probe of `L_in(t)` hit the `L_out(s)` filter); `Some(true)`
    /// means at least one hit, so the merge must decide; `None` means no
    /// filter is stored. The second element counts probes consumed.
    /// Public so tests and benches can measure the gate's false-positive
    /// rate directly (a pass followed by an empty merge).
    #[inline]
    pub fn bloom_gate(&self, s: VertexId, t: VertexId) -> (Option<bool>, usize) {
        let Some(filter) = self.bloom_of(s) else {
            return (None, 0);
        };
        let k = self.layout.bloom_k as usize;
        let mut probes = 0usize;
        for v in self.in_cursor(t) {
            probes += 1;
            if bloom::probe_bits(filter, v, k) {
                return (Some(true), probes);
            }
        }
        (Some(false), probes)
    }

    /// The reachability query `q(s, t)` with its scan cost: entries
    /// consumed by the Bloom probe and/or the cursor merge.
    pub fn query_scan(&self, s: VertexId, t: VertexId) -> (bool, usize) {
        reach_obs::counter_add("index.codec.queries", 1);
        let (gate, probes) = self.bloom_gate(s, t);
        match gate {
            Some(false) => {
                reach_obs::counter_add("index.codec.bloom.skip", 1);
                reach_obs::record("index.codec.scan_len", probes as u64);
                return (false, probes);
            }
            Some(true) => reach_obs::counter_add("index.codec.bloom.pass", 1),
            None => {}
        }
        let (hit, scanned) = codec::intersects_cursors(self.out_cursor(s), self.in_cursor(t));
        if gate == Some(true) && !hit {
            reach_obs::counter_add("index.codec.bloom.fp", 1);
        }
        reach_obs::record("index.codec.scan_len", (probes + scanned) as u64);
        (hit, probes + scanned)
    }

    /// The reachability query `q(s, t)`.
    pub fn query(&self, s: VertexId, t: VertexId) -> bool {
        self.query_scan(s, t).0
    }

    /// Like [`ReachIndex::query_witness`]: the order-minimal witness hub,
    /// identical to the uncompressed answer (the Bloom gate only ever
    /// skips provably-empty intersections).
    pub fn query_witness(&self, s: VertexId, t: VertexId) -> Option<VertexId> {
        if let (Some(false), _) = self.bloom_gate(s, t) {
            return None;
        }
        codec::first_common_cursors(self.out_cursor(s), self.in_cursor(t))
    }

    /// Fully decodes back to an in-memory [`ReachIndex`] — conversion
    /// and v1-compat loading; serving stays on the encoded form.
    pub fn to_reach_index(&self) -> ReachIndex {
        let n = self.num_vertices();
        let mut ins = Vec::with_capacity(n);
        let mut outs = Vec::with_capacity(n);
        for v in 0..n as VertexId {
            ins.push(self.in_cursor(v).collect());
            outs.push(self.out_cursor(v).collect());
        }
        ReachIndex::from_labels(ins, outs)
    }
}

impl CompressedIndex {
    /// Builds the encoded form of `idx` in memory: serialize to the v2
    /// image, then re-parse — one validated code path shared with every
    /// reader, so a build can never produce bytes a reader rejects.
    pub fn build(
        idx: &ReachIndex,
        codec_id: CodecId,
        bloom_cfg: Option<BloomConfig>,
    ) -> CompressedIndex {
        let bytes = storage::encode_index_v2(idx, codec_id, bloom_cfg);
        Self::from_backing(bytes).expect("encoder output always parses")
    }

    /// Validates an owned v2 byte image.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<CompressedIndex, StorageError> {
        Self::from_backing(bytes)
    }

    /// Reads and validates a v2 file into memory (compressed form).
    pub fn load<P: AsRef<Path>>(path: P) -> Result<CompressedIndex, StorageError> {
        Self::from_bytes(std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReachIndex {
        ReachIndex::from_labels(
            vec![vec![0], vec![0, 1], vec![2], vec![1, 2, 3]],
            vec![vec![0, 2], vec![1], vec![], vec![3]],
        )
    }

    #[test]
    fn build_round_trips_for_all_codecs_and_bloom() {
        let idx = sample();
        for codec in [CodecId::Plain, CodecId::DeltaVarint] {
            for blm in [None, Some(BloomConfig::default())] {
                let c = CompressedIndex::build(&idx, codec, blm);
                assert_eq!(c.to_reach_index(), idx, "{codec:?} bloom={}", blm.is_some());
                assert_eq!(c.num_vertices(), 4);
                assert_eq!(c.codec(), codec);
                assert_eq!(c.bloom_config().is_some(), blm.is_some());
            }
        }
    }

    #[test]
    fn answers_match_uncompressed_on_all_pairs() {
        let idx = sample();
        for codec in [CodecId::Plain, CodecId::DeltaVarint] {
            for blm in [None, Some(BloomConfig::default())] {
                let c = CompressedIndex::build(&idx, codec, blm);
                for s in 0..4 {
                    for t in 0..4 {
                        assert_eq!(c.query(s, t), idx.query(s, t), "q({s},{t})");
                        assert_eq!(
                            c.query_witness(s, t),
                            idx.query_witness(s, t),
                            "witness({s},{t})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn v1_loader_reads_v2_files() {
        let idx = sample();
        let bytes =
            storage::encode_index_v2(&idx, CodecId::DeltaVarint, Some(BloomConfig::default()));
        assert_eq!(storage::read_index(&bytes[..]).unwrap(), idx);
    }

    #[test]
    fn empty_index_encodes_and_queries() {
        let idx = ReachIndex::new(0);
        let c = CompressedIndex::build(&idx, CodecId::DeltaVarint, Some(BloomConfig::default()));
        assert_eq!(c.num_vertices(), 0);
        assert_eq!(c.to_reach_index(), idx);
    }

    #[test]
    fn delta_varint_image_is_smaller_than_plain() {
        // A 64-vertex index with dense sorted runs: the varint image must
        // beat the plain-codec image, which must beat the v1 file.
        let n = 64usize;
        let lists: Vec<Vec<u32>> = (0..n).map(|v| (0..=v as u32).collect()).collect();
        let idx = ReachIndex::from_labels(lists.clone(), lists);
        let dv = storage::encode_index_v2(&idx, CodecId::DeltaVarint, None);
        let plain = storage::encode_index_v2(&idx, CodecId::Plain, None);
        let mut v1 = Vec::new();
        storage::write_index(&idx, &mut v1).unwrap();
        assert!(dv.len() < plain.len(), "{} !< {}", dv.len(), plain.len());
        assert!(plain.len() < v1.len(), "{} !< {}", plain.len(), v1.len());
    }
}
