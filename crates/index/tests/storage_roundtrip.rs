//! Encode-side fuzz of the index storage format: arbitrary label sets →
//! `write_index` → `read_index` must reproduce the index exactly, and the
//! encoding must be canonical (re-encoding the decoded index is
//! byte-identical). Complements the decode-side corruption suite in
//! `src/storage.rs`, which attacks the reader with malformed bytes; here
//! the writer is the system under test.

use proptest::prelude::*;
use reach_index::storage::{read_index, write_index};
use reach_index::ReachIndex;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary (unsorted, duplicated) label sets — `from_labels`
    /// normalises them, the disk format round-trips the result.
    #[test]
    fn arbitrary_label_sets_round_trip(
        labels in (1usize..24).prop_flat_map(|n| (
            Just(n),
            proptest::collection::vec(
                proptest::collection::vec(0..n as u32, 0..10),
                n..n + 1,
            ),
            proptest::collection::vec(
                proptest::collection::vec(0..n as u32, 0..10),
                n..n + 1,
            ),
        )),
    ) {
        let (n, ins, outs) = labels;
        let idx = ReachIndex::from_labels(ins, outs);
        prop_assert_eq!(idx.num_vertices(), n);

        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        let decoded = read_index(&buf[..]).unwrap();
        prop_assert_eq!(&decoded, &idx, "decode(encode(idx)) != idx");

        // Canonical encoding: the decoded index writes the same bytes.
        let mut buf2 = Vec::new();
        write_index(&decoded, &mut buf2).unwrap();
        prop_assert_eq!(buf, buf2, "encoding is not canonical");
    }

    /// The decoded index answers every query exactly like the original —
    /// the property the serving layer actually relies on after a
    /// load-from-disk (structural equality above is stronger, but this is
    /// the user-visible contract, asserted directly).
    #[test]
    fn decoded_index_answers_identically(
        labels in (1usize..16).prop_flat_map(|n| (
            Just(n),
            proptest::collection::vec(
                proptest::collection::vec(0..n as u32, 0..6),
                n..n + 1,
            ),
            proptest::collection::vec(
                proptest::collection::vec(0..n as u32, 0..6),
                n..n + 1,
            ),
        )),
    ) {
        let (n, ins, outs) = labels;
        let idx = ReachIndex::from_labels(ins, outs);
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        let decoded = read_index(&buf[..]).unwrap();
        for s in 0..n as u32 {
            for t in 0..n as u32 {
                prop_assert_eq!(decoded.query(s, t), idx.query(s, t), "q({},{})", s, t);
            }
        }
        prop_assert_eq!(decoded.size_bytes(), idx.size_bytes());
        prop_assert_eq!(decoded.max_label_size(), idx.max_label_size());
    }
}
