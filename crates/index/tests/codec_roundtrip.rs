//! Codec roundtrip suite: for every [`LabelCodec`], `decode(encode(l))`
//! must reproduce any strictly-sorted label list exactly — including the
//! degenerate shapes (empty, singleton, dense consecutive runs, maximal
//! `u32::MAX` deltas) — and the delta-varint encoding must never be
//! larger than plain on real label sets built over Table-V graph shapes.
//!
//! The decode-side *corruption* properties (overlong varints, truncation,
//! overflow) live with the codec in `src/codec.rs`; the whole-file fuzz
//! is `tests/storage_v2_fuzz.rs`. This file pins the encode→decode loop.

use proptest::prelude::*;
use reach_graph::OrderKind;
use reach_index::codec::decode_to_vec;
use reach_index::{BloomConfig, CodecId, CompressedIndex};

const CODECS: [CodecId; 2] = [CodecId::Plain, CodecId::DeltaVarint];

/// Encode with each codec and assert the streaming cursor reproduces the
/// list; also assert `validate_list` (the loader's path) accepts the
/// encoder's own output with the right element count.
fn assert_roundtrip(list: &[u32]) {
    for codec_id in CODECS {
        let codec = codec_id.codec();
        let mut buf = Vec::new();
        codec.encode(list, &mut buf);
        let decoded = decode_to_vec(codec, &buf);
        assert_eq!(decoded, list, "{} roundtrip", codec_id.name());
        // validate_list bounds entries by the vertex count; feed it one
        // large enough for the list's maximum element.
        let n = list.last().map_or(1, |&v| v as usize + 1);
        let count = codec
            .validate_list(&buf, n)
            .unwrap_or_else(|e| panic!("{} rejects own output: {e}", codec_id.name()));
        assert_eq!(count as usize, list.len());
    }
}

/// Strictly-sorted list from an arbitrary multiset: sort + dedup.
fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v.dedup();
    v
}

#[test]
fn fixed_edge_shapes_round_trip() {
    assert_roundtrip(&[]);
    assert_roundtrip(&[0]);
    assert_roundtrip(&[u32::MAX]);
    assert_roundtrip(&[0, u32::MAX]); // maximal single delta
    assert_roundtrip(&[0, 1, 2, 3, 4, 5, 6, 7]); // dense run, delta-1 = 0
    assert_roundtrip(&[7, 1 << 7, 1 << 14, 1 << 21, 1 << 28, u32::MAX]); // every varint width
    let dense: Vec<u32> = (1_000..3_000).collect();
    assert_roundtrip(&dense);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary strictly-sorted lists over the full u32 domain — sparse
    /// ids force wide deltas, as large as the domain allows.
    #[test]
    fn arbitrary_sparse_lists_round_trip(
        raw in proptest::collection::vec(0..=u32::MAX, 0..64),
    ) {
        assert_roundtrip(&sorted(raw));
    }

    /// Dense lists over a small domain — deltas cluster at 1, the case
    /// the `delta − 1` bias is designed for.
    #[test]
    fn arbitrary_dense_lists_round_trip(
        raw in proptest::collection::vec(0..512u32, 0..256),
    ) {
        assert_roundtrip(&sorted(raw));
    }

    /// A list ending at the domain edge still round-trips: the last
    /// delta may need the full 5-byte varint.
    #[test]
    fn lists_ending_at_domain_edge_round_trip(
        raw in proptest::collection::vec(0..1024u32, 0..32),
    ) {
        let mut list = sorted(raw);
        list.push(u32::MAX);
        assert_roundtrip(&list);
    }

    /// Delta-varint never loses to plain on sorted lists: every entry
    /// costs at most 5 bytes, and entries below 2^28 cost at most 4.
    #[test]
    fn delta_varint_never_beaten_by_plain_on_small_ids(
        raw in proptest::collection::vec(0..=(1u32 << 28) - 1, 0..64),
    ) {
        let list = sorted(raw);
        let (mut plain, mut delta) = (Vec::new(), Vec::new());
        CodecId::Plain.codec().encode(&list, &mut plain);
        CodecId::DeltaVarint.codec().encode(&list, &mut delta);
        prop_assert!(delta.len() <= plain.len(),
            "delta {} > plain {} on {} entries", delta.len(), plain.len(), list.len());
    }
}

/// On real labels — built by the TOL baseline over every Table-V medium
/// shape at test scale — the delta-varint image must be strictly smaller
/// than the plain v2 image, which in turn beats the v1 file (fixed
/// 16 B/vertex of u64 offsets).
#[test]
fn real_label_sets_shrink_under_delta_varint() {
    for spec in reach_datasets::mediums() {
        let mut spec = spec;
        spec.vertices = 400;
        spec.edges = 1200;
        let g = spec.generate();
        let idx = reach_tol::build(&g, OrderKind::DegreeProduct);

        let plain = CompressedIndex::build(&idx, CodecId::Plain, None);
        let delta = CompressedIndex::build(&idx, CodecId::DeltaVarint, None);
        assert!(
            delta.image_bytes() < plain.image_bytes(),
            "{}: delta {} !< plain {}",
            spec.name,
            delta.image_bytes(),
            plain.image_bytes()
        );

        let mut v1 = Vec::new();
        reach_index::storage::write_index(&idx, &mut v1).unwrap();
        assert!(
            delta.image_bytes() < v1.len(),
            "{}: delta {} !< v1 {}",
            spec.name,
            delta.image_bytes(),
            v1.len()
        );

        // The decoded index is the original, entry for entry.
        assert_eq!(delta.to_reach_index(), idx, "{}", spec.name);
        assert_eq!(plain.to_reach_index(), idx, "{}", spec.name);

        // Bloom adds exactly its configured bytes on top of the sections.
        let cfg = BloomConfig::default();
        let bloomed = CompressedIndex::build(&idx, CodecId::DeltaVarint, Some(cfg));
        let overhead = bloomed.image_bytes() - delta.image_bytes();
        let expected = idx.num_vertices() * cfg.bytes_per_vertex();
        assert_eq!(
            overhead,
            expected + reach_index::storage::SECTION_ENTRY_LEN,
            "{}: BLOM section overhead",
            spec.name
        );
    }
}
