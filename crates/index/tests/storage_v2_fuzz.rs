//! Corrupt-input fuzz for the v2 `.ridx` reader: every malformed input
//! must come back as a typed [`StorageError`] — never a panic, never an
//! allocation proportional to attacker-declared counts.
//!
//! Three attack surfaces:
//!
//! * **Truncation** — every strict prefix of a valid file must fail
//!   cleanly (the file can be cut mid-header, mid-section-table,
//!   mid-varint, mid-Bloom-block).
//! * **Bit rot** — single-byte corruption anywhere must either still
//!   parse to a *consistent* index (flips inside label data can produce
//!   a different-but-valid index; that is fine, the checksumless format
//!   trades that for zero-copy mmap) or fail typed. Queries against
//!   anything that parses must not panic.
//! * **Crafted section tables** — hostile headers: huge section counts,
//!   out-of-bounds or overlapping extents, duplicate sections, unknown
//!   tags (must be *accepted* — forward compat), overlong and truncated
//!   varints in the data sections, BLOM length mismatches, and a
//!   declared vertex count in the billions backed by a 100-byte file
//!   (must fail before allocating).

use proptest::prelude::*;
use reach_graph::OrderKind;
use reach_index::storage::{parse_v2, StorageError};
use reach_index::{BloomConfig, CodecId, CompressedIndex};

/// A small real index, encoded v2 with delta varints and Bloom filters —
/// the corpus seed every mutation starts from.
fn seed_image() -> Vec<u8> {
    let g = reach_datasets::citation_dag(48, 160, 3);
    let idx = reach_tol::build(&g, OrderKind::DegreeProduct);
    reach_index::storage::encode_index_v2(
        &idx,
        CodecId::DeltaVarint,
        Some(BloomConfig {
            bits_per_vertex: 64,
            k: 2,
        }),
    )
}

/// Parse, and if the bytes still parse, drive queries through them —
/// the "never panic" contract covers the read path, not just the
/// validator.
fn exercise(bytes: &[u8]) -> Result<(), StorageError> {
    let idx = CompressedIndex::from_bytes(bytes.to_vec())?;
    let n = idx.num_vertices() as u32;
    for s in (0..n).step_by(7) {
        for t in (0..n).step_by(5) {
            let (hit, _) = idx.query_scan(s, t);
            let witness = idx.query_witness(s, t);
            assert_eq!(hit, witness.is_some(), "answer/witness inconsistency");
        }
    }
    Ok(())
}

#[test]
fn every_truncation_fails_cleanly() {
    let image = seed_image();
    for len in 0..image.len() {
        let err = parse_v2(&image[..len])
            .expect_err(&format!("prefix of {len}/{} bytes parsed", image.len()));
        match err {
            StorageError::BadMagic | StorageError::BadVersion(_) | StorageError::Corrupt(_) => {}
            StorageError::Io(e) => panic!("truncation surfaced as i/o: {e}"),
        }
    }
}

#[test]
fn single_byte_corruption_never_panics() {
    let image = seed_image();
    // Every position × a handful of adversarial values: zero, all-ones,
    // and a bit flip (cheap exhaustive sweep at this image size).
    for pos in 0..image.len() {
        for val in [0x00, 0xFF, image[pos] ^ 0x01, image[pos] ^ 0x80] {
            if val == image[pos] {
                continue;
            }
            let mut bytes = image.clone();
            bytes[pos] = val;
            let _ = exercise(&bytes); // Ok or typed Err — just no panic.
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Multi-byte corruption: splice a random run of random bytes into a
    /// random position of the valid image.
    #[test]
    fn random_splices_never_panic(
        pos_frac in 0.0f64..1.0,
        splice in proptest::collection::vec(0u8..=255, 1..48),
    ) {
        let mut bytes = seed_image();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        let end = (pos + splice.len()).min(bytes.len());
        bytes[pos..end].copy_from_slice(&splice[..end - pos]);
        let _ = exercise(&bytes);
    }

    /// Pure noise of plausible lengths never panics and never parses.
    #[test]
    fn random_noise_is_rejected(
        bytes in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        prop_assert!(exercise(&bytes).is_err());
    }
}

// ---- crafted section tables -------------------------------------------

/// Builds a v2 image from explicit section-table entries and a data
/// blob: magic, version, count, entries, then `data` verbatim. Offsets
/// in `entries` are absolute file offsets, exactly as on disk.
fn craft(entries: &[([u8; 4], u64, u64)], data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"RIDX");
    out.extend_from_slice(&2u32.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (tag, off, len) in entries {
        out.extend_from_slice(tag);
        out.extend_from_slice(&off.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
    }
    out.extend_from_slice(data);
    out
}

/// META payload bytes for the given parameters.
fn meta(n: u64, codec: u32, width: u32, bloom_k: u32, bloom_bpv: u32) -> Vec<u8> {
    let mut m = Vec::new();
    m.extend_from_slice(&n.to_le_bytes());
    m.extend_from_slice(&codec.to_le_bytes());
    m.extend_from_slice(&width.to_le_bytes());
    m.extend_from_slice(&bloom_k.to_le_bytes());
    m.extend_from_slice(&bloom_bpv.to_le_bytes());
    m
}

fn expect_corrupt(bytes: &[u8]) -> &'static str {
    match parse_v2(bytes) {
        Err(StorageError::Corrupt(what)) => what,
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn hostile_section_count_fails_before_allocating() {
    // Declares u32::MAX sections in a 12-byte file: the reader must
    // bound the count *before* sizing any table from it.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"RIDX");
    bytes.extend_from_slice(&2u32.to_le_bytes());
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    expect_corrupt(&bytes);
}

#[test]
fn declared_vertex_count_in_the_billions_fails_fast() {
    // META says 4 billion vertices; the offset tables a real file of
    // that size would carry are absent. Must fail on section-length
    // validation, not attempt a 16 GB materialization.
    let m = meta(u32::MAX as u64, 1, 4, 0, 0);
    let header = 12 + 5 * 20;
    let entries = [
        (*b"META", header as u64, m.len() as u64),
        (*b"IOFF", (header + m.len()) as u64, 4),
        (*b"IDAT", (header + m.len() + 4) as u64, 0),
        (*b"OOFF", (header + m.len() + 4) as u64, 4),
        (*b"ODAT", (header + m.len() + 8) as u64, 0),
    ];
    let mut data = m.clone();
    data.extend_from_slice(&0u32.to_le_bytes());
    data.extend_from_slice(&0u32.to_le_bytes());
    expect_corrupt(&craft(&entries, &data));
}

#[test]
fn out_of_bounds_and_overflowing_extents_are_rejected() {
    let m = meta(0, 0, 4, 0, 0);
    // Section extends past end of file.
    expect_corrupt(&craft(&[(*b"META", 32, 1 << 40)], &m));
    // offset + len overflows u64.
    expect_corrupt(&craft(&[(*b"META", u64::MAX, 2)], &m));
    // Offset before the data region start is still out of the file when
    // len reaches past the end.
    expect_corrupt(&craft(&[(*b"META", 0, u64::MAX)], &m));
}

#[test]
fn duplicate_sections_are_rejected() {
    let m = meta(0, 0, 4, 0, 0);
    let header = 12 + 2 * 20;
    let entries = [
        (*b"META", header as u64, m.len() as u64),
        (*b"META", header as u64, m.len() as u64),
    ];
    expect_corrupt(&craft(&entries, &m));
}

#[test]
fn unknown_sections_are_skipped_for_forward_compat() {
    // A valid empty index plus a "FUTR" section the current reader has
    // never heard of: must parse, and the unknown payload is ignored.
    let m = meta(0, 0, 4, 0, 0);
    let header = 12 + 6 * 20;
    let mut data = m.clone();
    data.extend_from_slice(&0u32.to_le_bytes()); // IOFF: [0]
    let ioff_at = header + m.len();
    data.extend_from_slice(&0u32.to_le_bytes()); // OOFF: [0]
    let ooff_at = ioff_at + 4;
    data.extend_from_slice(b"from the future");
    let futr_at = ooff_at + 4;
    let entries = [
        (*b"META", header as u64, m.len() as u64),
        (*b"IOFF", ioff_at as u64, 4),
        (*b"IDAT", futr_at as u64, 0),
        (*b"OOFF", ooff_at as u64, 4),
        (*b"ODAT", futr_at as u64, 0),
        (*b"FUTR", futr_at as u64, 15),
    ];
    let layout = parse_v2(&craft(&entries, &data)).expect("unknown section must be skipped");
    assert_eq!(layout.num_vertices(), 0);
}

#[test]
fn missing_required_sections_are_rejected() {
    // META alone: no offset/data sections.
    let m = meta(0, 0, 4, 0, 0);
    expect_corrupt(&craft(&[(*b"META", 32, m.len() as u64)], &m));
    // No META at all.
    expect_corrupt(&craft(&[(*b"IOFF", 32, 4)], &[0, 0, 0, 0]));
}

/// One-vertex image builder with attacker-controlled IDAT bytes (the
/// in-label run of vertex 0) under the delta-varint codec.
fn one_vertex_with_idat(idat: &[u8]) -> Vec<u8> {
    let m = meta(1, 1, 4, 0, 0);
    let header = 12 + 5 * 20;
    let mut data = m.clone();
    let ioff_at = header + data.len();
    data.extend_from_slice(&0u32.to_le_bytes());
    data.extend_from_slice(&(idat.len() as u32).to_le_bytes());
    let idat_at = ioff_at + 8;
    data.extend_from_slice(idat);
    let ooff_at = idat_at + idat.len();
    data.extend_from_slice(&0u32.to_le_bytes());
    data.extend_from_slice(&0u32.to_le_bytes());
    let odat_at = ooff_at + 8;
    let entries = [
        (*b"META", header as u64, m.len() as u64),
        (*b"IOFF", ioff_at as u64, 8),
        (*b"IDAT", idat_at as u64, idat.len() as u64),
        (*b"OOFF", ooff_at as u64, 8),
        (*b"ODAT", odat_at as u64, 0),
    ];
    craft(&entries, &data)
}

#[test]
fn overlong_and_truncated_varints_in_data_sections_are_rejected() {
    // Canonical single entry: varint(0) = [0x00] — parses.
    parse_v2(&one_vertex_with_idat(&[0x00])).expect("canonical varint");
    // Overlong: 0x80 0x00 encodes 0 in two bytes — non-canonical.
    expect_corrupt(&one_vertex_with_idat(&[0x80, 0x00]));
    // Truncated: continuation bit set, then nothing.
    expect_corrupt(&one_vertex_with_idat(&[0x80]));
    // Overflow: 6-byte varint exceeds u32.
    expect_corrupt(&one_vertex_with_idat(&[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01]));
    // Out of range: vertex id 1 in a 1-vertex index.
    expect_corrupt(&one_vertex_with_idat(&[0x01]));
}

#[test]
fn bloom_section_length_mismatches_are_rejected() {
    let base = reach_index::storage::encode_index_v2(
        &reach_index::ReachIndex::from_labels(vec![vec![0]], vec![vec![0]]),
        CodecId::DeltaVarint,
        Some(BloomConfig {
            bits_per_vertex: 64,
            k: 2,
        }),
    );
    parse_v2(&base).expect("seed image valid");
    // Find the BLOM entry in the table and lie about its length.
    let count = u32::from_le_bytes(base[8..12].try_into().unwrap()) as usize;
    let mut tampered = base.clone();
    let mut found = false;
    for i in 0..count {
        let at = 12 + i * 20;
        if &base[at..at + 4] == b"BLOM" {
            // Shrink the declared length below n × bytes_per_vertex.
            tampered[at + 12..at + 20].copy_from_slice(&4u64.to_le_bytes());
            found = true;
        }
    }
    assert!(found, "seed image has a BLOM section");
    expect_corrupt(&tampered);

    // And: bloom config in META without a BLOM section at all.
    let mut no_blom = base.clone();
    for i in 0..count {
        let at = 12 + i * 20;
        if &no_blom[at..at + 4] == b"BLOM" {
            no_blom[at..at + 4].copy_from_slice(b"XBLM"); // now unknown → skipped
        }
    }
    expect_corrupt(&no_blom);
}

#[test]
fn v1_files_and_foreign_magic_fail_typed_through_v2_entry_points() {
    let idx = reach_index::ReachIndex::from_labels(vec![vec![]], vec![vec![]]);
    let mut v1 = Vec::new();
    reach_index::storage::write_index(&idx, &mut v1).unwrap();
    match parse_v2(&v1) {
        Err(StorageError::BadVersion(1)) => {}
        other => panic!("v1 through parse_v2: {other:?}"),
    }
    match parse_v2(b"ELF\x7f but definitely not an index") {
        Err(StorageError::BadMagic) => {}
        other => panic!("foreign magic: {other:?}"),
    }
}
