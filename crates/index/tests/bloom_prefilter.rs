//! Bloom pre-filter semantics: the gate may only ever skip work, never
//! change an answer.
//!
//! * **Zero false negatives** (soundness): if `L_out(s) ∩ L_in(t)` is
//!   non-empty, every probe of the common hub hits the filter, so the
//!   gate can never return `Some(false)` on a reachable pair. Pinned by
//!   proptest over arbitrary label sets and all Bloom shapes.
//! * **Bounded false positives** (usefulness): on a negative-dominated
//!   workload over real labels the gate must actually skip most merges,
//!   and the measured false-positive rate — gate passes whose merge then
//!   comes up empty — is recorded and asserted under a loose ceiling.
//!   The precise rate is configuration-dependent; the ceiling catches
//!   hash-quality regressions (e.g. probes collapsing onto one word).

use proptest::prelude::*;
use reach_datasets::{negative_mix, workload};
use reach_graph::OrderKind;
use reach_index::{BloomConfig, CodecId, CompressedIndex, ReachIndex};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness over arbitrary indexes and filter shapes: for every
    /// pair, Bloom-gated answers and witnesses equal the ungated ones —
    /// in particular no reachable pair is ever gated out.
    #[test]
    fn gate_never_flips_an_answer(
        labels in (1usize..20).prop_flat_map(|n| (
            Just(n),
            proptest::collection::vec(
                proptest::collection::vec(0..n as u32, 0..8), n..n + 1),
            proptest::collection::vec(
                proptest::collection::vec(0..n as u32, 0..8), n..n + 1),
        )),
        bits in 1u32..128,
        k in 1u32..5,
    ) {
        let (n, ins, outs) = labels;
        let idx = ReachIndex::from_labels(ins, outs);
        let cfg = BloomConfig { bits_per_vertex: bits, k };
        let gated = CompressedIndex::build(&idx, CodecId::DeltaVarint, Some(cfg));
        for s in 0..n as u32 {
            for t in 0..n as u32 {
                let want = idx.query(s, t);
                prop_assert_eq!(gated.query(s, t), want, "q({}, {})", s, t);
                prop_assert_eq!(gated.query_witness(s, t), idx.query_witness(s, t));
                // Soundness stated directly on the gate: reachable pairs
                // must pass it.
                if want {
                    let (gate, _) = gated.bloom_gate(s, t);
                    prop_assert_ne!(gate, Some(false), "gate refuted reachable ({}, {})", s, t);
                }
            }
        }
    }
}

/// The measured behaviour on real labels: on a 90%-negative workload the
/// default configuration must skip the merge for most true negatives,
/// with a recorded FP rate under the ceiling.
#[test]
fn false_positive_rate_is_recorded_and_bounded_on_negative_workloads() {
    let mut spec = reach_datasets::by_name("WEBW").unwrap();
    spec.vertices = 400;
    spec.edges = 1200;
    let g = spec.generate();
    let idx = reach_tol::build(&g, OrderKind::DegreeProduct);
    let gated = CompressedIndex::build(&idx, CodecId::DeltaVarint, Some(BloomConfig::default()));

    let (_, mix) = negative_mix();
    let queries = workload(&g, mix, 4000, 0xb100);

    let (mut negatives, mut skips, mut fps) = (0u64, 0u64, 0u64);
    for &(s, t) in &queries {
        if idx.query(s, t) {
            continue; // positives must pass the gate; covered above
        }
        negatives += 1;
        match gated.bloom_gate(s, t).0 {
            Some(false) => skips += 1,
            Some(true) => fps += 1,
            None => panic!("filter configured but gate found none"),
        }
    }
    assert!(
        negatives >= 2000,
        "workload not negative-dominated: {negatives}/4000"
    );
    let fp_rate = fps as f64 / negatives as f64;
    // Recorded: visible under `cargo test -- --nocapture` and in CI logs.
    println!(
        "bloom gate on {negatives} negatives: {skips} skipped, {fps} false positives \
         (fp rate {fp_rate:.4})"
    );
    assert!(
        fp_rate <= 0.35,
        "bloom false-positive rate {fp_rate:.4} above ceiling — hash quality regression?"
    );
    assert!(
        skips > negatives / 2,
        "gate skipped only {skips}/{negatives} — pre-filter is not earning its bytes"
    );
}

/// Degenerate shapes stay sound: empty L_out(s) filters reject every
/// probe (always skip), empty L_in(t) makes the gate trivially skip,
/// and a saturated filter (1 bit per vertex) degrades to pass-through
/// without changing answers.
#[test]
fn degenerate_filters_stay_sound() {
    // Vertex 0: empty out-label. Vertex 1: out = {0}, in = {0}.
    let idx = ReachIndex::from_labels(
        vec![vec![], vec![0]], // in-labels
        vec![vec![], vec![0]], // out-labels
    );
    let gated = CompressedIndex::build(
        &idx,
        CodecId::DeltaVarint,
        Some(BloomConfig {
            bits_per_vertex: 1, // rounds up to one 64-bit word
            k: 4,
        }),
    );
    for s in 0..2 {
        for t in 0..2 {
            assert_eq!(gated.query(s, t), idx.query(s, t), "q({s},{t})");
        }
    }
    // Empty out-label: every probe misses, so any negative with probes
    // skips the merge.
    let (gate, probes) = gated.bloom_gate(0, 1);
    assert_eq!(gate, Some(false));
    assert_eq!(probes, 1); // L_in(1) = {0}: one probe refuted the pair
                           // Empty in-label: zero probes, gate skips vacuously.
    let (gate, probes) = gated.bloom_gate(1, 0);
    assert_eq!(gate, Some(false));
    assert_eq!(probes, 0);
}
