//! The codec differential harness: one seeded workload, five index
//! forms, zero tolerated divergence.
//!
//! For every Table-V medium shape (at test scale) we build the TOL
//! labels once, then materialize the same index five ways:
//!
//! 1. `ReachIndex` — the uncompressed in-memory baseline;
//! 2. `CompressedIndex` with the `Plain` codec;
//! 3. `CompressedIndex` with the `DeltaVarint` codec;
//! 4. `CompressedIndex` with `DeltaVarint` + the Bloom pre-filter;
//! 5. `MmapIndex` — the delta+Bloom file re-opened through the mmap
//!    read path (exercising `save_index_v2` → open → page-in).
//!
//! Every standard mix plus the negative-biased one is replayed through
//! all five via the [`IndexSource`] trait object — the same interface
//! the serving stack uses — and both the boolean answer and the witness
//! hub must be bit-identical everywhere. This is the test that makes the
//! compression layer safe to hot-swap under a live service: any codec
//! bug, Bloom unsoundness, or mmap addressing slip shows up as a
//! divergence here before it can ship a wrong answer.

use std::sync::Arc;

use reach_datasets::{negative_mix, standard_mixes, workload};
use reach_graph::OrderKind;
use reach_index::{BloomConfig, CodecId, CompressedIndex, IndexSource, MmapIndex, ReachIndex};

/// A unique-per-process temp path (the harness runs per-dataset files).
fn temp_ridx(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "reach-codec-diff-{}-{tag}.ridx",
        std::process::id()
    ))
}

/// All mixes the harness replays: the three standard ones and the
/// negative-dominated mix that forces Bloom gates and exhaustion scans.
fn all_mixes() -> Vec<(&'static str, reach_datasets::QueryMix)> {
    let mut mixes = standard_mixes();
    mixes.push(negative_mix());
    mixes
}

#[test]
fn all_sources_agree_on_every_mix_and_medium() {
    for spec in reach_datasets::mediums() {
        let mut spec = spec;
        spec.vertices = 400;
        spec.edges = 1200;
        let g = spec.generate();
        let idx = reach_tol::build(&g, OrderKind::DegreeProduct);

        let path = temp_ridx(spec.name);
        reach_index::save_index_v2(
            &idx,
            &path,
            CodecId::DeltaVarint,
            Some(BloomConfig::default()),
        )
        .unwrap();

        let sources: Vec<(&str, Arc<dyn IndexSource>)> = vec![
            ("ram", Arc::new(idx.clone())),
            (
                "plain",
                Arc::new(CompressedIndex::build(&idx, CodecId::Plain, None)),
            ),
            (
                "delta",
                Arc::new(CompressedIndex::build(&idx, CodecId::DeltaVarint, None)),
            ),
            (
                "delta+bloom",
                Arc::new(CompressedIndex::build(
                    &idx,
                    CodecId::DeltaVarint,
                    Some(BloomConfig::default()),
                )),
            ),
            ("mmap", Arc::new(MmapIndex::open(&path).unwrap())),
        ];

        for (mix_name, mix) in all_mixes() {
            let queries = workload(&g, mix, 600, 0x5eed);
            for &(s, t) in &queries {
                let want = idx.query(s, t);
                let want_witness = idx.query_witness(s, t);
                for (src_name, src) in &sources {
                    assert_eq!(
                        src.query(s, t),
                        want,
                        "{}/{mix_name}/{src_name}: q({s},{t}) diverged",
                        spec.name
                    );
                    assert_eq!(
                        src.query_witness(s, t),
                        want_witness,
                        "{}/{mix_name}/{src_name}: witness({s},{t}) diverged",
                        spec.name
                    );
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

/// The exhaustive small-scale variant: *every* pair of a small graph, so
/// no sampling gap can hide a divergence (the workload above samples).
#[test]
fn all_sources_agree_on_all_pairs_of_a_small_graph() {
    let g = reach_datasets::citation_dag(60, 220, 11);
    let idx = reach_tol::build(&g, OrderKind::InverseId);

    let path = temp_ridx("all-pairs");
    reach_index::save_index_v2(
        &idx,
        &path,
        CodecId::DeltaVarint,
        Some(BloomConfig::default()),
    )
    .unwrap();

    let sources: Vec<Arc<dyn IndexSource>> = vec![
        Arc::new(CompressedIndex::build(&idx, CodecId::Plain, None)),
        Arc::new(CompressedIndex::build(
            &idx,
            CodecId::DeltaVarint,
            Some(BloomConfig {
                bits_per_vertex: 64,
                k: 1,
            }),
        )),
        Arc::new(MmapIndex::open(&path).unwrap()),
    ];
    let n = idx.num_vertices() as u32;
    for s in 0..n {
        for t in 0..n {
            let want = idx.query(s, t);
            let want_witness = idx.query_witness(s, t);
            for src in &sources {
                assert_eq!(src.query(s, t), want, "q({s},{t})");
                assert_eq!(src.query_witness(s, t), want_witness, "witness({s},{t})");
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

/// The v2 → `ReachIndex` decode path (what `load_index` does for v2
/// files) is also differential-exact, closing the conversion loop.
#[test]
fn v2_files_load_back_identically_through_the_v1_loader_api() {
    let g = reach_datasets::social(80, 260, 0.25, 5);
    let idx = reach_tol::build(&g, OrderKind::DegreeProduct);
    let path = temp_ridx("loader");
    reach_index::save_index_v2(&idx, &path, CodecId::DeltaVarint, None).unwrap();
    let loaded: ReachIndex = reach_index::load_index(&path).unwrap();
    assert_eq!(loaded, idx);
    std::fs::remove_file(&path).ok();
}
