//! The hot-swap contract, pinned differentially: while `swap_index`
//! races against submission, pickup, caching, overload, and shutdown,
//! every batch must be answered **entirely** by the single index
//! generation it pinned — each answer equal to `ReachIndex::query` on
//! that generation — and a swap must never block or drain in-flight
//! work. The sweep covers 3 evolving graph sequences × 2 swap cadences ×
//! 1/2/4/8 workers × cache on/off; targeted tests nail the individual
//! interleavings (pin-at-pickup, swap under overload, swap during
//! shutdown, shrinking swaps, stale-cache poisoning).

use std::sync::Arc;

use proptest::prelude::*;
use reach_datasets::{edge_fraction_slices, standard_mixes, workload, QueryMix};
use reach_graph::{DiGraph, VertexId};
use reach_index::ReachIndex;
use reach_serve::testing::{closure_index, run_swap_consistency, SwapHarnessConfig};
use reach_serve::{QueryService, ServeConfig, ServeError};

const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Three evolving-graph sequences (deterministic edge-insertion
/// schedules): each is a base graph cut into cumulative edge slices over
/// one shared vertex set, so index `i` serves a strictly sparser view of
/// the same world than index `i + 1`.
fn sequences() -> Vec<(&'static str, Vec<DiGraph>)> {
    let bases = [
        (
            "web",
            reach_datasets::generators::hierarchy(48, 150, 0.9, 21),
        ),
        ("social", reach_datasets::social(40, 130, 0.25, 22)),
        ("citation", reach_datasets::citation_dag(44, 140, 23)),
    ];
    bases
        .into_iter()
        .map(|(name, g)| {
            let slices = edge_fraction_slices(&g, 3, 7);
            (name, slices)
        })
        .collect()
}

fn chunked(queries: Vec<(VertexId, VertexId)>, size: usize) -> Vec<Vec<(VertexId, VertexId)>> {
    queries.chunks(size).map(<[_]>::to_vec).collect()
}

/// The acceptance sweep: sequences × cadences × worker counts × cache.
/// Every batch's answers are asserted (inside the harness) against the
/// generation it was pinned to; here we additionally require that swaps
/// really happened and that multiple generations actually answered.
#[test]
fn every_batch_is_answered_by_exactly_one_generation() {
    for (seq_i, (name, graphs)) in sequences().into_iter().enumerate() {
        let indices: Vec<Arc<ReachIndex>> = graphs.iter().map(closure_index).collect();
        let full = graphs.last().unwrap();
        let (_, mix) = standard_mixes()[seq_i % 3];
        for swap_every in [2usize, 8] {
            let mut observed_across_runs = std::collections::BTreeSet::new();
            for workers in WORKERS {
                for cache in [true, false] {
                    let batches = chunked(workload(full, mix, 60 * 12, 0x5a + seq_i as u64), 12);
                    let report = run_swap_consistency(
                        &indices,
                        &batches,
                        &SwapHarnessConfig {
                            workers,
                            cache,
                            swap_every,
                            submitters: 2,
                        },
                    );
                    assert_eq!(report.batches, 60, "{name}");
                    assert_eq!(report.answers_checked, 60 * 12, "{name}");
                    assert!(
                        report.swaps >= 1,
                        "{name}: driver must swap at cadence {swap_every}"
                    );
                    assert_eq!(report.stats.generation, report.swaps);
                    observed_across_runs.extend(report.generations_observed);
                }
            }
            assert!(
                observed_across_runs.len() >= 2,
                "{name} at cadence {swap_every}: swaps never interleaved with serving \
                 (observed {observed_across_runs:?})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The same property on random evolving graphs, random workload
    /// seeds, random cadences and batch sizes.
    #[test]
    fn swap_consistency_on_random_evolving_graphs(
        n in 10usize..40,
        edge_factor in 2usize..5,
        graph_seed in 0u64..1_000,
        workload_seed in 0u64..1_000,
        swap_every in 1usize..6,
        batch_size in 1usize..24,
        cache in proptest::bool::ANY,
    ) {
        let g = if graph_seed.is_multiple_of(2) {
            reach_datasets::generators::hierarchy(n, n * edge_factor, 0.8, graph_seed)
        } else {
            reach_datasets::social(n, n * edge_factor, 0.25, graph_seed)
        };
        let slices = edge_fraction_slices(&g, 4, graph_seed ^ 0x9e37);
        let indices: Vec<Arc<ReachIndex>> = slices.iter().map(closure_index).collect();
        let batches = chunked(workload(&g, QueryMix::Uniform, 240, workload_seed), batch_size);
        for workers in WORKERS {
            let report = run_swap_consistency(
                &indices,
                &batches,
                &SwapHarnessConfig { workers, cache, swap_every, submitters: 2 },
            );
            prop_assert_eq!(report.answers_checked, 240);
        }
    }
}

/// Pin-at-pickup, and no drain: with every worker paused, a swap must
/// return immediately (in-flight/queued batches are NOT drained first),
/// and the queued batch must then be answered by the *new* generation —
/// the freshest index available when compute actually starts.
#[test]
fn queued_batches_pin_the_generation_current_at_pickup() {
    let (_, graphs) = sequences().remove(0);
    let indices: Vec<Arc<ReachIndex>> = graphs.iter().map(closure_index).collect();
    let svc = QueryService::start(Arc::clone(&indices[0]), ServeConfig::with_workers(2));
    svc.pause();
    let batch: Vec<(VertexId, VertexId)> = (0..12).map(|i| (i, (i + 5) % 12)).collect();
    let ticket = svc.submit_batch_async(&batch, None).unwrap();
    // Workers are paused with work queued; if swap drained or blocked,
    // this would deadlock instead of returning.
    assert_eq!(svc.swap_index(Arc::clone(&indices[1])), 1);
    assert_eq!(svc.generation(), 1);
    svc.resume();
    let (answers, generation) = ticket.wait_tagged().unwrap();
    assert_eq!(generation, 1, "queued batch picked up after the swap");
    for (&(s, t), &got) in batch.iter().zip(&answers) {
        assert_eq!(got, indices[1].query(s, t), "answered by the new index");
    }
    let stats = svc.shutdown();
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.generation, 1);
}

/// A swap landing while the service sheds load: the overloaded rejection
/// stays typed, the queued survivor batch is answered consistently by
/// one generation, and the service keeps serving afterwards.
#[test]
fn swap_under_overload_keeps_rejections_typed_and_answers_consistent() {
    let (_, graphs) = sequences().remove(1);
    let indices: Vec<Arc<ReachIndex>> = graphs.iter().map(closure_index).collect();
    let mut cfg = ServeConfig::with_workers(1);
    cfg.queue_capacity = 1;
    let svc = QueryService::start(Arc::clone(&indices[0]), cfg);
    svc.pause();
    let survivor = svc.submit_batch_async(&[(0, 3), (1, 2)], None).unwrap();
    let err = svc.submit_batch_async(&[(2, 3)], None).unwrap_err();
    assert!(matches!(err, ServeError::Overloaded { .. }));
    // Swap while saturated — must neither block nor unblock the queue.
    assert_eq!(svc.swap_index(Arc::clone(&indices[2])), 1);
    assert!(matches!(
        svc.submit_batch_async(&[(2, 3)], None).unwrap_err(),
        ServeError::Overloaded { .. }
    ));
    svc.resume();
    let (answers, generation) = survivor.wait_tagged().unwrap();
    // Generation 0 is the start index, the single swap installed slice 2.
    let expect = if generation == 0 {
        &indices[0]
    } else {
        &indices[2]
    };
    assert_eq!(
        answers,
        vec![expect.query(0, 3), expect.query(1, 2)],
        "survivor answered wholly by generation {generation}"
    );
    // Post-overload, post-swap: new batches serve from generation 1.
    let (answers, generation) = svc
        .submit_batch_async(&[(2, 3)], None)
        .unwrap()
        .wait_tagged()
        .unwrap();
    assert_eq!(generation, 1);
    assert_eq!(answers, vec![indices[2].query(2, 3)]);
    let stats = svc.shutdown();
    assert_eq!(stats.rejected_overload, 2);
    assert_eq!(stats.swaps, 1);
}

/// Swaps racing right into shutdown: a swapper thread hammers
/// `swap_index` and then performs the final drop (= shutdown: close,
/// drain, join) itself, while queued batches from a paused service are
/// drained across whatever generation they land on. Every ticket must
/// resolve to its pinned generation's answers; nothing may panic or hang.
#[test]
fn swap_racing_shutdown_drains_consistently() {
    let (_, graphs) = sequences().remove(2);
    let indices: Vec<Arc<ReachIndex>> = graphs.iter().map(closure_index).collect();
    let svc = Arc::new(QueryService::start(
        Arc::clone(&indices[0]),
        ServeConfig::with_workers(2),
    ));
    svc.pause();
    let batches: Vec<Vec<(VertexId, VertexId)>> = (0..8)
        .map(|i| (0..6).map(|j| ((i + j) % 40, (j * 7) % 40)).collect())
        .collect();
    let tickets: Vec<_> = batches
        .iter()
        .map(|b| svc.submit_batch_async(b, None).unwrap())
        .collect();
    let swapper = {
        let svc = Arc::clone(&svc);
        let next = Arc::clone(&indices[1]);
        std::thread::spawn(move || {
            for _ in 0..16 {
                svc.swap_index(Arc::clone(&next));
            }
            // `svc` (possibly the last handle) drops here: shutdown runs
            // on this thread immediately after the swap burst.
        })
    };
    // Dropping the main handle while the swapper still runs: whichever
    // thread drops last performs close-and-join, with pause still set
    // (close overrides pause, so every admitted batch drains).
    drop(svc);
    swapper.join().expect("swapper/shutdown thread panicked");
    for (batch, ticket) in batches.iter().zip(tickets) {
        let (answers, generation) = ticket.wait_tagged().unwrap();
        let expect = if generation == 0 {
            &indices[0]
        } else {
            &indices[1]
        };
        for (&(s, t), &got) in batch.iter().zip(&answers) {
            assert_eq!(
                got,
                expect.query(s, t),
                "drained batch answered by generation {generation}"
            );
        }
    }
}

/// A swap to an index covering *fewer* vertices: batches already admitted
/// with now-out-of-range vertices are failed with the typed
/// `InvalidVertex` at pickup — never a panic, never a torn answer.
#[test]
fn shrinking_swap_rejects_stranded_batches_with_typed_errors() {
    let big = closure_index(&reach_datasets::generators::hierarchy(30, 80, 0.9, 31));
    let small = closure_index(&reach_datasets::generators::hierarchy(10, 25, 0.9, 32));
    let svc = QueryService::start(Arc::clone(&big), ServeConfig::with_workers(2));
    svc.pause();
    let stranded = svc.submit_batch_async(&[(25, 3), (2, 28)], None).unwrap();
    let safe = svc.submit_batch_async(&[(4, 7)], None).unwrap();
    assert_eq!(svc.swap_index(Arc::clone(&small)), 1);
    // New submissions are validated against the new generation up front.
    assert_eq!(
        svc.submit_batch_async(&[(25, 3)], None).unwrap_err(),
        ServeError::InvalidVertex {
            vertex: 25,
            num_vertices: 10
        }
    );
    svc.resume();
    // The stranded batch spans both shards; whichever sub-batch a worker
    // rechecks first reports its own offending vertex (25 or 28) — the
    // batch's first failure is sticky.
    match stranded.wait().unwrap_err() {
        ServeError::InvalidVertex {
            vertex,
            num_vertices: 10,
        } if vertex == 25 || vertex == 28 => {}
        other => panic!("expected a pinned-generation InvalidVertex, got {other:?}"),
    }
    let (answers, generation) = safe.wait_tagged().unwrap();
    assert_eq!(generation, 1);
    assert_eq!(answers, vec![small.query(4, 7)]);
    svc.shutdown();
}

/// The cache cannot serve one generation's answer to another: pick a pair
/// whose reachability *differs* between two slices, heat the cache on the
/// old index, swap, and require the new answer immediately — then swap
/// once more (back to the sparse labels) and require the old answer
/// again, from a third, fresh cache key.
#[test]
fn swapping_never_serves_stale_cache_hits() {
    let base = reach_datasets::generators::hierarchy(36, 110, 0.9, 41);
    let slices = edge_fraction_slices(&base, 3, 9);
    let sparse = closure_index(&slices[0]);
    let dense = closure_index(slices.last().unwrap());
    let n = base.num_vertices() as VertexId;
    let (s, t) = (0..n)
        .flat_map(|s| (0..n).map(move |t| (s, t)))
        .find(|&(s, t)| !sparse.query(s, t) && dense.query(s, t))
        .expect("an added edge must create a new reachable pair");

    let svc = QueryService::start(Arc::clone(&sparse), ServeConfig::with_workers(2));
    for _ in 0..3 {
        assert!(!svc.reachable(s, t).unwrap(), "cold and cached: sparse");
    }
    svc.swap_index(Arc::clone(&dense));
    for _ in 0..3 {
        assert!(
            svc.reachable(s, t).unwrap(),
            "post-swap: dense, no stale hit"
        );
    }
    svc.swap_index(Arc::clone(&sparse));
    assert!(
        !svc.reachable(s, t).unwrap(),
        "second swap: generation 2 never reuses generation 0's entries"
    );
    let stats = svc.shutdown();
    assert_eq!(stats.swaps, 2);
    assert_eq!(stats.generation, 2);
    assert!(stats.cache_hits >= 4, "repeats within a generation do hit");
}

/// Swap bookkeeping: generations are consecutive, `ServeStats` mirrors
/// them, and a torrent of swaps with no traffic is harmless.
#[test]
fn generations_are_consecutive_and_counted() {
    let idx = closure_index(&reach_datasets::generators::hierarchy(12, 30, 0.9, 51));
    let svc = QueryService::start(Arc::clone(&idx), ServeConfig::with_workers(1));
    assert_eq!(svc.generation(), 0);
    for round in 1..=64u64 {
        assert_eq!(svc.swap_index(Arc::clone(&idx)), round);
    }
    assert_eq!(svc.generation(), 64);
    let (answers, generation) = svc
        .submit_batch_async(&[(0, 5)], None)
        .unwrap()
        .wait_tagged()
        .unwrap();
    assert_eq!(generation, 64);
    assert_eq!(answers, vec![idx.query(0, 5)]);
    let stats = svc.shutdown();
    assert_eq!(stats.swaps, 64);
    assert_eq!(stats.generation, 64);
}
