//! The retry layer's contract, pinned end-to-end: backoff schedules are
//! a pure function of the policy seed; transient rejections (overload,
//! degradation shed) are retried until the service recovers; and one
//! deadline **budget** bounds the whole call — attempts and backoff
//! sleeps included — so [`ServeError::DeadlineExceeded`] is the only
//! timeout a caller can observe, after which the terminal accounting
//! still balances.

use std::sync::Arc;
use std::time::{Duration, Instant};

use reach_serve::service::BatchOptions;
use reach_serve::testing::closure_index;
use reach_serve::{QueryService, RetryPolicy, ServeConfig, ServeError};

fn diamond_service(queue_capacity: usize) -> (Arc<reach_index::ReachIndex>, QueryService) {
    let idx = closure_index(&reach_graph::fixtures::diamond());
    let mut cfg = ServeConfig::with_workers(1);
    cfg.queue_capacity = queue_capacity;
    let svc = QueryService::start(Arc::clone(&idx), cfg);
    (idx, svc)
}

#[test]
fn backoff_schedules_are_deterministic_per_seed() {
    for seed in [0u64, 1, 42, 0xDEAD] {
        let a = RetryPolicy::new(seed).with_attempts(8).schedule();
        let b = RetryPolicy::new(seed).with_attempts(8).schedule();
        assert_eq!(a, b, "same seed ⇒ identical schedule (seed {seed})");
        assert_eq!(a.len(), 7, "max_attempts − 1 sleeps");
    }
    let a = RetryPolicy::new(1).with_attempts(8).schedule();
    let b = RetryPolicy::new(2).with_attempts(8).schedule();
    assert_ne!(a, b, "different seeds decorrelate the jitter");
    // Jitter never pushes a sleep above the un-jittered exponential or
    // below half of it (jitter fraction 0.5), and the cap binds.
    let p = RetryPolicy::new(3)
        .with_attempts(12)
        .with_backoff(Duration::from_millis(1), Duration::from_millis(20));
    for (k, d) in p.schedule().into_iter().enumerate() {
        let exp = (p.base * (1u32 << k.min(16) as u32)).min(p.cap);
        assert!(d <= exp, "retry {k}: {d:?} > {exp:?}");
        assert!(d >= exp.mul_f64(0.5 - 1e-9), "retry {k}: {d:?} too small");
    }
}

#[test]
fn transient_overload_is_retried_to_success() {
    let (idx, svc) = diamond_service(1);
    svc.pause();
    // Saturate the single queue so the retrying submission's first
    // attempts see Overloaded.
    let blocker = svc.submit_batch_async(&[(0, 3)], None).unwrap();
    let policy = RetryPolicy::new(7)
        .with_attempts(50)
        .with_backoff(Duration::from_millis(2), Duration::from_millis(10));
    let svc_ref = &svc;
    let answers = std::thread::scope(|scope| {
        let resumer = scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(25));
            svc_ref.resume();
        });
        let got = policy
            .submit_with_retries(
                svc_ref,
                &[(1, 2)],
                BatchOptions::default(),
                Duration::from_secs(10),
            )
            .expect("retries ride out the transient overload");
        resumer.join().unwrap();
        got
    });
    assert_eq!(answers, vec![idx.query(1, 2)]);
    assert_eq!(blocker.wait().unwrap(), vec![idx.query(0, 3)]);
    let stats = svc.shutdown();
    assert!(stats.rejected_overload >= 1, "at least one attempt bounced");
    assert_eq!(stats.answered, 2);
    assert!(stats.is_balanced(), "failed attempts all accounted");
}

#[test]
fn budget_bounds_the_whole_call_and_times_out_typed() {
    let (_idx, svc) = diamond_service(1);
    svc.pause();
    let blocker = svc.submit_batch_async(&[(0, 3)], None).unwrap();
    // Never resumed within the budget: every attempt sees Overloaded,
    // backoff sleeps eat the budget, and the caller gets exactly
    // DeadlineExceeded — not Overloaded, not a hang.
    let policy = RetryPolicy::new(3)
        .with_attempts(1_000)
        .with_backoff(Duration::from_millis(1), Duration::from_millis(4));
    let budget = Duration::from_millis(60);
    let t0 = Instant::now();
    let err = policy
        .submit_with_retries(&svc, &[(1, 2)], BatchOptions::default(), budget)
        .unwrap_err();
    let elapsed = t0.elapsed();
    assert_eq!(err, ServeError::DeadlineExceeded);
    assert!(elapsed >= budget, "budget fully used before giving up");
    assert!(
        elapsed < budget + Duration::from_secs(2),
        "budget overshoot is bounded by one attempt + one backoff"
    );
    svc.resume();
    blocker.wait().unwrap();
    let stats = svc.shutdown();
    assert!(stats.rejected_overload >= 1);
    assert!(stats.is_balanced());
}

#[test]
fn permanent_errors_surface_immediately_without_retries() {
    let (_idx, svc) = diamond_service(4);
    let policy = RetryPolicy::new(0).with_attempts(100);
    let t0 = Instant::now();
    let err = policy
        .submit_with_retries(
            &svc,
            &[(0, 99)],
            BatchOptions::default(),
            Duration::from_secs(30),
        )
        .unwrap_err();
    assert!(matches!(err, ServeError::InvalidVertex { vertex: 99, .. }));
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "no backoff loop for permanent errors"
    );
    let stats = svc.shutdown();
    assert_eq!(stats.submitted, 1, "exactly one attempt");
    assert!(stats.is_balanced());
}

#[test]
fn attempt_limit_returns_the_last_transient_error() {
    let (_idx, svc) = diamond_service(1);
    svc.pause();
    let blocker = svc.submit_batch_async(&[(0, 3)], None).unwrap();
    let policy = RetryPolicy::new(1)
        .with_attempts(3)
        .with_backoff(Duration::from_millis(1), Duration::from_millis(2));
    let err = policy
        .submit_with_retries(
            &svc,
            &[(1, 2)],
            BatchOptions::default(),
            Duration::from_secs(10),
        )
        .unwrap_err();
    assert!(
        matches!(err, ServeError::Overloaded { .. }),
        "attempt exhaustion surfaces the transient cause, not a timeout"
    );
    svc.resume();
    blocker.wait().unwrap();
    let stats = svc.shutdown();
    assert_eq!(stats.submitted, 4, "blocker + exactly max_attempts tries");
    assert!(stats.is_balanced());
}
