//! The serving stack over encoded index sources: a service started from
//! a [`CompressedIndex`] or [`MmapIndex`] must be answer-identical to
//! one started from the uncompressed [`ReachIndex`] — across batches,
//! generations, and hot swaps between backing kinds.
//!
//! This is the integration seam the codec differential harness
//! (`crates/index/tests/codec_differential.rs`) does not cover: epoch
//! pinning, sharded routing of a shardless source, result caching keyed
//! on generation, and the witness path through `source_tagged`.

use std::sync::Arc;

use reach_datasets::{negative_mix, standard_mixes, workload};
use reach_index::{BloomConfig, CodecId, CompressedIndex, IndexSource, MmapIndex};
use reach_serve::testing::closure_index;
use reach_serve::{QueryService, ServeConfig};

fn temp_ridx(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "reach-source-serve-{}-{tag}.ridx",
        std::process::id()
    ))
}

fn test_graph() -> reach_graph::DiGraph {
    reach_datasets::citation_dag(120, 420, 77)
}

/// Every backing kind serves the same answers through the full batch
/// machinery, for every workload mix, with caching on and off.
#[test]
fn service_answers_are_identical_across_source_kinds() {
    let g = test_graph();
    let idx = closure_index(&g);
    let path = temp_ridx("kinds");
    reach_index::save_index_v2(
        &idx,
        &path,
        CodecId::DeltaVarint,
        Some(BloomConfig::default()),
    )
    .unwrap();

    let sources: Vec<(&str, Arc<dyn IndexSource>)> = vec![
        (
            "compressed",
            Arc::new(CompressedIndex::build(
                &idx,
                CodecId::DeltaVarint,
                Some(BloomConfig::default()),
            )),
        ),
        ("mmap", Arc::new(MmapIndex::open(&path).unwrap())),
    ];

    let mut mixes = standard_mixes();
    mixes.push(negative_mix());
    for cache in [true, false] {
        let mk_cfg = || {
            let cfg = ServeConfig::with_workers(4);
            if cache {
                cfg
            } else {
                cfg.no_cache()
            }
        };
        let baseline = QueryService::start(Arc::clone(&idx), mk_cfg());
        for (name, source) in &sources {
            let svc = QueryService::start_with_source(Arc::clone(source), mk_cfg());
            for (mix_name, mix) in &mixes {
                let queries = workload(&g, *mix, 400, 0xcafe);
                for chunk in queries.chunks(64) {
                    let want = baseline.submit_batch(chunk, None).unwrap();
                    let got = svc.submit_batch(chunk, None).unwrap();
                    assert_eq!(got, want, "{name}/{mix_name}/cache={cache}");
                }
            }
            svc.shutdown();
        }
        baseline.shutdown();
    }
    std::fs::remove_file(&path).ok();
}

/// Hot swaps across backing kinds: ram → compressed → mmap → ram. Each
/// swap bumps the generation, in-flight batches stay consistent, and
/// answers always match the logical index installed at submission time.
#[test]
fn swapping_between_ram_and_encoded_sources_preserves_answers() {
    let g = test_graph();
    let idx = closure_index(&g);
    let path = temp_ridx("swap");
    reach_index::save_index_v2(&idx, &path, CodecId::DeltaVarint, None).unwrap();

    let svc = QueryService::start(Arc::clone(&idx), ServeConfig::with_workers(2));
    let queries = workload(&g, standard_mixes()[0].1, 300, 3);
    let want: Vec<bool> = queries.iter().map(|&(s, t)| idx.query(s, t)).collect();

    let gen0 = svc.generation();
    let compressed: Arc<dyn IndexSource> = Arc::new(CompressedIndex::build(
        &idx,
        CodecId::DeltaVarint,
        Some(BloomConfig::default()),
    ));
    let gen1 = svc.swap_source(Arc::clone(&compressed));
    assert!(gen1 > gen0);
    assert_eq!(svc.submit_batch(&queries, None).unwrap(), want);

    let mmapped: Arc<dyn IndexSource> = Arc::new(MmapIndex::open(&path).unwrap());
    let gen2 = svc.try_swap_source(mmapped).unwrap();
    assert!(gen2 > gen1);
    assert_eq!(svc.submit_batch(&queries, None).unwrap(), want);

    // And back to a plain in-memory index: the ram path still works
    // after the service has served encoded epochs.
    let gen3 = svc.swap_index(Arc::clone(&idx));
    assert!(gen3 > gen2);
    assert_eq!(svc.submit_batch(&queries, None).unwrap(), want);

    let stats = svc.shutdown();
    assert_eq!(stats.swaps, 3);
    std::fs::remove_file(&path).ok();
}

/// Concurrent submitters race a stream of source swaps; every batch must
/// come back internally consistent (all answers from one generation —
/// and since every generation serves the same logical index, equal to
/// the truth).
#[test]
fn swaps_under_concurrent_load_never_tear_a_batch() {
    let g = test_graph();
    let idx = closure_index(&g);
    let svc = Arc::new(QueryService::start(
        Arc::clone(&idx),
        ServeConfig::with_workers(4),
    ));
    let queries = Arc::new(workload(&g, negative_mix().1, 240, 9));
    let want: Arc<Vec<bool>> = Arc::new(queries.iter().map(|&(s, t)| idx.query(s, t)).collect());

    let mut handles = Vec::new();
    for worker in 0..4 {
        let (svc, queries, want) = (Arc::clone(&svc), Arc::clone(&queries), Arc::clone(&want));
        handles.push(std::thread::spawn(move || {
            for round in 0..20 {
                let got = svc.submit_batch(&queries, None).unwrap();
                assert_eq!(
                    got.as_slice(),
                    want.as_slice(),
                    "worker {worker} round {round}"
                );
            }
        }));
    }
    let swapper = {
        let (svc, idx) = (Arc::clone(&svc), Arc::clone(&idx));
        std::thread::spawn(move || {
            for i in 0..12 {
                if i % 2 == 0 {
                    let src: Arc<dyn IndexSource> = Arc::new(CompressedIndex::build(
                        &idx,
                        CodecId::DeltaVarint,
                        Some(BloomConfig::default()),
                    ));
                    svc.swap_source(src);
                } else {
                    svc.swap_index(Arc::clone(&idx));
                }
                std::thread::yield_now();
            }
        })
    };
    for h in handles {
        h.join().unwrap();
    }
    swapper.join().unwrap();
}

/// The witness path: `source_tagged` hands out the answering epoch's
/// source, and its witnesses agree with the uncompressed index on both
/// ram and encoded epochs.
#[test]
fn source_tagged_serves_witnesses_on_every_backing() {
    let g = test_graph();
    let idx = closure_index(&g);
    let svc = QueryService::start(Arc::clone(&idx), ServeConfig::with_workers(2));

    let check = |svc: &QueryService, expect_gen: u64| {
        let (src, generation) = svc.source_tagged();
        assert_eq!(generation, expect_gen);
        for s in (0..g.num_vertices() as u32).step_by(11) {
            for t in (0..g.num_vertices() as u32).step_by(13) {
                assert_eq!(src.query_witness(s, t), idx.query_witness(s, t));
                assert_eq!(src.query(s, t), idx.query(s, t));
            }
        }
    };
    check(&svc, svc.generation());

    let src: Arc<dyn IndexSource> = Arc::new(CompressedIndex::build(
        &idx,
        CodecId::DeltaVarint,
        Some(BloomConfig::default()),
    ));
    let generation = svc.swap_source(src);
    check(&svc, generation);
    svc.shutdown();
}

/// Starting from a source validates config exactly like the ram path:
/// vertex ids outside the source's range are rejected at submission.
#[test]
fn source_backed_service_validates_vertex_range() {
    let g = test_graph();
    let idx = closure_index(&g);
    let n = idx.num_vertices() as u32;
    let src: Arc<dyn IndexSource> =
        Arc::new(CompressedIndex::build(&idx, CodecId::DeltaVarint, None));
    let svc = QueryService::start_with_source(src, ServeConfig::with_workers(2));
    assert!(matches!(
        svc.submit_batch(&[(0, n)], None),
        Err(reach_serve::ServeError::InvalidVertex { .. })
    ));
    assert_eq!(svc.submit_batch(&[(0, 0)], None).unwrap(), vec![true]);
    svc.shutdown();
}
