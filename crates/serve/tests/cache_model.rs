//! Differential model check of the sharded LRU result cache.
//!
//! The real cache (`ShardedLruCache`: hash map into an intrusive
//! linked-slot arena, O(1) everything) is compared against the most naive
//! model that can possibly be right: a `Vec` of key/value pairs kept in
//! most-recent-first order, where every operation is a linear scan and
//! eviction pops the back. Seeded op sequences (insert/get/re-insert over
//! a small key universe to force collisions and evictions) must produce
//! identical observable behaviour — same hits, same misses, same values,
//! same eviction order — pinning the recency discipline and the capacity
//! invariant the service's hit-rate accounting depends on.

use proptest::prelude::*;
use reach_graph::VertexId;
use reach_serve::ShardedLruCache;

/// The reference model: most-recent-first vector, linear everything.
struct ModelLru {
    capacity: usize,
    /// `(key, value)` pairs ordered most recently used first.
    entries: Vec<((u64, VertexId, VertexId), bool)>,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        ModelLru {
            capacity,
            entries: Vec::new(),
        }
    }

    fn get(&mut self, key: (u64, VertexId, VertexId)) -> Option<bool> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        let entry = self.entries.remove(pos);
        let value = entry.1;
        self.entries.insert(0, entry);
        Some(value)
    }

    fn insert(&mut self, key: (u64, VertexId, VertexId), value: bool) {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.entries.pop();
        }
        self.entries.insert(0, (key, value));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single shard, so the model sees the exact same eviction stream:
    /// every get and every insert must behave identically, and after the
    /// sequence the *entire* recency order must match (checked by evicting
    /// entry by entry via probes).
    #[test]
    fn single_shard_matches_naive_model(
        capacity in 1usize..12,
        ops in proptest::collection::vec(
            // (is_insert, generation, s, t, value) over a deliberately
            // tiny key universe: collisions and evictions constantly.
            (proptest::bool::ANY, 0u64..3, 0u32..6, 0u32..6, proptest::bool::ANY),
            1..200,
        ),
    ) {
        let cache = ShardedLruCache::new(capacity, 1, 7);
        let mut model = ModelLru::new(capacity);
        for (i, &(is_insert, generation, s, t, value)) in ops.iter().enumerate() {
            if is_insert {
                cache.insert(generation, s, t, value);
                model.insert((generation, s, t), value);
            } else {
                prop_assert_eq!(
                    cache.get(generation, s, t),
                    model.get((generation, s, t)),
                    "op {}: get({},{},{}) diverged from the model", i, generation, s, t
                );
            }
            prop_assert_eq!(cache.len(), model.entries.len(), "op {}: len diverged", i);
            prop_assert!(cache.len() <= capacity, "op {}: capacity exceeded", i);
        }
        // Final state: every entry the model holds must be present with
        // the model's value; recency order is pinned by draining the model
        // most-recent-first and asserting presence — a wrongly-evicted or
        // wrongly-retained entry shows up as a hit/miss mismatch above or
        // a value mismatch here.
        for &((generation, s, t), value) in &model.entries {
            prop_assert_eq!(cache.get(generation, s, t), Some(value));
        }
    }

    /// Multi-shard: per-key behaviour must still match a model running one
    /// naive LRU *per shard* (the cache's documented semantics — capacity
    /// is split `ceil(capacity / shards)` per shard, recency is
    /// shard-local).
    #[test]
    fn sharded_cache_matches_per_shard_models(
        capacity in 2usize..32,
        shards in 1usize..5,
        seed in 0u64..1_000,
        ops in proptest::collection::vec(
            (proptest::bool::ANY, 0u64..3, 0u32..8, 0u32..8, proptest::bool::ANY),
            1..250,
        ),
    ) {
        let cache = ShardedLruCache::new(capacity, shards, seed);
        prop_assert_eq!(cache.num_shards(), shards);
        let per_shard = capacity.div_ceil(shards);
        let mut models: Vec<ModelLru> = (0..shards).map(|_| ModelLru::new(per_shard)).collect();
        for (i, &(is_insert, generation, s, t, value)) in ops.iter().enumerate() {
            let shard = cache.shard_of(generation, s, t);
            prop_assert!(shard < shards);
            if is_insert {
                cache.insert(generation, s, t, value);
                models[shard].insert((generation, s, t), value);
            } else {
                prop_assert_eq!(
                    cache.get(generation, s, t),
                    models[shard].get((generation, s, t)),
                    "op {}: shard {} diverged on ({},{},{})", i, shard, generation, s, t
                );
            }
        }
        let model_len: usize = models.iter().map(|m| m.entries.len()).sum();
        prop_assert_eq!(cache.len(), model_len);
        prop_assert!(cache.len() <= per_shard * shards, "shard-rounded capacity exceeded");
        prop_assert_eq!(cache.is_empty(), model_len == 0);
    }
}

/// A fixed, hand-checkable sequence pinning the exact eviction order —
/// complements the proptest runs with a case a human can replay on paper.
#[test]
fn eviction_order_is_least_recently_used() {
    let cache = ShardedLruCache::new(3, 1, 0);
    cache.insert(0, 0, 0, true); // order: [0]
    cache.insert(0, 1, 1, true); // order: [1, 0]
    cache.insert(0, 2, 2, true); // order: [2, 1, 0]
    assert_eq!(cache.get(0, 0, 0), Some(true)); // order: [0, 2, 1]
    cache.insert(0, 3, 3, false); // evicts 1 → [3, 0, 2]
    assert_eq!(cache.get(0, 1, 1), None);
    cache.insert(0, 4, 4, false); // evicts 2 → [4, 3, 0]
    assert_eq!(cache.get(0, 2, 2), None);
    assert_eq!(cache.get(0, 0, 0), Some(true)); // order: [0, 4, 3]
    cache.insert(0, 5, 5, true); // evicts 3 → [5, 0, 4]
    assert_eq!(cache.get(0, 3, 3), None);
    assert_eq!(cache.get(0, 4, 4), Some(false));
    assert_eq!(cache.get(0, 5, 5), Some(true));
    assert_eq!(cache.len(), 3);
}
