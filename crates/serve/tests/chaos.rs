//! Chaos mode, pinned differentially: under any *recoverable* seeded
//! fault schedule — worker crashes (supervised requeue + respawn),
//! stalls (supersede), slow shards, swap-install failures, all racing
//! hot-swaps — every admitted batch is answered exactly once, and every
//! answer equals `ReachIndex::query` on the one generation the batch
//! pinned. A lost batch hangs the harness, a double-answered one trips
//! the double-finish panic, and a miscounted one fails the
//! `submitted == answered + rejected + shed` balance asserted at
//! shutdown. The property sweep covers fault seeds × 1/2/4/8 workers ×
//! cache on/off × direct-vs-retrying clients.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use reach_datasets::{edge_fraction_slices, standard_mixes, workload};
use reach_graph::VertexId;
use reach_index::ReachIndex;
use reach_serve::testing::{closure_index, run_chaos_consistency, ChaosHarnessConfig};
use reach_serve::{RetryPolicy, ServeFaultPlan};

const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// One evolving-graph sequence (3 cumulative edge slices of a hierarchy
/// graph) plus a batched workload over its densest slice.
#[allow(clippy::type_complexity)]
fn fixture(workload_seed: u64) -> (Vec<Arc<ReachIndex>>, Vec<Vec<(VertexId, VertexId)>>) {
    let g = reach_datasets::generators::hierarchy(40, 120, 0.9, 77);
    let slices = edge_fraction_slices(&g, 3, 7);
    let indices: Vec<Arc<ReachIndex>> = slices.iter().map(closure_index).collect();
    let (_, mix) = standard_mixes()[workload_seed as usize % 3];
    let queries = workload(slices.last().unwrap(), mix, 30 * 10, workload_seed);
    let batches = queries.chunks(10).map(<[_]>::to_vec).collect();
    (indices, batches)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance property: answers stay bit-identical to the pinned
    /// generation's index and the exactly-once ledger balances, whatever
    /// recoverable fault schedule the seed draws and however the
    /// supervisor's recoveries interleave with submissions and swaps.
    #[test]
    fn no_lost_or_double_answers_under_any_recoverable_schedule(
        fault_seed in 0u64..1_000,
        workers_idx in 0usize..4,
        cache in any::<bool>(),
        with_retry in any::<bool>(),
    ) {
        let workers = WORKERS[workers_idx];
        let (indices, batches) = fixture(fault_seed);
        let plan = ServeFaultPlan::new(fault_seed)
            .with_worker_crashes(0.10, 6)
            .with_worker_stalls(0.05, Duration::from_millis(15), 3)
            .with_slow_shard(0, Duration::from_micros(100))
            .with_swap_failures(0.3);
        let report = run_chaos_consistency(
            &indices,
            &batches,
            &ChaosHarnessConfig {
                workers,
                cache,
                swap_every: 4,
                submitters: 2,
                fault_plan: plan,
                retry: with_retry.then(|| RetryPolicy::new(fault_seed)),
                ..ChaosHarnessConfig::default()
            },
        );
        prop_assert_eq!(report.batches, 30);
        prop_assert_eq!(report.answers_checked, 30 * 10);
        // Every batch succeeded exactly once (retrying clients may add
        // rejected attempts on top, never answered ones).
        prop_assert!(report.stats.answered >= 30);
        prop_assert!(report.stats.is_balanced());
        prop_assert_eq!(report.stats.requeued, report.stats.injected_crashes);
    }
}

/// Crashes aimed to race the hot-swap machinery: every pickup of the
/// first incarnations crashes (until the budget runs dry) while the
/// driver swaps every 2 batches and half the installs fail. The pinned
/// generation of a requeued sub-batch must survive the requeue — the
/// `OnceLock` pin is on the batch, not the worker.
#[test]
fn crash_storm_racing_swaps_keeps_batches_untorn() {
    let (indices, batches) = fixture(9);
    for workers in [2usize, 4] {
        let plan = ServeFaultPlan::new(0xC4A5)
            .with_worker_crashes(1.0, 8)
            .with_swap_failures(0.5);
        let report = run_chaos_consistency(
            &indices,
            &batches,
            &ChaosHarnessConfig {
                workers,
                swap_every: 2,
                fault_plan: plan,
                ..ChaosHarnessConfig::default()
            },
        );
        assert_eq!(report.stats.injected_crashes, 8, "budget fully spent");
        assert_eq!(report.stats.requeued, 8);
        assert!(report.stats.respawns >= 8);
        assert!(report.swaps >= 1, "swaps proceed through the storm");
        assert_eq!(report.recoveries.len() as u64, report.stats.respawns);
    }
}

/// A pure stall run: supervision must supersede the stalled workers and
/// the stalled workers must still finish (exactly once) the sub-batches
/// they claimed.
#[test]
fn stall_storm_is_superseded_without_double_answers() {
    let (indices, batches) = fixture(5);
    let plan = ServeFaultPlan::new(0x57A1).with_worker_stalls(1.0, Duration::from_millis(25), 4);
    let report = run_chaos_consistency(
        &indices,
        &batches,
        &ChaosHarnessConfig {
            workers: 2,
            swap_every: 0, // no swaps: isolate the stall machinery
            fault_plan: plan,
            ..ChaosHarnessConfig::default()
        },
    );
    assert_eq!(report.stats.injected_stalls, 4, "budget fully spent");
    assert!(report.stats.respawns >= 1, "at least one supersession");
    assert_eq!(report.stats.requeued, 0, "stalls never requeue");
    assert_eq!(report.swaps, 0);
    assert_eq!(report.generations_observed.len(), 1);
}

/// Fault streams are per (seed, shard, incarnation): two runs of the same
/// plan inject the same crash budget spend (the schedule is a function of
/// the seed, not of wall-clock timing) on a single-worker service, where
/// pickup order is deterministic.
#[test]
fn single_worker_fault_schedules_replay_identically() {
    let (indices, batches) = fixture(1);
    let run = || {
        let plan = ServeFaultPlan::new(42)
            .with_worker_crashes(0.2, 4)
            .with_swap_failures(0.4);
        run_chaos_consistency(
            &indices,
            &batches,
            &ChaosHarnessConfig {
                workers: 1,
                submitters: 1,
                swap_every: 4,
                fault_plan: plan,
                ..ChaosHarnessConfig::default()
            },
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a.stats.injected_crashes, b.stats.injected_crashes);
    assert_eq!(a.stats.requeued, b.stats.requeued);
    assert_eq!(a.swap_failures, b.swap_failures);
    assert_eq!(a.answers_checked, b.answers_checked);
}
