//! The serving layer's core guarantee, pinned as a property: for every
//! workload mix, the service's answers are bit-identical to direct
//! `ReachIndex::query` calls at 1/2/4/8 worker threads, with and without
//! the result cache — across random graphs, workload seeds, and batch
//! sizes. A serving layer that changes an answer is a bug, not a
//! trade-off.

use std::sync::Arc;

use proptest::prelude::*;
use reach_datasets::{standard_mixes, workload};
use reach_graph::{DiGraph, VertexId};
use reach_serve::testing::closure_index;
use reach_serve::{QueryService, ServeConfig};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn random_graph(n: usize, edges: usize, seed: u64) -> DiGraph {
    // Alternate the two cyclic generator families for structural variety.
    if seed.is_multiple_of(2) {
        reach_datasets::generators::hierarchy(n, edges, 0.8, seed)
    } else {
        reach_datasets::social(n, edges, 0.25, seed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn answers_bit_identical_across_threads_mixes_and_cache(
        n in 8usize..48,
        edge_factor in 1usize..4,
        graph_seed in 0u64..1_000,
        workload_seed in 0u64..1_000,
        batch_size in 1usize..40,
    ) {
        let g = random_graph(n, n * edge_factor, graph_seed);
        let idx = closure_index(&g);
        for (mix_name, mix) in standard_mixes() {
            let queries = workload(&g, mix, 120, workload_seed);
            let expect: Vec<bool> = queries.iter().map(|&(s, t)| idx.query(s, t)).collect();
            for workers in THREAD_COUNTS {
                for cached in [true, false] {
                    let mut cfg = ServeConfig::with_workers(workers);
                    if !cached {
                        cfg = cfg.no_cache();
                    }
                    let svc = QueryService::start(Arc::clone(&idx), cfg);
                    let mut got = Vec::with_capacity(queries.len());
                    for chunk in queries.chunks(batch_size) {
                        got.extend(svc.submit_batch(chunk, None).unwrap());
                    }
                    prop_assert_eq!(
                        &got, &expect,
                        "mix {} at {} workers (cache: {})", mix_name, workers, cached
                    );
                    let stats = svc.shutdown();
                    prop_assert_eq!(stats.queries, queries.len() as u64);
                    prop_assert_eq!(stats.rejected_overload, 0);
                    prop_assert_eq!(stats.rejected_deadline, 0);
                }
            }
        }
    }
}

/// Cancellation-by-drop: dropping a [`reach_serve::BatchTicket`] without
/// waiting abandons only the *client's view* — the admitted batch still
/// runs to completion, its queries are fully accounted in `ServeStats`,
/// and every worker joins cleanly at shutdown (a worker wedged on a
/// dropped ticket would hang the join; a skipped batch would show up as a
/// query-count shortfall).
#[test]
fn dropped_tickets_still_complete_and_account_their_work() {
    let g = random_graph(32, 96, 2);
    let idx = closure_index(&g);
    let n = g.num_vertices() as VertexId;
    let svc = QueryService::start(Arc::clone(&idx), ServeConfig::with_workers(4));
    svc.pause();
    let batches: Vec<Vec<(VertexId, VertexId)>> = (0..12u32)
        .map(|i| {
            (0..5)
                .map(|j| ((i * 7 + j) % n, (j * 11 + i) % n))
                .collect()
        })
        .collect();
    let mut kept = Vec::new();
    for (i, batch) in batches.iter().enumerate() {
        let ticket = svc.submit_batch_async(batch, None).unwrap();
        if i % 3 == 0 {
            kept.push((i, ticket));
        } else {
            drop(ticket); // cancelled from the client side while queued
        }
    }
    svc.resume();
    for (i, ticket) in kept {
        let expect: Vec<bool> = batches[i].iter().map(|&(s, t)| idx.query(s, t)).collect();
        assert_eq!(ticket.wait().unwrap(), expect, "kept ticket {i}");
    }
    let stats = svc.shutdown();
    let total: usize = batches.iter().map(Vec::len).sum();
    assert_eq!(
        stats.queries, total as u64,
        "dropped batches were still computed — nothing leaked, nothing skipped"
    );
    assert_eq!(stats.batches, batches.len() as u64);
    assert_eq!(stats.rejected_overload, 0);
    assert_eq!(stats.rejected_deadline, 0);
}

/// Drops racing live workers (not staged behind a pause): interleaving a
/// drop with the batch's own compute must never wedge the service or
/// disturb sibling batches' answers.
#[test]
fn racing_ticket_drops_never_wedge_the_service() {
    let g = random_graph(24, 72, 3);
    let idx = closure_index(&g);
    let n = g.num_vertices() as VertexId;
    let svc = QueryService::start(Arc::clone(&idx), ServeConfig::with_workers(2));
    let rounds = 50u32;
    for round in 0..rounds {
        let dropped_batch = [(round % n, (round + 1) % n), ((round * 3) % n, round % n)];
        let kept_batch = [
            ((round + 2) % n, (round * 5) % n),
            (round % n, (round * 2) % n),
        ];
        let dropped = svc.submit_batch_async(&dropped_batch, None).unwrap();
        let kept = svc.submit_batch_async(&kept_batch, None).unwrap();
        drop(dropped); // races the workers mid-compute
        let expect: Vec<bool> = kept_batch.iter().map(|&(s, t)| idx.query(s, t)).collect();
        assert_eq!(kept.wait().unwrap(), expect, "round {round}");
    }
    let stats = svc.shutdown();
    assert_eq!(stats.batches, u64::from(rounds) * 2);
    assert_eq!(
        stats.queries,
        u64::from(rounds) * 4,
        "every query of every batch (dropped ones included) was served"
    );
}

/// The same guarantee over the real DRL product: a DRLb-built index on the
/// paper graph served at every thread count answers exactly like the
/// index it serves.
#[test]
fn drlb_index_served_bit_identically() {
    let g = reach_graph::fixtures::paper_graph();
    let ord = reach_graph::OrderAssignment::new(&g, reach_graph::OrderKind::DegreeProduct);
    let (idx, _stats) = reach_drl_dist::drlb::run_configured(
        &g,
        &ord,
        reach_core::BatchParams::default(),
        4,
        reach_vcs::NetworkModel::default(),
        None,
        None,
    )
    .expect("fault-free build");
    let idx = Arc::new(idx);
    let all_pairs: Vec<(VertexId, VertexId)> = g
        .vertices()
        .flat_map(|s| g.vertices().map(move |t| (s, t)))
        .collect();
    let expect: Vec<bool> = all_pairs.iter().map(|&(s, t)| idx.query(s, t)).collect();
    for workers in THREAD_COUNTS {
        let svc = QueryService::start(Arc::clone(&idx), ServeConfig::with_workers(workers));
        let got = svc.submit_batch(&all_pairs, None).unwrap();
        assert_eq!(got, expect, "{workers} workers");
        // Ask the same batch again: now mostly cache hits, same answers.
        let again = svc.submit_batch(&all_pairs, None).unwrap();
        assert_eq!(again, expect, "{workers} workers, cached");
        let stats = svc.shutdown();
        assert!(
            stats.cache_hits >= all_pairs.len() as u64,
            "second pass hits the cache"
        );
    }
}
