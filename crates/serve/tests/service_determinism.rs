//! The serving layer's core guarantee, pinned as a property: for every
//! workload mix, the service's answers are bit-identical to direct
//! `ReachIndex::query` calls at 1/2/4/8 worker threads, with and without
//! the result cache — across random graphs, workload seeds, and batch
//! sizes. A serving layer that changes an answer is a bug, not a
//! trade-off.

use std::sync::Arc;

use proptest::prelude::*;
use reach_datasets::{standard_mixes, workload};
use reach_graph::{traverse, DiGraph, VertexId};
use reach_index::ReachIndex;
use reach_serve::{QueryService, ServeConfig};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A trivially valid 2-hop cover built from BFS: `L_out(s) = DES(s)`,
/// `L_in(t) = {t}` — `L_out(s) ∩ L_in(t) ≠ ∅ ⇔ t ∈ DES(s) ⇔ s → t`.
fn closure_index(g: &DiGraph) -> Arc<ReachIndex> {
    let n = g.num_vertices();
    let out: Vec<Vec<VertexId>> = (0..n as VertexId)
        .map(|v| traverse::descendants(g, v))
        .collect();
    let ins: Vec<Vec<VertexId>> = (0..n as VertexId).map(|v| vec![v]).collect();
    Arc::new(ReachIndex::from_labels(ins, out))
}

fn random_graph(n: usize, edges: usize, seed: u64) -> DiGraph {
    // Alternate the two cyclic generator families for structural variety.
    if seed.is_multiple_of(2) {
        reach_datasets::generators::hierarchy(n, edges, 0.8, seed)
    } else {
        reach_datasets::social(n, edges, 0.25, seed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn answers_bit_identical_across_threads_mixes_and_cache(
        n in 8usize..48,
        edge_factor in 1usize..4,
        graph_seed in 0u64..1_000,
        workload_seed in 0u64..1_000,
        batch_size in 1usize..40,
    ) {
        let g = random_graph(n, n * edge_factor, graph_seed);
        let idx = closure_index(&g);
        for (mix_name, mix) in standard_mixes() {
            let queries = workload(&g, mix, 120, workload_seed);
            let expect: Vec<bool> = queries.iter().map(|&(s, t)| idx.query(s, t)).collect();
            for workers in THREAD_COUNTS {
                for cached in [true, false] {
                    let mut cfg = ServeConfig::with_workers(workers);
                    if !cached {
                        cfg = cfg.no_cache();
                    }
                    let svc = QueryService::start(Arc::clone(&idx), cfg);
                    let mut got = Vec::with_capacity(queries.len());
                    for chunk in queries.chunks(batch_size) {
                        got.extend(svc.submit_batch(chunk, None).unwrap());
                    }
                    prop_assert_eq!(
                        &got, &expect,
                        "mix {} at {} workers (cache: {})", mix_name, workers, cached
                    );
                    let stats = svc.shutdown();
                    prop_assert_eq!(stats.queries, queries.len() as u64);
                    prop_assert_eq!(stats.rejected_overload, 0);
                    prop_assert_eq!(stats.rejected_deadline, 0);
                }
            }
        }
    }
}

/// The same guarantee over the real DRL product: a DRLb-built index on the
/// paper graph served at every thread count answers exactly like the
/// index it serves.
#[test]
fn drlb_index_served_bit_identically() {
    let g = reach_graph::fixtures::paper_graph();
    let ord = reach_graph::OrderAssignment::new(&g, reach_graph::OrderKind::DegreeProduct);
    let (idx, _stats) = reach_drl_dist::drlb::run_configured(
        &g,
        &ord,
        reach_core::BatchParams::default(),
        4,
        reach_vcs::NetworkModel::default(),
        None,
        None,
    )
    .expect("fault-free build");
    let idx = Arc::new(idx);
    let all_pairs: Vec<(VertexId, VertexId)> = g
        .vertices()
        .flat_map(|s| g.vertices().map(move |t| (s, t)))
        .collect();
    let expect: Vec<bool> = all_pairs.iter().map(|&(s, t)| idx.query(s, t)).collect();
    for workers in THREAD_COUNTS {
        let svc = QueryService::start(Arc::clone(&idx), ServeConfig::with_workers(workers));
        let got = svc.submit_batch(&all_pairs, None).unwrap();
        assert_eq!(got, expect, "{workers} workers");
        // Ask the same batch again: now mostly cache hits, same answers.
        let again = svc.submit_batch(&all_pairs, None).unwrap();
        assert_eq!(again, expect, "{workers} workers, cached");
        let stats = svc.shutdown();
        assert!(
            stats.cache_hits >= all_pairs.len() as u64,
            "second pass hits the cache"
        );
    }
}
