//! `reach-serve` — a concurrent, shard-aware reachability query service.
//!
//! The paper's deployment model (§II-A) ends at "ship the finished DRL
//! index to a query machine"; this crate is that query machine. It serves
//! an immutable, [`Arc`](std::sync::Arc)-shared [`reach_index::ReachIndex`]
//! to many concurrent clients:
//!
//! * **Sharding** — the label store is partitioned by the same
//!   vertex-partitioning the cluster simulation uses
//!   ([`reach_vcs::Partition`]): worker `k` owns `L_out(v)` for every
//!   vertex with `node_of(v) == k` and answers every query sourced at one
//!   of its vertices entirely locally (the in-label side is an immutable
//!   shared replica, so no cross-shard hop is ever needed). See
//!   [`shard::ShardedLabels`].
//! * **Batching & admission control** — queries are submitted in batches
//!   ([`QueryService::submit_batch`]) with an optional per-batch deadline.
//!   Each shard has a bounded request queue; a full queue rejects the
//!   batch with [`ServeError::Overloaded`] at admission time and an
//!   expired deadline yields [`ServeError::DeadlineExceeded`] — never a
//!   silent drop or a panic. Results come back in submission order
//!   regardless of which shard answered what, so answers are bit-identical
//!   to direct [`reach_index::ReachIndex::query`] calls at any worker
//!   count.
//! * **Caching** — a seeded, sharded LRU result cache keyed on
//!   `(generation, s, t)` ([`cache::ShardedLruCache`]) absorbs hot pairs;
//!   hit/miss counts are visible through [`QueryService::stats`] and, with
//!   the `obs` feature, through the `serve.*` metrics (see
//!   `docs/OBSERVABILITY.md`).
//! * **Hot-swap** — [`QueryService::swap_index`] installs a rebuilt index
//!   behind a generation-tagged slot ([`swap::Swappable`]) without
//!   draining in-flight work: every batch pins exactly one generation at
//!   first worker pickup and is answered entirely by it, the cache keys
//!   on the generation, and [`BatchTicket::wait_tagged`] reports which
//!   generation answered. The differential harness in [`testing`] (driven
//!   by `tests/hot_swap.rs` and the `swap_bench` load harness) pins the
//!   no-torn-batches guarantee against `ReachIndex::query`.
//!
//! The load harnesses live in `crates/bench/src/bin/serve_bench.rs` and
//! `crates/bench/src/bin/swap_bench.rs`; the deterministic query mixes
//! they drive are in `reach_datasets::workload`.

#![warn(missing_docs)]

pub mod cache;
pub mod service;
pub mod shard;
pub mod swap;
pub mod testing;

pub use cache::ShardedLruCache;
pub use service::{BatchTicket, QueryService, ServeConfig, ServeStats};
pub use shard::ShardedLabels;
pub use swap::{Swappable, Tagged};

use reach_graph::VertexId;

/// Typed rejection reasons of the query service.
///
/// Every failure mode of submission and completion is represented here;
/// the service never silently drops a request and never panics on bad
/// input or overload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded request queue of a shard was full at admission time —
    /// the service is over capacity and sheds load instead of queueing
    /// unboundedly.
    Overloaded {
        /// The shard whose queue rejected the batch.
        shard: usize,
        /// The per-shard queue capacity (sub-batches) that was exhausted.
        capacity: usize,
    },
    /// The batch's deadline expired before all of its results were
    /// computed (checked at admission and again when a worker picks the
    /// batch up).
    DeadlineExceeded,
    /// A query named a vertex the index does not cover.
    InvalidVertex {
        /// The offending vertex id.
        vertex: VertexId,
        /// The number of vertices the served index covers.
        num_vertices: usize,
    },
    /// The service is shutting down and no longer admits requests.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { shard, capacity } => {
                write!(
                    f,
                    "overloaded: shard {shard} queue full (capacity {capacity})"
                )
            }
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::InvalidVertex {
                vertex,
                num_vertices,
            } => {
                write!(
                    f,
                    "invalid vertex {vertex}: index covers {num_vertices} vertices"
                )
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_cause() {
        let e = ServeError::Overloaded {
            shard: 2,
            capacity: 8,
        };
        assert!(e.to_string().contains("shard 2"));
        assert!(ServeError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
        let e = ServeError::InvalidVertex {
            vertex: 9,
            num_vertices: 4,
        };
        assert!(e.to_string().contains("vertex 9"));
        assert!(ServeError::ShuttingDown
            .to_string()
            .contains("shutting down"));
    }
}
