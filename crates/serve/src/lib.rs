//! `reach-serve` — a concurrent, shard-aware reachability query service.
//!
//! The paper's deployment model (§II-A) ends at "ship the finished DRL
//! index to a query machine"; this crate is that query machine. It serves
//! an immutable, [`Arc`](std::sync::Arc)-shared [`reach_index::ReachIndex`]
//! to many concurrent clients:
//!
//! * **Sharding** — the label store is partitioned by the same
//!   vertex-partitioning the cluster simulation uses
//!   ([`reach_vcs::Partition`]): worker `k` owns `L_out(v)` for every
//!   vertex with `node_of(v) == k` and answers every query sourced at one
//!   of its vertices entirely locally (the in-label side is an immutable
//!   shared replica, so no cross-shard hop is ever needed). See
//!   [`shard::ShardedLabels`].
//! * **Batching & admission control** — queries are submitted in batches
//!   ([`QueryService::submit_batch`]) with an optional per-batch deadline.
//!   Each shard has a bounded request queue; a full queue rejects the
//!   batch with [`ServeError::Overloaded`] at admission time and an
//!   expired deadline yields [`ServeError::DeadlineExceeded`] — never a
//!   silent drop or a panic. Results come back in submission order
//!   regardless of which shard answered what, so answers are bit-identical
//!   to direct [`reach_index::ReachIndex::query`] calls at any worker
//!   count.
//! * **Caching** — a seeded, sharded LRU result cache keyed on
//!   `(generation, s, t)` ([`cache::ShardedLruCache`]) absorbs hot pairs;
//!   hit/miss counts are visible through [`QueryService::stats`] and, with
//!   the `obs` feature, through the `serve.*` metrics (see
//!   `docs/OBSERVABILITY.md`).
//! * **Hot-swap** — [`QueryService::swap_index`] installs a rebuilt index
//!   behind a generation-tagged slot ([`swap::Swappable`]) without
//!   draining in-flight work: every batch pins exactly one generation at
//!   first worker pickup and is answered entirely by it, the cache keys
//!   on the generation, and [`BatchTicket::wait_tagged`] reports which
//!   generation answered. The differential harness in [`testing`] (driven
//!   by `tests/hot_swap.rs` and the `swap_bench` load harness) pins the
//!   no-torn-batches guarantee against `ReachIndex::query`.
//!
//! * **Resilience & chaos mode** — with [`ResilienceConfig`] set, workers
//!   run supervised: heartbeats, crash detection, exactly-once requeue of
//!   a dead worker's in-flight work, and respawn ([`supervisor`]). A
//!   seeded [`ServeFaultPlan`] ([`fault`]) deterministically injects
//!   worker crashes, stalls, slow shards, and swap-install failures;
//!   [`RetryPolicy`] ([`retry`]) adds client-side retries with seeded
//!   jittered exponential backoff under a per-call deadline *budget*; and
//!   [`DegradeConfig`] sheds work by [`Priority`]
//!   tier under sustained overload. All of it is opt-in: the default
//!   configuration runs the exact pre-chaos code path. The differential
//!   chaos harness is [`testing::run_chaos_consistency`];
//!   `docs/RESILIENCE.md` has the full model.
//!
//! The load harnesses live in `crates/bench/src/bin/serve_bench.rs`,
//! `crates/bench/src/bin/swap_bench.rs`, and
//! `crates/bench/src/bin/chaos_bench.rs`; the deterministic query mixes
//! they drive are in `reach_datasets::workload`.

#![warn(missing_docs)]

pub mod cache;
pub mod fault;
pub mod retry;
pub mod service;
pub mod shard;
pub mod supervisor;
pub mod swap;
pub mod testing;

pub use cache::ShardedLruCache;
pub use fault::ServeFaultPlan;
pub use retry::RetryPolicy;
pub use service::{
    BatchOptions, BatchTicket, DegradeConfig, Priority, QueryService, ServeConfig, ServeStats,
};
pub use shard::ShardedLabels;
pub use supervisor::{ResilienceConfig, SupervisorConfig};
pub use swap::{Swappable, Tagged};

use reach_graph::VertexId;

/// Typed rejection reasons of the query service.
///
/// Every failure mode of submission and completion is represented here;
/// the service never silently drops a request and never panics on bad
/// input or overload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded request queue of a shard was full at admission time —
    /// the service is over capacity and sheds load instead of queueing
    /// unboundedly.
    Overloaded {
        /// The shard whose queue rejected the batch.
        shard: usize,
        /// The per-shard queue capacity (sub-batches) that was exhausted.
        capacity: usize,
    },
    /// The batch's deadline expired before all of its results were
    /// computed (checked at admission and again when a worker picks the
    /// batch up).
    DeadlineExceeded,
    /// A query named a vertex the index does not cover.
    InvalidVertex {
        /// The offending vertex id.
        vertex: VertexId,
        /// The number of vertices the served index covers.
        num_vertices: usize,
    },
    /// The service is shutting down and no longer admits requests.
    ShuttingDown,
    /// A degradation tier shed the batch under sustained overload (see
    /// [`service::DegradeConfig`]). The batch was never enqueued; retrying
    /// after backoff is appropriate.
    Degraded {
        /// The tier that shed the batch.
        tier: DegradeTier,
    },
    /// A [`QueryService::try_swap_index`] install was failed by fault
    /// injection before anything was installed — the previous generation
    /// keeps serving untouched.
    SwapFailed {
        /// The generation still being served after the failed install.
        generation: u64,
    },
}

/// The degradation tier that shed a batch (carried by
/// [`ServeError::Degraded`]). Tiers escalate with queue pressure and
/// disengage with hysteresis; see [`service::DegradeConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeTier {
    /// Tier 1: [`Priority::Low`] work is shed.
    SheddingLow,
    /// Tier 2: [`Priority::Normal`] work is served from the result cache
    /// alone or shed; only [`Priority::High`] work reaches the workers.
    CacheOnly,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { shard, capacity } => {
                write!(
                    f,
                    "overloaded: shard {shard} queue full (capacity {capacity})"
                )
            }
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::InvalidVertex {
                vertex,
                num_vertices,
            } => {
                write!(
                    f,
                    "invalid vertex {vertex}: index covers {num_vertices} vertices"
                )
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Degraded { tier } => {
                let mode = match tier {
                    DegradeTier::SheddingLow => "shedding low-priority work",
                    DegradeTier::CacheOnly => "serving cache-only",
                };
                write!(f, "degraded under overload: {mode}")
            }
            ServeError::SwapFailed { generation } => {
                write!(
                    f,
                    "swap install failed; generation {generation} keeps serving"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_cause() {
        let e = ServeError::Overloaded {
            shard: 2,
            capacity: 8,
        };
        assert!(e.to_string().contains("shard 2"));
        assert!(ServeError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
        let e = ServeError::InvalidVertex {
            vertex: 9,
            num_vertices: 4,
        };
        assert!(e.to_string().contains("vertex 9"));
        assert!(ServeError::ShuttingDown
            .to_string()
            .contains("shutting down"));
        let e = ServeError::Degraded {
            tier: DegradeTier::CacheOnly,
        };
        assert!(e.to_string().contains("cache-only"));
        let e = ServeError::SwapFailed { generation: 3 };
        assert!(e.to_string().contains("generation 3"));
    }
}
