//! Seeded fault injection for the serve path — chaos mode.
//!
//! A [`ServeFaultPlan`] describes, deterministically from a seed, the
//! faults a running [`QueryService`](crate::QueryService) is subjected
//! to. It is the serve-side sibling of the build-side
//! [`reach_vcs::FaultPlan`] and draws its schedules through the same
//! extracted [`FaultRng`] machinery:
//!
//! * **worker crashes** — a worker thread dies at sub-batch pickup,
//!   before any compute or accounting for that sub-batch; the
//!   [`supervisor`](crate::supervisor) detects the dead thread, requeues
//!   its in-flight sub-batch **exactly once**, and respawns the worker;
//! * **worker stalls** — a worker sleeps at pickup for a fixed duration;
//!   if the stall outlives the supervisor's heartbeat timeout, a
//!   replacement worker is spawned on the same shard queue (the stalled
//!   worker keeps ownership of its claimed sub-batch and retires after
//!   finishing it, so nothing is ever answered twice);
//! * **slow shards** — a fixed per-pickup delay on chosen shards, below
//!   the stall threshold: pure latency, no supervision response;
//! * **swap-install failures** —
//!   [`QueryService::try_swap_index`](crate::QueryService::try_swap_index)
//!   fails *before* installing anything, so the previous generation keeps
//!   serving untouched (a failed swap is atomic-nothing).
//!
//! Faults are drawn per worker **incarnation** (shard × respawn count)
//! from decorrelated sub-streams of the plan seed, so the n-th pickup of
//! any given incarnation faults identically across runs regardless of
//! thread timing. Crash and stall volumes are bounded by budgets so every
//! plan is a *recoverable* schedule: the chaos harness
//! ([`crate::testing::run_chaos_consistency`]) proves the service drains
//! every admitted batch with answers bit-identical to the pinned
//! generation's index under any such plan.
//!
//! With no plan configured the service runs the exact pre-chaos code
//! path — fault injection is a strictly opt-in test/bench surface,
//! mirroring the `reach-obs` no-op pattern.

use std::time::Duration;

use reach_vcs::FaultRng;

/// A deterministic, seeded schedule of serve-path faults. See the module
/// docs for the fault taxonomy and the recovery each fault exercises.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeFaultPlan {
    /// Seed of every fault stream; two services running equal plans draw
    /// identical per-incarnation fault schedules.
    pub seed: u64,
    /// Probability that a worker crashes at a sub-batch pickup.
    pub crash_prob: f64,
    /// Total injected-crash budget across all workers; keeps every plan a
    /// recoverable, terminating schedule.
    pub max_crashes: u64,
    /// Probability that a worker stalls at a sub-batch pickup.
    pub stall_prob: f64,
    /// Stall length. Stalls longer than the supervisor's
    /// [`stall_timeout`](crate::supervisor::SupervisorConfig::stall_timeout)
    /// trigger a replacement worker.
    pub stall: Duration,
    /// Total injected-stall budget across all workers.
    pub max_stalls: u64,
    /// Shards suffering a fixed extra delay at every pickup.
    pub slow_shards: Vec<usize>,
    /// The per-pickup delay of a slow shard.
    pub slow_delay: Duration,
    /// Probability that a [`try_swap_index`](crate::QueryService::try_swap_index)
    /// call fails before installing anything.
    pub swap_fail_prob: f64,
}

impl ServeFaultPlan {
    /// A fault-free plan with the given seed; add faults with the builder
    /// methods.
    pub fn new(seed: u64) -> Self {
        ServeFaultPlan {
            seed,
            crash_prob: 0.0,
            max_crashes: 0,
            stall_prob: 0.0,
            stall: Duration::from_millis(20),
            max_stalls: 0,
            slow_shards: Vec::new(),
            slow_delay: Duration::from_micros(200),
            swap_fail_prob: 0.0,
        }
    }

    /// Crashes a worker at each pickup with probability `p`, at most
    /// `max_crashes` times in total.
    pub fn with_worker_crashes(mut self, p: f64, max_crashes: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "crash probability in [0, 1]");
        self.crash_prob = p;
        self.max_crashes = max_crashes;
        self
    }

    /// Stalls a worker for `stall` at each pickup with probability `p`,
    /// at most `max_stalls` times in total.
    pub fn with_worker_stalls(mut self, p: f64, stall: Duration, max_stalls: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "stall probability in [0, 1]");
        self.stall_prob = p;
        self.stall = stall;
        self.max_stalls = max_stalls;
        self
    }

    /// Adds `delay` to every pickup on `shard`.
    pub fn with_slow_shard(mut self, shard: usize, delay: Duration) -> Self {
        if !self.slow_shards.contains(&shard) {
            self.slow_shards.push(shard);
            self.slow_shards.sort_unstable();
        }
        self.slow_delay = delay;
        self
    }

    /// Fails each swap-install attempt with probability `p` (the swap
    /// installs nothing; the old generation keeps serving).
    pub fn with_swap_failures(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "swap-failure probability in [0, 1]"
        );
        self.swap_fail_prob = p;
        self
    }

    /// Whether the plan can perturb the service at all.
    pub fn is_active(&self) -> bool {
        (self.crash_prob > 0.0 && self.max_crashes > 0)
            || (self.stall_prob > 0.0 && self.max_stalls > 0)
            || !self.slow_shards.is_empty()
            || self.swap_fail_prob > 0.0
    }

    /// The fixed extra pickup delay of `shard`, if it is a slow shard.
    pub(crate) fn slow_delay_for(&self, shard: usize) -> Option<Duration> {
        self.slow_shards
            .binary_search(&shard)
            .ok()
            .map(|_| self.slow_delay)
    }
}

/// A fault drawn at a sub-batch pickup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum InjectedFault {
    /// The worker thread dies on the spot, its in-flight sub-batch still
    /// registered for the supervisor to requeue.
    Crash,
    /// The worker sleeps for the given duration before computing.
    Stall(Duration),
}

/// The per-incarnation fault stream: worker `shard` at respawn count
/// `incarnation` draws from a sub-stream keyed by both, so its pickup
/// schedule is a pure function of the plan seed.
pub(crate) struct WorkerFaultStream {
    rng: FaultRng,
    crash_prob: f64,
    stall_prob: f64,
    stall: Duration,
}

impl WorkerFaultStream {
    pub(crate) fn new(plan: &ServeFaultPlan, shard: usize, incarnation: u64) -> Self {
        let salt = ((shard as u64) << 32) ^ incarnation;
        WorkerFaultStream {
            rng: FaultRng::stream(plan.seed, salt),
            crash_prob: plan.crash_prob,
            stall_prob: plan.stall_prob,
            stall: plan.stall,
        }
    }

    /// The fault (if any) injected at this incarnation's next pickup.
    /// Both coins are always tossed so the stream position depends only
    /// on the pickup count, never on earlier outcomes or budgets.
    pub(crate) fn at_pickup(&mut self) -> Option<InjectedFault> {
        let crash = self.crash_prob > 0.0 && self.rng.chance(self.crash_prob);
        let stall = self.stall_prob > 0.0 && self.rng.chance(self.stall_prob);
        if crash {
            Some(InjectedFault::Crash)
        } else if stall {
            Some(InjectedFault::Stall(self.stall))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_accumulate_and_report_activity() {
        let plan = ServeFaultPlan::new(7)
            .with_worker_crashes(0.5, 3)
            .with_worker_stalls(0.25, Duration::from_millis(5), 2)
            .with_slow_shard(2, Duration::from_micros(50))
            .with_slow_shard(0, Duration::from_micros(50))
            .with_swap_failures(0.1);
        assert!(plan.is_active());
        assert_eq!(plan.slow_shards, vec![0, 2]);
        assert_eq!(plan.slow_delay_for(2), Some(Duration::from_micros(50)));
        assert_eq!(plan.slow_delay_for(1), None);
        assert!(!ServeFaultPlan::new(7).is_active());
        // A probability without a budget cannot fire.
        assert!(!ServeFaultPlan::new(7)
            .with_worker_crashes(1.0, 0)
            .is_active());
    }

    #[test]
    fn pickup_schedules_are_deterministic_per_incarnation() {
        let plan = ServeFaultPlan::new(42)
            .with_worker_crashes(0.3, 100)
            .with_worker_stalls(0.3, Duration::from_millis(1), 100);
        let draw = |shard, inc| -> Vec<Option<InjectedFault>> {
            let mut s = WorkerFaultStream::new(&plan, shard, inc);
            (0..32).map(|_| s.at_pickup()).collect()
        };
        assert_eq!(draw(0, 0), draw(0, 0), "same incarnation ⇒ same schedule");
        assert_ne!(draw(0, 0), draw(1, 0), "shards decorrelated");
        assert_ne!(draw(0, 0), draw(0, 1), "incarnations decorrelated");
        assert!(
            draw(0, 0).iter().any(|f| f.is_some()),
            "an active plan eventually fires"
        );
    }
}
