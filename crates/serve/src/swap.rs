//! Generation-tagged atomic value slot — the mechanism behind index
//! hot-swap.
//!
//! A [`Swappable<T>`] holds one `Arc<Tagged<T>>` current value. Readers
//! [`Swappable::load`] a snapshot (a clone of the `Arc`, tagged with the
//! monotonically increasing generation it was installed under) and keep
//! using it for as long as they like; a writer [`Swappable::swap`]s a new
//! value in without waiting for any reader to finish — the old value
//! simply stays alive until its last holder drops it. This is the
//! arc-swap pattern built on the workspace's zero-dependency style: the
//! slot itself is a mutex whose critical section is a single refcount
//! bump, so readers never block each other for more than that, and a
//! swap never blocks on readers at all (no drain, no quiesce).
//!
//! The service uses it as the epoch handle of the served index: every
//! batch pins exactly one generation and is answered entirely by it,
//! which is the no-torn-batches property `tests/hot_swap.rs` pins.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A value plus the generation number it was installed under.
#[derive(Debug)]
pub struct Tagged<T> {
    generation: u64,
    value: T,
}

impl<T> Tagged<T> {
    /// The generation this value was installed under (0 for the initial
    /// value, then one more per [`Swappable::swap`]).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The tagged value.
    #[inline]
    pub fn value(&self) -> &T {
        &self.value
    }
}

/// An atomically swappable, generation-tagged `Arc` slot. See the module
/// docs.
#[derive(Debug)]
pub struct Swappable<T> {
    slot: Mutex<Arc<Tagged<T>>>,
    /// Mirror of the current generation, readable without the lock.
    generation: AtomicU64,
}

impl<T> Swappable<T> {
    /// A slot holding `value` at generation 0.
    pub fn new(value: T) -> Self {
        Swappable {
            slot: Mutex::new(Arc::new(Tagged {
                generation: 0,
                value,
            })),
            generation: AtomicU64::new(0),
        }
    }

    /// Snapshots the current value. The returned handle stays valid (and
    /// keeps its value alive) across any number of subsequent swaps.
    pub fn load(&self) -> Arc<Tagged<T>> {
        Arc::clone(&self.slot.lock().unwrap())
    }

    /// Installs `value` as the new current value and returns its
    /// generation. Never blocks on readers: holders of previously loaded
    /// snapshots are unaffected.
    pub fn swap(&self, value: T) -> u64 {
        let mut slot = self.slot.lock().unwrap();
        let generation = slot.generation + 1;
        *slot = Arc::new(Tagged { generation, value });
        self.generation.store(generation, Ordering::Release);
        generation
    }

    /// The current generation number, without taking the slot lock.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generations_start_at_zero_and_increase() {
        let s = Swappable::new("a");
        assert_eq!(s.generation(), 0);
        assert_eq!(s.load().generation(), 0);
        assert_eq!(*s.load().value(), "a");
        assert_eq!(s.swap("b"), 1);
        assert_eq!(s.swap("c"), 2);
        assert_eq!(s.generation(), 2);
        let cur = s.load();
        assert_eq!((cur.generation(), *cur.value()), (2, "c"));
    }

    #[test]
    fn old_snapshots_survive_swaps() {
        let s = Swappable::new(vec![1, 2, 3]);
        let old = s.load();
        s.swap(vec![9]);
        // The pre-swap snapshot still reads its original value.
        assert_eq!(old.value(), &[1, 2, 3]);
        assert_eq!(old.generation(), 0);
        assert_eq!(s.load().value(), &[9]);
    }

    #[test]
    fn concurrent_loads_see_whole_values_only() {
        // Readers hammer load() while a writer swaps; every snapshot must
        // be internally consistent (generation matches the value) — a torn
        // read would pair a generation with the wrong payload.
        let s = Arc::new(Swappable::new(0u64));
        let stop = std::sync::atomic::AtomicBool::new(false);
        let stop = &stop;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let t = s.load();
                        assert_eq!(t.generation(), *t.value(), "torn snapshot");
                        assert!(t.generation() >= last, "generation went backwards");
                        last = t.generation();
                    }
                });
            }
            for i in 1..=1_000 {
                assert_eq!(s.swap(i), i);
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(s.generation(), 1_000);
    }
}
