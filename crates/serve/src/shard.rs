//! The shard-partitioned label store behind the query service.
//!
//! Fan et al. (PAPERS.md) tie distributed query performance to
//! partition-local evaluation with bounded cross-partition coordination.
//! This store gets coordination all the way to zero for 2-hop labels: the
//! out-label side is partitioned by the *same* vertex-partitioning the
//! cluster simulation uses ([`reach_vcs::Partition`], id-modulo by
//! default), while the in-label side — which any source's query may need
//! for any target — is kept as a single immutable replica shared by every
//! worker. A query `q(s, t)` is routed to the shard owning `s` and runs
//! entirely on that worker: one local out-label slice, one shared
//! in-label slice, one sorted-merge intersection. No cross-shard hop,
//! ever.
//!
//! Labels are packed per shard into CSR arrays (offsets + entries), the
//! same layout `reach_index::storage` uses on disk, so a shard's working
//! set is contiguous.

use reach_graph::VertexId;
use reach_index::{intersects_sorted, ReachIndex};
use reach_vcs::Partition;

/// CSR-packed label lists: `entries[offsets[i]..offsets[i + 1]]` is list `i`.
struct CsrLabels {
    offsets: Vec<usize>,
    entries: Vec<VertexId>,
}

impl CsrLabels {
    fn with_lists(count: usize) -> Self {
        CsrLabels {
            offsets: vec![0; 1],
            entries: Vec::with_capacity(count),
        }
    }

    fn push_list(&mut self, list: &[VertexId]) {
        self.entries.extend_from_slice(list);
        self.offsets.push(self.entries.len());
    }

    #[inline]
    fn list(&self, i: usize) -> &[VertexId] {
        &self.entries[self.offsets[i]..self.offsets[i + 1]]
    }
}

/// The partitioned label store: per-shard out-labels plus a shared
/// in-label replica. See the module docs.
pub struct ShardedLabels {
    partition: Partition,
    /// `out[k].list(local_id[v])` = `L_out(v)` for `v` owned by shard `k`.
    out: Vec<CsrLabels>,
    /// Slot of each vertex within its owning shard's CSR.
    local_id: Vec<u32>,
    /// All in-labels, shared read-only by every shard.
    in_store: CsrLabels,
    num_vertices: usize,
}

impl ShardedLabels {
    /// Partitions `index` into `partition.num_nodes()` shards.
    pub fn build(index: &ReachIndex, partition: Partition) -> Self {
        let n = index.num_vertices();
        let shards = partition.num_nodes();
        let mut out: Vec<CsrLabels> = (0..shards)
            .map(|_| CsrLabels::with_lists(n / shards + 1))
            .collect();
        let mut local_id = vec![0u32; n];
        let mut in_store = CsrLabels::with_lists(n);
        for v in 0..n as VertexId {
            let k = partition.node_of(v);
            local_id[v as usize] = (out[k].offsets.len() - 1) as u32;
            out[k].push_list(index.out_label(v));
            in_store.push_list(index.in_label(v));
        }
        ShardedLabels {
            partition,
            out,
            local_id,
            in_store,
            num_vertices: n,
        }
    }

    /// Number of shards (= service worker count).
    pub fn num_shards(&self) -> usize {
        self.partition.num_nodes()
    }

    /// Number of vertices the store covers.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// The shard that owns (and must answer) queries sourced at `v`.
    #[inline]
    pub fn shard_of(&self, v: VertexId) -> usize {
        self.partition.node_of(v)
    }

    /// Answers `q(s, t)` on `shard`, which must own `s`. Returns the
    /// answer and the number of label entries scanned
    /// (`|L_out(s)| + |L_in(t)|`, the Definition 3 query cost).
    #[inline]
    pub fn scan(&self, shard: usize, s: VertexId, t: VertexId) -> (bool, usize) {
        debug_assert_eq!(
            shard,
            self.shard_of(s),
            "query routed to a non-owning shard"
        );
        let lout = self.out[shard].list(self.local_id[s as usize] as usize);
        let lin = self.in_store.list(t as usize);
        (intersects_sorted(lout, lin), lout.len() + lin.len())
    }

    /// `L_out(v)`, served from the owning shard's local slice.
    pub fn out_label(&self, v: VertexId) -> &[VertexId] {
        self.out[self.shard_of(v)].list(self.local_id[v as usize] as usize)
    }

    /// `L_in(v)`, served from the shared replica.
    pub fn in_label(&self, v: VertexId) -> &[VertexId] {
        self.in_store.list(v as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> ReachIndex {
        ReachIndex::from_labels(
            vec![vec![0], vec![0, 1], vec![2], vec![1, 3], vec![0, 4]],
            vec![vec![0, 2], vec![1], vec![], vec![3, 4], vec![4]],
        )
    }

    #[test]
    fn sharded_scan_matches_direct_query_at_every_shard_count() {
        let idx = sample_index();
        let n = idx.num_vertices() as VertexId;
        for shards in 1..=5 {
            let store = ShardedLabels::build(&idx, Partition::modulo(shards));
            assert_eq!(store.num_shards(), shards);
            assert_eq!(store.num_vertices(), 5);
            for s in 0..n {
                for t in 0..n {
                    let (got, scanned) = store.scan(store.shard_of(s), s, t);
                    assert_eq!(got, idx.query(s, t), "q({s},{t}) at {shards} shards");
                    assert_eq!(scanned, idx.out_label(s).len() + idx.in_label(t).len());
                }
            }
        }
    }

    #[test]
    fn labels_round_trip_through_the_csr_packing() {
        let idx = sample_index();
        let store = ShardedLabels::build(&idx, Partition::modulo(3));
        for v in 0..5 as VertexId {
            assert_eq!(store.out_label(v), idx.out_label(v));
            assert_eq!(store.in_label(v), idx.in_label(v));
        }
    }

    #[test]
    fn explicit_partitions_are_honored() {
        let idx = sample_index();
        let part = Partition::explicit(2, vec![1, 1, 0, 1, 0]);
        let store = ShardedLabels::build(&idx, part);
        assert_eq!(store.shard_of(0), 1);
        assert_eq!(store.shard_of(2), 0);
        for s in 0..5 as VertexId {
            for t in 0..5 as VertexId {
                assert_eq!(store.scan(store.shard_of(s), s, t).0, idx.query(s, t));
            }
        }
    }
}
