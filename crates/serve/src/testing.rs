//! Reusable swap-consistency harness for the hot-swap guarantee.
//!
//! The property under test: while [`QueryService::swap_index`] cycles
//! through a sequence of indices, **every** batch's answers must equal
//! direct [`ReachIndex::query`] calls on the one generation the batch was
//! pinned to — no torn batches, no stale cache hits, no blocking of
//! in-flight work. This module packages the driver-plus-submitters
//! machinery so the integration suite (`tests/hot_swap.rs`), the
//! `swap_bench` load harness, and future stress tests all assert the same
//! invariant the same way.
//!
//! The harness is deliberately timing-agnostic: swaps race freely against
//! submission and pickup, and whatever interleaving the scheduler
//! produces, each batch's pinned generation is reported by
//! [`BatchTicket::wait_tagged`](crate::BatchTicket::wait_tagged) and its
//! answers are checked against exactly that index. Generations map to
//! indices deterministically (`indices[generation % K]`) because the
//! driver is the only swapper and installs them round-robin.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use reach_graph::{traverse, DiGraph, VertexId};
use reach_index::ReachIndex;

use crate::fault::ServeFaultPlan;
use crate::retry::RetryPolicy;
use crate::service::BatchOptions;
use crate::supervisor::{ResilienceConfig, SupervisorConfig};
use crate::{QueryService, ServeConfig, ServeError, ServeStats};

/// A trivially valid 2-hop cover built from BFS: `L_out(s) = DES(s)`,
/// `L_in(t) = {t}` — so `L_out(s) ∩ L_in(t) ≠ ∅ ⇔ t ∈ DES(s) ⇔ s → t`.
/// The standard test index; cheap to build on any graph, correct by
/// construction.
pub fn closure_index(g: &DiGraph) -> Arc<ReachIndex> {
    let n = g.num_vertices();
    let out: Vec<Vec<VertexId>> = (0..n as VertexId)
        .map(|v| traverse::descendants(g, v))
        .collect();
    let ins: Vec<Vec<VertexId>> = (0..n as VertexId).map(|v| vec![v]).collect();
    Arc::new(ReachIndex::from_labels(ins, out))
}

/// Knobs of [`run_swap_consistency`].
#[derive(Clone, Debug)]
pub struct SwapHarnessConfig {
    /// Service worker threads (= label shards).
    pub workers: usize,
    /// Whether the result cache is on (its default capacity) or off.
    pub cache: bool,
    /// The driver performs a swap each time this many more batches have
    /// completed — the swap cadence. Must be ≥ 1.
    pub swap_every: usize,
    /// Concurrent submitter threads splitting the batch list round-robin.
    pub submitters: usize,
}

impl Default for SwapHarnessConfig {
    fn default() -> Self {
        SwapHarnessConfig {
            workers: 2,
            cache: true,
            swap_every: 4,
            submitters: 2,
        }
    }
}

/// What a [`run_swap_consistency`] run observed. The run itself panics on
/// any answer that differs from its pinned generation's index — a
/// returned report means the differential check passed.
#[derive(Clone, Debug)]
pub struct SwapReport {
    /// Batches submitted and verified.
    pub batches: usize,
    /// Individual answers verified against the pinned generation.
    pub answers_checked: usize,
    /// Distinct generations that answered at least one batch.
    pub generations_observed: BTreeSet<u64>,
    /// Swaps the driver performed.
    pub swaps: u64,
    /// Final service counters.
    pub stats: ServeStats,
}

/// Runs the differential swap-consistency check: serves `batches` through
/// a [`QueryService`] starting on `indices[0]` while a driver thread hot-
/// swaps through `indices` round-robin (generation `g` is served by
/// `indices[g % K]`), and asserts every completed batch's answers equal
/// `ReachIndex::query` on the generation it was pinned to.
///
/// All indices must cover the same vertex set (the evolving-graph
/// sequences built by `reach_datasets::edge_fraction_slices` do). Panics
/// with a descriptive message on the first divergent answer.
pub fn run_swap_consistency(
    indices: &[Arc<ReachIndex>],
    batches: &[Vec<(VertexId, VertexId)>],
    cfg: &SwapHarnessConfig,
) -> SwapReport {
    assert!(!indices.is_empty(), "need at least one index");
    assert!(cfg.swap_every >= 1, "swap cadence must be >= 1");
    assert!(cfg.submitters >= 1, "need at least one submitter");
    let k = indices.len();
    let mut serve_cfg = ServeConfig::with_workers(cfg.workers);
    if !cfg.cache {
        serve_cfg = serve_cfg.no_cache();
    }
    let svc = QueryService::start(Arc::clone(&indices[0]), serve_cfg);

    let completed = AtomicUsize::new(0);
    let done = AtomicBool::new(false);
    let observed = Mutex::new(BTreeSet::new());
    let checked = AtomicUsize::new(0);
    let mut swaps = 0u64;

    std::thread::scope(|scope| {
        // Submitters: split the batch list round-robin, verify each batch
        // against the generation it reports.
        let submitter_handles: Vec<_> = (0..cfg.submitters)
            .map(|me| {
                let svc = &svc;
                let completed = &completed;
                let observed = &observed;
                let checked = &checked;
                scope.spawn(move || {
                    let mut local_gens = BTreeSet::new();
                    for batch in batches.iter().skip(me).step_by(cfg.submitters) {
                        let ticket = svc
                            .submit_batch_async(batch, None)
                            .expect("harness stays below admission limits");
                        let (answers, generation) = ticket.wait_tagged().expect("batch completes");
                        let expect = &indices[generation as usize % k];
                        assert_eq!(answers.len(), batch.len());
                        for (i, (&(s, t), &got)) in batch.iter().zip(&answers).enumerate() {
                            assert_eq!(
                                got,
                                expect.query(s, t),
                                "torn batch: q({s},{t}) at position {i} disagrees with \
                                 generation {generation}'s index"
                            );
                        }
                        checked.fetch_add(answers.len(), Ordering::Relaxed);
                        local_gens.insert(generation);
                        completed.fetch_add(1, Ordering::Release);
                    }
                    observed.lock().unwrap().extend(local_gens);
                })
            })
            .collect();

        // Driver: swap to the next index each time `swap_every` more
        // batches have completed, racing freely with the submitters.
        let svc = &svc;
        let completed = &completed;
        let done = &done;
        let driver = scope.spawn(move || {
            let mut swaps = 0u64;
            let mut threshold = cfg.swap_every;
            loop {
                if completed.load(Ordering::Acquire) >= threshold {
                    let generation = svc.swap_index(Arc::clone(&indices[(swaps as usize + 1) % k]));
                    swaps += 1;
                    assert_eq!(generation, swaps, "driver is the only swapper");
                    threshold += cfg.swap_every;
                } else if done.load(Ordering::Acquire) {
                    // Every crossed threshold has been honoured (the
                    // threshold check precedes this exit), so a run always
                    // performs at least `batches / swap_every` swaps no
                    // matter how the scheduler interleaved it.
                    break;
                } else {
                    std::thread::yield_now();
                }
            }
            swaps
        });

        // Join submitters first (collecting any verification panic so the
        // driver can still be stopped cleanly), then stop the driver.
        let mut verification_panic = None;
        for handle in submitter_handles {
            if let Err(panic) = handle.join() {
                verification_panic = Some(panic);
            }
        }
        done.store(true, Ordering::Release);
        swaps = driver.join().expect("driver thread panicked");
        if let Some(panic) = verification_panic {
            std::panic::resume_unwind(panic);
        }
    });

    let stats = svc.shutdown();
    assert_eq!(stats.swaps, swaps, "every swap is counted");
    SwapReport {
        batches: batches.len(),
        answers_checked: checked.into_inner(),
        generations_observed: observed.into_inner().unwrap(),
        swaps,
        stats,
    }
}

/// Knobs of [`run_chaos_consistency`]: the swap-harness shape plus a
/// fault plan, supervision cadence, and an optional client retry policy.
#[derive(Clone, Debug)]
pub struct ChaosHarnessConfig {
    /// Service worker threads (= label shards).
    pub workers: usize,
    /// Whether the result cache is on (its default capacity) or off.
    pub cache: bool,
    /// Swap cadence in completed batches; `0` disables the swap driver
    /// (pure fault-recovery run).
    pub swap_every: usize,
    /// Concurrent submitter threads splitting the batch list round-robin.
    pub submitters: usize,
    /// The seeded fault schedule the service runs under. Must be
    /// *recoverable* (bounded crash/stall budgets — the builders enforce
    /// budgets by construction).
    pub fault_plan: ServeFaultPlan,
    /// Supervision cadence; the default detects within ~10 ms.
    pub supervisor: SupervisorConfig,
    /// When set, submitters go through
    /// [`RetryPolicy::submit_with_retries_tagged`] with this policy (a
    /// generous budget), exercising backoff under chaos; otherwise they
    /// submit directly and expect admission to succeed.
    pub retry: Option<RetryPolicy>,
}

impl Default for ChaosHarnessConfig {
    fn default() -> Self {
        ChaosHarnessConfig {
            workers: 2,
            cache: true,
            swap_every: 4,
            submitters: 2,
            fault_plan: ServeFaultPlan::new(0),
            supervisor: SupervisorConfig {
                check_interval: Duration::from_millis(1),
                stall_timeout: Duration::from_millis(10),
            },
            retry: None,
        }
    }
}

/// What a [`run_chaos_consistency`] run observed; returned only if every
/// differential and accounting check passed.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Batches submitted and verified.
    pub batches: usize,
    /// Individual answers verified against the pinned generation.
    pub answers_checked: usize,
    /// Distinct generations that answered at least one batch.
    pub generations_observed: BTreeSet<u64>,
    /// Successful swaps the driver performed.
    pub swaps: u64,
    /// Swap installs failed by injection.
    pub swap_failures: u64,
    /// Detection-to-respawn latency of every supervised recovery.
    pub recoveries: Vec<Duration>,
    /// Final service counters.
    pub stats: ServeStats,
}

/// The chaos differential check: [`run_swap_consistency`]'s invariant —
/// every completed batch's answers equal `ReachIndex::query` on the one
/// generation the batch pinned — must additionally survive an arbitrary
/// *recoverable* fault schedule: worker crashes (requeue + respawn),
/// stalls (supersede), slow shards, and swap-install failures, all racing
/// the hot-swaps and each other. On top of the answer check it asserts
/// the exactly-once ledger: every submission lands in one terminal
/// bucket, every crash requeues exactly one sub-batch, and every
/// recovery is logged.
///
/// Generations map to indices exactly as in the swap harness
/// (`indices[generation % K]`): failed installs do not advance the
/// generation, and the driver re-targets the same index until it lands.
pub fn run_chaos_consistency(
    indices: &[Arc<ReachIndex>],
    batches: &[Vec<(VertexId, VertexId)>],
    cfg: &ChaosHarnessConfig,
) -> ChaosReport {
    assert!(!indices.is_empty(), "need at least one index");
    assert!(cfg.submitters >= 1, "need at least one submitter");
    let k = indices.len();
    let mut serve_cfg = ServeConfig::with_workers(cfg.workers).with_resilience(ResilienceConfig {
        fault_plan: cfg.fault_plan.clone(),
        supervisor: cfg.supervisor.clone(),
    });
    if !cfg.cache {
        serve_cfg = serve_cfg.no_cache();
    }
    let svc = QueryService::start(Arc::clone(&indices[0]), serve_cfg);

    let completed = AtomicUsize::new(0);
    let done = AtomicBool::new(false);
    let observed = Mutex::new(BTreeSet::new());
    let checked = AtomicUsize::new(0);
    let mut swaps = 0u64;

    std::thread::scope(|scope| {
        let submitter_handles: Vec<_> = (0..cfg.submitters)
            .map(|me| {
                let svc = &svc;
                let completed = &completed;
                let observed = &observed;
                let checked = &checked;
                let retry = cfg.retry.clone();
                scope.spawn(move || {
                    let mut local_gens = BTreeSet::new();
                    for batch in batches.iter().skip(me).step_by(cfg.submitters) {
                        let (answers, generation) = match &retry {
                            Some(policy) => policy
                                .submit_with_retries_tagged(
                                    svc,
                                    batch,
                                    BatchOptions::default(),
                                    Duration::from_secs(60),
                                )
                                .expect("retries exhaust only on a stuck service"),
                            None => svc
                                .submit_batch_async(batch, None)
                                .expect("harness stays below admission limits")
                                .wait_tagged()
                                .expect("batch completes despite faults"),
                        };
                        let expect = &indices[generation as usize % k];
                        assert_eq!(answers.len(), batch.len());
                        for (i, (&(s, t), &got)) in batch.iter().zip(&answers).enumerate() {
                            assert_eq!(
                                got,
                                expect.query(s, t),
                                "chaos torn batch: q({s},{t}) at position {i} disagrees \
                                 with generation {generation}'s index"
                            );
                        }
                        checked.fetch_add(answers.len(), Ordering::Relaxed);
                        local_gens.insert(generation);
                        completed.fetch_add(1, Ordering::Release);
                    }
                    observed.lock().unwrap().extend(local_gens);
                })
            })
            .collect();

        // Driver: attempt a swap each time `swap_every` more batches
        // complete; injected install failures simply leave the threshold
        // crossed and the same index is re-targeted on the next attempt.
        let svc = &svc;
        let completed = &completed;
        let done = &done;
        let driver = scope.spawn(move || {
            let mut swaps = 0u64;
            if cfg.swap_every == 0 {
                return swaps;
            }
            let mut threshold = cfg.swap_every;
            loop {
                if completed.load(Ordering::Acquire) >= threshold {
                    match svc.try_swap_index(Arc::clone(&indices[(swaps as usize + 1) % k])) {
                        Ok(generation) => {
                            swaps += 1;
                            assert_eq!(generation, swaps, "driver is the only swapper");
                            threshold += cfg.swap_every;
                        }
                        Err(ServeError::SwapFailed { generation }) => {
                            assert_eq!(generation, swaps, "a failed install changes nothing");
                        }
                        Err(other) => panic!("unexpected swap error: {other}"),
                    }
                } else if done.load(Ordering::Acquire) {
                    break;
                } else {
                    std::thread::yield_now();
                }
            }
            swaps
        });

        let mut verification_panic = None;
        for handle in submitter_handles {
            if let Err(panic) = handle.join() {
                verification_panic = Some(panic);
            }
        }
        done.store(true, Ordering::Release);
        swaps = driver.join().expect("driver thread panicked");
        if let Some(panic) = verification_panic {
            std::panic::resume_unwind(panic);
        }
    });

    let recoveries = svc.recovery_log();
    let stats = svc.shutdown();
    assert_eq!(stats.swaps, swaps, "every successful swap is counted");
    assert!(stats.is_balanced(), "terminal accounting balances");
    assert_eq!(
        stats.requeued, stats.injected_crashes,
        "every injected crash requeued exactly one sub-batch"
    );
    assert_eq!(
        recoveries.len() as u64,
        stats.respawns,
        "every recovery has a logged latency"
    );
    ChaosReport {
        batches: batches.len(),
        answers_checked: checked.into_inner(),
        generations_observed: observed.into_inner().unwrap(),
        swaps,
        swap_failures: stats.swap_failures,
        recoveries,
        stats,
    }
}
