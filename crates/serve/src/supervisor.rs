//! Worker supervision: heartbeats, crash detection, exactly-once
//! requeue, and respawn.
//!
//! When a [`ResilienceConfig`] is set on the service, every worker runs
//! under a supervisor thread:
//!
//! * each worker **registers** its shard, a heartbeat it bumps at every
//!   queue poll, and an *in-flight slot* holding the sub-batch it is
//!   currently computing;
//! * the supervisor scans the registry every
//!   [`check_interval`](SupervisorConfig::check_interval): a **dead**
//!   worker (thread finished outside shutdown, or unwound on a real
//!   panic) has its in-flight sub-batch harvested from the slot and
//!   requeued at the *front* of its shard queue — the slot is taken
//!   exactly once, and the dead thread provably never called
//!   `finish_sub` for it, so the batch is answered exactly once — then a
//!   fresh worker incarnation is spawned on the shard;
//! * a **stalled** worker (alive, holding work or backed by a non-empty
//!   queue, heartbeat older than
//!   [`stall_timeout`](SupervisorConfig::stall_timeout)) is *retired*:
//!   a replacement incarnation takes over the queue while the stalled
//!   thread keeps exclusive ownership of its claimed sub-batch, finishes
//!   it, and exits — again exactly once;
//! * at shutdown the supervisor keeps recovering crashed workers until
//!   every queue has drained and every incarnation has exited, so close
//!   → drain → join holds even mid-fault-storm.
//!
//! Every respawn's detection latency lands in the recovery log
//! ([`QueryService::recovery_log`](crate::QueryService::recovery_log))
//! and the `serve.respawn.*` metrics. The double-finish guard in the
//! batch state turns any violation of the exactly-once argument into a
//! loud panic, which the chaos proptests lean on.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use reach_vcs::FaultRng;

use crate::fault::ServeFaultPlan;
use crate::service::SubBatch;

/// Tuning knobs of the supervisor thread.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Registry scan cadence; also the workers' queue-poll interval (an
    /// idle worker refreshes its heartbeat this often).
    pub check_interval: Duration,
    /// A busy worker whose heartbeat is older than this is declared
    /// stalled and superseded by a replacement. Must exceed
    /// `check_interval` by a comfortable margin.
    pub stall_timeout: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            check_interval: Duration::from_millis(1),
            stall_timeout: Duration::from_millis(100),
        }
    }
}

/// Enables the resilience layer: supervised workers plus an optional
/// fault-injection plan. With `fault_plan` inert
/// ([`ServeFaultPlan::is_active`] false) this is the production
/// configuration — supervision without chaos.
#[derive(Clone, Debug)]
pub struct ResilienceConfig {
    /// The seeded fault schedule to inject (inert by default).
    pub fault_plan: ServeFaultPlan,
    /// Supervision cadence and stall threshold.
    pub supervisor: SupervisorConfig,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            fault_plan: ServeFaultPlan::new(0),
            supervisor: SupervisorConfig::default(),
        }
    }
}

impl ResilienceConfig {
    /// Supervision with the given fault plan and default cadence.
    pub fn with_faults(plan: ServeFaultPlan) -> Self {
        ResilienceConfig {
            fault_plan: plan,
            supervisor: SupervisorConfig::default(),
        }
    }
}

/// How a supervised worker incarnation ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum WorkerExit {
    /// Normal exit: queue closed and drained, or retired after a stall.
    Drained,
    /// Injected crash — the thread exits with its in-flight slot still
    /// occupied for the supervisor to harvest.
    Crashed,
}

/// One registered worker incarnation.
pub(crate) struct WorkerSlot {
    pub(crate) shard: usize,
    /// Nanoseconds since [`Resilience::start`], bumped at every poll and
    /// around compute.
    pub(crate) heartbeat: Arc<AtomicU64>,
    /// The sub-batch the incarnation currently owns, if any. Harvested
    /// (taken) by the supervisor only once the thread is provably dead.
    pub(crate) inflight: Arc<Mutex<Option<Arc<SubBatch>>>>,
    /// Set by the supervisor when a replacement was spawned; the worker
    /// finishes its current sub-batch and exits.
    pub(crate) retired: Arc<AtomicBool>,
    pub(crate) handle: JoinHandle<(WorkerExit, reach_obs::WorkerMetrics)>,
}

/// Shared state of the resilience layer, hung off the service's `Shared`.
pub(crate) struct Resilience {
    pub(crate) plan: ServeFaultPlan,
    pub(crate) supervisor: SupervisorConfig,
    /// Epoch of every heartbeat timestamp.
    pub(crate) start: Instant,
    pub(crate) registry: Mutex<Vec<WorkerSlot>>,
    /// Next incarnation number, per shard.
    pub(crate) incarnations: Vec<AtomicU64>,
    /// Remaining injected-crash budget ([`ServeFaultPlan::max_crashes`]).
    crashes_left: AtomicU64,
    /// Remaining injected-stall budget ([`ServeFaultPlan::max_stalls`]).
    stalls_left: AtomicU64,
    /// The swap-failure coin stream (its own decorrelated sub-stream).
    swap_rng: Mutex<FaultRng>,
    /// Detection-to-recovery latency of every respawn, in ns.
    pub(crate) recovery_ns: Mutex<Vec<u64>>,
    /// Obs recordings of reaped worker incarnations, banked by the
    /// supervisor and folded into the shutdown caller.
    pub(crate) reaped_metrics: Mutex<Vec<reach_obs::WorkerMetrics>>,
    /// Raised at shutdown; the supervisor drains and exits.
    pub(crate) stop: AtomicBool,
}

/// Salt of the swap-failure stream (distinct from any worker salt, whose
/// high half is a shard id well below this).
const SWAP_STREAM_SALT: u64 = u64::MAX;

impl Resilience {
    pub(crate) fn new(cfg: ResilienceConfig, shards: usize) -> Self {
        assert!(
            cfg.supervisor.stall_timeout > cfg.supervisor.check_interval,
            "stall_timeout must exceed check_interval, or idle workers look stalled"
        );
        let swap_rng = FaultRng::stream(cfg.fault_plan.seed, SWAP_STREAM_SALT);
        Resilience {
            crashes_left: AtomicU64::new(cfg.fault_plan.max_crashes),
            stalls_left: AtomicU64::new(cfg.fault_plan.max_stalls),
            plan: cfg.fault_plan,
            supervisor: cfg.supervisor,
            start: Instant::now(),
            registry: Mutex::new(Vec::with_capacity(shards)),
            incarnations: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            swap_rng: Mutex::new(swap_rng),
            recovery_ns: Mutex::new(Vec::new()),
            reaped_metrics: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        }
    }

    /// Nanoseconds since service start — the heartbeat clock.
    pub(crate) fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Consumes one unit of the injected-crash budget, if any remains.
    pub(crate) fn take_crash_budget(&self) -> bool {
        take_budget(&self.crashes_left)
    }

    /// Consumes one unit of the injected-stall budget, if any remains.
    pub(crate) fn take_stall_budget(&self) -> bool {
        take_budget(&self.stalls_left)
    }

    /// Tosses the swap-failure coin for one install attempt.
    pub(crate) fn draw_swap_failure(&self) -> bool {
        self.plan.swap_fail_prob > 0.0
            && self
                .swap_rng
                .lock()
                .unwrap()
                .chance(self.plan.swap_fail_prob)
    }
}

fn take_budget(budget: &AtomicU64) -> bool {
    budget
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |left| {
            left.checked_sub(1)
        })
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_deplete_exactly() {
        let res = Resilience::new(
            ResilienceConfig::with_faults(
                ServeFaultPlan::new(1)
                    .with_worker_crashes(1.0, 2)
                    .with_worker_stalls(1.0, Duration::from_millis(1), 1),
            ),
            2,
        );
        assert!(res.take_crash_budget());
        assert!(res.take_crash_budget());
        assert!(!res.take_crash_budget(), "crash budget is exactly 2");
        assert!(res.take_stall_budget());
        assert!(!res.take_stall_budget(), "stall budget is exactly 1");
    }

    #[test]
    fn swap_failure_draws_are_seeded() {
        let draws = |seed| -> Vec<bool> {
            let res = Resilience::new(
                ResilienceConfig::with_faults(ServeFaultPlan::new(seed).with_swap_failures(0.5)),
                1,
            );
            (0..32).map(|_| res.draw_swap_failure()).collect()
        };
        assert_eq!(draws(9), draws(9), "same seed ⇒ same swap-failure coin");
        assert_ne!(draws(9), draws(10));
        let inert = Resilience::new(ResilienceConfig::default(), 1);
        assert!(!inert.draw_swap_failure(), "inert plans never fail a swap");
    }

    #[test]
    #[should_panic(expected = "stall_timeout must exceed check_interval")]
    fn degenerate_supervision_cadence_is_rejected() {
        let cfg = ResilienceConfig {
            fault_plan: ServeFaultPlan::new(0),
            supervisor: SupervisorConfig {
                check_interval: Duration::from_millis(5),
                stall_timeout: Duration::from_millis(5),
            },
        };
        Resilience::new(cfg, 1);
    }
}
