//! Seeded, sharded LRU cache for `(generation, s, t) → bool` query
//! results.
//!
//! Hop-label queries are dominated by label-scan cost (Jin & Wang,
//! PAPERS.md), so a hit in this cache replaces an `O(|L_out(s)| +
//! |L_in(t)|)` merge with one hash probe. The cache is split into
//! independent shards, each behind its own mutex, so concurrent service
//! workers rarely contend; shard choice is a seeded hash of the key, which
//! makes the spread deterministic for a given seed (tests pin it).
//!
//! Each served index is immutable, so a cached value can never go stale
//! *within* a generation. Hot-swapping installs a new index under a new
//! generation number, and the generation is part of the cache key: a
//! batch pinned to generation `g` can only ever hit entries computed from
//! generation `g`'s index, with no flush (and hence no stall) at swap
//! time. Entries of retired generations are never probed again and age
//! out through normal LRU eviction.

use std::collections::HashMap;
use std::sync::Mutex;

use reach_graph::VertexId;

/// A cache key: the index generation plus the query pair.
type Key = (u64, VertexId, VertexId);

/// Slot-list terminator for the intrusive LRU links.
const NIL: u32 = u32::MAX;

/// A sharded LRU cache over query results. See the module docs.
pub struct ShardedLruCache {
    shards: Vec<Mutex<LruShard>>,
    seed: u64,
}

impl ShardedLruCache {
    /// A cache holding at most `capacity` entries split over `shards`
    /// independent LRUs (each gets `ceil(capacity / shards)` slots).
    /// `seed` fixes the key-to-shard spread.
    ///
    /// `capacity` and `shards` must both be at least 1; callers that want
    /// "no cache" simply don't construct one.
    pub fn new(capacity: usize, shards: usize, seed: u64) -> Self {
        assert!(capacity >= 1, "cache capacity must be >= 1");
        assert!(shards >= 1, "cache shard count must be >= 1");
        let per_shard = capacity.div_ceil(shards);
        ShardedLruCache {
            shards: (0..shards)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
            seed,
        }
    }

    /// The shard index the key `(generation, s, t)` maps to —
    /// deterministic per seed.
    pub fn shard_of(&self, generation: u64, s: VertexId, t: VertexId) -> usize {
        let pair = (s as u64) << 32 | t as u64;
        (mix(self.seed ^ mix(generation) ^ pair) % self.shards.len() as u64) as usize
    }

    /// Looks the keyed pair up, refreshing its recency on a hit.
    pub fn get(&self, generation: u64, s: VertexId, t: VertexId) -> Option<bool> {
        self.shards[self.shard_of(generation, s, t)]
            .lock()
            .unwrap()
            .get((generation, s, t))
    }

    /// Inserts (or refreshes) the keyed pair, evicting the shard's least
    /// recently used entry when the shard is full.
    pub fn insert(&self, generation: u64, s: VertexId, t: VertexId, value: bool) {
        self.shards[self.shard_of(generation, s, t)]
            .lock()
            .unwrap()
            .insert((generation, s, t), value);
    }

    /// Total entries currently cached across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }
}

/// SplitMix64 finalizer — the same avalanche the workspace PRNG shim uses,
/// reused here as a seeded hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// One LRU shard: a hash map into a slot arena whose slots form an
/// intrusive most-recent-first doubly linked list. All operations are
/// O(1); eviction pops the list tail.
struct LruShard {
    map: HashMap<Key, u32>,
    slots: Vec<Slot>,
    head: u32,
    tail: u32,
    capacity: usize,
}

struct Slot {
    key: Key,
    value: bool,
    prev: u32,
    next: u32,
}

impl LruShard {
    fn new(capacity: usize) -> Self {
        LruShard {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn get(&mut self, key: Key) -> Option<bool> {
        let slot = *self.map.get(&key)?;
        self.unlink(slot);
        self.push_front(slot);
        Some(self.slots[slot as usize].value)
    }

    fn insert(&mut self, key: Key, value: bool) {
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot as usize].value = value;
            self.unlink(slot);
            self.push_front(slot);
            return;
        }
        let slot = if self.slots.len() < self.capacity {
            self.slots.push(Slot {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            (self.slots.len() - 1) as u32
        } else {
            // Evict the least recently used entry and reuse its slot.
            let victim = self.tail;
            self.unlink(victim);
            let v = &mut self.slots[victim as usize];
            self.map.remove(&v.key);
            v.key = key;
            v.value = value;
            victim
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }

    fn unlink(&mut self, slot: u32) {
        let (prev, next) = {
            let s = &self.slots[slot as usize];
            (s.prev, s.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
    }

    fn push_front(&mut self, slot: u32) {
        {
            let s = &mut self.slots[slot as usize];
            s.prev = NIL;
            s.next = self.head;
        }
        match self.head {
            NIL => self.tail = slot,
            h => self.slots[h as usize].prev = slot,
        }
        self.head = slot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let c = ShardedLruCache::new(8, 2, 1);
        assert_eq!(c.get(0, 1, 2), None);
        c.insert(0, 1, 2, true);
        c.insert(0, 3, 4, false);
        assert_eq!(c.get(0, 1, 2), Some(true));
        assert_eq!(c.get(0, 3, 4), Some(false));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_bounds_and_lru_eviction() {
        // One shard of capacity 3 so eviction order is fully observable.
        let c = ShardedLruCache::new(3, 1, 0);
        c.insert(0, 0, 0, true);
        c.insert(0, 1, 1, true);
        c.insert(0, 2, 2, true);
        // Touch (0,0) so (1,1) is now the least recently used.
        assert_eq!(c.get(0, 0, 0), Some(true));
        c.insert(0, 3, 3, false);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0, 1, 1), None, "LRU entry evicted");
        assert_eq!(c.get(0, 0, 0), Some(true));
        assert_eq!(c.get(0, 2, 2), Some(true));
        assert_eq!(c.get(0, 3, 3), Some(false));
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let c = ShardedLruCache::new(2, 1, 0);
        c.insert(0, 5, 6, true);
        c.insert(0, 5, 6, true);
        c.insert(0, 7, 8, true);
        assert_eq!(c.len(), 2);
        // Recency order is (7,8) then (5,6), so a third key evicts (5,6).
        c.insert(0, 9, 9, false);
        assert_eq!(c.get(0, 5, 6), None);
        assert_eq!(c.get(0, 7, 8), Some(true));
    }

    #[test]
    fn generations_are_distinct_keys() {
        // The same pair under different generations is a different entry:
        // a hot-swap must never let one generation's answer leak into
        // another's probes.
        let c = ShardedLruCache::new(16, 2, 3);
        c.insert(0, 1, 2, false);
        c.insert(1, 1, 2, true);
        assert_eq!(c.get(0, 1, 2), Some(false));
        assert_eq!(c.get(1, 1, 2), Some(true));
        assert_eq!(c.get(2, 1, 2), None, "unseen generation never hits");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn shard_choice_is_deterministic_per_seed() {
        let a = ShardedLruCache::new(64, 8, 42);
        let b = ShardedLruCache::new(64, 8, 42);
        let c = ShardedLruCache::new(64, 8, 43);
        let spread_a: Vec<usize> = (0..100).map(|i| a.shard_of(0, i, i + 1)).collect();
        let spread_b: Vec<usize> = (0..100).map(|i| b.shard_of(0, i, i + 1)).collect();
        let spread_c: Vec<usize> = (0..100).map(|i| c.shard_of(0, i, i + 1)).collect();
        assert_eq!(spread_a, spread_b);
        assert_ne!(spread_a, spread_c, "different seed, different spread");
        // The hash actually spreads keys over shards.
        let distinct: std::collections::HashSet<usize> = spread_a.into_iter().collect();
        assert!(distinct.len() > 1);
        // The generation takes part in the spread too.
        let gen_spread: Vec<usize> = (0..100).map(|g| a.shard_of(g, 5, 6)).collect();
        let distinct: std::collections::HashSet<usize> = gen_spread.into_iter().collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn eviction_stress_keeps_len_bounded() {
        let c = ShardedLruCache::new(100, 4, 7);
        for i in 0..10_000u32 {
            c.insert(u64::from(i % 5), i, i, i % 3 == 0);
        }
        assert!(
            c.len() <= 112,
            "len {} exceeds shard-rounded capacity",
            c.len()
        );
        assert!(!c.is_empty());
        assert_eq!(c.num_shards(), 4);
        // Recent keys are still present (9999 % 3 == 0 ⇒ true).
        assert_eq!(c.get(u64::from(9_999u32 % 5), 9_999, 9_999), Some(true));
    }
}
