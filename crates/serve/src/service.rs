//! The multi-threaded query service: worker pool, bounded per-shard
//! queues, batch tickets, deadlines, and the result cache.
//!
//! # Lifecycle
//!
//! [`QueryService::start`] builds the [`ShardedLabels`] store from an
//! `Arc`-shared index and spawns one worker thread per shard. Submitters
//! call [`QueryService::reachable`] / [`QueryService::submit_batch`] (or
//! the non-blocking [`QueryService::submit_batch_async`], which returns a
//! [`BatchTicket`]); [`QueryService::shutdown`] closes the queues, lets
//! the workers drain every admitted batch (nothing is silently dropped),
//! joins them, and folds their `reach-obs` recordings into the calling
//! thread.
//!
//! # Determinism
//!
//! Answers are computed from an immutable label store, each query's
//! result is written to its submission position, and a batch completes
//! only when every sub-batch has. Worker count, scheduling, and cache
//! state therefore cannot change any answer — the property the
//! `service_determinism` proptest pins across graphs × seeds × thread
//! counts, with and without the cache.
//!
//! # Hot-swap
//!
//! [`QueryService::swap_index`] installs a rebuilt index (plus its
//! resharded label store) behind a generation-tagged
//! [`Swappable`] slot without draining anything:
//! in-flight batches keep the epoch they pinned, queued batches pin the
//! current epoch at **first worker pickup** (raced sub-batches agree via
//! a `OnceLock`), and the result cache keys on the generation so one
//! epoch's answers can never satisfy another's probes. Every batch is
//! therefore answered entirely by a single index — the no-torn-batches
//! property `tests/hot_swap.rs` pins differentially against
//! `ReachIndex::query` on the pinned generation.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use reach_graph::VertexId;
use reach_index::ReachIndex;
use reach_vcs::Partition;

use crate::cache::ShardedLruCache;
use crate::shard::ShardedLabels;
use crate::swap::{Swappable, Tagged};
use crate::ServeError;

/// One served index epoch: the index and the label store resharded from
/// it. Swapped in as a unit so a worker can never pair one generation's
/// labels with another's index.
pub(crate) struct Epoch {
    index: Arc<ReachIndex>,
    labels: ShardedLabels,
}

/// A pinned epoch handle: the tagged value batches hold onto.
type EpochRef = Arc<Tagged<Epoch>>;

/// Tuning knobs of a [`QueryService`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads — one label shard per worker. Must be ≥ 1.
    pub workers: usize,
    /// Bounded per-shard request queue, in sub-batches; a full queue
    /// rejects new batches with [`ServeError::Overloaded`]. Must be ≥ 1.
    pub queue_capacity: usize,
    /// Total result-cache entries across cache shards; `0` disables the
    /// cache entirely.
    pub cache_capacity: usize,
    /// Independent cache shards (each its own lock). Must be ≥ 1 when the
    /// cache is enabled.
    pub cache_shards: usize,
    /// Seed fixing the cache's key-to-shard spread.
    pub cache_seed: u64,
    /// Deadline applied to batches submitted without an explicit one;
    /// `None` means such batches never expire.
    pub default_deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            queue_capacity: 1024,
            cache_capacity: 1 << 14,
            cache_shards: 8,
            cache_seed: 0x5eed_cafe,
            default_deadline: None,
        }
    }
}

impl ServeConfig {
    /// The default configuration with `workers` worker threads.
    pub fn with_workers(workers: usize) -> Self {
        ServeConfig {
            workers,
            ..ServeConfig::default()
        }
    }

    /// Disables the result cache.
    pub fn no_cache(mut self) -> Self {
        self.cache_capacity = 0;
        self
    }
}

/// Counters exposed by [`QueryService::stats`]. All values are cumulative
/// since service start and remain available after [`QueryService::shutdown`]
/// (which returns the final snapshot). Unlike the `serve.*` obs metrics
/// these are always compiled in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries answered (cache hits included).
    pub queries: u64,
    /// Batches admitted past admission control.
    pub batches: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses (label scans performed with the cache on).
    pub cache_misses: u64,
    /// Batches rejected with [`ServeError::Overloaded`].
    pub rejected_overload: u64,
    /// Batches rejected with [`ServeError::DeadlineExceeded`] — at
    /// admission or when a worker found the deadline already past.
    pub rejected_deadline: u64,
    /// High-water mark of total queued sub-batches observed at admission.
    pub max_queue_depth: u64,
    /// Index hot-swaps performed ([`QueryService::swap_index`]).
    pub swaps: u64,
    /// The generation being served when this snapshot was taken (0 until
    /// the first swap; equals [`ServeStats::swaps`] because generations
    /// are assigned consecutively by a single slot).
    pub generation: u64,
}

impl ServeStats {
    /// Cache hits over cache probes, or 0.0 before any probe.
    pub fn cache_hit_rate(&self) -> f64 {
        let probes = self.cache_hits + self.cache_misses;
        if probes == 0 {
            0.0
        } else {
            self.cache_hits as f64 / probes as f64
        }
    }
}

#[derive(Default)]
struct StatsInner {
    queries: AtomicU64,
    batches: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_deadline: AtomicU64,
    max_queue_depth: AtomicU64,
    swaps: AtomicU64,
    generation: AtomicU64,
}

impl StatsInner {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            queries: self.queries.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            generation: self.generation.load(Ordering::Relaxed),
        }
    }

    fn raise_max_depth(&self, depth: u64) {
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }
}

/// Completion state shared between a batch's ticket and its sub-batches.
struct BatchState {
    /// One slot per submitted query, written at the query's submission
    /// position by whichever shard answers it.
    results: Mutex<Vec<bool>>,
    progress: Mutex<Progress>,
    done: Condvar,
    /// The epoch this batch is answered by, pinned once by the first
    /// worker to pick up any of its sub-batches; raced pickups agree
    /// because only one initializer can win. Pinning at pickup (not
    /// admission) means a batch that waited in queue across a swap is
    /// answered by the freshest index — but still by exactly one.
    pinned: OnceLock<EpochRef>,
}

#[derive(Debug)]
struct Progress {
    /// Sub-batches still outstanding.
    remaining: usize,
    /// First failure, sticky; later sub-batches of a failed batch skip
    /// their compute.
    failed: Option<ServeError>,
}

impl BatchState {
    fn new(num_results: usize, sub_batches: usize) -> Self {
        BatchState {
            results: Mutex::new(vec![false; num_results]),
            progress: Mutex::new(Progress {
                remaining: sub_batches,
                failed: None,
            }),
            done: Condvar::new(),
            pinned: OnceLock::new(),
        }
    }

    fn fail(&self, err: ServeError) {
        let mut p = self.progress.lock().unwrap();
        if p.failed.is_none() {
            p.failed = Some(err);
        }
        self.done.notify_all();
    }

    fn failed_already(&self) -> bool {
        self.progress.lock().unwrap().failed.is_some()
    }

    /// Marks one sub-batch finished (successfully or not).
    fn finish_sub(&self, outcome: Result<(), ServeError>) {
        let mut p = self.progress.lock().unwrap();
        if let Err(e) = outcome {
            if p.failed.is_none() {
                p.failed = Some(e);
            }
        }
        p.remaining -= 1;
        if p.remaining == 0 || p.failed.is_some() {
            self.done.notify_all();
        }
    }
}

/// A pending batch returned by [`QueryService::submit_batch_async`].
///
/// [`BatchTicket::wait`] blocks until every result is in (or the batch
/// failed) and returns the answers **in submission order** — position `i`
/// answers the `i`-th submitted query, whatever shard computed it.
///
/// Dropping a ticket without waiting is allowed: the batch still runs to
/// completion (admitted work is never cancelled mid-compute), its results
/// are simply discarded.
#[must_use = "a ticket must be waited on to observe the batch outcome"]
pub struct BatchTicket {
    state: Arc<BatchState>,
}

impl std::fmt::Debug for BatchTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchTicket")
            .field(
                "generation",
                &self.state.pinned.get().map(|e| e.generation()),
            )
            .finish_non_exhaustive()
    }
}

impl BatchTicket {
    /// Blocks until the batch completes; returns answers in submission
    /// order or the batch's typed failure.
    pub fn wait(self) -> Result<Vec<bool>, ServeError> {
        self.wait_tagged().map(|(answers, _)| answers)
    }

    /// Like [`BatchTicket::wait`], but also returns the **generation** of
    /// the index epoch that answered the batch — the handle the hot-swap
    /// differential harness compares answers against. Every answer in the
    /// returned vector was computed from exactly this generation's index.
    pub fn wait_tagged(self) -> Result<(Vec<bool>, u64), ServeError> {
        let mut p = self.state.progress.lock().unwrap();
        loop {
            if let Some(e) = &p.failed {
                return Err(e.clone());
            }
            if p.remaining == 0 {
                break;
            }
            p = self.state.done.wait(p).unwrap();
        }
        drop(p);
        let generation = self
            .state
            .pinned
            .get()
            .expect("a completed batch has pinned its epoch")
            .generation();
        let answers = std::mem::take(&mut *self.state.results.lock().unwrap());
        Ok((answers, generation))
    }
}

/// The shard-local work unit: the slice of one batch owned by one shard.
struct SubBatch {
    state: Arc<BatchState>,
    deadline: Option<Instant>,
    admitted_at: Instant,
    /// Queries routed to this shard (source vertices it owns).
    queries: Vec<(VertexId, VertexId)>,
    /// Submission position of each query, for order restoration.
    positions: Vec<u32>,
}

enum PushError {
    Full,
    Closed,
}

/// A bounded MPSC queue of sub-batches with pause support (used by tests
/// and the bench harness to stage deterministic overload/deadline
/// scenarios).
struct ShardQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    capacity: usize,
}

struct QueueInner {
    items: VecDeque<SubBatch>,
    closed: bool,
    paused: bool,
}

impl ShardQueue {
    fn new(capacity: usize) -> Self {
        ShardQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
                paused: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Admission: enqueues unless the queue is full or closed. Returns
    /// the depth after the push.
    fn try_push(&self, sub: SubBatch) -> Result<usize, PushError> {
        let mut g = self.inner.lock().unwrap();
        if g.closed {
            return Err(PushError::Closed);
        }
        if g.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        g.items.push_back(sub);
        let depth = g.items.len();
        drop(g);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks for the next sub-batch; `None` once the queue is closed and
    /// drained. Close overrides pause so shutdown always drains.
    fn pop(&self) -> Option<SubBatch> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if g.closed {
                return g.items.pop_front();
            }
            if !g.paused {
                if let Some(sub) = g.items.pop_front() {
                    return Some(sub);
                }
            }
            g = self.ready.wait(g).unwrap();
        }
    }

    fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    fn set_paused(&self, paused: bool) {
        self.inner.lock().unwrap().paused = paused;
        self.ready.notify_all();
    }

    fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

/// State shared between submitters and workers.
struct Shared {
    /// The served epoch: swapped atomically, pinned per batch.
    epochs: Swappable<Epoch>,
    /// The fixed vertex-partitioning; every epoch is resharded by it so
    /// routing decisions stay valid across swaps.
    partition: Partition,
    cache: Option<ShardedLruCache>,
    queues: Vec<ShardQueue>,
    stats: StatsInner,
    /// Admission sequence number, indexing the `serve.queue.depth` series.
    admissions: AtomicU64,
}

/// The concurrent, shard-aware reachability query service. See the crate
/// docs for the design and [`ServeConfig`] for the knobs.
pub struct QueryService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<reach_obs::WorkerMetrics>>,
    config: ServeConfig,
}

impl QueryService {
    /// Starts a service over `index` with the paper's id-modulo
    /// vertex-partitioning at `config.workers` shards.
    pub fn start(index: Arc<ReachIndex>, config: ServeConfig) -> Self {
        let partition = Partition::modulo(config.workers.max(1));
        QueryService::start_with_partition(index, partition, config)
    }

    /// Starts a service with an explicit vertex-partitioning; the
    /// partition's node count must equal `config.workers`.
    pub fn start_with_partition(
        index: Arc<ReachIndex>,
        partition: Partition,
        config: ServeConfig,
    ) -> Self {
        assert!(config.workers >= 1, "a service needs at least one worker");
        assert!(config.queue_capacity >= 1, "queue capacity must be >= 1");
        assert_eq!(
            partition.num_nodes(),
            config.workers,
            "one worker per label shard"
        );
        assert!(
            partition.covers(index.num_vertices()),
            "partition does not cover the index's vertices"
        );
        let labels = ShardedLabels::build(&index, partition.clone());
        let cache = (config.cache_capacity > 0).then(|| {
            ShardedLruCache::new(
                config.cache_capacity,
                config.cache_shards,
                config.cache_seed,
            )
        });
        let shared = Arc::new(Shared {
            epochs: Swappable::new(Epoch { index, labels }),
            partition,
            cache,
            queues: (0..config.workers)
                .map(|_| ShardQueue::new(config.queue_capacity))
                .collect(),
            stats: StatsInner::default(),
            admissions: AtomicU64::new(0),
        });
        let workers = (0..config.workers)
            .map(|k| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("reach-serve-{k}"))
                    .spawn(move || {
                        let ((), metrics) = reach_obs::scoped_worker(|| worker_loop(&shared, k));
                        metrics
                    })
                    .expect("spawn service worker")
            })
            .collect();
        QueryService {
            shared,
            workers,
            config,
        }
    }

    /// The currently served index (the latest swapped-in generation).
    pub fn index(&self) -> Arc<ReachIndex> {
        Arc::clone(&self.shared.epochs.load().value().index)
    }

    /// The generation currently being served: 0 at start, +1 per
    /// [`QueryService::swap_index`]. Batches already in flight may still
    /// be answering under an earlier generation.
    pub fn generation(&self) -> u64 {
        self.shared.epochs.generation()
    }

    /// Atomically replaces the served index with `index`, rebuilt into a
    /// fresh sharded label store under the service's partition, and
    /// returns the new generation number.
    ///
    /// The swap never drains and never blocks queries: batches whose
    /// compute already pinned the old epoch finish on it (the old index
    /// stays alive until its last batch drops it), batches still queued
    /// pin the new epoch at pickup, and every batch is answered entirely
    /// by one generation either way. The result cache needs no flush —
    /// the generation is part of its key.
    ///
    /// # Panics
    ///
    /// If the service runs an explicit [`Partition`] whose assignment
    /// table does not cover the new index's vertices (the id-modulo
    /// default covers any vertex count).
    pub fn swap_index(&self, index: Arc<ReachIndex>) -> u64 {
        assert!(
            self.shared.partition.covers(index.num_vertices()),
            "partition does not cover the new index's vertices"
        );
        let t0 = Instant::now();
        let labels = ShardedLabels::build(&index, self.shared.partition.clone());
        let generation = self.shared.epochs.swap(Epoch { index, labels });
        self.shared.stats.swaps.fetch_add(1, Ordering::Relaxed);
        self.shared
            .stats
            .generation
            .store(generation, Ordering::Relaxed);
        reach_obs::counter_add("serve.swap.count", 1);
        reach_obs::record("serve.swap.install_ns", t0.elapsed().as_nanos() as u64);
        generation
    }

    /// Worker-thread (= shard) count.
    pub fn num_workers(&self) -> usize {
        self.config.workers
    }

    /// Answers one query, blocking until a worker serves it.
    pub fn reachable(&self, s: VertexId, t: VertexId) -> Result<bool, ServeError> {
        let answers = self.submit_batch(&[(s, t)], None)?;
        Ok(answers[0])
    }

    /// Submits a batch and blocks for its results (submission order).
    /// `deadline` overrides [`ServeConfig::default_deadline`].
    pub fn submit_batch(
        &self,
        queries: &[(VertexId, VertexId)],
        deadline: Option<Duration>,
    ) -> Result<Vec<bool>, ServeError> {
        self.submit_batch_async(queries, deadline)?.wait()
    }

    /// Non-blocking submission: validates, applies admission control, and
    /// routes each query to the shard owning its source. Errors returned
    /// here ([`ServeError::Overloaded`], [`ServeError::DeadlineExceeded`]
    /// for an already-expired deadline, [`ServeError::InvalidVertex`])
    /// reject the whole batch — no partial results are ever produced.
    pub fn submit_batch_async(
        &self,
        queries: &[(VertexId, VertexId)],
        deadline: Option<Duration>,
    ) -> Result<BatchTicket, ServeError> {
        let shared = &*self.shared;
        // Validate against the generation current at submission; a batch
        // pinned to a later (shrunken) epoch at pickup is re-checked by
        // the worker against its pinned generation.
        let n = shared.epochs.load().value().labels.num_vertices();
        for &(s, t) in queries {
            for v in [s, t] {
                if v as usize >= n {
                    return Err(ServeError::InvalidVertex {
                        vertex: v,
                        num_vertices: n,
                    });
                }
            }
        }
        let admitted_at = Instant::now();
        // A deadline too far out to represent is no deadline at all.
        let deadline = deadline
            .or(self.config.default_deadline)
            .and_then(|d| admitted_at.checked_add(d));
        if let Some(dl) = deadline {
            if Instant::now() >= dl {
                shared
                    .stats
                    .rejected_deadline
                    .fetch_add(1, Ordering::Relaxed);
                reach_obs::counter_add("serve.rejected.deadline", 1);
                return Err(ServeError::DeadlineExceeded);
            }
        }

        // Route queries to the shard owning each source vertex — a pure
        // function of the fixed partition, so routing stays valid no
        // matter which epoch the batch later pins. Each shard gets its
        // slice of the batch plus the submission positions its answers
        // must land at.
        type RoutedShard = (Vec<(VertexId, VertexId)>, Vec<u32>);
        let shards = shared.partition.num_nodes();
        let mut routed: Vec<RoutedShard> = (0..shards).map(|_| (Vec::new(), Vec::new())).collect();
        for (i, &(s, t)) in queries.iter().enumerate() {
            let k = shared.partition.node_of(s);
            routed[k].0.push((s, t));
            routed[k].1.push(i as u32);
        }
        let sub_batches = routed.iter().filter(|(q, _)| !q.is_empty()).count();
        let state = Arc::new(BatchState::new(queries.len(), sub_batches));
        if sub_batches == 0 {
            // An empty batch is never picked up by a worker, so pin its
            // epoch here: completion (and its tag) must not dangle.
            let _ = state.pinned.set(shared.epochs.load());
        }

        shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        reach_obs::counter_add("serve.batches", 1);
        reach_obs::record("serve.batch.size", queries.len() as u64);
        let seq = shared.admissions.fetch_add(1, Ordering::Relaxed);

        for (k, (queries, positions)) in routed.into_iter().enumerate() {
            if queries.is_empty() {
                continue;
            }
            let sub = SubBatch {
                state: Arc::clone(&state),
                deadline,
                admitted_at,
                queries,
                positions,
            };
            match shared.queues[k].try_push(sub) {
                Ok(_) => {}
                Err(kind) => {
                    let err = match kind {
                        PushError::Full => {
                            shared
                                .stats
                                .rejected_overload
                                .fetch_add(1, Ordering::Relaxed);
                            reach_obs::counter_add("serve.rejected.overload", 1);
                            ServeError::Overloaded {
                                shard: k,
                                capacity: self.config.queue_capacity,
                            }
                        }
                        PushError::Closed => ServeError::ShuttingDown,
                    };
                    // Poison the batch so sub-batches already enqueued on
                    // other shards skip their compute, then reject it.
                    state.fail(err.clone());
                    return Err(err);
                }
            }
        }
        let depth: usize = shared.queues.iter().map(ShardQueue::len).sum();
        shared.stats.raise_max_depth(depth as u64);
        reach_obs::series_add("serve.queue.depth", seq as usize, depth as u64);
        Ok(BatchTicket { state })
    }

    /// Cumulative service counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.snapshot()
    }

    /// Holds all workers before their next sub-batch. Queued work stays
    /// queued (and admission control keeps counting it), which lets tests
    /// and the bench harness stage deterministic overload and
    /// deadline-expiry scenarios.
    pub fn pause(&self) {
        for q in &self.shared.queues {
            q.set_paused(true);
        }
    }

    /// Releases a [`QueryService::pause`].
    pub fn resume(&self) {
        for q in &self.shared.queues {
            q.set_paused(false);
        }
    }

    /// Stops admission, drains every already-admitted batch, joins the
    /// workers, folds their obs recordings into the calling thread, and
    /// returns the final stats snapshot.
    pub fn shutdown(mut self) -> ServeStats {
        self.stop();
        self.shared.stats.snapshot()
    }

    fn stop(&mut self) {
        for q in &self.shared.queues {
            q.close();
        }
        for handle in self.workers.drain(..) {
            let metrics = handle.join().expect("service worker panicked");
            reach_obs::merge_worker(metrics);
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One worker: drain the shard's queue until close, answering each
/// sub-batch shard-locally.
fn worker_loop(shared: &Shared, shard: usize) {
    while let Some(sub) = shared.queues[shard].pop() {
        serve_sub_batch(shared, shard, sub);
    }
}

fn serve_sub_batch(shared: &Shared, shard: usize, sub: SubBatch) {
    // A sibling sub-batch already failed the batch (overload poisoning):
    // just account for this one, the ticket holder has its error.
    if sub.state.failed_already() {
        sub.state.finish_sub(Ok(()));
        return;
    }
    // Per-batch deadline, re-checked at pickup time: queue wait counts.
    if let Some(dl) = sub.deadline {
        if Instant::now() >= dl {
            shared
                .stats
                .rejected_deadline
                .fetch_add(1, Ordering::Relaxed);
            reach_obs::counter_add("serve.rejected.deadline", 1);
            sub.state.finish_sub(Err(ServeError::DeadlineExceeded));
            return;
        }
    }
    // Pin the batch's epoch: the first sub-batch picked up decides, every
    // sibling (on any worker, at any later time) reuses the same one.
    let epoch = sub
        .state
        .pinned
        .get_or_init(|| shared.epochs.load())
        .clone();
    let generation = epoch.generation();
    let labels = &epoch.value().labels;
    // Submission validated against the epoch current back then; the
    // pinned one may cover fewer vertices (a shrinking swap), so re-check
    // before touching label arrays.
    let pinned_n = labels.num_vertices();
    if let Some(v) = sub
        .queries
        .iter()
        .flat_map(|&(s, t)| [s, t])
        .find(|&v| v as usize >= pinned_n)
    {
        sub.state.finish_sub(Err(ServeError::InvalidVertex {
            vertex: v,
            num_vertices: pinned_n,
        }));
        return;
    }
    let mut answers = Vec::with_capacity(sub.queries.len());
    let (mut hits, mut misses) = (0u64, 0u64);
    for &(s, t) in &sub.queries {
        let answer = match shared.cache.as_ref().and_then(|c| c.get(generation, s, t)) {
            Some(cached) => {
                hits += 1;
                cached
            }
            None => {
                let (computed, scanned) = labels.scan(shard, s, t);
                reach_obs::record("serve.query.scan_len", scanned as u64);
                if let Some(c) = &shared.cache {
                    misses += 1;
                    c.insert(generation, s, t, computed);
                }
                computed
            }
        };
        reach_obs::record(
            "serve.request.latency_ns",
            sub.admitted_at.elapsed().as_nanos() as u64,
        );
        answers.push(answer);
    }
    reach_obs::series_add(
        "serve.swap.queries",
        generation as usize,
        answers.len() as u64,
    );
    shared
        .stats
        .queries
        .fetch_add(answers.len() as u64, Ordering::Relaxed);
    reach_obs::counter_add("serve.queries", answers.len() as u64);
    if hits > 0 {
        shared.stats.cache_hits.fetch_add(hits, Ordering::Relaxed);
        reach_obs::counter_add("serve.cache.hits", hits);
    }
    if misses > 0 {
        shared
            .stats
            .cache_misses
            .fetch_add(misses, Ordering::Relaxed);
        reach_obs::counter_add("serve.cache.misses", misses);
    }
    {
        let mut results = sub.state.results.lock().unwrap();
        for (answer, &pos) in answers.iter().zip(&sub.positions) {
            results[pos as usize] = *answer;
        }
    }
    sub.state.finish_sub(Ok(()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::{fixtures, TransitiveClosure};

    /// A trivially valid cover: `L_out(s) = DES(s)`, `L_in(t) = {t}`.
    fn closure_index(g: &reach_graph::DiGraph) -> Arc<ReachIndex> {
        let n = g.num_vertices();
        let out: Vec<Vec<VertexId>> = (0..n as VertexId)
            .map(|v| reach_graph::traverse::descendants(g, v))
            .collect();
        let ins: Vec<Vec<VertexId>> = (0..n as VertexId).map(|v| vec![v]).collect();
        Arc::new(ReachIndex::from_labels(ins, out))
    }

    #[test]
    fn single_queries_match_direct_query_at_every_worker_count() {
        let g = fixtures::paper_graph();
        let idx = closure_index(&g);
        let tc = TransitiveClosure::compute(&g);
        for workers in [1, 2, 4, 8] {
            let svc = QueryService::start(Arc::clone(&idx), ServeConfig::with_workers(workers));
            for s in g.vertices() {
                for t in g.vertices() {
                    assert_eq!(svc.reachable(s, t).unwrap(), tc.reaches(s, t), "q({s},{t})");
                }
            }
            let stats = svc.shutdown();
            assert_eq!(stats.queries, 11 * 11);
            assert_eq!(stats.batches, 11 * 11);
        }
    }

    #[test]
    fn batch_results_come_back_in_submission_order() {
        let g = fixtures::paper_graph();
        let idx = closure_index(&g);
        let svc = QueryService::start(Arc::clone(&idx), ServeConfig::with_workers(4));
        // Sources deliberately interleave shards (4 workers, id-modulo).
        let batch: Vec<(VertexId, VertexId)> =
            (0..11).flat_map(|s| (0..11).map(move |t| (s, t))).collect();
        let got = svc.submit_batch(&batch, None).unwrap();
        let expect: Vec<bool> = batch.iter().map(|&(s, t)| idx.query(s, t)).collect();
        assert_eq!(got, expect);
        svc.shutdown();
    }

    #[test]
    fn empty_batches_complete_immediately() {
        let idx = closure_index(&fixtures::diamond());
        let svc = QueryService::start(idx, ServeConfig::with_workers(2));
        assert_eq!(svc.submit_batch(&[], None).unwrap(), Vec::<bool>::new());
    }

    #[test]
    fn invalid_vertices_are_rejected_not_panicked() {
        let idx = closure_index(&fixtures::diamond()); // 4 vertices
        let svc = QueryService::start(idx, ServeConfig::with_workers(2));
        let err = svc.submit_batch(&[(0, 9)], None).unwrap_err();
        assert_eq!(
            err,
            ServeError::InvalidVertex {
                vertex: 9,
                num_vertices: 4
            }
        );
        let err = svc.reachable(7, 0).unwrap_err();
        assert_eq!(
            err,
            ServeError::InvalidVertex {
                vertex: 7,
                num_vertices: 4
            }
        );
    }

    #[test]
    fn expired_deadline_is_rejected_at_admission() {
        let idx = closure_index(&fixtures::diamond());
        let svc = QueryService::start(idx, ServeConfig::with_workers(1));
        let err = svc
            .submit_batch(&[(0, 3)], Some(Duration::ZERO))
            .unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded);
        assert_eq!(svc.stats().rejected_deadline, 1);
        assert_eq!(svc.stats().batches, 0, "rejected before admission");
    }

    #[test]
    fn deadline_expiring_in_queue_is_detected_by_the_worker() {
        let idx = closure_index(&fixtures::diamond());
        let svc = QueryService::start(idx, ServeConfig::with_workers(1));
        svc.pause();
        let ticket = svc
            .submit_batch_async(&[(0, 3)], Some(Duration::from_millis(1)))
            .unwrap();
        std::thread::sleep(Duration::from_millis(10));
        svc.resume();
        assert_eq!(ticket.wait().unwrap_err(), ServeError::DeadlineExceeded);
        assert_eq!(svc.stats().rejected_deadline, 1);
    }

    #[test]
    fn overload_is_typed_and_queued_work_still_completes() {
        let idx = closure_index(&fixtures::diamond());
        let mut cfg = ServeConfig::with_workers(1);
        cfg.queue_capacity = 2;
        let svc = QueryService::start(Arc::clone(&idx), cfg);
        svc.pause();
        let t1 = svc.submit_batch_async(&[(0, 3)], None).unwrap();
        let t2 = svc.submit_batch_async(&[(1, 2)], None).unwrap();
        let err = svc.submit_batch_async(&[(2, 3)], None).unwrap_err();
        assert_eq!(
            err,
            ServeError::Overloaded {
                shard: 0,
                capacity: 2
            }
        );
        assert_eq!(svc.stats().rejected_overload, 1);
        svc.resume();
        assert_eq!(t1.wait().unwrap(), vec![idx.query(0, 3)]);
        assert_eq!(t2.wait().unwrap(), vec![idx.query(1, 2)]);
        let stats = svc.shutdown();
        assert_eq!(stats.queries, 2, "rejected batch never computed");
        assert_eq!(stats.max_queue_depth, 2);
    }

    #[test]
    fn overload_poisons_sub_batches_already_enqueued_elsewhere() {
        // 2 workers; shard 1's queue is saturated first, then a batch
        // spanning both shards is submitted: its shard-0 slice enqueues,
        // its shard-1 slice is rejected, and the whole batch must fail
        // without computing anything.
        let idx = closure_index(&fixtures::diamond());
        let mut cfg = ServeConfig::with_workers(2);
        cfg.queue_capacity = 1;
        let svc = QueryService::start(Arc::clone(&idx), cfg);
        svc.pause();
        let t1 = svc.submit_batch_async(&[(1, 3)], None).unwrap(); // shard 1
        let err = svc.submit_batch_async(&[(0, 3), (1, 2)], None).unwrap_err();
        assert_eq!(
            err,
            ServeError::Overloaded {
                shard: 1,
                capacity: 1
            }
        );
        svc.resume();
        assert_eq!(t1.wait().unwrap(), vec![idx.query(1, 3)]);
        let stats = svc.shutdown();
        assert_eq!(stats.queries, 1, "poisoned sub-batch skipped its compute");
    }

    #[test]
    fn cache_hits_accumulate_without_changing_answers() {
        let g = fixtures::paper_graph();
        let idx = closure_index(&g);
        let svc = QueryService::start(Arc::clone(&idx), ServeConfig::with_workers(2));
        let batch: Vec<(VertexId, VertexId)> = vec![(1, 6), (8, 0), (1, 6), (1, 6)];
        let expect: Vec<bool> = batch.iter().map(|&(s, t)| idx.query(s, t)).collect();
        for _ in 0..3 {
            assert_eq!(svc.submit_batch(&batch, None).unwrap(), expect);
        }
        let stats = svc.shutdown();
        assert_eq!(stats.cache_hits + stats.cache_misses, 12);
        assert_eq!(stats.cache_misses, 2, "only (1,6) and (8,0) ever scan");
        assert!(stats.cache_hit_rate() > 0.8);
    }

    #[test]
    fn no_cache_config_never_probes() {
        let idx = closure_index(&fixtures::diamond());
        let svc = QueryService::start(idx, ServeConfig::with_workers(1).no_cache());
        for _ in 0..4 {
            svc.reachable(0, 3).unwrap();
        }
        let stats = svc.shutdown();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 0);
        assert_eq!(stats.queries, 4);
    }

    #[test]
    fn shutdown_drains_admitted_batches() {
        let idx = closure_index(&fixtures::diamond());
        let svc = QueryService::start(Arc::clone(&idx), ServeConfig::with_workers(2));
        svc.pause();
        let tickets: Vec<BatchTicket> = (0..8)
            .map(|i| {
                svc.submit_batch_async(&[(i % 4, (i + 1) % 4)], None)
                    .unwrap()
            })
            .collect();
        // Shutdown with work still queued and workers paused: close
        // overrides pause, every ticket resolves.
        let results: Vec<_> = {
            let stats = svc.shutdown();
            assert_eq!(stats.queries, 8);
            tickets.into_iter().map(|t| t.wait().unwrap()).collect()
        };
        for (i, r) in results.iter().enumerate() {
            let (s, t) = ((i as u32) % 4, ((i + 1) as u32) % 4);
            assert_eq!(r, &vec![idx.query(s, t)]);
        }
    }

    #[test]
    fn explicit_partition_routes_by_ownership() {
        let g = fixtures::paper_graph();
        let idx = closure_index(&g);
        let assignment: Vec<u16> = (0..11).map(|v| (v % 3) as u16).collect();
        let part = Partition::explicit(3, assignment);
        let mut cfg = ServeConfig::with_workers(3);
        cfg.cache_capacity = 0;
        let svc = QueryService::start_with_partition(Arc::clone(&idx), part, cfg);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(svc.reachable(s, t).unwrap(), idx.query(s, t));
            }
        }
        svc.shutdown();
    }
}
