//! The multi-threaded query service: worker pool, bounded per-shard
//! queues, batch tickets, deadlines, and the result cache.
//!
//! # Lifecycle
//!
//! [`QueryService::start`] builds the [`ShardedLabels`] store from an
//! `Arc`-shared index and spawns one worker thread per shard. Submitters
//! call [`QueryService::reachable`] / [`QueryService::submit_batch`] (or
//! the non-blocking [`QueryService::submit_batch_async`], which returns a
//! [`BatchTicket`]); [`QueryService::shutdown`] closes the queues, lets
//! the workers drain every admitted batch (nothing is silently dropped),
//! joins them, and folds their `reach-obs` recordings into the calling
//! thread.
//!
//! # Determinism
//!
//! Answers are computed from an immutable label store, each query's
//! result is written to its submission position, and a batch completes
//! only when every sub-batch has. Worker count, scheduling, and cache
//! state therefore cannot change any answer — the property the
//! `service_determinism` proptest pins across graphs × seeds × thread
//! counts, with and without the cache.
//!
//! # Hot-swap
//!
//! [`QueryService::swap_index`] installs a rebuilt index (plus its
//! resharded label store) behind a generation-tagged
//! [`Swappable`] slot without draining anything:
//! in-flight batches keep the epoch they pinned, queued batches pin the
//! current epoch at **first worker pickup** (raced sub-batches agree via
//! a `OnceLock`), and the result cache keys on the generation so one
//! epoch's answers can never satisfy another's probes. Every batch is
//! therefore answered entirely by a single index — the no-torn-batches
//! property `tests/hot_swap.rs` pins differentially against
//! `ReachIndex::query` on the pinned generation.
//!
//! # Resilience
//!
//! With [`ServeConfig::resilience`] set, workers run under the
//! [`supervisor`](crate::supervisor): heartbeats, crash detection,
//! exactly-once requeue of a dead worker's in-flight sub-batch, and
//! respawn — optionally under a seeded
//! [`ServeFaultPlan`](crate::fault::ServeFaultPlan) injecting crashes,
//! stalls, slow shards, and swap-install failures (chaos mode). With
//! [`ServeConfig::degrade`] set, admission sheds work by
//! [`Priority`] tier under sustained overload, optionally serving
//! cache-only answers. Both default to `None`, leaving the original
//! code path untouched. `docs/RESILIENCE.md` has the full model.
//!
//! # Accounting
//!
//! [`ServeStats`] counts every submission exactly once into a terminal
//! bucket: `submitted == answered + rejected + shed` holds whenever the
//! service is quiescent, and [`QueryService::shutdown`] asserts it — a
//! batch can be neither lost nor double-answered without tripping it
//! (the batch state additionally panics on a double-finished sub-batch).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use reach_graph::VertexId;
use reach_index::{IndexSource, ReachIndex};
use reach_vcs::Partition;

use crate::cache::ShardedLruCache;
use crate::fault::{InjectedFault, WorkerFaultStream};
use crate::shard::ShardedLabels;
use crate::supervisor::{Resilience, ResilienceConfig, WorkerExit, WorkerSlot};
use crate::swap::{Swappable, Tagged};
use crate::{DegradeTier, ServeError};

/// One served index epoch, swapped in as a unit so a worker can never
/// pair one generation's labels with another's index.
///
/// Two backings answer the same queries: the classic **Ram** form (a
/// decoded [`ReachIndex`] plus the [`ShardedLabels`] store resharded
/// from it), and a **Source** form — any [`IndexSource`], e.g. a
/// compressed or mmap-backed v2 image — for indexes that should not
/// (or cannot) be fully decoded into memory. Source epochs answer from
/// one shared structure, so the worker's `shard` id does not partition
/// the scan; admission, queueing, caching, and swaps are identical.
pub(crate) enum Epoch {
    /// Decoded index + sharded label store (the original serving form).
    Ram {
        /// The decoded index, for witness queries and re-sharding swaps.
        index: Arc<ReachIndex>,
        /// Per-shard CSR labels the workers scan.
        labels: ShardedLabels,
    },
    /// Any [`IndexSource`] backing: compressed in-heap or mmap-backed.
    Source(Arc<dyn IndexSource>),
}

impl Epoch {
    /// Vertices covered by this epoch's index.
    fn num_vertices(&self) -> usize {
        match self {
            Epoch::Ram { labels, .. } => labels.num_vertices(),
            Epoch::Source(src) => src.num_vertices(),
        }
    }

    /// Answers `q(s, t)` with its scan cost. `shard` routes the Ram
    /// form's per-shard label store; a Source ignores it.
    fn scan(&self, shard: usize, s: VertexId, t: VertexId) -> (bool, usize) {
        match self {
            Epoch::Ram { labels, .. } => labels.scan(shard, s, t),
            Epoch::Source(src) => src.query_scan(s, t),
        }
    }

    /// The backing as a shareable [`IndexSource`] (witness queries).
    fn as_source(&self) -> Arc<dyn IndexSource> {
        match self {
            Epoch::Ram { index, .. } => Arc::clone(index) as Arc<dyn IndexSource>,
            Epoch::Source(src) => Arc::clone(src),
        }
    }
}

/// A pinned epoch handle: the tagged value batches hold onto.
type EpochRef = Arc<Tagged<Epoch>>;

/// Tuning knobs of a [`QueryService`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads — one label shard per worker. Must be ≥ 1.
    pub workers: usize,
    /// Bounded per-shard request queue, in sub-batches; a full queue
    /// rejects new batches with [`ServeError::Overloaded`]. Must be ≥ 1.
    pub queue_capacity: usize,
    /// Total result-cache entries across cache shards; `0` disables the
    /// cache entirely.
    pub cache_capacity: usize,
    /// Independent cache shards (each its own lock). Must be ≥ 1 when the
    /// cache is enabled.
    pub cache_shards: usize,
    /// Seed fixing the cache's key-to-shard spread.
    pub cache_seed: u64,
    /// Deadline applied to batches submitted without an explicit one;
    /// `None` means such batches never expire.
    pub default_deadline: Option<Duration>,
    /// Enables supervised workers (heartbeats, crash recovery, respawn)
    /// and, through the embedded fault plan, chaos mode. `None` (the
    /// default) runs the original unsupervised worker pool.
    pub resilience: Option<ResilienceConfig>,
    /// Enables graceful-degradation tiers under sustained overload.
    /// `None` (the default) admits purely by queue capacity.
    pub degrade: Option<DegradeConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            queue_capacity: 1024,
            cache_capacity: 1 << 14,
            cache_shards: 8,
            cache_seed: 0x5eed_cafe,
            default_deadline: None,
            resilience: None,
            degrade: None,
        }
    }
}

impl ServeConfig {
    /// The default configuration with `workers` worker threads.
    pub fn with_workers(workers: usize) -> Self {
        ServeConfig {
            workers,
            ..ServeConfig::default()
        }
    }

    /// Disables the result cache.
    pub fn no_cache(mut self) -> Self {
        self.cache_capacity = 0;
        self
    }

    /// Runs the workers under supervision (see [`ResilienceConfig`]).
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = Some(resilience);
        self
    }

    /// Enables overload degradation tiers (see [`DegradeConfig`]).
    pub fn with_degrade(mut self, degrade: DegradeConfig) -> Self {
        self.degrade = Some(degrade);
        self
    }
}

/// Client-visible importance of a batch, consulted only by the
/// degradation tiers: under sustained overload the service sheds
/// [`Priority::Low`] work first, then serves [`Priority::Normal`] work
/// cache-only (or sheds it), while [`Priority::High`] work always
/// reaches normal admission. Without a [`DegradeConfig`] every priority
/// is treated identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// First to be shed under overload (background / speculative work).
    Low,
    /// The default tier.
    Normal,
    /// Never shed by the degradation tiers (may still see
    /// [`ServeError::Overloaded`] when a queue is physically full).
    High,
}

/// Per-batch submission options for
/// [`QueryService::submit_batch_opts`].
#[derive(Clone, Copy, Debug)]
pub struct BatchOptions {
    /// Overrides [`ServeConfig::default_deadline`] when set.
    pub deadline: Option<Duration>,
    /// Degradation-tier priority of the batch.
    pub priority: Priority,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            deadline: None,
            priority: Priority::Normal,
        }
    }
}

impl BatchOptions {
    /// Default options with the given deadline.
    pub fn deadline(deadline: Duration) -> Self {
        BatchOptions {
            deadline: Some(deadline),
            ..BatchOptions::default()
        }
    }

    /// Default options at the given priority.
    pub fn priority(priority: Priority) -> Self {
        BatchOptions {
            priority,
            ..BatchOptions::default()
        }
    }
}

/// Graceful-degradation thresholds, expressed as *pressure* — total
/// queued sub-batches over total queue capacity (`workers ×
/// queue_capacity`), sampled at admission.
///
/// Tiers escalate immediately when pressure crosses an entry watermark
/// and de-escalate only once pressure falls `resume_margin` below it
/// (hysteresis), so a service hovering at a watermark does not flap:
///
/// | tier | entered at | behavior |
/// |---|---|---|
/// | 0 | — | normal admission |
/// | 1 ([`DegradeTier::SheddingLow`]) | `shed_low_at` | [`Priority::Low`] batches rejected with [`ServeError::Degraded`] |
/// | 2 ([`DegradeTier::CacheOnly`]) | `cache_only_at` | additionally, [`Priority::Normal`] batches are answered from the result cache alone when every query hits, else rejected with [`ServeError::Degraded`] |
#[derive(Clone, Debug)]
pub struct DegradeConfig {
    /// Pressure at which tier 1 (shed low-priority work) engages.
    pub shed_low_at: f64,
    /// Pressure at which tier 2 (cache-only normal work) engages.
    pub cache_only_at: f64,
    /// A tier disengages once pressure drops this far below its entry
    /// watermark.
    pub resume_margin: f64,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            shed_low_at: 0.75,
            cache_only_at: 0.95,
            resume_margin: 0.25,
        }
    }
}

/// Counters exposed by [`QueryService::stats`]. All values are cumulative
/// since service start and remain available after [`QueryService::shutdown`]
/// (which returns the final snapshot). Unlike the `serve.*` obs metrics
/// these are always compiled in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Batches submitted (every [`QueryService::submit_batch_opts`]
    /// entry, before validation). Each lands in exactly one terminal
    /// bucket: [`answered`](ServeStats::answered), one of the
    /// `rejected_*` counters, or [`shed`](ServeStats::shed) — the
    /// balance [`ServeStats::is_balanced`] checks and shutdown asserts.
    pub submitted: u64,
    /// Batches whose every query was answered (including empty batches
    /// and cache-only degraded serves).
    pub answered: u64,
    /// Queries answered (cache hits included).
    pub queries: u64,
    /// Batches admitted past admission control (every sub-batch
    /// enqueued). A batch rejected mid-enqueue is *not* counted here.
    pub batches: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses (label scans performed with the cache on).
    pub cache_misses: u64,
    /// Batches rejected with [`ServeError::Overloaded`].
    pub rejected_overload: u64,
    /// Batches rejected with [`ServeError::DeadlineExceeded`] — at
    /// admission or when a worker found the deadline already past.
    /// Counted once per batch, however many sub-batches expired.
    pub rejected_deadline: u64,
    /// Batches rejected with [`ServeError::InvalidVertex`] — at
    /// admission, or at a worker after a shrinking hot-swap.
    pub rejected_invalid: u64,
    /// Batches rejected with [`ServeError::ShuttingDown`].
    pub rejected_shutdown: u64,
    /// Batches shed by a degradation tier ([`ServeError::Degraded`]).
    pub shed: u64,
    /// High-water mark of total queued sub-batches observed at admission.
    pub max_queue_depth: u64,
    /// Index hot-swaps performed ([`QueryService::swap_index`]).
    pub swaps: u64,
    /// Swap installs failed by fault injection
    /// ([`QueryService::try_swap_index`]); never counted in
    /// [`swaps`](ServeStats::swaps).
    pub swap_failures: u64,
    /// The generation being served when this snapshot was taken (0 until
    /// the first swap; equals [`ServeStats::swaps`] because generations
    /// are assigned consecutively by a single slot).
    pub generation: u64,
    /// Workers respawned or replaced by the supervisor.
    pub respawns: u64,
    /// In-flight sub-batches requeued from dead workers — each exactly
    /// once.
    pub requeued: u64,
    /// Injected worker crashes ([`crate::fault::ServeFaultPlan`]).
    pub injected_crashes: u64,
    /// Injected worker stalls.
    pub injected_stalls: u64,
}

impl ServeStats {
    /// Cache hits over cache probes, or 0.0 before any probe.
    pub fn cache_hit_rate(&self) -> f64 {
        let probes = self.cache_hits + self.cache_misses;
        if probes == 0 {
            0.0
        } else {
            self.cache_hits as f64 / probes as f64
        }
    }

    /// Batches rejected for any reason (overload, deadline, invalid
    /// vertex, shutdown).
    pub fn rejected(&self) -> u64 {
        self.rejected_overload
            + self.rejected_deadline
            + self.rejected_invalid
            + self.rejected_shutdown
    }

    /// The conservation law of batch accounting: every submission ends
    /// in exactly one terminal bucket. Holds whenever the service is
    /// quiescent (no submission mid-flight); [`QueryService::shutdown`]
    /// asserts it, so a lost or double-counted batch fails every test
    /// that shuts its service down.
    pub fn is_balanced(&self) -> bool {
        self.submitted == self.answered + self.rejected() + self.shed
    }
}

#[derive(Default)]
struct StatsInner {
    submitted: AtomicU64,
    answered: AtomicU64,
    queries: AtomicU64,
    batches: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_deadline: AtomicU64,
    rejected_invalid: AtomicU64,
    rejected_shutdown: AtomicU64,
    shed: AtomicU64,
    max_queue_depth: AtomicU64,
    swaps: AtomicU64,
    swap_failures: AtomicU64,
    generation: AtomicU64,
    respawns: AtomicU64,
    requeued: AtomicU64,
    injected_crashes: AtomicU64,
    injected_stalls: AtomicU64,
}

impl StatsInner {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            answered: self.answered.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            rejected_invalid: self.rejected_invalid.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            swap_failures: self.swap_failures.load(Ordering::Relaxed),
            generation: self.generation.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            requeued: self.requeued.load(Ordering::Relaxed),
            injected_crashes: self.injected_crashes.load(Ordering::Relaxed),
            injected_stalls: self.injected_stalls.load(Ordering::Relaxed),
        }
    }

    fn raise_max_depth(&self, depth: u64) {
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Counts a batch's terminal rejection into its per-cause bucket.
    fn count_rejection(&self, err: &ServeError) {
        match err {
            ServeError::Overloaded { .. } => {
                self.rejected_overload.fetch_add(1, Ordering::Relaxed);
                reach_obs::counter_add("serve.rejected.overload", 1);
            }
            ServeError::DeadlineExceeded => {
                self.rejected_deadline.fetch_add(1, Ordering::Relaxed);
                reach_obs::counter_add("serve.rejected.deadline", 1);
            }
            ServeError::InvalidVertex { .. } => {
                self.rejected_invalid.fetch_add(1, Ordering::Relaxed);
                reach_obs::counter_add("serve.rejected.invalid", 1);
            }
            ServeError::ShuttingDown => {
                self.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
                reach_obs::counter_add("serve.rejected.shutdown", 1);
            }
            ServeError::Degraded { .. } => {
                self.shed.fetch_add(1, Ordering::Relaxed);
                reach_obs::counter_add("serve.degrade.shed", 1);
            }
            // Swap failures are not batch outcomes; nothing to count.
            ServeError::SwapFailed { .. } => {}
        }
    }
}

/// Completion state shared between a batch's ticket and its sub-batches.
struct BatchState {
    /// One slot per submitted query, written at the query's submission
    /// position by whichever shard answers it.
    results: Mutex<Vec<bool>>,
    progress: Mutex<Progress>,
    done: Condvar,
    /// The epoch this batch is answered by, pinned once by the first
    /// worker to pick up any of its sub-batches; raced pickups agree
    /// because only one initializer can win. Pinning at pickup (not
    /// admission) means a batch that waited in queue across a swap is
    /// answered by the freshest index — but still by exactly one.
    pinned: OnceLock<EpochRef>,
}

#[derive(Debug)]
struct Progress {
    /// Sub-batches still outstanding.
    remaining: usize,
    /// First failure, sticky; later sub-batches of a failed batch skip
    /// their compute.
    failed: Option<ServeError>,
}

impl BatchState {
    fn new(num_results: usize, sub_batches: usize) -> Self {
        BatchState {
            results: Mutex::new(vec![false; num_results]),
            progress: Mutex::new(Progress {
                remaining: sub_batches,
                failed: None,
            }),
            done: Condvar::new(),
            pinned: OnceLock::new(),
        }
    }

    fn fail(&self, err: ServeError) {
        let mut p = self.progress.lock().unwrap();
        if p.failed.is_none() {
            p.failed = Some(err);
        }
        self.done.notify_all();
    }

    fn failed_already(&self) -> bool {
        self.progress.lock().unwrap().failed.is_some()
    }

    /// Marks one sub-batch finished (successfully or not) and reports
    /// what that did to the batch, so the caller can count its terminal
    /// bucket exactly once.
    fn finish_sub(&self, outcome: Result<(), ServeError>) -> FinishOutcome {
        let mut p = self.progress.lock().unwrap();
        // The exactly-once backstop: a requeued sub-batch served twice, or
        // one harvested from a live worker, would drive `remaining`
        // negative here — fail loudly instead of double-answering.
        assert!(
            p.remaining > 0,
            "sub-batch finished twice — a batch would be double-answered"
        );
        let mut first_failure = None;
        if let Err(e) = outcome {
            if p.failed.is_none() {
                p.failed = Some(e.clone());
                first_failure = Some(e);
            }
        }
        p.remaining -= 1;
        let completed = p.remaining == 0 && p.failed.is_none();
        if p.remaining == 0 || p.failed.is_some() {
            self.done.notify_all();
        }
        FinishOutcome {
            first_failure,
            completed,
        }
    }
}

/// What one [`BatchState::finish_sub`] call did to its batch.
struct FinishOutcome {
    /// `Some(e)` iff this call recorded the batch's **first** failure —
    /// the caller should count the batch rejected (once).
    first_failure: Option<ServeError>,
    /// True iff this call completed the batch successfully — the caller
    /// should count the batch answered (once).
    completed: bool,
}

/// A pending batch returned by [`QueryService::submit_batch_async`].
///
/// [`BatchTicket::wait`] blocks until every result is in (or the batch
/// failed) and returns the answers **in submission order** — position `i`
/// answers the `i`-th submitted query, whatever shard computed it.
///
/// Dropping a ticket without waiting is allowed: the batch still runs to
/// completion (admitted work is never cancelled mid-compute), its results
/// are simply discarded.
#[must_use = "a ticket must be waited on to observe the batch outcome"]
pub struct BatchTicket {
    state: Arc<BatchState>,
}

impl std::fmt::Debug for BatchTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchTicket")
            .field(
                "generation",
                &self.state.pinned.get().map(|e| e.generation()),
            )
            .finish_non_exhaustive()
    }
}

impl BatchTicket {
    /// Blocks until the batch completes; returns answers in submission
    /// order or the batch's typed failure.
    pub fn wait(self) -> Result<Vec<bool>, ServeError> {
        self.wait_tagged().map(|(answers, _)| answers)
    }

    /// Like [`BatchTicket::wait`], but also returns the **generation** of
    /// the index epoch that answered the batch — the handle the hot-swap
    /// differential harness compares answers against. Every answer in the
    /// returned vector was computed from exactly this generation's index.
    pub fn wait_tagged(self) -> Result<(Vec<bool>, u64), ServeError> {
        let mut p = self.state.progress.lock().unwrap();
        loop {
            if let Some(e) = &p.failed {
                return Err(e.clone());
            }
            if p.remaining == 0 {
                break;
            }
            p = self.state.done.wait(p).unwrap();
        }
        drop(p);
        self.take_results()
    }

    /// Like [`BatchTicket::wait`], but gives up after `timeout` with
    /// [`ServeError::DeadlineExceeded`]. The timeout bounds only this
    /// *wait*: an admitted batch still runs to completion server-side
    /// (and is still counted answered); its results are discarded with
    /// the ticket, exactly as on drop.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Vec<bool>, ServeError> {
        self.wait_tagged_timeout(timeout)
            .map(|(answers, _)| answers)
    }

    /// [`BatchTicket::wait_tagged`] with a bound on the wait, as in
    /// [`BatchTicket::wait_timeout`].
    pub fn wait_tagged_timeout(self, timeout: Duration) -> Result<(Vec<bool>, u64), ServeError> {
        let give_up = Instant::now() + timeout;
        let mut p = self.state.progress.lock().unwrap();
        loop {
            if let Some(e) = &p.failed {
                return Err(e.clone());
            }
            if p.remaining == 0 {
                break;
            }
            let now = Instant::now();
            if now >= give_up {
                return Err(ServeError::DeadlineExceeded);
            }
            let (guard, _) = self.state.done.wait_timeout(p, give_up - now).unwrap();
            p = guard;
        }
        drop(p);
        self.take_results()
    }

    /// Non-blocking completion probe for async windows: `true` once the
    /// batch has completed (successfully or not), i.e. once a `wait` call
    /// would return without blocking.
    pub fn try_complete(&self) -> bool {
        let p = self.state.progress.lock().unwrap();
        p.remaining == 0 || p.failed.is_some()
    }

    fn take_results(self) -> Result<(Vec<bool>, u64), ServeError> {
        let generation = self
            .state
            .pinned
            .get()
            .expect("a completed batch has pinned its epoch")
            .generation();
        let answers = std::mem::take(&mut *self.state.results.lock().unwrap());
        Ok((answers, generation))
    }
}

/// The shard-local work unit: the slice of one batch owned by one shard.
/// Queued and held behind an `Arc` so a supervised worker's in-flight
/// claim and the queue can share it without copying.
pub(crate) struct SubBatch {
    state: Arc<BatchState>,
    deadline: Option<Instant>,
    admitted_at: Instant,
    /// Queries routed to this shard (source vertices it owns).
    queries: Vec<(VertexId, VertexId)>,
    /// Submission position of each query, for order restoration.
    positions: Vec<u32>,
}

enum PushError {
    Full,
    Closed,
}

/// Outcome of a bounded-wait pop on a [`ShardQueue`].
enum Popped {
    /// A sub-batch to serve.
    Item(Arc<SubBatch>),
    /// Nothing arrived within the wait bound (or the queue is paused);
    /// the caller should refresh its heartbeat and poll again.
    TimedOut,
    /// Closed and fully drained: the worker is done.
    Drained,
}

/// A bounded MPSC queue of sub-batches with pause support (used by tests
/// and the bench harness to stage deterministic overload/deadline
/// scenarios).
struct ShardQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    capacity: usize,
}

struct QueueInner {
    items: VecDeque<Arc<SubBatch>>,
    closed: bool,
    paused: bool,
}

impl ShardQueue {
    fn new(capacity: usize) -> Self {
        ShardQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
                paused: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Admission: enqueues unless the queue is full or closed. Returns
    /// the depth after the push.
    fn try_push(&self, sub: Arc<SubBatch>) -> Result<usize, PushError> {
        let mut g = self.inner.lock().unwrap();
        if g.closed {
            return Err(PushError::Closed);
        }
        if g.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        g.items.push_back(sub);
        let depth = g.items.len();
        drop(g);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Requeues a sub-batch harvested from a dead worker at the **front**
    /// of the queue, bypassing capacity (the work was already admitted;
    /// re-rejecting it would break exactly-once) and preserving its
    /// position ahead of later admissions. Works on a closed queue so
    /// recovery still functions during shutdown drain.
    fn requeue_front(&self, sub: Arc<SubBatch>) {
        self.inner.lock().unwrap().items.push_front(sub);
        self.ready.notify_one();
    }

    /// Blocks for the next sub-batch; `None` once the queue is closed and
    /// drained. Close overrides pause so shutdown always drains.
    fn pop(&self) -> Option<Arc<SubBatch>> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if g.closed {
                return g.items.pop_front();
            }
            if !g.paused {
                if let Some(sub) = g.items.pop_front() {
                    return Some(sub);
                }
            }
            g = self.ready.wait(g).unwrap();
        }
    }

    /// [`ShardQueue::pop`] with a bounded wait, for supervised workers
    /// that must keep refreshing their heartbeat while idle.
    fn pop_timeout(&self, wait: Duration) -> Popped {
        let mut g = self.inner.lock().unwrap();
        let give_up = Instant::now() + wait;
        loop {
            if g.closed {
                return match g.items.pop_front() {
                    Some(sub) => Popped::Item(sub),
                    None => Popped::Drained,
                };
            }
            if !g.paused {
                if let Some(sub) = g.items.pop_front() {
                    return Popped::Item(sub);
                }
            }
            let now = Instant::now();
            if now >= give_up {
                return Popped::TimedOut;
            }
            let (guard, _) = self.ready.wait_timeout(g, give_up - now).unwrap();
            g = guard;
        }
    }

    fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    fn set_paused(&self, paused: bool) {
        self.inner.lock().unwrap().paused = paused;
        self.ready.notify_all();
    }

    fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

/// State shared between submitters and workers.
struct Shared {
    /// The served epoch: swapped atomically, pinned per batch.
    epochs: Swappable<Epoch>,
    /// The fixed vertex-partitioning; every epoch is resharded by it so
    /// routing decisions stay valid across swaps.
    partition: Partition,
    cache: Option<ShardedLruCache>,
    queues: Vec<ShardQueue>,
    stats: StatsInner,
    /// Admission sequence number, indexing the `serve.queue.depth` series.
    admissions: AtomicU64,
    /// The supervision/fault-injection layer; `None` runs the original
    /// unsupervised worker pool byte-for-byte.
    resilience: Option<Resilience>,
    /// Current degradation tier (0 = normal), updated at admission with
    /// hysteresis. Advisory only when [`ServeConfig::degrade`] is `None`.
    degrade_tier: AtomicU8,
}

impl Shared {
    /// Total queued sub-batches over total queue capacity, the pressure
    /// signal of the degradation tiers.
    fn pressure(&self) -> f64 {
        let depth: usize = self.queues.iter().map(ShardQueue::len).sum();
        let capacity = self.queues.len() * self.queues[0].capacity;
        depth as f64 / capacity as f64
    }

    /// Re-evaluates the degradation tier against current pressure:
    /// escalation is immediate, de-escalation requires pressure to fall
    /// `resume_margin` below the tier's entry watermark (hysteresis).
    fn update_degrade_tier(&self, cfg: &DegradeConfig) -> u8 {
        let pressure = self.pressure();
        let current = self.degrade_tier.load(Ordering::Relaxed);
        let mut tier = current;
        if pressure >= cfg.cache_only_at {
            tier = 2;
        } else if pressure >= cfg.shed_low_at {
            tier = tier.max(1);
        }
        if tier == 2 && pressure < cfg.cache_only_at - cfg.resume_margin {
            tier = 1;
        }
        if tier == 1 && pressure < cfg.shed_low_at - cfg.resume_margin {
            tier = 0;
        }
        if tier != current {
            self.degrade_tier.store(tier, Ordering::Relaxed);
            reach_obs::counter_add("serve.degrade.transitions", 1);
        }
        tier
    }
}

/// The concurrent, shard-aware reachability query service. See the crate
/// docs for the design and [`ServeConfig`] for the knobs.
pub struct QueryService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<reach_obs::WorkerMetrics>>,
    /// The supervisor thread, when [`ServeConfig::resilience`] is set; the
    /// supervised worker handles live in the resilience registry instead
    /// of `workers`.
    supervisor: Option<JoinHandle<()>>,
    config: ServeConfig,
}

impl QueryService {
    /// Starts a service over `index` with the paper's id-modulo
    /// vertex-partitioning at `config.workers` shards.
    pub fn start(index: Arc<ReachIndex>, config: ServeConfig) -> Self {
        let partition = Partition::modulo(config.workers.max(1));
        QueryService::start_with_partition(index, partition, config)
    }

    /// Starts a service with an explicit vertex-partitioning; the
    /// partition's node count must equal `config.workers`.
    pub fn start_with_partition(
        index: Arc<ReachIndex>,
        partition: Partition,
        config: ServeConfig,
    ) -> Self {
        assert!(
            partition.covers(index.num_vertices()),
            "partition does not cover the index's vertices"
        );
        let labels = ShardedLabels::build(&index, partition.clone());
        QueryService::start_with_epoch(Epoch::Ram { index, labels }, partition, config)
    }

    /// Starts a service over any [`IndexSource`] — a compressed
    /// [`CompressedIndex`](reach_index::CompressedIndex), an out-of-core
    /// [`MmapIndex`](reach_index::MmapIndex), or a plain decoded index.
    ///
    /// Source-backed epochs skip the sharded-label rebuild: every worker
    /// answers from the shared source, so start and swap are O(1) in the
    /// index size (mmap-backed serving would otherwise decode the file
    /// it is trying not to hold in memory). [`QueryService::index`] and
    /// [`QueryService::index_tagged`] are unavailable on this form —
    /// witness paths use [`QueryService::source_tagged`] instead.
    pub fn start_with_source(source: Arc<dyn IndexSource>, config: ServeConfig) -> Self {
        let partition = Partition::modulo(config.workers.max(1));
        QueryService::start_with_epoch(Epoch::Source(source), partition, config)
    }

    fn start_with_epoch(epoch: Epoch, partition: Partition, config: ServeConfig) -> Self {
        assert!(config.workers >= 1, "a service needs at least one worker");
        assert!(config.queue_capacity >= 1, "queue capacity must be >= 1");
        assert_eq!(
            partition.num_nodes(),
            config.workers,
            "one worker per label shard"
        );
        let cache = (config.cache_capacity > 0).then(|| {
            ShardedLruCache::new(
                config.cache_capacity,
                config.cache_shards,
                config.cache_seed,
            )
        });
        let resilience = config
            .resilience
            .clone()
            .map(|cfg| Resilience::new(cfg, config.workers));
        let shared = Arc::new(Shared {
            epochs: Swappable::new(epoch),
            partition,
            cache,
            queues: (0..config.workers)
                .map(|_| ShardQueue::new(config.queue_capacity))
                .collect(),
            stats: StatsInner::default(),
            admissions: AtomicU64::new(0),
            resilience,
            degrade_tier: AtomicU8::new(0),
        });
        let (workers, supervisor) = if let Some(res) = &shared.resilience {
            {
                let mut registry = res.registry.lock().unwrap();
                for shard in 0..config.workers {
                    let slot = spawn_supervised(&shared, shard);
                    registry.push(slot);
                }
            }
            let sup_shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name("reach-serve-supervisor".into())
                .spawn(move || supervisor_loop(&sup_shared))
                .expect("spawn service supervisor");
            (Vec::new(), Some(handle))
        } else {
            let workers = (0..config.workers)
                .map(|k| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("reach-serve-{k}"))
                        .spawn(move || {
                            let ((), metrics) =
                                reach_obs::scoped_worker(|| worker_loop(&shared, k));
                            metrics
                        })
                        .expect("spawn service worker")
                })
                .collect();
            (workers, None)
        };
        QueryService {
            shared,
            workers,
            supervisor,
            config,
        }
    }

    /// The currently served index (the latest swapped-in generation).
    ///
    /// # Panics
    ///
    /// On a source-backed service ([`QueryService::start_with_source`]):
    /// there is no decoded [`ReachIndex`] to hand out. Use
    /// [`QueryService::source_tagged`] there.
    pub fn index(&self) -> Arc<ReachIndex> {
        match self.shared.epochs.load().value() {
            Epoch::Ram { index, .. } => Arc::clone(index),
            Epoch::Source(_) => {
                panic!("index() is unavailable on a source-backed service; use source_tagged()")
            }
        }
    }

    /// The generation currently being served: 0 at start, +1 per
    /// [`QueryService::swap_index`]. Batches already in flight may still
    /// be answering under an earlier generation.
    pub fn generation(&self) -> u64 {
        self.shared.epochs.generation()
    }

    /// The currently served index together with its generation, read from
    /// **one** epoch load — unlike calling [`QueryService::index`] and
    /// [`QueryService::generation`] separately, the pair cannot straddle a
    /// concurrent [`QueryService::swap_index`]. The wire server's witness
    /// path snapshots its epoch through this so every witness response is
    /// internally consistent and correctly generation-tagged.
    pub fn index_tagged(&self) -> (Arc<ReachIndex>, u64) {
        let epoch = self.shared.epochs.load();
        match epoch.value() {
            Epoch::Ram { index, .. } => (Arc::clone(index), epoch.generation()),
            Epoch::Source(_) => {
                panic!(
                    "index_tagged() is unavailable on a source-backed service; use source_tagged()"
                )
            }
        }
    }

    /// The currently served backing as an [`IndexSource`], with its
    /// generation, from **one** epoch load — the backing-agnostic
    /// counterpart of [`QueryService::index_tagged`], and the only
    /// consistent snapshot on a source-backed service. The wire server's
    /// witness path answers through this.
    pub fn source_tagged(&self) -> (Arc<dyn IndexSource>, u64) {
        let epoch = self.shared.epochs.load();
        (epoch.value().as_source(), epoch.generation())
    }

    /// Atomically replaces the served index with `index`, rebuilt into a
    /// fresh sharded label store under the service's partition, and
    /// returns the new generation number.
    ///
    /// The swap never drains and never blocks queries: batches whose
    /// compute already pinned the old epoch finish on it (the old index
    /// stays alive until its last batch drops it), batches still queued
    /// pin the new epoch at pickup, and every batch is answered entirely
    /// by one generation either way. The result cache needs no flush —
    /// the generation is part of its key.
    ///
    /// # Panics
    ///
    /// If the service runs an explicit [`Partition`] whose assignment
    /// table does not cover the new index's vertices (the id-modulo
    /// default covers any vertex count) — or if an active
    /// [`ServeFaultPlan`](crate::fault::ServeFaultPlan) injects a swap
    /// failure (chaos drivers should call
    /// [`QueryService::try_swap_index`] instead).
    pub fn swap_index(&self, index: Arc<ReachIndex>) -> u64 {
        self.try_swap_index(index)
            .expect("swap install failed by injected fault; use try_swap_index in chaos runs")
    }

    /// [`QueryService::swap_index`] with injected swap failures surfaced
    /// as [`ServeError::SwapFailed`] instead of a panic. A failed install
    /// is **atomic-nothing**: the failure coin is drawn before any build
    /// or install work, the generation does not advance, and the previous
    /// epoch keeps serving untouched.
    pub fn try_swap_index(&self, index: Arc<ReachIndex>) -> Result<u64, ServeError> {
        assert!(
            self.shared.partition.covers(index.num_vertices()),
            "partition does not cover the new index's vertices"
        );
        self.check_swap_fault()?;
        let t0 = Instant::now();
        let labels = ShardedLabels::build(&index, self.shared.partition.clone());
        Ok(self.install_epoch(Epoch::Ram { index, labels }, t0))
    }

    /// Atomically replaces the served backing with any [`IndexSource`]
    /// — e.g. hot-swapping to a freshly written compressed or
    /// mmap-backed v2 file. Same epoch semantics as
    /// [`QueryService::swap_index`]: no drain, batches pin one
    /// generation end-to-end, the cache keys on the generation.
    /// Ram- and source-backed epochs may alternate freely over a
    /// service's lifetime.
    ///
    /// # Panics
    ///
    /// Like [`QueryService::swap_index`], if an active fault plan
    /// injects a swap failure; chaos drivers use
    /// [`QueryService::try_swap_source`].
    pub fn swap_source(&self, source: Arc<dyn IndexSource>) -> u64 {
        self.try_swap_source(source)
            .expect("swap install failed by injected fault; use try_swap_source in chaos runs")
    }

    /// [`QueryService::swap_source`] with injected swap failures
    /// surfaced as [`ServeError::SwapFailed`]; atomic-nothing on
    /// failure, like [`QueryService::try_swap_index`].
    pub fn try_swap_source(&self, source: Arc<dyn IndexSource>) -> Result<u64, ServeError> {
        self.check_swap_fault()?;
        let t0 = Instant::now();
        Ok(self.install_epoch(Epoch::Source(source), t0))
    }

    /// Draws the chaos swap-failure coin before any install work.
    fn check_swap_fault(&self) -> Result<(), ServeError> {
        if let Some(res) = &self.shared.resilience {
            if res.draw_swap_failure() {
                self.shared
                    .stats
                    .swap_failures
                    .fetch_add(1, Ordering::Relaxed);
                reach_obs::counter_add("serve.fault.swap_failures", 1);
                return Err(ServeError::SwapFailed {
                    generation: self.generation(),
                });
            }
        }
        Ok(())
    }

    /// Installs a built epoch and books the swap; `t0` marks when the
    /// install work (label resharding included, for Ram) began.
    fn install_epoch(&self, epoch: Epoch, t0: Instant) -> u64 {
        let generation = self.shared.epochs.swap(epoch);
        self.shared.stats.swaps.fetch_add(1, Ordering::Relaxed);
        self.shared
            .stats
            .generation
            .store(generation, Ordering::Relaxed);
        reach_obs::counter_add("serve.swap.count", 1);
        reach_obs::record("serve.swap.install_ns", t0.elapsed().as_nanos() as u64);
        generation
    }

    /// Worker-thread (= shard) count.
    pub fn num_workers(&self) -> usize {
        self.config.workers
    }

    /// Answers one query, blocking until a worker serves it.
    pub fn reachable(&self, s: VertexId, t: VertexId) -> Result<bool, ServeError> {
        let answers = self.submit_batch(&[(s, t)], None)?;
        Ok(answers[0])
    }

    /// Submits a batch and blocks for its results (submission order).
    /// `deadline` overrides [`ServeConfig::default_deadline`].
    pub fn submit_batch(
        &self,
        queries: &[(VertexId, VertexId)],
        deadline: Option<Duration>,
    ) -> Result<Vec<bool>, ServeError> {
        self.submit_batch_async(queries, deadline)?.wait()
    }

    /// Non-blocking submission: validates, applies admission control, and
    /// routes each query to the shard owning its source. Errors returned
    /// here ([`ServeError::Overloaded`], [`ServeError::DeadlineExceeded`]
    /// for an already-expired deadline, [`ServeError::InvalidVertex`])
    /// reject the whole batch — no partial results are ever produced.
    pub fn submit_batch_async(
        &self,
        queries: &[(VertexId, VertexId)],
        deadline: Option<Duration>,
    ) -> Result<BatchTicket, ServeError> {
        self.submit_batch_opts(
            queries,
            BatchOptions {
                deadline,
                priority: Priority::Normal,
            },
        )
    }

    /// [`QueryService::submit_batch_async`] with full per-batch options
    /// (deadline **and** degradation-tier [`Priority`]). Every submission
    /// enters the [`ServeStats::submitted`] ledger here and leaves it
    /// through exactly one terminal bucket.
    pub fn submit_batch_opts(
        &self,
        queries: &[(VertexId, VertexId)],
        opts: BatchOptions,
    ) -> Result<BatchTicket, ServeError> {
        let shared = &*self.shared;
        shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        reach_obs::counter_add("serve.submitted", 1);
        let reject = |err: ServeError| -> Result<BatchTicket, ServeError> {
            shared.stats.count_rejection(&err);
            Err(err)
        };
        // Validate against the generation current at submission; a batch
        // pinned to a later (shrunken) epoch at pickup is re-checked by
        // the worker against its pinned generation.
        let epoch = shared.epochs.load();
        let n = epoch.value().num_vertices();
        for &(s, t) in queries {
            for v in [s, t] {
                if v as usize >= n {
                    return reject(ServeError::InvalidVertex {
                        vertex: v,
                        num_vertices: n,
                    });
                }
            }
        }
        let admitted_at = Instant::now();
        // A deadline too far out to represent is no deadline at all.
        let deadline = opts
            .deadline
            .or(self.config.default_deadline)
            .and_then(|d| admitted_at.checked_add(d));
        if let Some(dl) = deadline {
            if admitted_at >= dl {
                return reject(ServeError::DeadlineExceeded);
            }
        }
        // Degradation tiers: shed by priority before touching any queue.
        if let Some(cfg) = &self.config.degrade {
            let tier = shared.update_degrade_tier(cfg);
            if tier >= 1 && opts.priority == Priority::Low {
                return reject(ServeError::Degraded {
                    tier: DegradeTier::SheddingLow,
                });
            }
            if tier >= 2 && opts.priority == Priority::Normal {
                // Cache-only: answer without workers iff every query hits
                // the result cache at the current generation; shed
                // otherwise. Hits are real answers (the cache is keyed on
                // the generation), so the batch counts as answered.
                let generation = epoch.generation();
                let cached: Option<Vec<bool>> = shared.cache.as_ref().and_then(|c| {
                    queries
                        .iter()
                        .map(|&(s, t)| c.get(generation, s, t))
                        .collect()
                });
                let Some(answers) = cached else {
                    return reject(ServeError::Degraded {
                        tier: DegradeTier::CacheOnly,
                    });
                };
                let state = Arc::new(BatchState::new(queries.len(), 0));
                *state.results.lock().unwrap() = answers;
                let _ = state.pinned.set(epoch);
                let n = queries.len() as u64;
                shared.stats.cache_hits.fetch_add(n, Ordering::Relaxed);
                shared.stats.queries.fetch_add(n, Ordering::Relaxed);
                shared.stats.answered.fetch_add(1, Ordering::Relaxed);
                reach_obs::counter_add("serve.cache.hits", n);
                reach_obs::counter_add("serve.queries", n);
                reach_obs::counter_add("serve.degrade.cache_only", 1);
                reach_obs::counter_add("serve.answered", 1);
                return Ok(BatchTicket { state });
            }
        }

        // Route queries to the shard owning each source vertex — a pure
        // function of the fixed partition, so routing stays valid no
        // matter which epoch the batch later pins. Each shard gets its
        // slice of the batch plus the submission positions its answers
        // must land at.
        type RoutedShard = (Vec<(VertexId, VertexId)>, Vec<u32>);
        let shards = shared.partition.num_nodes();
        let mut routed: Vec<RoutedShard> = (0..shards).map(|_| (Vec::new(), Vec::new())).collect();
        for (i, &(s, t)) in queries.iter().enumerate() {
            let k = shared.partition.node_of(s);
            routed[k].0.push((s, t));
            routed[k].1.push(i as u32);
        }
        let sub_batches = routed.iter().filter(|(q, _)| !q.is_empty()).count();
        let state = Arc::new(BatchState::new(queries.len(), sub_batches));
        if sub_batches == 0 {
            // An empty batch is never picked up by a worker, so pin its
            // epoch and settle its accounting here: completion (and its
            // tag) must not dangle.
            let _ = state.pinned.set(epoch);
            shared.stats.batches.fetch_add(1, Ordering::Relaxed);
            shared.stats.answered.fetch_add(1, Ordering::Relaxed);
            reach_obs::counter_add("serve.batches", 1);
            reach_obs::counter_add("serve.answered", 1);
            return Ok(BatchTicket { state });
        }

        let seq = shared.admissions.fetch_add(1, Ordering::Relaxed);
        for (k, (queries, positions)) in routed.into_iter().enumerate() {
            if queries.is_empty() {
                continue;
            }
            let sub = Arc::new(SubBatch {
                state: Arc::clone(&state),
                deadline,
                admitted_at,
                queries,
                positions,
            });
            match shared.queues[k].try_push(sub) {
                Ok(_) => {}
                Err(kind) => {
                    let err = match kind {
                        PushError::Full => ServeError::Overloaded {
                            shard: k,
                            capacity: self.config.queue_capacity,
                        },
                        PushError::Closed => ServeError::ShuttingDown,
                    };
                    // Poison the batch so sub-batches already enqueued on
                    // other shards skip their compute, then reject it. The
                    // rejection is counted here, once; the poisoned
                    // sub-batches finish with `Ok` and count nothing.
                    state.fail(err.clone());
                    return reject(err);
                }
            }
        }
        // Admission succeeded in full — only now does the batch count as
        // admitted (a batch rejected mid-enqueue never reaches here).
        shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        reach_obs::counter_add("serve.batches", 1);
        reach_obs::record("serve.batch.size", queries.len() as u64);
        let depth: usize = shared.queues.iter().map(ShardQueue::len).sum();
        shared.stats.raise_max_depth(depth as u64);
        reach_obs::series_add("serve.queue.depth", seq as usize, depth as u64);
        Ok(BatchTicket { state })
    }

    /// Cumulative service counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats.snapshot()
    }

    /// Holds all workers before their next sub-batch. Queued work stays
    /// queued (and admission control keeps counting it), which lets tests
    /// and the bench harness stage deterministic overload and
    /// deadline-expiry scenarios.
    pub fn pause(&self) {
        for q in &self.shared.queues {
            q.set_paused(true);
        }
    }

    /// Releases a [`QueryService::pause`].
    pub fn resume(&self) {
        for q in &self.shared.queues {
            q.set_paused(false);
        }
    }

    /// Detection-to-respawn latency of every supervised recovery so far
    /// (crash respawns and stall replacements), in order of occurrence.
    /// Empty without [`ServeConfig::resilience`]. The chaos bench folds
    /// these into its recovery-time histogram.
    pub fn recovery_log(&self) -> Vec<Duration> {
        match &self.shared.resilience {
            Some(res) => res
                .recovery_ns
                .lock()
                .unwrap()
                .iter()
                .map(|&ns| Duration::from_nanos(ns))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Stops admission, drains every already-admitted batch (recovering
    /// workers that crash during the drain), joins the workers, folds
    /// their obs recordings into the calling thread, and returns the
    /// final stats snapshot.
    ///
    /// # Panics
    ///
    /// If the terminal accounting does not balance
    /// ([`ServeStats::is_balanced`]) — a batch was lost or counted twice.
    pub fn shutdown(mut self) -> ServeStats {
        self.stop();
        self.shared.stats.snapshot()
    }

    fn stop(&mut self) {
        for q in &self.shared.queues {
            q.close();
        }
        if let Some(res) = &self.shared.resilience {
            res.stop.store(true, Ordering::Release);
        }
        if let Some(handle) = self.supervisor.take() {
            handle.join().expect("service supervisor panicked");
        }
        if let Some(res) = &self.shared.resilience {
            for metrics in res.reaped_metrics.lock().unwrap().drain(..) {
                reach_obs::merge_worker(metrics);
            }
        }
        for handle in self.workers.drain(..) {
            let metrics = handle.join().expect("service worker panicked");
            reach_obs::merge_worker(metrics);
        }
        // The conservation check: with admission stopped and every worker
        // drained, every submission must sit in exactly one terminal
        // bucket. Skipped mid-panic so a failing test reports its own
        // assertion instead of aborting on a double panic.
        if !std::thread::panicking() {
            let s = self.shared.stats.snapshot();
            assert!(
                s.is_balanced(),
                "serve accounting out of balance at shutdown: submitted={} answered={} \
                 rejected={} shed={}",
                s.submitted,
                s.answered,
                s.rejected(),
                s.shed
            );
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One worker: drain the shard's queue until close, answering each
/// sub-batch shard-locally.
fn worker_loop(shared: &Shared, shard: usize) {
    while let Some(sub) = shared.queues[shard].pop() {
        serve_sub_batch(shared, shard, &sub);
    }
}

/// Spawns one supervised worker incarnation on `shard` and returns its
/// registry slot. The caller (startup or the supervisor) owns the
/// registry locking.
fn spawn_supervised(shared: &Arc<Shared>, shard: usize) -> WorkerSlot {
    let res = shared.resilience.as_ref().expect("supervised spawn");
    let incarnation = res.incarnations[shard].fetch_add(1, Ordering::Relaxed);
    let heartbeat = Arc::new(AtomicU64::new(res.now_ns()));
    let inflight: Arc<Mutex<Option<Arc<SubBatch>>>> = Arc::new(Mutex::new(None));
    let retired = Arc::new(AtomicBool::new(false));
    let handle = {
        let shared = Arc::clone(shared);
        let heartbeat = Arc::clone(&heartbeat);
        let inflight = Arc::clone(&inflight);
        let retired = Arc::clone(&retired);
        std::thread::Builder::new()
            .name(format!("reach-serve-{shard}.{incarnation}"))
            .spawn(move || {
                reach_obs::scoped_worker(|| {
                    supervised_worker_loop(
                        &shared,
                        shard,
                        incarnation,
                        &heartbeat,
                        &inflight,
                        &retired,
                    )
                })
            })
            .expect("spawn supervised service worker")
    };
    WorkerSlot {
        shard,
        heartbeat,
        inflight,
        retired,
        handle,
    }
}

/// The supervised worker body: poll with a bounded wait (refreshing the
/// heartbeat each round), claim the sub-batch into the in-flight slot
/// **before** drawing injected faults, and clear the slot only after the
/// sub-batch is fully finished. An injected crash therefore always leaves
/// the claimed sub-batch behind for the supervisor — and a served one is
/// never left claimable.
fn supervised_worker_loop(
    shared: &Shared,
    shard: usize,
    incarnation: u64,
    heartbeat: &AtomicU64,
    inflight: &Mutex<Option<Arc<SubBatch>>>,
    retired: &AtomicBool,
) -> WorkerExit {
    let res = shared.resilience.as_ref().expect("supervised worker");
    let mut faults = WorkerFaultStream::new(&res.plan, shard, incarnation);
    loop {
        if retired.load(Ordering::Acquire) {
            return WorkerExit::Drained;
        }
        heartbeat.store(res.now_ns(), Ordering::Release);
        let sub = match shared.queues[shard].pop_timeout(res.supervisor.check_interval) {
            Popped::Drained => return WorkerExit::Drained,
            Popped::TimedOut => continue,
            Popped::Item(sub) => sub,
        };
        // Claim first: from here until the slot is cleared, this
        // incarnation owns the sub-batch exclusively.
        *inflight.lock().unwrap() = Some(Arc::clone(&sub));
        heartbeat.store(res.now_ns(), Ordering::Release);
        // Fault injection happens at pickup, before any compute or
        // accounting for the claimed sub-batch.
        match faults.at_pickup() {
            Some(InjectedFault::Crash) if res.take_crash_budget() => {
                shared
                    .stats
                    .injected_crashes
                    .fetch_add(1, Ordering::Relaxed);
                reach_obs::counter_add("serve.fault.crashes", 1);
                // Die with the in-flight slot occupied: the supervisor
                // harvests and requeues it exactly once.
                return WorkerExit::Crashed;
            }
            Some(InjectedFault::Stall(d)) if res.take_stall_budget() => {
                shared.stats.injected_stalls.fetch_add(1, Ordering::Relaxed);
                reach_obs::counter_add("serve.fault.stalls", 1);
                // Sleep without refreshing the heartbeat — a stall longer
                // than the supervisor's threshold triggers a replacement.
                std::thread::sleep(d);
            }
            _ => {}
        }
        if let Some(delay) = res.plan.slow_delay_for(shard) {
            std::thread::sleep(delay);
        }
        heartbeat.store(res.now_ns(), Ordering::Release);
        serve_sub_batch(shared, shard, &sub);
        *inflight.lock().unwrap() = None;
    }
}

/// The supervisor: scan the worker registry every `check_interval`,
/// reap finished incarnations (harvesting and requeueing a crashed
/// worker's in-flight sub-batch, then respawning), supersede stalled
/// ones, and keep recovering until shutdown has fully drained.
fn supervisor_loop(shared: &Arc<Shared>) {
    let res = shared.resilience.as_ref().expect("supervisor");
    loop {
        std::thread::sleep(res.supervisor.check_interval);
        let stall_ns = res.supervisor.stall_timeout.as_nanos() as u64;
        let mut registry = res.registry.lock().unwrap();
        let mut k = 0;
        while k < registry.len() {
            if registry[k].handle.is_finished() {
                let slot = registry.swap_remove(k);
                let crashed = reap_worker(shared, res, slot);
                if let Some(shard) = crashed {
                    registry.push(spawn_supervised(shared, shard));
                }
                continue; // re-examine index k (swap_remove moved a slot in)
            }
            let slot = &registry[k];
            let busy =
                slot.inflight.lock().unwrap().is_some() || shared.queues[slot.shard].len() > 0;
            let stale = res
                .now_ns()
                .saturating_sub(slot.heartbeat.load(Ordering::Acquire));
            if busy && stale > stall_ns && !slot.retired.load(Ordering::Acquire) {
                // Stalled: supersede, never harvest — the stalled thread
                // is alive and still owns its claimed sub-batch. It will
                // finish it, see the retired flag, and exit Drained.
                slot.retired.store(true, Ordering::Release);
                let shard = slot.shard;
                record_recovery(shared, res, stale);
                reach_obs::counter_add("serve.respawn.stall", 1);
                registry.push(spawn_supervised(shared, shard));
            }
            k += 1;
        }
        let done = registry.is_empty();
        drop(registry);
        if done && res.stop.load(Ordering::Acquire) {
            return;
        }
    }
}

/// Joins a finished worker incarnation: banks its metrics, and for a
/// crash (injected, or a genuine panic) harvests its in-flight sub-batch
/// back onto the front of its shard queue. Returns the shard to respawn
/// on, or `None` for a clean drain.
fn reap_worker(shared: &Shared, res: &Resilience, slot: WorkerSlot) -> Option<usize> {
    let WorkerSlot {
        shard,
        heartbeat,
        inflight,
        handle,
        ..
    } = slot;
    let crashed = match handle.join() {
        Ok((exit, metrics)) => {
            res.reaped_metrics.lock().unwrap().push(metrics);
            exit == WorkerExit::Crashed
        }
        // A genuine worker panic is handled like an injected crash: the
        // batch state may be poisoned, but the service must not hang.
        Err(_) => true,
    };
    if !crashed {
        return None;
    }
    // The thread is provably dead (joined), so this take is the only
    // possible transfer of ownership: the sub-batch is requeued exactly
    // once, and the dead incarnation never finished it.
    if let Some(sub) = inflight.lock().unwrap().take() {
        shared.queues[shard].requeue_front(sub);
        shared.stats.requeued.fetch_add(1, Ordering::Relaxed);
        reach_obs::counter_add("serve.respawn.requeued", 1);
    }
    let detect_ns = res
        .now_ns()
        .saturating_sub(heartbeat.load(Ordering::Acquire));
    record_recovery(shared, res, detect_ns);
    reach_obs::counter_add("serve.respawn.crash", 1);
    Some(shard)
}

fn record_recovery(shared: &Shared, res: &Resilience, latency_ns: u64) {
    shared.stats.respawns.fetch_add(1, Ordering::Relaxed);
    res.recovery_ns.lock().unwrap().push(latency_ns);
    reach_obs::counter_add("serve.respawn.count", 1);
    reach_obs::record("serve.respawn.latency_ns", latency_ns);
}

fn serve_sub_batch(shared: &Shared, shard: usize, sub: &SubBatch) {
    // A sibling sub-batch already failed the batch (overload poisoning):
    // just account for this one, the ticket holder has its error.
    if sub.state.failed_already() {
        finish_sub_batch(shared, sub, Ok(()));
        return;
    }
    // Per-batch deadline, re-checked at pickup time: queue wait counts.
    if let Some(dl) = sub.deadline {
        if Instant::now() >= dl {
            finish_sub_batch(shared, sub, Err(ServeError::DeadlineExceeded));
            return;
        }
    }
    // Pin the batch's epoch: the first sub-batch picked up decides, every
    // sibling (on any worker, at any later time) reuses the same one.
    let epoch = sub
        .state
        .pinned
        .get_or_init(|| shared.epochs.load())
        .clone();
    let generation = epoch.generation();
    let backing = epoch.value();
    // Submission validated against the epoch current back then; the
    // pinned one may cover fewer vertices (a shrinking swap), so re-check
    // before touching label arrays.
    let pinned_n = backing.num_vertices();
    if let Some(v) = sub
        .queries
        .iter()
        .flat_map(|&(s, t)| [s, t])
        .find(|&v| v as usize >= pinned_n)
    {
        finish_sub_batch(
            shared,
            sub,
            Err(ServeError::InvalidVertex {
                vertex: v,
                num_vertices: pinned_n,
            }),
        );
        return;
    }
    let mut answers = Vec::with_capacity(sub.queries.len());
    let (mut hits, mut misses) = (0u64, 0u64);
    for &(s, t) in &sub.queries {
        let answer = match shared.cache.as_ref().and_then(|c| c.get(generation, s, t)) {
            Some(cached) => {
                hits += 1;
                cached
            }
            None => {
                let (computed, scanned) = backing.scan(shard, s, t);
                reach_obs::record("serve.query.scan_len", scanned as u64);
                if let Some(c) = &shared.cache {
                    misses += 1;
                    c.insert(generation, s, t, computed);
                }
                computed
            }
        };
        reach_obs::record(
            "serve.request.latency_ns",
            sub.admitted_at.elapsed().as_nanos() as u64,
        );
        answers.push(answer);
    }
    reach_obs::series_add(
        "serve.swap.queries",
        generation as usize,
        answers.len() as u64,
    );
    shared
        .stats
        .queries
        .fetch_add(answers.len() as u64, Ordering::Relaxed);
    reach_obs::counter_add("serve.queries", answers.len() as u64);
    if hits > 0 {
        shared.stats.cache_hits.fetch_add(hits, Ordering::Relaxed);
        reach_obs::counter_add("serve.cache.hits", hits);
    }
    if misses > 0 {
        shared
            .stats
            .cache_misses
            .fetch_add(misses, Ordering::Relaxed);
        reach_obs::counter_add("serve.cache.misses", misses);
    }
    {
        let mut results = sub.state.results.lock().unwrap();
        for (answer, &pos) in answers.iter().zip(&sub.positions) {
            results[pos as usize] = *answer;
        }
    }
    finish_sub_batch(shared, sub, Ok(()));
}

/// Finishes one sub-batch and settles whatever terminal accounting that
/// implies for its batch: the first failure counts the batch rejected,
/// the successful completion counts it answered — each exactly once, on
/// whichever worker happens to trigger it.
fn finish_sub_batch(shared: &Shared, sub: &SubBatch, outcome: Result<(), ServeError>) {
    let fin = sub.state.finish_sub(outcome);
    if let Some(err) = fin.first_failure {
        shared.stats.count_rejection(&err);
    }
    if fin.completed {
        shared.stats.answered.fetch_add(1, Ordering::Relaxed);
        reach_obs::counter_add("serve.answered", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::{fixtures, TransitiveClosure};

    /// A trivially valid cover: `L_out(s) = DES(s)`, `L_in(t) = {t}`.
    fn closure_index(g: &reach_graph::DiGraph) -> Arc<ReachIndex> {
        let n = g.num_vertices();
        let out: Vec<Vec<VertexId>> = (0..n as VertexId)
            .map(|v| reach_graph::traverse::descendants(g, v))
            .collect();
        let ins: Vec<Vec<VertexId>> = (0..n as VertexId).map(|v| vec![v]).collect();
        Arc::new(ReachIndex::from_labels(ins, out))
    }

    #[test]
    fn single_queries_match_direct_query_at_every_worker_count() {
        let g = fixtures::paper_graph();
        let idx = closure_index(&g);
        let tc = TransitiveClosure::compute(&g);
        for workers in [1, 2, 4, 8] {
            let svc = QueryService::start(Arc::clone(&idx), ServeConfig::with_workers(workers));
            for s in g.vertices() {
                for t in g.vertices() {
                    assert_eq!(svc.reachable(s, t).unwrap(), tc.reaches(s, t), "q({s},{t})");
                }
            }
            let stats = svc.shutdown();
            assert_eq!(stats.queries, 11 * 11);
            assert_eq!(stats.batches, 11 * 11);
        }
    }

    #[test]
    fn batch_results_come_back_in_submission_order() {
        let g = fixtures::paper_graph();
        let idx = closure_index(&g);
        let svc = QueryService::start(Arc::clone(&idx), ServeConfig::with_workers(4));
        // Sources deliberately interleave shards (4 workers, id-modulo).
        let batch: Vec<(VertexId, VertexId)> =
            (0..11).flat_map(|s| (0..11).map(move |t| (s, t))).collect();
        let got = svc.submit_batch(&batch, None).unwrap();
        let expect: Vec<bool> = batch.iter().map(|&(s, t)| idx.query(s, t)).collect();
        assert_eq!(got, expect);
        svc.shutdown();
    }

    #[test]
    fn empty_batches_complete_immediately() {
        let idx = closure_index(&fixtures::diamond());
        let svc = QueryService::start(idx, ServeConfig::with_workers(2));
        assert_eq!(svc.submit_batch(&[], None).unwrap(), Vec::<bool>::new());
    }

    #[test]
    fn invalid_vertices_are_rejected_not_panicked() {
        let idx = closure_index(&fixtures::diamond()); // 4 vertices
        let svc = QueryService::start(idx, ServeConfig::with_workers(2));
        let err = svc.submit_batch(&[(0, 9)], None).unwrap_err();
        assert_eq!(
            err,
            ServeError::InvalidVertex {
                vertex: 9,
                num_vertices: 4
            }
        );
        let err = svc.reachable(7, 0).unwrap_err();
        assert_eq!(
            err,
            ServeError::InvalidVertex {
                vertex: 7,
                num_vertices: 4
            }
        );
    }

    #[test]
    fn expired_deadline_is_rejected_at_admission() {
        let idx = closure_index(&fixtures::diamond());
        let svc = QueryService::start(idx, ServeConfig::with_workers(1));
        let err = svc
            .submit_batch(&[(0, 3)], Some(Duration::ZERO))
            .unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded);
        assert_eq!(svc.stats().rejected_deadline, 1);
        assert_eq!(svc.stats().batches, 0, "rejected before admission");
    }

    #[test]
    fn deadline_expiring_in_queue_is_detected_by_the_worker() {
        let idx = closure_index(&fixtures::diamond());
        let svc = QueryService::start(idx, ServeConfig::with_workers(1));
        svc.pause();
        let ticket = svc
            .submit_batch_async(&[(0, 3)], Some(Duration::from_millis(1)))
            .unwrap();
        std::thread::sleep(Duration::from_millis(10));
        svc.resume();
        assert_eq!(ticket.wait().unwrap_err(), ServeError::DeadlineExceeded);
        assert_eq!(svc.stats().rejected_deadline, 1);
    }

    #[test]
    fn overload_is_typed_and_queued_work_still_completes() {
        let idx = closure_index(&fixtures::diamond());
        let mut cfg = ServeConfig::with_workers(1);
        cfg.queue_capacity = 2;
        let svc = QueryService::start(Arc::clone(&idx), cfg);
        svc.pause();
        let t1 = svc.submit_batch_async(&[(0, 3)], None).unwrap();
        let t2 = svc.submit_batch_async(&[(1, 2)], None).unwrap();
        let err = svc.submit_batch_async(&[(2, 3)], None).unwrap_err();
        assert_eq!(
            err,
            ServeError::Overloaded {
                shard: 0,
                capacity: 2
            }
        );
        assert_eq!(svc.stats().rejected_overload, 1);
        svc.resume();
        assert_eq!(t1.wait().unwrap(), vec![idx.query(0, 3)]);
        assert_eq!(t2.wait().unwrap(), vec![idx.query(1, 2)]);
        let stats = svc.shutdown();
        assert_eq!(stats.queries, 2, "rejected batch never computed");
        assert_eq!(stats.max_queue_depth, 2);
    }

    #[test]
    fn overload_poisons_sub_batches_already_enqueued_elsewhere() {
        // 2 workers; shard 1's queue is saturated first, then a batch
        // spanning both shards is submitted: its shard-0 slice enqueues,
        // its shard-1 slice is rejected, and the whole batch must fail
        // without computing anything.
        let idx = closure_index(&fixtures::diamond());
        let mut cfg = ServeConfig::with_workers(2);
        cfg.queue_capacity = 1;
        let svc = QueryService::start(Arc::clone(&idx), cfg);
        svc.pause();
        let t1 = svc.submit_batch_async(&[(1, 3)], None).unwrap(); // shard 1
        let err = svc.submit_batch_async(&[(0, 3), (1, 2)], None).unwrap_err();
        assert_eq!(
            err,
            ServeError::Overloaded {
                shard: 1,
                capacity: 1
            }
        );
        svc.resume();
        assert_eq!(t1.wait().unwrap(), vec![idx.query(1, 3)]);
        let stats = svc.shutdown();
        assert_eq!(stats.queries, 1, "poisoned sub-batch skipped its compute");
    }

    #[test]
    fn cache_hits_accumulate_without_changing_answers() {
        let g = fixtures::paper_graph();
        let idx = closure_index(&g);
        let svc = QueryService::start(Arc::clone(&idx), ServeConfig::with_workers(2));
        let batch: Vec<(VertexId, VertexId)> = vec![(1, 6), (8, 0), (1, 6), (1, 6)];
        let expect: Vec<bool> = batch.iter().map(|&(s, t)| idx.query(s, t)).collect();
        for _ in 0..3 {
            assert_eq!(svc.submit_batch(&batch, None).unwrap(), expect);
        }
        let stats = svc.shutdown();
        assert_eq!(stats.cache_hits + stats.cache_misses, 12);
        assert_eq!(stats.cache_misses, 2, "only (1,6) and (8,0) ever scan");
        assert!(stats.cache_hit_rate() > 0.8);
    }

    #[test]
    fn no_cache_config_never_probes() {
        let idx = closure_index(&fixtures::diamond());
        let svc = QueryService::start(idx, ServeConfig::with_workers(1).no_cache());
        for _ in 0..4 {
            svc.reachable(0, 3).unwrap();
        }
        let stats = svc.shutdown();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 0);
        assert_eq!(stats.queries, 4);
    }

    #[test]
    fn shutdown_drains_admitted_batches() {
        let idx = closure_index(&fixtures::diamond());
        let svc = QueryService::start(Arc::clone(&idx), ServeConfig::with_workers(2));
        svc.pause();
        let tickets: Vec<BatchTicket> = (0..8)
            .map(|i| {
                svc.submit_batch_async(&[(i % 4, (i + 1) % 4)], None)
                    .unwrap()
            })
            .collect();
        // Shutdown with work still queued and workers paused: close
        // overrides pause, every ticket resolves.
        let results: Vec<_> = {
            let stats = svc.shutdown();
            assert_eq!(stats.queries, 8);
            tickets.into_iter().map(|t| t.wait().unwrap()).collect()
        };
        for (i, r) in results.iter().enumerate() {
            let (s, t) = ((i as u32) % 4, ((i + 1) as u32) % 4);
            assert_eq!(r, &vec![idx.query(s, t)]);
        }
    }

    #[test]
    fn stats_balance_in_every_terminal_scenario() {
        let idx = closure_index(&fixtures::diamond());
        let mut cfg = ServeConfig::with_workers(2);
        cfg.queue_capacity = 1;
        let svc = QueryService::start(Arc::clone(&idx), cfg);
        svc.submit_batch(&[(0, 3)], None).unwrap(); // answered
        svc.submit_batch(&[], None).unwrap(); // empty, answered
        let _ = svc.submit_batch(&[(0, 99)], None).unwrap_err(); // invalid
        let _ = svc
            .submit_batch(&[(0, 3)], Some(Duration::ZERO))
            .unwrap_err(); // deadline at admission
        svc.pause();
        let t = svc.submit_batch_async(&[(1, 3)], None).unwrap();
        let _ = svc.submit_batch_async(&[(1, 2)], None).unwrap_err(); // overload
        svc.resume();
        t.wait().unwrap();
        let stats = svc.shutdown(); // shutdown also asserts the balance
        assert!(stats.is_balanced());
        assert_eq!(stats.submitted, 6);
        assert_eq!(stats.answered, 3);
        assert_eq!(stats.rejected_invalid, 1);
        assert_eq!(stats.rejected_deadline, 1);
        assert_eq!(stats.rejected_overload, 1);
    }

    #[test]
    fn deadline_in_queue_is_counted_once_across_shards() {
        // A batch spanning 4 shards expires in queue: every shard's
        // sub-batch sees the stale deadline, but the batch must count as
        // exactly one deadline rejection.
        let g = fixtures::paper_graph();
        let idx = closure_index(&g);
        let svc = QueryService::start(idx, ServeConfig::with_workers(4));
        svc.pause();
        let ticket = svc
            .submit_batch_async(
                &[(0, 1), (1, 2), (2, 3), (3, 4)],
                Some(Duration::from_millis(1)),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(10));
        svc.resume();
        assert_eq!(ticket.wait().unwrap_err(), ServeError::DeadlineExceeded);
        let stats = svc.shutdown();
        assert_eq!(stats.rejected_deadline, 1, "one batch, one rejection");
        assert!(stats.is_balanced());
    }

    #[test]
    fn wait_timeout_bounds_the_wait_not_the_batch() {
        let idx = closure_index(&fixtures::diamond());
        let svc = QueryService::start(Arc::clone(&idx), ServeConfig::with_workers(1));
        svc.pause();
        let ticket = svc.submit_batch_async(&[(0, 3)], None).unwrap();
        assert!(!ticket.try_complete());
        let err = ticket.wait_timeout(Duration::from_millis(5)).unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded);
        svc.resume();
        // The batch itself was not cancelled: it still completes and
        // counts as answered, so shutdown's balance assert passes.
        let stats = svc.shutdown();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.answered, 1);
        assert!(stats.is_balanced());
    }

    #[test]
    fn wait_timeout_returns_results_when_in_time() {
        let idx = closure_index(&fixtures::diamond());
        let svc = QueryService::start(Arc::clone(&idx), ServeConfig::with_workers(2));
        let ticket = svc.submit_batch_async(&[(0, 3), (1, 2)], None).unwrap();
        let (answers, generation) = ticket.wait_tagged_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(answers, vec![idx.query(0, 3), idx.query(1, 2)]);
        assert_eq!(generation, 0);
        svc.shutdown();
    }

    fn supervised_config(workers: usize, plan: crate::fault::ServeFaultPlan) -> ServeConfig {
        use crate::supervisor::SupervisorConfig;
        ServeConfig::with_workers(workers).with_resilience(ResilienceConfig {
            fault_plan: plan,
            supervisor: SupervisorConfig {
                check_interval: Duration::from_millis(1),
                stall_timeout: Duration::from_millis(10),
            },
        })
    }

    #[test]
    fn supervised_workers_with_inert_plan_behave_identically() {
        let g = fixtures::paper_graph();
        let idx = closure_index(&g);
        let svc = QueryService::start(
            Arc::clone(&idx),
            supervised_config(2, crate::fault::ServeFaultPlan::new(0)),
        );
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(svc.reachable(s, t).unwrap(), idx.query(s, t));
            }
        }
        let stats = svc.shutdown();
        assert_eq!(stats.queries, 121);
        assert_eq!(stats.respawns, 0, "no faults, no respawns");
        assert_eq!(stats.requeued, 0);
        assert!(stats.is_balanced());
    }

    #[test]
    fn injected_crashes_are_recovered_without_losing_answers() {
        let g = fixtures::paper_graph();
        let idx = closure_index(&g);
        let plan = crate::fault::ServeFaultPlan::new(11).with_worker_crashes(0.5, 3);
        let svc = QueryService::start(Arc::clone(&idx), supervised_config(2, plan));
        let batch: Vec<(VertexId, VertexId)> =
            (0..11).flat_map(|s| (0..11).map(move |t| (s, t))).collect();
        let expect: Vec<bool> = batch.iter().map(|&(s, t)| idx.query(s, t)).collect();
        for _ in 0..16 {
            assert_eq!(svc.submit_batch(&batch, None).unwrap(), expect);
        }
        let recoveries = svc.recovery_log();
        let stats = svc.shutdown();
        // The exact crash count depends on which incarnations served how
        // many pickups (scheduling), but the budget caps it and with 32+
        // pickups at p=0.5 at least one crash fires on any interleaving.
        assert!((1..=3).contains(&stats.injected_crashes));
        assert!(stats.respawns >= stats.injected_crashes);
        assert_eq!(
            stats.requeued, stats.injected_crashes,
            "every crash left exactly one sub-batch to requeue"
        );
        assert_eq!(
            recoveries.len() as u64,
            stats.respawns,
            "every respawn logged a recovery latency"
        );
        assert!(stats.is_balanced());
    }

    #[test]
    fn stalled_worker_is_superseded_and_its_batch_answered_once() {
        let idx = closure_index(&fixtures::diamond());
        let plan = crate::fault::ServeFaultPlan::new(5).with_worker_stalls(
            1.0,
            Duration::from_millis(40),
            1,
        );
        let svc = QueryService::start(Arc::clone(&idx), supervised_config(1, plan));
        let expect = idx.query(0, 3);
        for _ in 0..4 {
            assert_eq!(svc.reachable(0, 3).unwrap(), expect);
        }
        let recoveries = svc.recovery_log();
        let stats = svc.shutdown();
        assert_eq!(stats.injected_stalls, 1);
        assert!(stats.respawns >= 1, "the stall outlived the threshold");
        assert_eq!(recoveries.len() as u64, stats.respawns);
        assert!(
            recoveries.iter().all(|d| *d >= Duration::from_millis(10)),
            "stall detection latency is at least the threshold"
        );
        assert!(stats.is_balanced());
    }

    #[test]
    fn slow_shards_add_latency_without_triggering_recovery() {
        let idx = closure_index(&fixtures::diamond());
        let plan =
            crate::fault::ServeFaultPlan::new(3).with_slow_shard(0, Duration::from_micros(500));
        let svc = QueryService::start(Arc::clone(&idx), supervised_config(2, plan));
        for _ in 0..8 {
            svc.reachable(0, 3).unwrap();
        }
        let stats = svc.shutdown();
        assert_eq!(stats.respawns, 0, "slow is not stalled");
        assert!(stats.is_balanced());
    }

    #[test]
    fn injected_swap_failures_are_atomic_nothing() {
        let idx = closure_index(&fixtures::diamond());
        let plan = crate::fault::ServeFaultPlan::new(2).with_swap_failures(1.0);
        let svc = QueryService::start(Arc::clone(&idx), supervised_config(1, plan));
        let err = svc.try_swap_index(Arc::clone(&idx)).unwrap_err();
        assert_eq!(err, ServeError::SwapFailed { generation: 0 });
        assert_eq!(svc.generation(), 0, "failed install changed nothing");
        assert_eq!(svc.reachable(0, 3).unwrap(), idx.query(0, 3));
        let stats = svc.shutdown();
        assert_eq!(stats.swap_failures, 1);
        assert_eq!(stats.swaps, 0);
        assert!(stats.is_balanced());
    }

    fn degrade_setup() -> (Arc<ReachIndex>, QueryService) {
        // 1 worker × capacity 4: pressure 0.25 per queued sub-batch.
        let idx = closure_index(&fixtures::diamond());
        let mut cfg = ServeConfig::with_workers(1).with_degrade(DegradeConfig {
            shed_low_at: 0.5,
            cache_only_at: 0.75,
            resume_margin: 0.25,
        });
        cfg.queue_capacity = 4;
        let svc = QueryService::start(Arc::clone(&idx), cfg);
        (idx, svc)
    }

    #[test]
    fn degrade_tier1_sheds_low_priority_only() {
        let (idx, svc) = degrade_setup();
        svc.pause();
        let tickets: Vec<_> = (0..2)
            .map(|_| svc.submit_batch_async(&[(0, 3)], None).unwrap())
            .collect();
        // Pressure now 0.5 ⇒ tier 1: Low is shed, Normal still admitted.
        let err = svc
            .submit_batch_opts(&[(1, 2)], BatchOptions::priority(Priority::Low))
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::Degraded {
                tier: crate::DegradeTier::SheddingLow
            }
        );
        let t = svc
            .submit_batch_opts(&[(1, 2)], BatchOptions::default())
            .unwrap();
        svc.resume();
        for ticket in tickets {
            assert_eq!(ticket.wait().unwrap(), vec![idx.query(0, 3)]);
        }
        assert_eq!(t.wait().unwrap(), vec![idx.query(1, 2)]);
        let stats = svc.shutdown();
        assert_eq!(stats.shed, 1);
        assert!(stats.is_balanced());
    }

    #[test]
    fn degrade_tier2_serves_normal_work_cache_only() {
        let (idx, svc) = degrade_setup();
        // Warm the cache at generation 0.
        assert_eq!(svc.reachable(0, 3).unwrap(), idx.query(0, 3));
        svc.pause();
        let tickets: Vec<_> = (0..3)
            .map(|_| svc.submit_batch_async(&[(1, 2)], None).unwrap())
            .collect();
        // Pressure 0.75 ⇒ tier 2: Normal work answers from cache or sheds.
        let (answers, generation) = svc
            .submit_batch_opts(&[(0, 3)], BatchOptions::default())
            .unwrap()
            .wait_tagged()
            .unwrap();
        assert_eq!(answers, vec![idx.query(0, 3)], "cache-only hit");
        assert_eq!(generation, 0);
        let err = svc
            .submit_batch_opts(&[(2, 3)], BatchOptions::default())
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::Degraded {
                tier: crate::DegradeTier::CacheOnly
            }
        );
        // High priority still reaches the workers.
        let t = svc
            .submit_batch_opts(&[(2, 3)], BatchOptions::priority(Priority::High))
            .unwrap();
        svc.resume();
        for ticket in tickets {
            ticket.wait().unwrap();
        }
        assert_eq!(t.wait().unwrap(), vec![idx.query(2, 3)]);
        let stats = svc.shutdown();
        assert_eq!(stats.shed, 1);
        assert!(stats.is_balanced());
    }

    #[test]
    fn resume_margin_controls_tier_disengagement() {
        // Hysteresis: tier 1 disengages only once pressure falls below
        // `shed_low_at − resume_margin`. With margin == watermark that
        // threshold is 0.0 (pressure is never *below* it), so the tier is
        // sticky even on a fully drained queue; with a smaller margin the
        // drained queue disengages it.
        let idx = closure_index(&fixtures::diamond());
        for (margin, still_shedding_when_drained) in [(0.5, true), (0.25, false)] {
            let mut cfg = ServeConfig::with_workers(1).with_degrade(DegradeConfig {
                shed_low_at: 0.5,
                cache_only_at: 2.0, // out of reach; tier 2 not under test
                resume_margin: margin,
            });
            cfg.queue_capacity = 4;
            let svc = QueryService::start(Arc::clone(&idx), cfg);
            let low = BatchOptions::priority(Priority::Low);
            svc.pause();
            let t1 = svc.submit_batch_async(&[(0, 3)], None).unwrap();
            let t2 = svc.submit_batch_async(&[(0, 3)], None).unwrap();
            assert!(
                svc.submit_batch_opts(&[(1, 2)], low).is_err(),
                "tier 1 engages at pressure 0.5"
            );
            svc.resume();
            t1.wait().unwrap();
            t2.wait().unwrap();
            // Both sub-batches were picked up (their waits returned), so
            // the queue is drained: pressure 0.
            let shed = svc.submit_batch_opts(&[(1, 2)], low).is_err();
            assert_eq!(shed, still_shedding_when_drained, "margin {margin}");
            let stats = svc.shutdown();
            assert!(stats.is_balanced());
        }
    }

    #[test]
    fn explicit_partition_routes_by_ownership() {
        let g = fixtures::paper_graph();
        let idx = closure_index(&g);
        let assignment: Vec<u16> = (0..11).map(|v| (v % 3) as u16).collect();
        let part = Partition::explicit(3, assignment);
        let mut cfg = ServeConfig::with_workers(3);
        cfg.cache_capacity = 0;
        let svc = QueryService::start_with_partition(Arc::clone(&idx), part, cfg);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(svc.reachable(s, t).unwrap(), idx.query(s, t));
            }
        }
        svc.shutdown();
    }
}
