//! Client-side retry: seeded jittered exponential backoff under a
//! deadline **budget**.
//!
//! A [`RetryPolicy`] retries transient rejections — [`ServeError::Overloaded`],
//! [`ServeError::Degraded`], and per-attempt [`ServeError::DeadlineExceeded`] —
//! while a single budget covers the *whole call*: every attempt's deadline
//! and every backoff sleep are carved out of the time remaining, so the
//! caller observes exactly one timeout behavior
//! ([`ServeError::DeadlineExceeded`] once the budget is spent) no matter
//! how many attempts ran. Permanent errors ([`ServeError::InvalidVertex`],
//! [`ServeError::ShuttingDown`], [`ServeError::SwapFailed`]) surface
//! immediately.
//!
//! Backoff is deterministic: the sleep before retry `k` is a pure
//! function of `(seed, k)` ([`RetryPolicy::backoff`]), drawn through the
//! same [`FaultRng`] streams the fault plans use. Two clients with the
//! same policy produce the same schedule — the property
//! `tests/retry_backoff.rs` pins — while different seeds decorrelate, so
//! a fleet of retrying clients does not stampede in lockstep.

use std::time::{Duration, Instant};

use reach_graph::VertexId;
use reach_vcs::FaultRng;

use crate::service::BatchOptions;
use crate::{QueryService, ServeError};

/// Seeded jittered-exponential-backoff retry policy. See the module docs
/// for the budget semantics.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Seed of the jitter stream; equal seeds give equal schedules.
    pub seed: u64,
    /// Total attempts (first try included). Must be ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry after that.
    pub base: Duration,
    /// Ceiling on any single backoff (pre-jitter).
    pub cap: Duration,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a seeded
    /// factor drawn uniformly from `[1 - jitter, 1]`. `0` disables jitter.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            seed: 0,
            max_attempts: 4,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(100),
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// The default policy with the given jitter seed.
    pub fn new(seed: u64) -> Self {
        RetryPolicy {
            seed,
            ..RetryPolicy::default()
        }
    }

    /// Sets the attempt limit (first try included).
    pub fn with_attempts(mut self, max_attempts: u32) -> Self {
        assert!(max_attempts >= 1, "need at least one attempt");
        self.max_attempts = max_attempts;
        self
    }

    /// Sets the exponential base and cap.
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.base = base;
        self.cap = cap;
        self
    }

    /// Sets the jitter fraction.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        assert!((0.0..=1.0).contains(&jitter), "jitter fraction in [0, 1]");
        self.jitter = jitter;
        self
    }

    /// The backoff slept before retry `retry` (1-based: `1` follows the
    /// first failed attempt). A pure function of `(seed, retry)`: the
    /// exponential `base · 2^(retry-1)` is capped at `cap`, then scaled
    /// by a jitter factor drawn from the retry's own decorrelated
    /// sub-stream.
    pub fn backoff(&self, retry: u32) -> Duration {
        assert!(retry >= 1, "retries are 1-based");
        let exp = self
            .base
            .checked_mul(1u32.checked_shl(retry - 1).unwrap_or(u32::MAX))
            .unwrap_or(self.cap)
            .min(self.cap);
        if self.jitter == 0.0 {
            return exp;
        }
        let mut rng = FaultRng::stream(self.seed, retry as u64);
        let factor = 1.0 - self.jitter * rng.unit_f64();
        exp.mul_f64(factor)
    }

    /// The full backoff schedule of a call making `max_attempts` attempts
    /// (so `max_attempts - 1` sleeps). Purely informational — handy for
    /// asserting determinism and for capacity math.
    pub fn schedule(&self) -> Vec<Duration> {
        (1..self.max_attempts).map(|k| self.backoff(k)).collect()
    }

    /// Submits `queries` with retries under `budget`; answers come back
    /// in submission order. See [`RetryPolicy::submit_with_retries_tagged`].
    pub fn submit_with_retries(
        &self,
        svc: &QueryService,
        queries: &[(VertexId, VertexId)],
        opts: BatchOptions,
        budget: Duration,
    ) -> Result<Vec<bool>, ServeError> {
        self.submit_with_retries_tagged(svc, queries, opts, budget)
            .map(|(answers, _)| answers)
    }

    /// Submits `queries` with retries under `budget`, also reporting the
    /// generation that answered (as [`BatchTicket::wait_tagged`]).
    ///
    /// Each attempt's batch deadline is the smaller of `opts.deadline`
    /// and the budget remaining, every backoff sleep is likewise bounded
    /// by the remainder, and an exhausted budget returns
    /// [`ServeError::DeadlineExceeded`] — the only timeout the caller can
    /// see. Transient rejections (overload, degradation, a per-attempt
    /// deadline) retry until the attempt limit, whose last error is
    /// returned verbatim.
    ///
    /// [`BatchTicket::wait_tagged`]: crate::BatchTicket::wait_tagged
    pub fn submit_with_retries_tagged(
        &self,
        svc: &QueryService,
        queries: &[(VertexId, VertexId)],
        opts: BatchOptions,
        budget: Duration,
    ) -> Result<(Vec<bool>, u64), ServeError> {
        assert!(self.max_attempts >= 1, "need at least one attempt");
        let give_up = Instant::now() + budget;
        let mut retries = 0u32;
        loop {
            let now = Instant::now();
            if now >= give_up {
                reach_obs::counter_add("serve.retry.budget_exhausted", 1);
                return Err(ServeError::DeadlineExceeded);
            }
            let remaining = give_up - now;
            reach_obs::counter_add("serve.retry.attempts", 1);
            let mut eff = opts;
            eff.deadline = Some(match opts.deadline {
                Some(d) => d.min(remaining),
                None => remaining,
            });
            let outcome = svc
                .submit_batch_opts(queries, eff)
                .and_then(|ticket| ticket.wait_tagged_timeout(remaining));
            let err = match outcome {
                Ok(tagged) => return Ok(tagged),
                Err(e) => e,
            };
            if !retryable(&err) || retries + 1 >= self.max_attempts {
                if retryable(&err) {
                    reach_obs::counter_add("serve.retry.exhausted", 1);
                }
                return Err(err);
            }
            retries += 1;
            let pause = self.backoff(retries).min(give_up - Instant::now());
            reach_obs::counter_add("serve.retry.retries", 1);
            reach_obs::record("serve.retry.backoff_ns", pause.as_nanos() as u64);
            std::thread::sleep(pause);
        }
    }
}

/// Whether an error is transient (worth retrying). Deadline errors are
/// transient *per attempt*: the caller's `opts.deadline` may be far
/// tighter than the budget, so a later attempt can still succeed.
fn retryable(err: &ServeError) -> bool {
    matches!(
        err,
        ServeError::Overloaded { .. } | ServeError::Degraded { .. } | ServeError::DeadlineExceeded
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_seeded_capped_and_exponential() {
        let p = RetryPolicy::new(7)
            .with_backoff(Duration::from_millis(2), Duration::from_millis(12))
            .with_jitter(0.0);
        assert_eq!(p.backoff(1), Duration::from_millis(2));
        assert_eq!(p.backoff(2), Duration::from_millis(4));
        assert_eq!(p.backoff(3), Duration::from_millis(8));
        assert_eq!(p.backoff(4), Duration::from_millis(12), "capped");
        assert_eq!(
            p.backoff(40),
            Duration::from_millis(12),
            "shift overflow capped"
        );

        let jittered = RetryPolicy::new(7).with_jitter(0.5);
        assert_eq!(
            jittered.schedule(),
            RetryPolicy::new(7).with_jitter(0.5).schedule(),
            "same seed ⇒ same schedule"
        );
        assert_ne!(
            jittered.schedule(),
            RetryPolicy::new(8).with_jitter(0.5).schedule(),
            "different seeds decorrelate"
        );
        for (k, d) in jittered.schedule().into_iter().enumerate() {
            let exp = jittered.base * (1 << k as u32);
            assert!(
                d <= exp && d >= exp.mul_f64(0.5 - 1e-9),
                "jitter in [0.5, 1]·exp"
            );
        }
    }

    #[test]
    fn transience_classification() {
        assert!(retryable(&ServeError::Overloaded {
            shard: 0,
            capacity: 1
        }));
        assert!(retryable(&ServeError::DeadlineExceeded));
        assert!(retryable(&ServeError::Degraded {
            tier: crate::DegradeTier::SheddingLow
        }));
        assert!(!retryable(&ServeError::ShuttingDown));
        assert!(!retryable(&ServeError::InvalidVertex {
            vertex: 1,
            num_vertices: 1
        }));
        assert!(!retryable(&ServeError::SwapFailed { generation: 0 }));
    }
}
