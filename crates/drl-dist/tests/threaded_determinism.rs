//! Index-level corollary of the engine's thread-count invariance: DRL and
//! DRLb builds produce **bit-identical `ReachIndex` output and identical
//! communication stats at every worker-thread count**, with and without
//! injected faults. Wall-clock is the only thing threads may change.

use proptest::prelude::*;
use reach_core::BatchParams;
use reach_graph::{fixtures, gen, OrderAssignment, OrderKind};
use reach_vcs::{FaultPlan, NetworkModel};

/// A crash-plus-noise schedule derived deterministically from `seed`.
fn schedule(seed: u64, nodes: usize) -> FaultPlan {
    FaultPlan::new(seed)
        .with_crash((seed as usize) % nodes, 1 + (seed as usize / nodes) % 3)
        .with_message_drops(0.2 + 0.2 * ((seed % 3) as f64 / 3.0))
        .with_message_delays(0.15, 1 + (seed % 4) as usize)
}

#[test]
fn drl_build_is_identical_at_every_thread_count() {
    let datasets = [
        ("paper", fixtures::paper_graph()),
        ("gnm-sparse", gen::gnm(90, 280, 4)),
        ("dag-dense", gen::random_dag(70, 420, 9)),
    ];
    for (name, g) in &datasets {
        let ord = OrderAssignment::new(g, OrderKind::DegreeProduct);
        let (baseline, base_stats) = reach_drl_dist::drl::run_configured(
            g,
            &ord,
            4,
            NetworkModel::default(),
            true,
            None,
            Some(1),
        )
        .unwrap();
        for threads in [2usize, 4, 8] {
            let (idx, stats) = reach_drl_dist::drl::run_configured(
                g,
                &ord,
                4,
                NetworkModel::default(),
                true,
                None,
                Some(threads),
            )
            .unwrap();
            assert_eq!(idx, baseline, "{name} threads={threads}");
            assert_eq!(stats.comm, base_stats.comm, "{name} threads={threads}");
            assert_eq!(
                stats.supersteps, base_stats.supersteps,
                "{name} threads={threads}"
            );
        }
    }
}

#[test]
fn drlb_build_under_faults_is_identical_at_every_thread_count() {
    let g = gen::gnm(90, 280, 4);
    let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
    let params = BatchParams::default();
    let plan = schedule(17, 4);
    let (baseline, base_stats) = reach_drl_dist::drlb::run_configured(
        &g,
        &ord,
        params,
        4,
        NetworkModel::default(),
        Some(plan.clone()),
        Some(1),
    )
    .unwrap();
    assert!(base_stats.recovery.recoveries > 0, "crash must fire");
    for threads in [2usize, 4, 8] {
        let (idx, stats) = reach_drl_dist::drlb::run_configured(
            &g,
            &ord,
            params,
            4,
            NetworkModel::default(),
            Some(plan.clone()),
            Some(threads),
        )
        .unwrap();
        assert_eq!(idx, baseline, "threads={threads}");
        assert_eq!(stats.comm, base_stats.comm, "threads={threads}");
        assert_eq!(
            stats.recovery.recoveries, base_stats.recovery.recoveries,
            "threads={threads}"
        );
        assert_eq!(
            stats.recovery.replayed_supersteps, base_stats.recovery.replayed_supersteps,
            "threads={threads}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The DRL index is thread-count-invariant across random graphs ×
    /// fault schedules × cluster sizes.
    #[test]
    fn drl_index_is_thread_count_invariant(
        graph_seed in 0u64..20,
        fault_seed in 0u64..1000,
        nodes_pick in 0usize..3,
    ) {
        let nodes = [2usize, 4, 8][nodes_pick];
        let g = gen::gnm(40, 130, graph_seed);
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let plan = schedule(fault_seed, nodes);
        let (baseline, base_stats) = reach_drl_dist::drl::run_configured(
            &g, &ord, nodes, NetworkModel::default(), true, Some(plan.clone()), Some(1))
            .expect("schedule is recoverable");
        for threads in [2usize, 4, 8] {
            let (idx, stats) = reach_drl_dist::drl::run_configured(
                &g, &ord, nodes, NetworkModel::default(), true, Some(plan.clone()), Some(threads))
                .expect("schedule is recoverable");
            prop_assert_eq!(&idx, &baseline, "threads={}", threads);
            prop_assert_eq!(&stats.comm, &base_stats.comm, "threads={}", threads);
        }
    }

    /// Drop + delay draws with no crashes: parallel routing's keyed fault
    /// sub-streams must leave the DRL index and the retransmit/delay
    /// accounting bit-identical at every thread count, with no rollback
    /// machinery in the schedule to mask a divergence.
    #[test]
    fn drl_index_is_invariant_under_drop_and_delay_only_plans(
        graph_seed in 0u64..20,
        fault_seed in 0u64..1000,
        nodes_pick in 0usize..3,
    ) {
        let nodes = [2usize, 4, 8][nodes_pick];
        let g = gen::gnm(40, 130, graph_seed);
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let plan = FaultPlan::new(fault_seed)
            .with_message_drops(0.25 + 0.25 * ((fault_seed % 3) as f64 / 3.0))
            .with_message_delays(0.2, 1 + (fault_seed % 4) as usize);
        let (baseline, base_stats) = reach_drl_dist::drl::run_configured(
            &g, &ord, nodes, NetworkModel::default(), true, Some(plan.clone()), Some(1))
            .expect("drops and delays are recoverable");
        for threads in [2usize, 4, 8] {
            let (idx, stats) = reach_drl_dist::drl::run_configured(
                &g, &ord, nodes, NetworkModel::default(), true, Some(plan.clone()), Some(threads))
                .expect("drops and delays are recoverable");
            prop_assert_eq!(&idx, &baseline, "threads={}", threads);
            prop_assert_eq!(&stats.comm, &base_stats.comm, "threads={}", threads);
            prop_assert_eq!(
                stats.recovery.retransmits, base_stats.recovery.retransmits,
                "threads={}", threads
            );
            prop_assert_eq!(
                stats.recovery.delayed_messages, base_stats.recovery.delayed_messages,
                "threads={}", threads
            );
        }
    }

    /// Same for DRLb, whose label batches chain many engine runs — states
    /// carried across `run_with` calls must also be thread-invariant.
    #[test]
    fn drlb_index_is_thread_count_invariant(
        graph_seed in 0u64..20,
        fault_seed in 0u64..1000,
    ) {
        let g = gen::gnm(40, 130, graph_seed);
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let params = BatchParams::default();
        let plan = schedule(fault_seed, 4);
        let (baseline, base_stats) = reach_drl_dist::drlb::run_configured(
            &g, &ord, params, 4, NetworkModel::default(), Some(plan.clone()), Some(1))
            .expect("schedule is recoverable");
        for threads in [2usize, 4, 8] {
            let (idx, stats) = reach_drl_dist::drlb::run_configured(
                &g, &ord, params, 4, NetworkModel::default(), Some(plan.clone()), Some(threads))
                .expect("schedule is recoverable");
            prop_assert_eq!(&idx, &baseline, "threads={}", threads);
            prop_assert_eq!(&stats.comm, &base_stats.comm, "threads={}", threads);
            prop_assert_eq!(
                stats.recovery.retransmits, base_stats.recovery.retransmits,
                "threads={}", threads
            );
            prop_assert_eq!(
                stats.recovery.delayed_messages, base_stats.recovery.delayed_messages,
                "threads={}", threads
            );
            prop_assert_eq!(
                stats.recovery.replayed_supersteps, base_stats.recovery.replayed_supersteps,
                "threads={}", threads
            );
        }
    }
}
