//! The headline fault-tolerance claim: distributed DRL and DRLb produce
//! **bit-identical indexes under any recoverable injected fault schedule**
//! — node crashes, message drops, barrier stragglers, in any combination.
//!
//! The property holds because no recoverable fault can change *what* a
//! vertex computes on, only *when* the modeled clock says it happened:
//! drops retransmit inside the barrier, stragglers stall the barrier, and
//! crash recovery replays from a bit-exact coordinated snapshot. The tests
//! below pin it down on the paper graph, on synthetic datasets, and
//! property-style over random graphs × random fault schedules × cluster
//! sizes.

use proptest::prelude::*;
use reach_graph::{fixtures, gen, Direction, OrderAssignment, OrderKind};
use reach_vcs::{algo, FaultPlan, NetworkModel, Partition};

/// A crash-plus-noise schedule derived deterministically from `seed`.
fn schedule(seed: u64, nodes: usize) -> FaultPlan {
    FaultPlan::new(seed)
        .with_crash((seed as usize) % nodes, 1 + (seed as usize / nodes) % 3)
        .with_message_drops(0.2 + 0.2 * ((seed % 3) as f64 / 3.0))
        .with_message_delays(0.15, 1 + (seed % 4) as usize)
}

#[test]
fn drl_recovers_bit_identically_on_paper_and_synthetic_datasets() {
    // Paper graph (Example 1) plus two synthetic datasets of different
    // shape: a sparse random digraph and a denser random DAG.
    let datasets = [
        ("paper", fixtures::paper_graph()),
        ("gnm-sparse", gen::gnm(90, 280, 4)),
        ("dag-dense", gen::random_dag(70, 420, 9)),
    ];
    for (name, g) in &datasets {
        let ord = OrderAssignment::new(g, OrderKind::DegreeProduct);
        let (baseline, _) = reach_drl_dist::drl::run(g, &ord, 4, NetworkModel::default());
        for seed in [3u64, 17, 40] {
            let plan = schedule(seed, 4);
            let (idx, stats) =
                reach_drl_dist::drl::run_with_faults(g, &ord, 4, NetworkModel::default(), plan)
                    .unwrap();
            assert_eq!(idx, baseline, "{name} seed {seed}");
            assert!(stats.recovery.recoveries > 0, "{name} seed {seed}");
            assert!(stats.recovery.replayed_supersteps > 0, "{name} seed {seed}");
            assert!(stats.recovery.retransmits > 0, "{name} seed {seed}");
        }
    }
}

#[test]
fn drlb_recovers_bit_identically_on_paper_and_synthetic_datasets() {
    let params = reach_core::BatchParams::default();
    let datasets = [
        ("paper", fixtures::paper_graph()),
        ("gnm-sparse", gen::gnm(90, 280, 4)),
        ("dag-dense", gen::random_dag(70, 420, 9)),
    ];
    for (name, g) in &datasets {
        let ord = OrderAssignment::new(g, OrderKind::DegreeProduct);
        let (baseline, _) = reach_drl_dist::drlb::run(g, &ord, params, 4, NetworkModel::default());
        for seed in [5u64, 21] {
            let plan = schedule(seed, 4);
            let (idx, stats) = reach_drl_dist::drlb::run_with_faults(
                g,
                &ord,
                params,
                4,
                NetworkModel::default(),
                plan,
            )
            .unwrap();
            assert_eq!(idx, baseline, "{name} seed {seed}");
            assert!(stats.recovery.recoveries > 0, "{name} seed {seed}");
            assert!(stats.recovery.replayed_supersteps > 0, "{name} seed {seed}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// BFS levels under a random fault schedule equal the fault-free run
    /// on every cluster size.
    #[test]
    fn bfs_levels_survive_random_fault_schedules(
        graph_seed in 0u64..40,
        fault_seed in 0u64..1000,
        nodes_pick in 0usize..3,
    ) {
        let nodes = [2usize, 4, 8][nodes_pick];
        let g = gen::gnm(50, 160, graph_seed);
        let (baseline, _) = algo::dist_bfs_levels(
            &g, 0, Direction::Forward, Partition::modulo(nodes), NetworkModel::default());
        let plan = schedule(fault_seed, nodes);
        let (levels, stats) = algo::dist_bfs_levels_with_faults(
            &g, 0, Direction::Forward, Partition::modulo(nodes),
            NetworkModel::default(), Some(plan))
            .expect("schedule is recoverable");
        prop_assert_eq!(levels, baseline);
        // The crash either fired (and recovered) or the run quiesced first.
        prop_assert!(stats.recovery.recoveries <= 1);
    }

    /// The DRL index under a random fault schedule is bit-identical to the
    /// fault-free index on every cluster size.
    #[test]
    fn drl_index_survives_random_fault_schedules(
        graph_seed in 0u64..20,
        fault_seed in 0u64..1000,
        nodes_pick in 0usize..3,
    ) {
        let nodes = [2usize, 4, 8][nodes_pick];
        let g = gen::gnm(40, 130, graph_seed);
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let (baseline, _) =
            reach_drl_dist::drl::run(&g, &ord, nodes, NetworkModel::default());
        let plan = schedule(fault_seed, nodes);
        let (idx, _) = reach_drl_dist::drl::run_with_faults(
            &g, &ord, nodes, NetworkModel::default(), plan)
            .expect("schedule is recoverable");
        prop_assert_eq!(idx, baseline);
    }
}
