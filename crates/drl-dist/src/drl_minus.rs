//! Distributed DRL⁻ — the basic labeling method (Theorem 3) on the cluster.
//!
//! Phase 1 floods trimmed BFSs from every vertex (both directions) exactly
//! like DRL, but *without* the `Check` pruning — instead every vertex that
//! blocks an expansion (it has higher order than the flood source) records
//! the block and shares it: `hig[dir][src] ∋ blocker`.
//!
//! Phase 2 is Theorem 3's refinement: every blocker starts a **full**
//! (untrimmed) flood; each vertex records which blockers reached it. This
//! is the `|BFS_hig(v)|`-BFS refinement whose traffic dominates Fig. 5 and
//! times DRL⁻ out on most graphs.
//!
//! Phase 3 is local: drop a visited mark `v` at vertex `x` iff some blocker
//! of `v` reached `x`.

use std::collections::{HashMap, HashSet};

use reach_graph::{DiGraph, OrderAssignment, VertexId};
use reach_index::ReachIndex;
use reach_vcs::{Ctx, Engine, NetworkModel, Partition, RunStats, VertexProgram};

use crate::{account_index_gather, Dir, FloodMsg, FLOOD_MSG_BYTES};

/// Phase-1 state: visited marks plus the blocks this vertex performed.
#[derive(Clone, Debug, Default)]
pub struct FloodState {
    fwd_visited: HashSet<u32>,
    bwd_visited: HashSet<u32>,
    /// Sources this vertex blocked, per direction (deduplicated locally
    /// before sharing).
    fwd_blocked: HashSet<u32>,
    bwd_blocked: HashSet<u32>,
}

/// Replicated blocker tables: `hig[dir](src) = ranks of blockers of src`.
#[derive(Clone, Debug, Default)]
pub struct HigTables {
    fwd: HashMap<u32, Vec<u32>>,
    bwd: HashMap<u32, Vec<u32>>,
}

/// A shared "blocker" fact: this vertex blocked that source's flood.
#[derive(Clone, Copy, Debug)]
pub struct BlockEntry {
    blocker_rank: u32,
    src_rank: u32,
    dir: Dir,
}

struct FloodProgram<'a> {
    ord: &'a OrderAssignment,
}

impl VertexProgram for FloodProgram<'_> {
    type State = FloodState;
    type Msg = FloodMsg;
    type Global = HigTables;
    type Update = BlockEntry;

    fn init_state(&self, _v: VertexId) -> FloodState {
        FloodState::default()
    }

    fn compute(
        &self,
        ctx: &mut Ctx<'_, FloodMsg, BlockEntry>,
        w: VertexId,
        state: &mut FloodState,
        msgs: &[FloodMsg],
        _global: &HigTables,
    ) {
        let my_rank = self.ord.rank(w);
        if ctx.superstep == 0 {
            state.fwd_visited.insert(my_rank);
            state.bwd_visited.insert(my_rank);
            for &nbr in ctx.out_neighbors(w) {
                ctx.send(
                    nbr,
                    FloodMsg {
                        src_rank: my_rank,
                        dir: Dir::Fwd,
                    },
                );
            }
            for &nbr in ctx.in_neighbors(w) {
                ctx.send(
                    nbr,
                    FloodMsg {
                        src_rank: my_rank,
                        dir: Dir::Bwd,
                    },
                );
            }
            return;
        }
        for msg in msgs {
            let r = msg.src_rank;
            let (visited, blocked) = match msg.dir {
                Dir::Fwd => (&mut state.fwd_visited, &mut state.fwd_blocked),
                Dir::Bwd => (&mut state.bwd_visited, &mut state.bwd_blocked),
            };
            if visited.contains(&r) {
                continue;
            }
            if r < my_rank {
                // The source outranks us (smaller rank = higher order), so
                // the flood passes through us.
                visited.insert(r);
                let nbrs = match msg.dir {
                    Dir::Fwd => ctx.out_neighbors(w),
                    Dir::Bwd => ctx.in_neighbors(w),
                };
                for &nbr in nbrs {
                    ctx.send(nbr, *msg);
                }
            } else if blocked.insert(r) {
                // We outrank the source: block the branch (BFS_hig) and
                // share the fact once.
                ctx.publish(BlockEntry {
                    blocker_rank: my_rank,
                    src_rank: r,
                    dir: msg.dir,
                });
            }
        }
    }

    fn apply_updates(&self, global: &mut HigTables, updates: &[BlockEntry]) {
        for u in updates {
            let table = match u.dir {
                Dir::Fwd => &mut global.fwd,
                Dir::Bwd => &mut global.bwd,
            };
            table.entry(u.src_rank).or_default().push(u.blocker_rank);
        }
    }

    fn msg_bytes(&self, _m: &FloodMsg) -> usize {
        FLOOD_MSG_BYTES
    }

    fn update_bytes(&self, _u: &BlockEntry) -> usize {
        9
    }
}

/// Phase-2 state: which blockers' full floods reached this vertex.
#[derive(Clone, Debug, Default)]
pub struct ReachedState {
    fwd: HashSet<u32>,
    bwd: HashSet<u32>,
}

/// Phase-2 program: full (untrimmed) floods from every blocker.
struct BlockerFloodProgram<'a> {
    ord: &'a OrderAssignment,
    /// Blockers per direction, as ranks.
    fwd_blockers: HashSet<u32>,
    bwd_blockers: HashSet<u32>,
}

impl VertexProgram for BlockerFloodProgram<'_> {
    type State = ReachedState;
    type Msg = FloodMsg;
    type Global = ();
    type Update = ();

    fn init_state(&self, _v: VertexId) -> ReachedState {
        ReachedState::default()
    }

    fn compute(
        &self,
        ctx: &mut Ctx<'_, FloodMsg, ()>,
        w: VertexId,
        state: &mut ReachedState,
        msgs: &[FloodMsg],
        _global: &(),
    ) {
        let my_rank = self.ord.rank(w);
        if ctx.superstep == 0 {
            if self.fwd_blockers.contains(&my_rank) {
                state.fwd.insert(my_rank);
                for &nbr in ctx.out_neighbors(w) {
                    ctx.send(
                        nbr,
                        FloodMsg {
                            src_rank: my_rank,
                            dir: Dir::Fwd,
                        },
                    );
                }
            }
            if self.bwd_blockers.contains(&my_rank) {
                state.bwd.insert(my_rank);
                for &nbr in ctx.in_neighbors(w) {
                    ctx.send(
                        nbr,
                        FloodMsg {
                            src_rank: my_rank,
                            dir: Dir::Bwd,
                        },
                    );
                }
            }
            return;
        }
        for msg in msgs {
            let r = msg.src_rank;
            let reached = match msg.dir {
                Dir::Fwd => &mut state.fwd,
                Dir::Bwd => &mut state.bwd,
            };
            if !reached.insert(r) {
                continue;
            }
            let nbrs = match msg.dir {
                Dir::Fwd => ctx.out_neighbors(w),
                Dir::Bwd => ctx.in_neighbors(w),
            };
            for &nbr in nbrs {
                ctx.send(nbr, *msg);
            }
        }
    }

    fn apply_updates(&self, _global: &mut (), _updates: &[()]) {}

    fn msg_bytes(&self, _m: &FloodMsg) -> usize {
        FLOOD_MSG_BYTES
    }
}

/// Runs distributed DRL⁻; returns the TOL-identical index and merged
/// statistics of all phases.
pub fn run(
    g: &DiGraph,
    ord: &OrderAssignment,
    nodes: usize,
    network: NetworkModel,
) -> (ReachIndex, RunStats) {
    let n = g.num_vertices();

    // Phase 1: trimmed floods with blocker recording.
    let filter_span = reach_obs::span("drl_minus.filter");
    let engine = Engine::new(g, Partition::modulo(nodes)).with_network(network);
    let flood = engine
        .run(&FloodProgram { ord })
        .expect("fault-free flood phase cannot fail");
    let mut stats = flood.stats;
    let hig = flood.global;
    drop(filter_span);

    // Phase 2: full floods from every distinct blocker, per direction.
    let refine_span = reach_obs::span("drl_minus.refine");
    let fwd_blockers: HashSet<u32> = hig.fwd.values().flatten().copied().collect();
    let bwd_blockers: HashSet<u32> = hig.bwd.values().flatten().copied().collect();
    reach_obs::counter_add(
        "drl_minus.blockers",
        (fwd_blockers.len() + bwd_blockers.len()) as u64,
    );
    let refine = engine
        .run(&BlockerFloodProgram {
            ord,
            fwd_blockers,
            bwd_blockers,
        })
        .expect("fault-free refinement phase cannot fail");
    stats.merge(&refine.stats);
    drop(refine_span);

    // Phase 3 (local): eliminate every visited mark reached through one of
    // its blockers; assemble the index.
    let _obs_elim = reach_obs::span("drl_minus.eliminate");
    let t0 = std::time::Instant::now();
    let mut idx = ReachIndex::new(n);
    let empty: Vec<u32> = Vec::new();
    for w in 0..n as VertexId {
        let fs = &flood.states[w as usize];
        let rs = &refine.states[w as usize];
        reach_obs::record(
            "drl_minus.candidates",
            (fs.fwd_visited.len() + fs.bwd_visited.len()) as u64,
        );
        let (mut in_size, mut out_size) = (0u64, 0u64);
        for &r in &fs.fwd_visited {
            let blockers = hig.fwd.get(&r).unwrap_or(&empty);
            if !blockers.iter().any(|b| rs.fwd.contains(b)) {
                idx.add_in_label(w, ord.vertex_at_rank(r));
                in_size += 1;
            }
        }
        for &r in &fs.bwd_visited {
            let blockers = hig.bwd.get(&r).unwrap_or(&empty);
            if !blockers.iter().any(|b| rs.bwd.contains(b)) {
                idx.add_out_label(w, ord.vertex_at_rank(r));
                out_size += 1;
            }
        }
        reach_obs::record("index.label_size.in", in_size);
        reach_obs::record("index.label_size.out", out_size);
    }
    idx.finalize();
    // Local elimination is embarrassingly parallel across nodes; charge the
    // modeled clock 1/nodes of the measured serial time.
    let dt = t0.elapsed().as_secs_f64();
    stats.compute_seconds += dt / nodes as f64;
    stats.compute_seconds_serial += dt;

    account_index_gather(&mut stats, &network, nodes, idx.num_entries());
    (idx, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::{fixtures, gen, OrderKind};

    #[test]
    fn matches_tol_on_paper_graph() {
        let g = fixtures::paper_graph();
        for kind in [OrderKind::InverseId, OrderKind::DegreeProduct] {
            let ord = OrderAssignment::new(&g, kind);
            let (idx, _) = run(&g, &ord, 4, NetworkModel::default());
            assert_eq!(idx, reach_tol::naive::build(&g, &ord), "{kind:?}");
        }
    }

    #[test]
    fn matches_tol_on_random_graphs() {
        for seed in 0..5 {
            let g = gen::gnm(40, 130, seed);
            let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
            let (idx, _) = run(&g, &ord, 3, NetworkModel::default());
            assert_eq!(idx, reach_tol::naive::build(&g, &ord), "seed {seed}");
        }
    }

    #[test]
    fn refinement_traffic_exceeds_drl() {
        // The Fig. 5 story: DRL⁻ moves far more bytes than DRL because of
        // the full blocker floods.
        let g = gen::gnm(120, 600, 7);
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let (_, minus_stats) = run(&g, &ord, 4, NetworkModel::default());
        let (_, drl_stats) = crate::drl::run(&g, &ord, 4, NetworkModel::default());
        assert!(
            minus_stats.comm.network_bytes() > drl_stats.comm.network_bytes(),
            "DRL⁻ {} vs DRL {}",
            minus_stats.comm.network_bytes(),
            drl_stats.comm.network_bytes()
        );
    }
}
