//! Distributed DRLb — Algorithm 4 as a vertex program, one engine run per
//! batch.
//!
//! Each batch behaves like DRL restricted to the batch's sources, with two
//! additions from §IV:
//!
//! * at super-step 0 every *active* source broadcasts its batch label sets
//!   (Line 8) so any vertex can evaluate the pruning test
//!   `L^{V_i}_out(v) ∩ L^{V_i}_in(w)` locally;
//! * a source whose own batch labels already intersect
//!   (`L_out ∩ L_in ≠ ∅`, Line 6) — it sits on a cycle through an
//!   already-labeled higher-order vertex — contributes nothing;
//! * every flood visit is pruned when the earlier-batch labels already
//!   certify the source-to-vertex connection (Line 12, the
//!   proof-of-Theorem-6 reading; see DESIGN.md).
//!
//! Vertex state (the accumulated label rank-lists plus per-batch status
//! sets) is carried across engine runs; the surviving marks are folded into
//! the labels in each run's finalize pass (Line 14).

use std::collections::{HashMap, HashSet};

use reach_core::{BatchParams, BatchSchedule};
use reach_graph::{DiGraph, OrderAssignment, VertexId};
use reach_index::ReachIndex;
use reach_vcs::{
    Ctx, Engine, EngineError, FaultPlan, NetworkModel, Partition, RunStats, VertexProgram,
};

use crate::{
    account_index_gather, check, Dir, FloodMsg, IbfsEntry, IbfsTables, FLOOD_MSG_BYTES,
    IBFS_ENTRY_BYTES,
};

/// Per-vertex state carried across batch runs.
#[derive(Clone, Debug, Default)]
pub struct DrlbState {
    /// Accumulated in-label ranks, ascending (earlier batches first).
    pub lin: Vec<u32>,
    /// Accumulated out-label ranks, ascending.
    pub lout: Vec<u32>,
    fwd_visited: HashSet<u32>,
    bwd_visited: HashSet<u32>,
}

/// Replicated per-batch global: the broadcast batch label sets of the
/// active sources, plus the inverted lists.
#[derive(Clone, Debug, Default)]
pub struct DrlbGlobal {
    /// `labels[src_rank] = (L_in ranks, L_out ranks)` broadcast at Line 8.
    labels: HashMap<u32, (Vec<u32>, Vec<u32>)>,
    ibfs: IbfsTables,
}

/// Global updates: either a Line-8 label broadcast or an inverted-list
/// entry.
#[derive(Clone, Debug)]
pub enum DrlbUpdate {
    /// A source broadcasting its batch label sets.
    SourceLabels {
        /// Rank of the broadcasting source.
        src_rank: u32,
        /// Its accumulated in-label ranks.
        lin: Vec<u32>,
        /// Its accumulated out-label ranks.
        lout: Vec<u32>,
    },
    /// An inverted-list entry (as in DRL).
    Ibfs(IbfsEntry),
}

struct DrlbProgram<'a> {
    ord: &'a OrderAssignment,
    /// Rank range of the current batch.
    batch: std::ops::Range<u32>,
}

impl DrlbProgram<'_> {
    /// The Line-12 pruning test: do the earlier-batch labels already
    /// certify the connection between the flood source and this vertex?
    fn covered_by_batch_labels(
        &self,
        dir: Dir,
        src_rank: u32,
        state: &DrlbState,
        global: &DrlbGlobal,
    ) -> bool {
        let Some((src_lin, src_lout)) = global.labels.get(&src_rank) else {
            return false;
        };
        match dir {
            // Forward flood asks: v -> w already covered? L_out(v) ∩ L_in(w).
            Dir::Fwd => sorted_intersects(src_lout, &state.lin),
            // Backward flood asks: w -> v already covered? L_out(w) ∩ L_in(v).
            Dir::Bwd => sorted_intersects(&state.lout, src_lin),
        }
    }
}

impl VertexProgram for DrlbProgram<'_> {
    type State = DrlbState;
    type Msg = FloodMsg;
    type Global = DrlbGlobal;
    type Update = DrlbUpdate;

    fn init_state(&self, _v: VertexId) -> DrlbState {
        DrlbState::default()
    }

    fn compute(
        &self,
        ctx: &mut Ctx<'_, FloodMsg, DrlbUpdate>,
        w: VertexId,
        state: &mut DrlbState,
        msgs: &[FloodMsg],
        global: &DrlbGlobal,
    ) {
        let my_rank = self.ord.rank(w);
        if ctx.superstep == 0 {
            // Fresh status sets for this batch.
            state.fwd_visited.clear();
            state.bwd_visited.clear();
            // Line 6: only batch sources participate; a source in an
            // already-covered cycle is pruned outright.
            if !self.batch.contains(&my_rank) || sorted_intersects(&state.lout, &state.lin) {
                return;
            }
            state.fwd_visited.insert(my_rank);
            state.bwd_visited.insert(my_rank);
            // Line 8: broadcast this source's batch label sets.
            ctx.publish(DrlbUpdate::SourceLabels {
                src_rank: my_rank,
                lin: state.lin.clone(),
                lout: state.lout.clone(),
            });
            for &nbr in ctx.out_neighbors(w) {
                ctx.send(
                    nbr,
                    FloodMsg {
                        src_rank: my_rank,
                        dir: Dir::Fwd,
                    },
                );
            }
            for &nbr in ctx.in_neighbors(w) {
                ctx.send(
                    nbr,
                    FloodMsg {
                        src_rank: my_rank,
                        dir: Dir::Bwd,
                    },
                );
            }
            return;
        }

        for msg in msgs {
            let r = msg.src_rank;
            let visited = match msg.dir {
                Dir::Fwd => &state.fwd_visited,
                Dir::Bwd => &state.bwd_visited,
            };
            if visited.contains(&r) {
                continue;
            }
            if r >= my_rank {
                continue; // we outrank the source: block the branch
            }
            // Line 12: earlier-batch labels prune the visit.
            if self.covered_by_batch_labels(msg.dir, r, state, global) {
                continue;
            }
            // Check() expansion pruning, as in DRL.
            let visited = match msg.dir {
                Dir::Fwd => &mut state.fwd_visited,
                Dir::Bwd => &mut state.bwd_visited,
            };
            if check(&global.ibfs, msg.dir, r, visited) {
                continue;
            }
            visited.insert(r);
            ctx.publish(DrlbUpdate::Ibfs(IbfsEntry {
                visited_rank: my_rank,
                src_rank: r,
                dir: msg.dir,
            }));
            let nbrs = match msg.dir {
                Dir::Fwd => ctx.out_neighbors(w),
                Dir::Bwd => ctx.in_neighbors(w),
            };
            for &nbr in nbrs {
                ctx.send(nbr, *msg);
            }
        }
    }

    fn apply_updates(&self, global: &mut DrlbGlobal, updates: &[DrlbUpdate]) {
        for u in updates {
            match u {
                DrlbUpdate::SourceLabels {
                    src_rank,
                    lin,
                    lout,
                } => {
                    global.labels.insert(*src_rank, (lin.clone(), lout.clone()));
                }
                DrlbUpdate::Ibfs(e) => global.ibfs.apply(e),
            }
        }
    }

    fn finalize(&self, _v: VertexId, state: &mut DrlbState, global: &DrlbGlobal) {
        // Lines 19-20 of Algorithm 3 (inherited via Line 13 of Algorithm
        // 4), then Line 14: fold the surviving marks into the labels.
        let doomed: Vec<u32> = state
            .fwd_visited
            .iter()
            .copied()
            .filter(|&r| check(&global.ibfs, Dir::Fwd, r, &state.fwd_visited))
            .collect();
        for r in doomed {
            state.fwd_visited.remove(&r);
        }
        let doomed: Vec<u32> = state
            .bwd_visited
            .iter()
            .copied()
            .filter(|&r| check(&global.ibfs, Dir::Bwd, r, &state.bwd_visited))
            .collect();
        for r in doomed {
            state.bwd_visited.remove(&r);
        }
        let mut new_in: Vec<u32> = state.fwd_visited.iter().copied().collect();
        new_in.sort_unstable();
        state.lin.extend_from_slice(&new_in);
        let mut new_out: Vec<u32> = state.bwd_visited.iter().copied().collect();
        new_out.sort_unstable();
        state.lout.extend_from_slice(&new_out);
    }

    fn msg_bytes(&self, _m: &FloodMsg) -> usize {
        FLOOD_MSG_BYTES
    }

    fn update_bytes(&self, u: &DrlbUpdate) -> usize {
        match u {
            DrlbUpdate::SourceLabels { lin, lout, .. } => 4 + 4 * (lin.len() + lout.len()),
            DrlbUpdate::Ibfs(_) => IBFS_ENTRY_BYTES,
        }
    }
}

/// Merge-intersection over ascending rank lists.
#[inline]
fn sorted_intersects(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Runs distributed DRLb; returns the TOL-identical index and the merged
/// statistics across all batch runs.
pub fn run(
    g: &DiGraph,
    ord: &OrderAssignment,
    params: BatchParams,
    nodes: usize,
    network: NetworkModel,
) -> (ReachIndex, RunStats) {
    run_under_faults(g, ord, params, nodes, network, None, None)
        .expect("fault-free DRLb cannot fail")
}

/// [`run`] under an injected [`FaultPlan`]; every batch run shares the
/// plan (and its seed), and the per-batch stats — recovery accounting
/// included — are merged. Like DRL, the resulting index is bit-identical
/// to the fault-free build for every recoverable schedule.
pub fn run_with_faults(
    g: &DiGraph,
    ord: &OrderAssignment,
    params: BatchParams,
    nodes: usize,
    network: NetworkModel,
    faults: FaultPlan,
) -> Result<(ReachIndex, RunStats), EngineError> {
    run_under_faults(g, ord, params, nodes, network, Some(faults), None)
}

/// [`run`] with every knob exposed: an optional fault plan and the engine
/// worker-thread count (`None` = the engine default, i.e.
/// `REACH_ENGINE_THREADS` or available parallelism). The thread count
/// never changes the index — only wall-clock.
pub fn run_configured(
    g: &DiGraph,
    ord: &OrderAssignment,
    params: BatchParams,
    nodes: usize,
    network: NetworkModel,
    faults: Option<FaultPlan>,
    threads: Option<usize>,
) -> Result<(ReachIndex, RunStats), EngineError> {
    run_under_faults(g, ord, params, nodes, network, faults, threads)
}

fn run_under_faults(
    g: &DiGraph,
    ord: &OrderAssignment,
    params: BatchParams,
    nodes: usize,
    network: NetworkModel,
    faults: Option<FaultPlan>,
    threads: Option<usize>,
) -> Result<(ReachIndex, RunStats), EngineError> {
    let n = g.num_vertices();
    let schedule = BatchSchedule::new(n, params);
    let mut engine = Engine::new(g, Partition::modulo(nodes)).with_network(network);
    if let Some(plan) = faults {
        engine = engine.with_faults(plan);
    }
    if let Some(threads) = threads {
        engine = engine.with_threads(threads);
    }

    let mut states: Vec<DrlbState> = (0..n).map(|_| DrlbState::default()).collect();
    let mut stats = RunStats::default();
    for i in 0..schedule.num_batches() {
        let _obs_batch = reach_obs::span("drlb.batch");
        let batch = schedule.batch(i);
        reach_obs::counter_add("drlb.batches", 1);
        reach_obs::record("drlb.batch.width", (batch.end - batch.start) as u64);
        let program = DrlbProgram { ord, batch };
        let out = engine.run_with(&program, states, DrlbGlobal::default())?;
        states = out.states;
        stats.merge(&out.stats);
    }

    let _obs_gather = reach_obs::span("drlb.gather");
    let mut idx = ReachIndex::new(n);
    for (w, state) in states.iter().enumerate() {
        reach_obs::record("index.label_size.in", state.lin.len() as u64);
        reach_obs::record("index.label_size.out", state.lout.len() as u64);
        for &r in &state.lin {
            idx.add_in_label(w as VertexId, ord.vertex_at_rank(r));
        }
        for &r in &state.lout {
            idx.add_out_label(w as VertexId, ord.vertex_at_rank(r));
        }
    }
    idx.finalize();
    account_index_gather(&mut stats, &network, nodes, idx.num_entries());
    Ok((idx, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::{fixtures, gen, OrderKind};

    #[test]
    fn matches_tol_on_paper_graph() {
        let g = fixtures::paper_graph();
        for kind in [OrderKind::InverseId, OrderKind::DegreeProduct] {
            let ord = OrderAssignment::new(&g, kind);
            let (idx, _) = run(&g, &ord, BatchParams::default(), 4, NetworkModel::default());
            assert_eq!(idx, reach_tol::naive::build(&g, &ord), "{kind:?}");
        }
    }

    #[test]
    fn identical_index_for_every_node_count_and_params() {
        let g = gen::gnm(40, 130, 33);
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let oracle = reach_tol::naive::build(&g, &ord);
        for nodes in [1, 2, 8] {
            for (b, k) in [(1, 1.0), (2, 2.0), (16, 2.0)] {
                let (idx, _) = run(
                    &g,
                    &ord,
                    BatchParams::new(b, k),
                    nodes,
                    NetworkModel::default(),
                );
                assert_eq!(idx, oracle, "nodes={nodes} b={b} k={k}");
            }
        }
    }

    #[test]
    fn matches_serial_drlb_on_random_graphs() {
        for seed in 0..5 {
            let g = gen::gnm(50, 170, seed);
            let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
            let serial = reach_core::drlb(&g, &ord, BatchParams::default());
            let (dist, _) = run(&g, &ord, BatchParams::default(), 4, NetworkModel::default());
            assert_eq!(dist, serial, "seed {seed}");
        }
    }

    #[test]
    fn faulty_batched_build_is_bit_identical() {
        let g = gen::gnm(40, 130, 33);
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let (baseline, _) = run(&g, &ord, BatchParams::default(), 4, NetworkModel::default());
        let plan = FaultPlan::new(7)
            .with_crash(3, 1)
            .with_message_drops(0.2)
            .with_message_delays(0.1, 2);
        let (idx, stats) = run_with_faults(
            &g,
            &ord,
            BatchParams::default(),
            4,
            NetworkModel::default(),
            plan,
        )
        .unwrap();
        assert_eq!(idx, baseline);
        assert!(stats.recovery.recoveries > 0);
        assert!(stats.recovery.replayed_supersteps > 0);
    }

    #[test]
    fn batching_cuts_traffic_vs_plain_drl() {
        // The Exp-4 claim: DRLb substantially reduces DRL's communication.
        let g = gen::gnm(200, 1600, 9);
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let (_, drl_stats) = crate::drl::run(&g, &ord, 4, NetworkModel::default());
        let (_, drlb_stats) = run(&g, &ord, BatchParams::default(), 4, NetworkModel::default());
        assert!(
            drlb_stats.comm.remote_bytes < drl_stats.comm.remote_bytes,
            "DRLb {} vs DRL {}",
            drlb_stats.comm.remote_bytes,
            drl_stats.comm.remote_bytes
        );
    }
}
