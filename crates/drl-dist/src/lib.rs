//! Distributed implementations of the paper's labeling algorithms
//! (§III-D and §IV) on the simulated vertex-centric cluster of `reach-vcs`.
//!
//! * [`drl::run`] — **DRL**, Algorithm 3: one engine run floods trimmed
//!   BFSs from every vertex in both directions simultaneously; inverted-list
//!   entries are shared through broadcast global updates the moment they are
//!   created; the final super-step pass re-checks every visited mark
//!   (Lines 19–20).
//! * [`drl_minus::run`] — **DRL⁻**, the basic method distributed: a trimmed
//!   flood phase recording blockers, then a *full* flood from every blocker
//!   (the `|BFS_hig(v)|` refinement BFSs of Theorem 3), then local
//!   elimination. Its communication volume is what Fig. 5 shows exploding.
//! * [`drlb::run`] — **DRLb**, Algorithm 4: one engine run per batch;
//!   sources broadcast their batch label sets (Line 8) and every flood is
//!   pruned by earlier-batch labels (Line 12, proof-of-Theorem-6 version).
//!
//! Every run returns both the TOL-identical [`reach_index::ReachIndex`] and
//! a [`reach_vcs::RunStats`] with the modeled computation/communication
//! split used by the experiment harness.

#![warn(missing_docs)]

pub mod drl;
pub mod drl_minus;
pub mod drlb;

use reach_graph::VertexId;
use reach_vcs::{NetworkModel, RunStats};

/// Flood direction tag carried in messages (1 byte on the wire).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Trimmed BFS on `G` — builds in-label candidates.
    Fwd,
    /// Trimmed BFS on `Ḡ` — builds out-label candidates.
    Bwd,
}

/// A flood message: the paper's `{ID, order}` pair. We send the source's
/// *rank* (which identifies both the vertex and its order) plus the
/// direction tag; accounted as 8 wire bytes like the paper's message.
#[derive(Clone, Copy, Debug)]
pub struct FloodMsg {
    /// Rank of the flood source (0 = highest order).
    pub src_rank: u32,
    /// Which direction this flood travels.
    pub dir: Dir,
}

/// Wire size of a [`FloodMsg`]: 4-byte id/order + tag, padded to 8.
pub const FLOOD_MSG_BYTES: usize = 8;

/// An inverted-list entry being shared: "the flood of `src_rank` (direction
/// `dir`) visited the vertex ranked `visited_rank`".
#[derive(Clone, Copy, Debug)]
pub struct IbfsEntry {
    /// Rank of the visited vertex (the key of the inverted list).
    pub visited_rank: u32,
    /// Rank of the flood source (the entry value).
    pub src_rank: u32,
    /// Direction of the flood that caused the visit.
    pub dir: Dir,
}

/// Wire size of an [`IbfsEntry`].
pub const IBFS_ENTRY_BYTES: usize = 9;

/// The replicated inverted lists (Definition 6), keyed by rank.
///
/// `bwd[v]` is `IBFS_low(v)` — sources whose `Ḡ`-flood visited `v`, used by
/// `Check` when refining *forward* (in-label) candidates; `fwd[v]` is the
/// symmetric list for refining backward candidates.
#[derive(Clone, Debug, Default)]
pub struct IbfsTables {
    /// Entries from forward floods: `fwd[w] ∋ u` iff `w ∈ BFS_low(u)`.
    pub fwd: std::collections::HashMap<u32, Vec<u32>>,
    /// Entries from backward floods: `bwd[w] ∋ u` iff `w ∈ BFS_low^Ḡ(u)`.
    pub bwd: std::collections::HashMap<u32, Vec<u32>>,
}

impl IbfsTables {
    /// Folds one shared entry into the replicated tables.
    pub fn apply(&mut self, e: &IbfsEntry) {
        let table = match e.dir {
            Dir::Fwd => &mut self.fwd,
            Dir::Bwd => &mut self.bwd,
        };
        table.entry(e.visited_rank).or_default().push(e.src_rank);
    }

    /// The inverted list consulted when checking a candidate of direction
    /// `dir`: forward candidates are checked against backward entries.
    pub fn check_list(&self, dir: Dir, src_rank: u32) -> &[u32] {
        let table = match dir {
            Dir::Fwd => &self.bwd,
            Dir::Bwd => &self.fwd,
        };
        table.get(&src_rank).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// The `Check(v, w)` procedure of Algorithm 3 (Lines 21–24): does any
/// member of the inverted list of `src_rank` appear in `visited` (the
/// status array of the vertex being checked)?
pub fn check(
    tables: &IbfsTables,
    dir: Dir,
    src_rank: u32,
    visited: &std::collections::HashSet<u32>,
) -> bool {
    tables
        .check_list(dir, src_rank)
        .iter()
        .any(|u| visited.contains(u))
}

/// Adds the cost of gathering the finished index onto one machine (the
/// paper collects the distributed label sets to support in-memory queries):
/// one gather round, `entries × 4` bytes of which the fraction not already
/// on the collecting node crosses the network.
pub fn account_index_gather(
    stats: &mut RunStats,
    network: &NetworkModel,
    num_nodes: usize,
    entries: usize,
) {
    if num_nodes <= 1 {
        return;
    }
    let bytes = entries * std::mem::size_of::<VertexId>();
    let remote = bytes - bytes / num_nodes;
    stats.comm.remote_bytes += remote;
    stats.comm.remote_messages += num_nodes - 1;
    stats.comm_seconds += network.superstep_seconds(num_nodes, remote);
    stats.supersteps += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ibfs_tables_apply_and_lookup() {
        let mut t = IbfsTables::default();
        t.apply(&IbfsEntry {
            visited_rank: 3,
            src_rank: 1,
            dir: Dir::Bwd,
        });
        assert_eq!(t.check_list(Dir::Fwd, 3), &[1]);
        assert!(t.check_list(Dir::Bwd, 3).is_empty());
        assert!(t.check_list(Dir::Fwd, 9).is_empty());
    }

    #[test]
    fn check_matches_on_shared_visitor() {
        let mut t = IbfsTables::default();
        t.apply(&IbfsEntry {
            visited_rank: 5,
            src_rank: 2,
            dir: Dir::Bwd,
        });
        let mut visited = HashSet::new();
        assert!(!check(&t, Dir::Fwd, 5, &visited));
        visited.insert(2);
        assert!(check(&t, Dir::Fwd, 5, &visited));
    }

    #[test]
    fn gather_accounting_single_node_free() {
        let mut stats = RunStats::default();
        account_index_gather(&mut stats, &NetworkModel::default(), 1, 1000);
        assert_eq!(stats.comm.remote_bytes, 0);
        account_index_gather(&mut stats, &NetworkModel::default(), 4, 1000);
        assert_eq!(stats.comm.remote_bytes, 3000);
    }
}
