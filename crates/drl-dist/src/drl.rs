//! Distributed DRL — Algorithm 3 as a vertex program.
//!
//! Every vertex starts both of its trimmed floods in super-step 0 (the
//! `{ID, order}` message of Line 7). On receiving a flood message, a vertex
//! ignores already-seen sources (Line 12), only continues floods of
//! higher-order sources (Line 13), applies the `Check` expansion pruning
//! against the replicated inverted lists (Line 14), records the visit in
//! its status set (Line 15), forwards the flood (Lines 16–17) and shares
//! the new inverted-list entry (Line 18 — a broadcast global update). After
//! quiescence the final pass re-checks every visited mark (Lines 19–20),
//! because inverted-list entries may have arrived after the mark was set.

use std::collections::HashSet;

use reach_graph::{DiGraph, OrderAssignment, VertexId};
use reach_index::ReachIndex;
use reach_vcs::{
    Ctx, Engine, EngineError, FaultPlan, NetworkModel, Partition, RunStats, VertexProgram,
};

use crate::{
    account_index_gather, check, Dir, FloodMsg, IbfsEntry, IbfsTables, FLOOD_MSG_BYTES,
    IBFS_ENTRY_BYTES,
};

/// Per-vertex status arrays of Algorithm 3 — the footnote's hash-table
/// representation of the sparse status array, one per direction.
#[derive(Clone, Debug, Default)]
pub struct DrlState {
    /// Ranks of sources whose forward flood visited this vertex.
    pub fwd_visited: HashSet<u32>,
    /// Ranks of sources whose backward flood visited this vertex.
    pub bwd_visited: HashSet<u32>,
}

/// The Algorithm-3 vertex program.
pub struct DrlProgram<'a> {
    ord: &'a OrderAssignment,
    /// Apply the Line-14 `Check` pruning *during* the flood (the final
    /// pass always re-checks). Disabling it is the ablation of Exp-style
    /// question "what does eager pruning buy?" — the index is unchanged,
    /// the traffic is not.
    eager_check: bool,
}

impl VertexProgram for DrlProgram<'_> {
    type State = DrlState;
    type Msg = FloodMsg;
    type Global = IbfsTables;
    type Update = IbfsEntry;

    fn init_state(&self, _v: VertexId) -> DrlState {
        DrlState::default()
    }

    fn compute(
        &self,
        ctx: &mut Ctx<'_, FloodMsg, IbfsEntry>,
        w: VertexId,
        state: &mut DrlState,
        msgs: &[FloodMsg],
        global: &IbfsTables,
    ) {
        let my_rank = self.ord.rank(w);
        if ctx.superstep == 0 {
            // Lines 4-8: mark self visited and start both floods.
            state.fwd_visited.insert(my_rank);
            state.bwd_visited.insert(my_rank);
            for &nbr in ctx.out_neighbors(w) {
                ctx.send(
                    nbr,
                    FloodMsg {
                        src_rank: my_rank,
                        dir: Dir::Fwd,
                    },
                );
            }
            for &nbr in ctx.in_neighbors(w) {
                ctx.send(
                    nbr,
                    FloodMsg {
                        src_rank: my_rank,
                        dir: Dir::Bwd,
                    },
                );
            }
            return;
        }

        for msg in msgs {
            let r = msg.src_rank;
            let visited = match msg.dir {
                Dir::Fwd => &mut state.fwd_visited,
                Dir::Bwd => &mut state.bwd_visited,
            };
            // Line 12: already visited by this source.
            if visited.contains(&r) {
                continue;
            }
            // Line 13: only higher-order sources expand through us.
            if r >= my_rank {
                continue;
            }
            // Line 14: expansion pruning via Check().
            if self.eager_check && check(global, msg.dir, r, visited) {
                continue;
            }
            // Line 15: mark visited.
            visited.insert(r);
            // Line 18: share the inverted-list entry.
            ctx.publish(IbfsEntry {
                visited_rank: my_rank,
                src_rank: r,
                dir: msg.dir,
            });
            // Lines 16-17: continue the flood.
            let nbrs = match msg.dir {
                Dir::Fwd => ctx.out_neighbors(w),
                Dir::Bwd => ctx.in_neighbors(w),
            };
            for &nbr in nbrs {
                ctx.send(nbr, *msg);
            }
        }
    }

    fn apply_updates(&self, global: &mut IbfsTables, updates: &[IbfsEntry]) {
        for u in updates {
            global.apply(u);
        }
    }

    fn finalize(&self, _v: VertexId, state: &mut DrlState, global: &IbfsTables) {
        // Lines 19-20: re-check every visited mark now that the inverted
        // lists are complete.
        reach_obs::record(
            "drl.finalize.candidates",
            (state.fwd_visited.len() + state.bwd_visited.len()) as u64,
        );
        retain_checked(&mut state.fwd_visited, Dir::Fwd, global);
        retain_checked(&mut state.bwd_visited, Dir::Bwd, global);
        reach_obs::record(
            "drl.finalize.survivors",
            (state.fwd_visited.len() + state.bwd_visited.len()) as u64,
        );
    }

    fn msg_bytes(&self, _m: &FloodMsg) -> usize {
        FLOOD_MSG_BYTES
    }

    fn update_bytes(&self, _u: &IbfsEntry) -> usize {
        IBFS_ENTRY_BYTES
    }
}

/// Removes from `visited` every rank whose `Check` now fires.
fn retain_checked(visited: &mut HashSet<u32>, dir: Dir, global: &IbfsTables) {
    let doomed: Vec<u32> = visited
        .iter()
        .copied()
        .filter(|&r| check(global, dir, r, visited))
        .collect();
    for r in doomed {
        visited.remove(&r);
    }
}

/// Runs distributed DRL on `nodes` simulated computation nodes; returns the
/// TOL-identical index and the run statistics (including the final gather
/// of the index onto one machine).
pub fn run(
    g: &DiGraph,
    ord: &OrderAssignment,
    nodes: usize,
    network: NetworkModel,
) -> (ReachIndex, RunStats) {
    run_with_options(g, ord, nodes, network, true)
}

/// [`run`] with the eager `Check` pruning toggled — the knob behind the
/// `ablations` bench.
pub fn run_with_options(
    g: &DiGraph,
    ord: &OrderAssignment,
    nodes: usize,
    network: NetworkModel,
    eager_check: bool,
) -> (ReachIndex, RunStats) {
    run_under_faults(g, ord, nodes, network, eager_check, None, None)
        .expect("fault-free DRL cannot fail")
}

/// [`run`] under an injected [`FaultPlan`]. DRL floods are confluent
/// (min-rank wins, re-checked in the final pass), so the index is
/// bit-identical to the fault-free build for every recoverable schedule;
/// only the stats change.
pub fn run_with_faults(
    g: &DiGraph,
    ord: &OrderAssignment,
    nodes: usize,
    network: NetworkModel,
    faults: FaultPlan,
) -> Result<(ReachIndex, RunStats), EngineError> {
    run_under_faults(g, ord, nodes, network, true, Some(faults), None)
}

/// [`run`] with every knob exposed: the eager-`Check` toggle, an optional
/// fault plan, and the engine worker-thread count (`None` = the engine
/// default, i.e. `REACH_ENGINE_THREADS` or available parallelism). The
/// thread count never changes the index — only wall-clock.
pub fn run_configured(
    g: &DiGraph,
    ord: &OrderAssignment,
    nodes: usize,
    network: NetworkModel,
    eager_check: bool,
    faults: Option<FaultPlan>,
    threads: Option<usize>,
) -> Result<(ReachIndex, RunStats), EngineError> {
    run_under_faults(g, ord, nodes, network, eager_check, faults, threads)
}

fn run_under_faults(
    g: &DiGraph,
    ord: &OrderAssignment,
    nodes: usize,
    network: NetworkModel,
    eager_check: bool,
    faults: Option<FaultPlan>,
    threads: Option<usize>,
) -> Result<(ReachIndex, RunStats), EngineError> {
    let mut engine = Engine::new(g, Partition::modulo(nodes)).with_network(network);
    if let Some(plan) = faults {
        engine = engine.with_faults(plan);
    }
    if let Some(threads) = threads {
        engine = engine.with_threads(threads);
    }
    let flood_span = reach_obs::span("drl.flood");
    let out = engine.run(&DrlProgram { ord, eager_check })?;
    drop(flood_span);

    let _obs_gather = reach_obs::span("drl.gather");
    let mut idx = ReachIndex::new(g.num_vertices());
    for (w, state) in out.states.iter().enumerate() {
        reach_obs::record("index.label_size.in", state.fwd_visited.len() as u64);
        reach_obs::record("index.label_size.out", state.bwd_visited.len() as u64);
        for &r in &state.fwd_visited {
            idx.add_in_label(w as VertexId, ord.vertex_at_rank(r));
        }
        for &r in &state.bwd_visited {
            idx.add_out_label(w as VertexId, ord.vertex_at_rank(r));
        }
    }
    idx.finalize();

    let mut stats = out.stats;
    account_index_gather(&mut stats, &network, nodes, idx.num_entries());
    Ok((idx, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::{fixtures, gen, OrderKind};

    #[test]
    fn matches_tol_on_paper_graph() {
        let g = fixtures::paper_graph();
        for kind in [OrderKind::InverseId, OrderKind::DegreeProduct] {
            let ord = OrderAssignment::new(&g, kind);
            let (idx, _) = run(&g, &ord, 4, NetworkModel::default());
            assert_eq!(idx, reach_tol::naive::build(&g, &ord), "{kind:?}");
        }
    }

    #[test]
    fn identical_index_for_every_node_count() {
        let g = gen::gnm(40, 130, 21);
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let oracle = reach_tol::naive::build(&g, &ord);
        for nodes in [1, 2, 3, 8, 32] {
            let (idx, _) = run(&g, &ord, nodes, NetworkModel::default());
            assert_eq!(idx, oracle, "nodes={nodes}");
        }
    }

    #[test]
    fn matches_tol_on_random_graphs() {
        for seed in 0..6 {
            let g = gen::gnm(45, 150, seed);
            let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
            let (idx, _) = run(&g, &ord, 4, NetworkModel::default());
            assert_eq!(idx, reach_tol::naive::build(&g, &ord), "seed {seed}");
        }
    }

    #[test]
    fn cyclic_graph_self_labels_match_tol() {
        let g = fixtures::cycle(5);
        let ord = OrderAssignment::new(&g, OrderKind::InverseId);
        let (idx, _) = run(&g, &ord, 2, NetworkModel::default());
        assert_eq!(idx, reach_tol::naive::build(&g, &ord));
    }

    #[test]
    fn faulty_build_is_bit_identical_and_reports_recovery() {
        let g = fixtures::paper_graph();
        let ord = OrderAssignment::new(&g, OrderKind::DegreeProduct);
        let (baseline, _) = run(&g, &ord, 4, NetworkModel::default());
        let plan = FaultPlan::new(23).with_crash(1, 2).with_message_drops(0.25);
        let (idx, stats) = run_with_faults(&g, &ord, 4, NetworkModel::default(), plan).unwrap();
        assert_eq!(idx, baseline);
        assert_eq!(stats.recovery.recoveries, 1);
        assert!(stats.recovery.replayed_supersteps > 0);
        assert!(stats.recovery.retransmits > 0);
    }

    #[test]
    fn stats_report_traffic_and_supersteps() {
        let g = fixtures::paper_graph();
        let ord = OrderAssignment::new(&g, OrderKind::InverseId);
        let (_, stats) = run(&g, &ord, 4, NetworkModel::default());
        assert!(stats.supersteps > 1);
        assert!(stats.comm.remote_messages > 0);
        assert!(stats.comm.broadcast_bytes > 0, "inverted lists are shared");
        assert!(stats.comm_seconds > 0.0);
    }
}
