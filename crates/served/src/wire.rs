//! The `reach-served` wire format: length-prefixed binary frames.
//!
//! This module is the *implementation* of the protocol; the normative
//! specification an independent client should be written against is
//! `docs/PROTOCOL.md`. The two are kept in lockstep — every constant
//! here appears in the spec and vice versa.
//!
//! # Frame layout
//!
//! Every frame, both directions, is a fixed 14-byte header followed by a
//! length-delimited payload (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     payload_len : u32   (bytes after the header)
//! 4       1     version     : u8    (currently 1)
//! 5       1     opcode      : u8
//! 6       8     request_id  : u64   (echoed verbatim in the response)
//! 14      …     payload     (payload_len bytes)
//! ```
//!
//! The length prefix makes every frame skippable without understanding
//! its opcode — the basis of the forward-compatibility rules: an unknown
//! opcode is answered with [`ErrorCode::UnknownOpcode`] and the
//! connection stays synchronized, while malformed *framing* (bad
//! version, oversized length) is unrecoverable and closes the connection
//! after a fatal error frame ([`ErrorCode::is_fatal`]).

use std::io::{self, Read};

use reach_graph::VertexId;
use reach_serve::ServeError;

/// Protocol version this build speaks. A server rejects frames carrying
/// any other version with [`ErrorCode::UnsupportedVersion`] (fatal).
pub const VERSION: u8 = 1;

/// Bytes of header preceding every payload.
pub const HEADER_LEN: usize = 14;

/// Default cap on `payload_len`; larger frames are rejected with
/// [`ErrorCode::FrameTooLarge`] (fatal) before any allocation.
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

/// Request and response opcodes. Responses set the high bit of the
/// request opcode they answer; [`ERROR`](opcode::ERROR) may answer any
/// request.
pub mod opcode {
    /// Reachability batch: answered through the batch/ticket machinery.
    pub const QUERY: u8 = 0x01;
    /// Witness batch: answered from one epoch snapshot.
    pub const WITNESS: u8 = 0x02;
    /// Hot-reload the served index from a `.ridx` file path.
    pub const RELOAD: u8 = 0x03;
    /// Begin graceful drain: stop admission, finish in-flight work.
    pub const DRAIN: u8 = 0x04;
    /// Liveness probe.
    pub const PING: u8 = 0x05;
    /// Serving counters snapshot.
    pub const STATS: u8 = 0x06;

    /// Response to [`QUERY`].
    pub const QUERY_OK: u8 = 0x81;
    /// Response to [`WITNESS`].
    pub const WITNESS_OK: u8 = 0x82;
    /// Response to [`RELOAD`].
    pub const RELOAD_OK: u8 = 0x83;
    /// Response to [`DRAIN`].
    pub const DRAIN_OK: u8 = 0x84;
    /// Response to [`PING`].
    pub const PONG: u8 = 0x85;
    /// Response to [`STATS`].
    pub const STATS_OK: u8 = 0x86;
    /// Typed failure response to any request.
    pub const ERROR: u8 = 0xFF;
}

/// Batch priority on the wire, mapping onto
/// [`reach_serve::Priority`]. Any other byte is
/// [`ErrorCode::BadPayload`].
pub mod priority {
    /// [`reach_serve::Priority::Low`].
    pub const LOW: u8 = 0;
    /// [`reach_serve::Priority::Normal`].
    pub const NORMAL: u8 = 1;
    /// [`reach_serve::Priority::High`].
    pub const HIGH: u8 = 2;
}

/// Typed error codes carried by `ERROR` frames.
///
/// Codes below 64 leave the connection synchronized and usable; codes at
/// or above 64 are **fatal**: the server writes the error frame and then
/// closes the connection, because framing can no longer be trusted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// [`ServeError::Overloaded`] — admission-control queue full.
    Overloaded = 1,
    /// [`ServeError::DeadlineExceeded`].
    DeadlineExceeded = 2,
    /// [`ServeError::InvalidVertex`] — a vertex the index does not cover.
    InvalidVertex = 3,
    /// [`ServeError::ShuttingDown`] — the server is draining.
    ShuttingDown = 4,
    /// [`ServeError::Degraded`] — shed by a degradation tier.
    Degraded = 5,
    /// [`ServeError::SwapFailed`] — a reload install failed atomically;
    /// the previous generation keeps serving.
    SwapFailed = 6,
    /// A per-connection quota (in-flight window or query-rate bucket)
    /// was exhausted; retry after backoff.
    QuotaExceeded = 16,
    /// The opcode is not known to this server version. The frame was
    /// skipped whole; the connection stays usable.
    UnknownOpcode = 17,
    /// The index file named by a RELOAD could not be read or decoded.
    ReloadFailed = 18,
    /// The payload of a known opcode did not decode (truncated counts,
    /// trailing bytes, bad priority, non-UTF-8 path, …).
    BadPayload = 19,
    /// The batch exceeds the server's per-frame query cap.
    BatchTooLarge = 20,
    /// Fatal: the frame header did not parse.
    MalformedFrame = 64,
    /// Fatal: `payload_len` exceeds the server's frame cap.
    FrameTooLarge = 65,
    /// Fatal: the version byte is not one this server speaks.
    UnsupportedVersion = 66,
}

impl ErrorCode {
    /// Decodes a wire code; unknown codes (a newer peer) are `None`.
    pub fn from_u16(code: u16) -> Option<ErrorCode> {
        Some(match code {
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::DeadlineExceeded,
            3 => ErrorCode::InvalidVertex,
            4 => ErrorCode::ShuttingDown,
            5 => ErrorCode::Degraded,
            6 => ErrorCode::SwapFailed,
            16 => ErrorCode::QuotaExceeded,
            17 => ErrorCode::UnknownOpcode,
            18 => ErrorCode::ReloadFailed,
            19 => ErrorCode::BadPayload,
            20 => ErrorCode::BatchTooLarge,
            64 => ErrorCode::MalformedFrame,
            65 => ErrorCode::FrameTooLarge,
            66 => ErrorCode::UnsupportedVersion,
            _ => return None,
        })
    }

    /// Fatal codes close the connection after the error frame.
    pub fn is_fatal(self) -> bool {
        self as u16 >= 64
    }

    /// Whether a client should retry the request after backoff —
    /// transient server conditions, mirroring
    /// [`reach_serve::RetryPolicy`]'s transient set plus the quota
    /// bucket.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Overloaded
                | ErrorCode::Degraded
                | ErrorCode::QuotaExceeded
                | ErrorCode::DeadlineExceeded
        )
    }

    /// Maps a service rejection onto its wire code and human-readable
    /// detail message.
    pub fn from_serve_error(err: &ServeError) -> (ErrorCode, String) {
        let code = match err {
            ServeError::Overloaded { .. } => ErrorCode::Overloaded,
            ServeError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
            ServeError::InvalidVertex { .. } => ErrorCode::InvalidVertex,
            ServeError::ShuttingDown => ErrorCode::ShuttingDown,
            ServeError::Degraded { .. } => ErrorCode::Degraded,
            ServeError::SwapFailed { .. } => ErrorCode::SwapFailed,
        };
        (code, err.to_string())
    }
}

/// One parsed frame, either direction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Protocol version byte.
    pub version: u8,
    /// Opcode (see [`opcode`]).
    pub opcode: u8,
    /// Request correlation id, echoed in responses.
    pub request_id: u64,
    /// Opcode-specific payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Serializes the frame (header + payload) into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.push(self.version);
        out.push(self.opcode);
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// A version-1 frame with the given opcode, id, and payload.
    pub fn new(opcode: u8, request_id: u64, payload: Vec<u8>) -> Frame {
        Frame {
            version: VERSION,
            opcode,
            request_id,
            payload,
        }
    }
}

/// Why an incremental frame read could not produce a frame.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the stream (mid-frame or between frames; the flag
    /// distinguishes them).
    Eof {
        /// True when bytes of an unfinished frame were already buffered.
        mid_frame: bool,
    },
    /// Framing violation — the matching fatal [`ErrorCode`] plus the
    /// request id to address the error frame to (0 when the header did
    /// not get far enough to carry one).
    Fatal {
        /// Which fatal framing rule was violated.
        code: ErrorCode,
        /// Request id from the offending header, or 0.
        request_id: u64,
    },
    /// Underlying socket error other than the timeout family.
    Io(io::Error),
}

/// Outcome of one [`FrameReader::poll`] call.
#[derive(Debug)]
pub enum Polled {
    /// A complete frame.
    Frame(Frame),
    /// The read timed out (or would block) before a frame completed;
    /// poll again after checking shutdown flags.
    Pending,
}

/// Incremental frame parser over a non-blocking or read-timeout socket.
///
/// Buffers partial reads so a frame split across arbitrarily many TCP
/// segments (or interleaved with poll timeouts) is reassembled without
/// ever losing stream position — the property that makes read timeouts
/// safe to use as a shutdown-flag poll interval.
pub struct FrameReader {
    buf: Vec<u8>,
    max_frame: u32,
}

impl FrameReader {
    /// A reader enforcing the given payload-size cap.
    pub fn new(max_frame: u32) -> FrameReader {
        FrameReader {
            buf: Vec::with_capacity(4096),
            max_frame,
        }
    }

    /// Attempts to read one frame from `r`. Returns [`Polled::Pending`]
    /// on timeout so callers can re-check shutdown flags; framing
    /// violations are [`ReadError::Fatal`] with the code to report.
    pub fn poll(&mut self, r: &mut impl Read) -> Result<Polled, ReadError> {
        loop {
            if let Some(frame) = self.try_parse()? {
                return Ok(Polled::Frame(frame));
            }
            let mut chunk = [0u8; 4096];
            match r.read(&mut chunk) {
                Ok(0) => {
                    return Err(ReadError::Eof {
                        mid_frame: !self.buf.is_empty(),
                    })
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(Polled::Pending)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ReadError::Io(e)),
            }
        }
    }

    /// Parses a complete buffered frame, if any, validating the framing
    /// rules (version, size cap) as soon as the header is available.
    fn try_parse(&mut self) -> Result<Option<Frame>, ReadError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let payload_len = u32::from_le_bytes(self.buf[0..4].try_into().unwrap());
        let version = self.buf[4];
        let opcode = self.buf[5];
        let request_id = u64::from_le_bytes(self.buf[6..14].try_into().unwrap());
        if version != VERSION {
            return Err(ReadError::Fatal {
                code: ErrorCode::UnsupportedVersion,
                request_id,
            });
        }
        if payload_len > self.max_frame {
            return Err(ReadError::Fatal {
                code: ErrorCode::FrameTooLarge,
                request_id,
            });
        }
        let total = HEADER_LEN + payload_len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[HEADER_LEN..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(Frame {
            version,
            opcode,
            request_id,
            payload,
        }))
    }
}

/// Bounds-checked little-endian payload cursor; every decoder below is
/// written against it so truncated or trailing bytes surface as
/// [`ErrorCode::BadPayload`], never a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Decode failure of a known opcode's payload (maps to
/// [`ErrorCode::BadPayload`]).
#[derive(Debug, PartialEq, Eq)]
pub struct PayloadError(pub &'static str);

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PayloadError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(PayloadError("payload truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, PayloadError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, PayloadError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, PayloadError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PayloadError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn finish(&self) -> Result<(), PayloadError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(PayloadError("trailing bytes after payload"))
        }
    }
}

/// A decoded QUERY or WITNESS request payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchRequest {
    /// Per-batch deadline in milliseconds; 0 means none.
    pub deadline_ms: u32,
    /// Wire priority byte (see [`priority`]).
    pub priority: u8,
    /// The `(source, target)` pairs, in submission order.
    pub pairs: Vec<(VertexId, VertexId)>,
}

/// Encodes a QUERY/WITNESS payload: `u32 deadline_ms, u8 priority,
/// u32 count, count × (u32 s, u32 t)`.
pub fn encode_batch(req: &BatchRequest) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + 8 * req.pairs.len());
    out.extend_from_slice(&req.deadline_ms.to_le_bytes());
    out.push(req.priority);
    out.extend_from_slice(&(req.pairs.len() as u32).to_le_bytes());
    for &(s, t) in &req.pairs {
        out.extend_from_slice(&s.to_le_bytes());
        out.extend_from_slice(&t.to_le_bytes());
    }
    out
}

/// Decodes a QUERY/WITNESS payload (see [`encode_batch`]).
pub fn decode_batch(payload: &[u8]) -> Result<BatchRequest, PayloadError> {
    let mut c = Cursor::new(payload);
    let deadline_ms = c.u32()?;
    let priority = c.u8()?;
    if priority > priority::HIGH {
        return Err(PayloadError("unknown priority byte"));
    }
    let count = c.u32()? as usize;
    // The count must be consistent with the bytes actually present —
    // a hostile count cannot force an allocation beyond the frame cap.
    if payload.len().saturating_sub(c.pos) != count * 8 {
        return Err(PayloadError("pair count disagrees with payload length"));
    }
    let mut pairs = Vec::with_capacity(count);
    for _ in 0..count {
        let s = c.u32()?;
        let t = c.u32()?;
        pairs.push((s, t));
    }
    c.finish()?;
    Ok(BatchRequest {
        deadline_ms,
        priority,
        pairs,
    })
}

/// Encodes a QUERY_OK payload: `u64 generation, u32 count, count ×
/// u8 answer` (0 = unreachable, 1 = reachable).
pub fn encode_query_ok(generation: u64, answers: &[bool]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + answers.len());
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&(answers.len() as u32).to_le_bytes());
    out.extend(answers.iter().map(|&a| a as u8));
    out
}

/// Decodes a QUERY_OK payload into `(generation, answers)`.
pub fn decode_query_ok(payload: &[u8]) -> Result<(u64, Vec<bool>), PayloadError> {
    let mut c = Cursor::new(payload);
    let generation = c.u64()?;
    let count = c.u32()? as usize;
    let bytes = c.take(count)?;
    if bytes.iter().any(|&b| b > 1) {
        return Err(PayloadError("answer byte not 0 or 1"));
    }
    let answers = bytes.iter().map(|&b| b == 1).collect();
    c.finish()?;
    Ok((generation, answers))
}

/// Encodes a WITNESS_OK payload: `u64 generation, u32 count, count ×
/// (u8 reachable, u32 witness)` — `witness` is meaningful only when
/// `reachable == 1` (it is written as 0 otherwise).
pub fn encode_witness_ok(generation: u64, witnesses: &[Option<VertexId>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + 5 * witnesses.len());
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&(witnesses.len() as u32).to_le_bytes());
    for w in witnesses {
        out.push(w.is_some() as u8);
        out.extend_from_slice(&w.unwrap_or(0).to_le_bytes());
    }
    out
}

/// Decodes a WITNESS_OK payload into `(generation, witnesses)`.
#[allow(clippy::type_complexity)]
pub fn decode_witness_ok(payload: &[u8]) -> Result<(u64, Vec<Option<VertexId>>), PayloadError> {
    let mut c = Cursor::new(payload);
    let generation = c.u64()?;
    let count = c.u32()? as usize;
    if payload.len().saturating_sub(c.pos) != count * 5 {
        return Err(PayloadError("witness count disagrees with payload length"));
    }
    let mut witnesses = Vec::with_capacity(count);
    for _ in 0..count {
        let flag = c.u8()?;
        let w = c.u32()?;
        witnesses.push(match flag {
            0 => None,
            1 => Some(w),
            _ => return Err(PayloadError("witness flag not 0 or 1")),
        });
    }
    c.finish()?;
    Ok((generation, witnesses))
}

/// Encodes a RELOAD payload: `u32 path_len, path bytes` (UTF-8). An
/// empty path asks the server to reload its startup index path.
pub fn encode_reload(path: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + path.len());
    out.extend_from_slice(&(path.len() as u32).to_le_bytes());
    out.extend_from_slice(path.as_bytes());
    out
}

/// Decodes a RELOAD payload into its path.
pub fn decode_reload(payload: &[u8]) -> Result<String, PayloadError> {
    let mut c = Cursor::new(payload);
    let len = c.u32()? as usize;
    let bytes = c.take(len)?;
    c.finish()?;
    String::from_utf8(bytes.to_vec()).map_err(|_| PayloadError("reload path is not UTF-8"))
}

/// Encodes a RELOAD_OK payload: `u64 new_generation`.
pub fn encode_reload_ok(generation: u64) -> Vec<u8> {
    generation.to_le_bytes().to_vec()
}

/// Decodes a RELOAD_OK payload.
pub fn decode_reload_ok(payload: &[u8]) -> Result<u64, PayloadError> {
    let mut c = Cursor::new(payload);
    let generation = c.u64()?;
    c.finish()?;
    Ok(generation)
}

/// The counters a STATS_OK frame carries — a wire projection of
/// [`reach_serve::ServeStats`] plus the server's own connection count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Generation currently being served.
    pub generation: u64,
    /// Batches submitted through the wire and in-process combined.
    pub submitted: u64,
    /// Batches fully answered.
    pub answered: u64,
    /// Batches rejected (all causes).
    pub rejected: u64,
    /// Batches shed by degradation tiers.
    pub shed: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Index hot-swaps installed (reloads included).
    pub swaps: u64,
    /// Currently open client connections.
    pub connections: u64,
}

/// Encodes a STATS_OK payload: nine `u64` fields in declaration order.
pub fn encode_stats_ok(s: &WireStats) -> Vec<u8> {
    let fields = [
        s.generation,
        s.submitted,
        s.answered,
        s.rejected,
        s.shed,
        s.cache_hits,
        s.cache_misses,
        s.swaps,
        s.connections,
    ];
    let mut out = Vec::with_capacity(8 * fields.len());
    for f in fields {
        out.extend_from_slice(&f.to_le_bytes());
    }
    out
}

/// Decodes a STATS_OK payload.
pub fn decode_stats_ok(payload: &[u8]) -> Result<WireStats, PayloadError> {
    let mut c = Cursor::new(payload);
    let s = WireStats {
        generation: c.u64()?,
        submitted: c.u64()?,
        answered: c.u64()?,
        rejected: c.u64()?,
        shed: c.u64()?,
        cache_hits: c.u64()?,
        cache_misses: c.u64()?,
        swaps: c.u64()?,
        connections: c.u64()?,
    };
    c.finish()?;
    Ok(s)
}

/// Encodes an ERROR payload: `u16 code, u16 reserved (0), u32 msg_len,
/// msg bytes` (UTF-8).
pub fn encode_error(code: ErrorCode, message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + message.len());
    out.extend_from_slice(&(code as u16).to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&(message.len() as u32).to_le_bytes());
    out.extend_from_slice(message.as_bytes());
    out
}

/// Decodes an ERROR payload into `(raw code, decoded code, message)` —
/// the raw code survives even when this build does not know it.
pub fn decode_error(payload: &[u8]) -> Result<(u16, Option<ErrorCode>, String), PayloadError> {
    let mut c = Cursor::new(payload);
    let raw = c.u16()?;
    let _reserved = c.u16()?;
    let len = c.u32()? as usize;
    let bytes = c.take(len)?;
    c.finish()?;
    let message =
        String::from_utf8(bytes.to_vec()).map_err(|_| PayloadError("error message not UTF-8"))?;
    Ok((raw, ErrorCode::from_u16(raw), message))
}

/// Builds a ready-to-send ERROR frame for `request_id`.
pub fn error_frame(request_id: u64, code: ErrorCode, message: &str) -> Vec<u8> {
    Frame::new(opcode::ERROR, request_id, encode_error(code, message)).encode()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_frame(f: &Frame) -> Frame {
        let bytes = f.encode();
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
        match reader.poll(&mut &bytes[..]) {
            Ok(Polled::Frame(out)) => out,
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    fn frames_roundtrip() {
        let f = Frame::new(opcode::QUERY, 42, vec![1, 2, 3]);
        assert_eq!(roundtrip_frame(&f), f);
        let empty = Frame::new(opcode::PING, u64::MAX, Vec::new());
        assert_eq!(roundtrip_frame(&empty), empty);
    }

    #[test]
    fn split_reads_reassemble() {
        let f = Frame::new(opcode::WITNESS, 7, vec![9; 100]);
        let bytes = f.encode();
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
        for chunk in bytes.chunks(3) {
            let mut src = chunk;
            match reader.poll(&mut src) {
                Ok(Polled::Frame(out)) => {
                    assert_eq!(out, f);
                    return;
                }
                // Chunk exhausted: read() returns 0, which poll reports
                // as EOF — feed the next chunk.
                Err(ReadError::Eof { .. }) => continue,
                other => panic!("unexpected {other:?}"),
            }
        }
        panic!("frame never completed");
    }

    #[test]
    fn bad_version_is_fatal() {
        let mut bytes = Frame::new(opcode::PING, 3, Vec::new()).encode();
        bytes[4] = 9;
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
        match reader.poll(&mut &bytes[..]) {
            Err(ReadError::Fatal { code, request_id }) => {
                assert_eq!(code, ErrorCode::UnsupportedVersion);
                assert_eq!(request_id, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn oversized_length_is_fatal_before_allocation() {
        let mut bytes = Frame::new(opcode::QUERY, 8, Vec::new()).encode();
        bytes[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut reader = FrameReader::new(1024);
        match reader.poll(&mut &bytes[..]) {
            Err(ReadError::Fatal { code, .. }) => assert_eq!(code, ErrorCode::FrameTooLarge),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn batch_payloads_roundtrip() {
        let req = BatchRequest {
            deadline_ms: 250,
            priority: priority::HIGH,
            pairs: vec![(0, 1), (5, 5), (u32::MAX - 1, 3)],
        };
        assert_eq!(decode_batch(&encode_batch(&req)), Ok(req));
    }

    #[test]
    fn batch_count_must_match_bytes() {
        let mut p = encode_batch(&BatchRequest {
            deadline_ms: 0,
            priority: priority::NORMAL,
            pairs: vec![(1, 2)],
        });
        // Claim two pairs while carrying one.
        p[5..9].copy_from_slice(&2u32.to_le_bytes());
        assert!(decode_batch(&p).is_err());
        // Truncate mid-pair.
        let req = BatchRequest {
            deadline_ms: 0,
            priority: priority::NORMAL,
            pairs: vec![(1, 2), (3, 4)],
        };
        let full = encode_batch(&req);
        assert!(decode_batch(&full[..full.len() - 3]).is_err());
        // Trailing garbage.
        let mut extended = full.clone();
        extended.push(0);
        assert!(decode_batch(&extended).is_err());
    }

    #[test]
    fn bad_priority_rejected() {
        let mut p = encode_batch(&BatchRequest {
            deadline_ms: 0,
            priority: priority::NORMAL,
            pairs: vec![],
        });
        p[4] = 7;
        assert!(decode_batch(&p).is_err());
    }

    #[test]
    fn result_payloads_roundtrip() {
        let answers = vec![true, false, true];
        assert_eq!(
            decode_query_ok(&encode_query_ok(9, &answers)),
            Ok((9, answers))
        );
        let wits = vec![Some(4u32), None, Some(0)];
        assert_eq!(
            decode_witness_ok(&encode_witness_ok(2, &wits)),
            Ok((2, wits))
        );
        assert_eq!(decode_reload_ok(&encode_reload_ok(17)), Ok(17));
        assert_eq!(
            decode_reload(&encode_reload("/tmp/x.ridx")).as_deref(),
            Ok("/tmp/x.ridx")
        );
        let stats = WireStats {
            generation: 1,
            submitted: 2,
            answered: 3,
            rejected: 4,
            shed: 5,
            cache_hits: 6,
            cache_misses: 7,
            swaps: 8,
            connections: 9,
        };
        assert_eq!(decode_stats_ok(&encode_stats_ok(&stats)), Ok(stats));
    }

    #[test]
    fn error_payloads_roundtrip_and_classify() {
        let p = encode_error(ErrorCode::QuotaExceeded, "slow down");
        let (raw, code, msg) = decode_error(&p).unwrap();
        assert_eq!(raw, 16);
        assert_eq!(code, Some(ErrorCode::QuotaExceeded));
        assert_eq!(msg, "slow down");
        assert!(ErrorCode::QuotaExceeded.is_retryable());
        assert!(!ErrorCode::QuotaExceeded.is_fatal());
        assert!(ErrorCode::FrameTooLarge.is_fatal());
        assert!(!ErrorCode::InvalidVertex.is_retryable());
        // Unknown code from a newer peer decodes raw.
        let (raw, code, _) = decode_error(&encode_error_raw(999, "future")).unwrap();
        assert_eq!(raw, 999);
        assert_eq!(code, None);
    }

    fn encode_error_raw(code: u16, message: &str) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&code.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&(message.len() as u32).to_le_bytes());
        out.extend_from_slice(message.as_bytes());
        out
    }

    #[test]
    fn serve_errors_map_to_codes() {
        let cases: Vec<(ServeError, ErrorCode)> = vec![
            (
                ServeError::Overloaded {
                    shard: 0,
                    capacity: 1,
                },
                ErrorCode::Overloaded,
            ),
            (ServeError::DeadlineExceeded, ErrorCode::DeadlineExceeded),
            (
                ServeError::InvalidVertex {
                    vertex: 3,
                    num_vertices: 2,
                },
                ErrorCode::InvalidVertex,
            ),
            (ServeError::ShuttingDown, ErrorCode::ShuttingDown),
            (
                ServeError::Degraded {
                    tier: reach_serve::DegradeTier::SheddingLow,
                },
                ErrorCode::Degraded,
            ),
            (
                ServeError::SwapFailed { generation: 1 },
                ErrorCode::SwapFailed,
            ),
        ];
        for (err, want) in cases {
            let (code, msg) = ErrorCode::from_serve_error(&err);
            assert_eq!(code, want);
            assert!(!msg.is_empty());
        }
    }
}
