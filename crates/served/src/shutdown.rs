//! SIGTERM/SIGINT → drain-flag bridge for the `reach-served` binary.
//!
//! The workspace carries no external crates, so this is a minimal raw
//! FFI binding to `signal(2)`: the handler only sets an atomic flag, and
//! the binary's main loop polls [`termination_requested`] and turns it
//! into a [`Server::drain`](crate::server::Server::drain) — all the
//! actual work happens on ordinary threads, never in the handler.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; never cleared.
static TERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    /// `SIGINT` on every unix this builds on.
    pub const SIGINT: i32 = 2;
    /// `SIGTERM` on every unix this builds on.
    pub const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        fn raise(signum: i32) -> i32;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: one atomic store.
        super::TERM.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }

    pub fn raise_term() {
        unsafe {
            raise(SIGTERM);
        }
    }
}

/// Installs the termination handler for SIGTERM and SIGINT. A no-op on
/// non-unix targets (where only wire DRAIN triggers a graceful drain).
pub fn install() {
    #[cfg(unix)]
    imp::install();
}

/// Whether a termination signal has been received since [`install`].
pub fn termination_requested() -> bool {
    TERM.load(Ordering::SeqCst)
}

/// Sends this process a SIGTERM (unix only; no-op elsewhere) — exists so
/// the lifecycle test can exercise the real signal path in-process.
pub fn raise_term_for_test() {
    #[cfg(unix)]
    imp::raise_term();
}
