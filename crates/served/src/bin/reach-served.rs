//! `reach-served` — serve a `.ridx` reachability index over TCP.
//!
//! ```text
//! reach-served --index <index.ridx> [--listen 127.0.0.1:7411]
//!              [--compressed | --mmap]
//!              [--workers N] [--queue-capacity N] [--cache N]
//!              [--default-deadline-ms N] [--max-inflight N]
//!              [--max-batch N] [--qps N] [--max-frame BYTES]
//!              [--drain-grace-ms N]
//! ```
//!
//! Build an index with the `reach` CLI (`reach build edges.txt -o
//! index.ridx`), then point this binary at it. SIGTERM/SIGINT or a wire
//! `DRAIN` frame begin a graceful drain: in-flight batches finish, new
//! work is rejected with `SHUTTING_DOWN`, and the process exits once
//! connections quiesce (or the drain grace expires). `docs/OPERATIONS.md`
//! is the full runbook; `docs/PROTOCOL.md` specifies the wire format.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use reach_serve::ServeConfig;
use reach_served::server::{IndexMode, ServedConfig, Server};
use reach_served::shutdown;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("reach-served: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "reach-served — serve a .ridx reachability index over TCP\n\
         \n\
         USAGE:\n\
           reach-served --index <index.ridx> [--listen ADDR:PORT]\n\
         \n\
         OPTIONS (defaults in parentheses):\n\
           --index PATH              index to serve; also the default RELOAD path (required)\n\
           --listen ADDR             listen address (127.0.0.1:7411)\n\
           --compressed              serve a v2 index from its compressed in-memory image\n\
           --mmap                    memory-map a v2 index and serve out-of-core\n\
           --workers N               service worker threads = label shards (4)\n\
           --queue-capacity N        per-shard admission queue, in sub-batches (1024)\n\
           --cache N                 result-cache entries, 0 disables (16384)\n\
           --default-deadline-ms N   deadline for batches sent without one, 0 = none (0)\n\
           --max-inflight N          per-connection outstanding-query window (64)\n\
           --max-batch N             max (s,t) pairs per frame (4096)\n\
           --qps N                   per-connection queries/sec token bucket, 0 = off (0)\n\
           --max-frame BYTES         frame payload cap (1048576)\n\
           --drain-grace-ms N        max wait for connections to quiesce on drain (10000)\n\
         \n\
         Graceful drain: SIGTERM, SIGINT, or a wire DRAIN frame.\n\
         Hot reload: a wire RELOAD frame (empty path reloads --index).\n\
         Spec: docs/PROTOCOL.md — runbook: docs/OPERATIONS.md"
    );
}

fn bool_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(default),
        Some(i) => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| format!("{name} requires a value"))?;
            v.parse().map_err(|_| format!("bad value for {name}: {v}"))
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let index_path: String = flag(args, "--index", String::new())?;
    if index_path.is_empty() {
        return Err("--index <index.ridx> is required (see --help)".into());
    }
    let listen: String = flag(args, "--listen", "127.0.0.1:7411".to_string())?;
    let workers: usize = flag(args, "--workers", 4)?;
    let queue_capacity: usize = flag(args, "--queue-capacity", 1024)?;
    let cache: usize = flag(args, "--cache", 1 << 14)?;
    let deadline_ms: u64 = flag(args, "--default-deadline-ms", 0)?;
    let max_inflight: u32 = flag(args, "--max-inflight", 64)?;
    let max_batch: u32 = flag(args, "--max-batch", 4096)?;
    let qps: u32 = flag(args, "--qps", 0)?;
    let max_frame: u32 = flag(args, "--max-frame", 1 << 20)?;
    let drain_grace_ms: u64 = flag(args, "--drain-grace-ms", 10_000)?;
    let mode = match (bool_flag(args, "--compressed"), bool_flag(args, "--mmap")) {
        (true, true) => return Err("--compressed and --mmap are mutually exclusive".into()),
        (true, false) => IndexMode::Compressed,
        (false, true) => IndexMode::Mmap,
        (false, false) => IndexMode::Ram,
    };

    let cfg = ServedConfig {
        serve: ServeConfig {
            workers: workers.max(1),
            queue_capacity: queue_capacity.max(1),
            cache_capacity: cache,
            default_deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
            ..ServeConfig::default()
        },
        quota: reach_served::QuotaConfig {
            max_inflight: max_inflight.max(1),
            max_batch: max_batch.max(1),
            queries_per_sec: (qps > 0).then_some(qps),
        },
        max_frame,
        reload_path: Some(index_path.clone().into()),
        index_mode: mode,
    };

    shutdown::install();
    let server = match mode {
        IndexMode::Ram => {
            let index = reach_index::storage::load_index(&index_path)
                .map_err(|e| format!("cannot load {index_path}: {e}"))?;
            eprintln!(
                "loaded {index_path}: {} vertices, {} label entries (mode: ram)",
                index.num_vertices(),
                index.num_entries()
            );
            Server::start(Arc::new(index), cfg, &listen)
        }
        IndexMode::Compressed | IndexMode::Mmap => {
            let source = mode
                .load(std::path::Path::new(&index_path))
                .map_err(|e| format!("cannot load {index_path}: {e}"))?;
            eprintln!(
                "loaded {index_path}: {} (mode: {})",
                source.describe(),
                mode.name()
            );
            Server::start_with_source(source, cfg, &listen)
        }
    }
    .map_err(|e| format!("bind {listen}: {e}"))?;
    eprintln!(
        "serving on {} with {} workers (drain: SIGTERM or wire DRAIN)",
        server.local_addr(),
        workers.max(1)
    );

    // The main loop only watches for a drain trigger; all serving work
    // happens on the accept/connection/service threads.
    loop {
        if shutdown::termination_requested() {
            eprintln!("termination signal: draining");
            server.drain();
        }
        if server.is_draining() {
            let grace = Duration::from_millis(drain_grace_ms);
            if server.wait_drained(grace) {
                eprintln!("drained: all connections closed");
            } else {
                eprintln!(
                    "drain grace expired with {} connection(s) open; shutting down",
                    server.active_connections()
                );
            }
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let stats = server.shutdown();
    eprintln!(
        "final ledger: submitted={} answered={} rejected={} shed={} swaps={} generation={}",
        stats.submitted,
        stats.answered,
        stats.rejected(),
        stats.shed,
        stats.swaps,
        stats.generation
    );
    Ok(())
}
