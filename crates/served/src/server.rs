//! The TCP front door: accept loop, per-connection reader/writer pairs,
//! quotas, graceful drain, and wire-triggered index reload.
//!
//! # Threading model
//!
//! One accept thread polls a non-blocking listener. Each accepted
//! connection gets a **reader** thread (parses frames, enforces quotas,
//! submits batches) and a **writer** thread (the only thread that ever
//! writes to the socket). The two communicate over an in-process
//! channel of `Work` items, so responses are written strictly in
//! request order per connection while the service computes many batches
//! concurrently — the reader keeps submitting (pipelining) while the
//! writer blocks on the oldest [`BatchTicket`]. Clients correlate by
//! `request_id` and must not assume cross-connection ordering.
//!
//! # Graceful drain
//!
//! [`Server::drain`] (or a wire `DRAIN` frame, or SIGTERM in the
//! `reach-served` binary) stops the accept loop and flips the draining
//! flag: new QUERY/WITNESS/RELOAD frames are answered with
//! `SHUTTING_DOWN`, while every batch already ticketed completes and its
//! response is written. [`Server::shutdown`] then joins everything and
//! asserts the serving ledger (`submitted == answered + rejected +
//! shed`) via [`QueryService::shutdown`].

use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use reach_index::{storage, CompressedIndex, IndexSource, MmapIndex};
use reach_serve::{BatchOptions, BatchTicket, Priority, QueryService, ServeConfig};

use crate::quota::{QuotaConfig, TokenBucket};
use crate::wire::{self, opcode, ErrorCode, Frame, FrameReader, Polled, ReadError, WireStats};

/// How often blocked reads wake up to check the stop/drain flags.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// How often the accept loop polls its non-blocking listener.
const ACCEPT_INTERVAL: Duration = Duration::from_millis(5);

/// How the server materializes a `.ridx` file — at startup (the
/// `reach-served` binary's `--compressed` / `--mmap` flags) and on
/// every wire-triggered RELOAD.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IndexMode {
    /// Decode fully into an in-memory [`reach_index::ReachIndex`] with
    /// per-worker sharded labels (v1 or v2 files).
    #[default]
    Ram,
    /// Hold the v2 image in memory in its compressed form and answer
    /// through streaming cursors (requires a v2 file).
    Compressed,
    /// Memory-map the v2 file and serve out-of-core: the index may
    /// exceed RAM (requires a v2 file).
    Mmap,
}

impl IndexMode {
    /// Loads `path` in this mode as a shareable [`IndexSource`].
    pub fn load(self, path: &Path) -> Result<Arc<dyn IndexSource>, storage::StorageError> {
        Ok(match self {
            IndexMode::Ram => Arc::new(storage::load_index(path)?),
            IndexMode::Compressed => Arc::new(CompressedIndex::load(path)?),
            IndexMode::Mmap => Arc::new(MmapIndex::open(path)?),
        })
    }

    /// Stable lowercase name (logs and startup banner).
    pub fn name(self) -> &'static str {
        match self {
            IndexMode::Ram => "ram",
            IndexMode::Compressed => "compressed",
            IndexMode::Mmap => "mmap",
        }
    }
}

/// Configuration of a [`Server`] (see `docs/OPERATIONS.md` for the
/// operator-facing description of every knob).
#[derive(Clone, Debug)]
pub struct ServedConfig {
    /// The wrapped [`QueryService`] configuration — workers, queue
    /// bounds, cache, deadlines, resilience, degradation.
    pub serve: ServeConfig,
    /// Per-connection quotas (in-flight window, batch cap, rate bucket).
    pub quota: QuotaConfig,
    /// Payload-size cap per frame; larger frames are rejected fatally.
    pub max_frame: u32,
    /// Default path a path-less RELOAD frame reloads from — normally the
    /// index the server was started with.
    pub reload_path: Option<PathBuf>,
    /// How RELOAD materializes the file it loads — kept consistent with
    /// the startup mode so a reload cannot silently change the serving
    /// form (and its memory footprint).
    pub index_mode: IndexMode,
}

impl Default for ServedConfig {
    fn default() -> Self {
        ServedConfig {
            serve: ServeConfig::default(),
            quota: QuotaConfig::default(),
            max_frame: wire::DEFAULT_MAX_FRAME,
            reload_path: None,
            index_mode: IndexMode::Ram,
        }
    }
}

/// Response-side work for a connection's writer thread.
enum Work {
    /// A pre-encoded frame to write as-is.
    Frame(Vec<u8>),
    /// A pending batch: wait the ticket, then write QUERY_OK or a typed
    /// error. `received` timestamps the request frame's parse, for the
    /// `served.request_ns` histogram.
    Query {
        request_id: u64,
        ticket: BatchTicket,
        received: Instant,
    },
    /// A fatal error frame: write it, then close the connection.
    Fatal(Vec<u8>),
}

/// State shared by the accept loop, every connection, and the handle.
struct Shared {
    svc: QueryService,
    cfg: ServedConfig,
    /// Set once: stop admitting new wire work (drain in progress).
    draining: AtomicBool,
    /// Set once: tear everything down (readers exit at next poll).
    stop: AtomicBool,
    /// Open connections.
    active: AtomicU64,
    /// Join handles of connection reader threads (each joins its own
    /// writer before exiting).
    conns: Mutex<Vec<JoinHandle<()>>>,
    /// Obs recordings banked by exited threads, merged at shutdown.
    banked: Mutex<Vec<reach_obs::WorkerMetrics>>,
}

/// A running wire server around a [`QueryService`]. Start with
/// [`Server::start`], stop with [`Server::shutdown`] (which asserts the
/// serving ledger). See the module docs for the threading and drain
/// model.
pub struct Server {
    inner: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port), starts
    /// the inner [`QueryService`] on `index`, and begins accepting
    /// connections.
    pub fn start(
        index: Arc<reach_index::ReachIndex>,
        cfg: ServedConfig,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<Server> {
        let svc = QueryService::start(index, cfg.serve.clone());
        Server::start_with_service(svc, cfg, addr)
    }

    /// Like [`Server::start`], but serving any [`IndexSource`] — a
    /// compressed in-heap image or an mmap-backed file larger than RAM
    /// (the `reach-served` binary's `--compressed` / `--mmap` modes).
    pub fn start_with_source(
        source: Arc<dyn IndexSource>,
        cfg: ServedConfig,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<Server> {
        let svc = QueryService::start_with_source(source, cfg.serve.clone());
        Server::start_with_service(svc, cfg, addr)
    }

    fn start_with_service(
        svc: QueryService,
        cfg: ServedConfig,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Shared {
            svc,
            cfg,
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            active: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            banked: Mutex::new(Vec::new()),
        });
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("reach-served-accept".into())
                .spawn(move || {
                    let ((), metrics) = reach_obs::scoped_worker(|| accept_loop(&inner, listener));
                    inner.banked.lock().unwrap().push(metrics);
                })
                .expect("spawn accept thread")
        };
        Ok(Server {
            inner,
            accept: Some(accept),
            addr,
        })
    }

    /// The bound address (with the real port when started on port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Direct access to the wrapped service — tests use it to stage
    /// in-flight work ([`QueryService::pause`]) and to hot-swap without
    /// going through the wire.
    pub fn service(&self) -> &QueryService {
        &self.inner.svc
    }

    /// Begins a graceful drain: the listener stops accepting, new wire
    /// work is rejected with `SHUTTING_DOWN`, in-flight batches complete
    /// and their responses are written. Idempotent.
    pub fn drain(&self) {
        if !self.inner.draining.swap(true, Ordering::SeqCst) {
            reach_obs::counter_add("served.drains", 1);
        }
    }

    /// Whether a drain has begun (locally or via a wire DRAIN frame).
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Open client connections right now.
    pub fn active_connections(&self) -> u64 {
        self.inner.active.load(Ordering::SeqCst)
    }

    /// Blocks until a begun drain has quiesced — every connection closed
    /// — or `timeout` elapsed. Returns `true` when fully quiesced.
    pub fn wait_drained(&self, timeout: Duration) -> bool {
        let give_up = Instant::now() + timeout;
        loop {
            if self.is_draining() && self.active_connections() == 0 {
                return true;
            }
            if Instant::now() >= give_up {
                return false;
            }
            std::thread::sleep(ACCEPT_INTERVAL);
        }
    }

    /// Tears the server down: stops accepting, unblocks every
    /// connection (in-flight responses are still written), joins all
    /// threads, folds banked obs recordings into the calling thread, and
    /// shuts the inner service down — which asserts the
    /// `submitted == answered + rejected + shed` ledger.
    pub fn shutdown(mut self) -> reach_serve::ServeStats {
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        loop {
            let handles: Vec<_> = self.inner.conns.lock().unwrap().drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
        for metrics in self.inner.banked.lock().unwrap().drain(..) {
            reach_obs::merge_worker(metrics);
        }
        let Server { inner, .. } = self;
        match Arc::try_unwrap(inner) {
            Ok(shared) => shared.svc.shutdown(),
            // Unreachable with every thread joined; keep a safe fallback
            // rather than a panic in teardown.
            Err(arc) => arc.svc.stats(),
        }
    }
}

/// Polls the non-blocking listener until stop/drain, spawning a
/// connection thread per accept.
fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    loop {
        if shared.stop.load(Ordering::SeqCst) || shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                reach_obs::counter_add("served.connections", 1);
                shared.active.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("reach-served-conn".into())
                    .spawn(move || {
                        let ((), metrics) =
                            reach_obs::scoped_worker(|| connection_loop(&conn_shared, stream));
                        conn_shared.banked.lock().unwrap().push(metrics);
                        conn_shared.active.fetch_sub(1, Ordering::SeqCst);
                    })
                    .expect("spawn connection thread");
                shared.conns.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_INTERVAL);
            }
            Err(_) => std::thread::sleep(ACCEPT_INTERVAL),
        }
    }
}

/// One connection's reader: parse frames, enforce quotas, dispatch, and
/// feed the writer. Exits on EOF, fatal framing, socket error, or server
/// stop; always joins its writer before returning.
fn connection_loop(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = std::sync::mpsc::channel::<Work>();
    let inflight = Arc::new(AtomicU32::new(0));
    let writer = {
        let inflight = Arc::clone(&inflight);
        std::thread::Builder::new()
            .name("reach-served-write".into())
            .spawn(move || {
                let ((), metrics) =
                    reach_obs::scoped_worker(|| writer_loop(write_half, rx, &inflight));
                metrics
            })
            .expect("spawn connection writer")
    };

    let mut reader = FrameReader::new(shared.cfg.max_frame);
    let mut bucket = shared.cfg.quota.queries_per_sec.map(TokenBucket::new);
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match reader.poll(&mut stream) {
            Ok(Polled::Pending) => continue,
            Ok(Polled::Frame(frame)) => {
                reach_obs::counter_add("served.frames.in", 1);
                reach_obs::counter_add(
                    "served.bytes.in",
                    (wire::HEADER_LEN + frame.payload.len()) as u64,
                );
                if !handle_frame(shared, &tx, &inflight, &mut bucket, frame) {
                    break;
                }
            }
            // EOF — clean between frames or a mid-frame disconnect; both
            // simply end the connection (there is nobody to answer).
            Err(ReadError::Eof { .. }) => break,
            Err(ReadError::Fatal { code, request_id }) => {
                reach_obs::counter_add("served.errors", 1);
                let msg = format!("fatal framing error: {code:?}");
                let _ = tx.send(Work::Fatal(wire::error_frame(request_id, code, &msg)));
                break;
            }
            Err(ReadError::Io(_)) => break,
        }
    }
    drop(tx);
    if let Ok(metrics) = writer.join() {
        reach_obs::merge_worker(metrics);
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Dispatches one parsed frame. Returns `false` when the connection must
/// close (a fatal response was queued).
fn handle_frame(
    shared: &Shared,
    tx: &Sender<Work>,
    inflight: &AtomicU32,
    bucket: &mut Option<TokenBucket>,
    frame: Frame,
) -> bool {
    let id = frame.request_id;
    let send_err = |code: ErrorCode, msg: &str| {
        reach_obs::counter_add("served.errors", 1);
        let _ = tx.send(Work::Frame(wire::error_frame(id, code, msg)));
    };
    match frame.opcode {
        opcode::QUERY => {
            let received = Instant::now();
            let req = match wire::decode_batch(&frame.payload) {
                Ok(req) => req,
                Err(e) => {
                    send_err(ErrorCode::BadPayload, e.0);
                    return true;
                }
            };
            if let Some(msg) = check_batch_quotas(shared, inflight, bucket, req.pairs.len()) {
                send_err(msg.0, msg.1);
                return true;
            }
            if shared.draining.load(Ordering::SeqCst) {
                send_err(ErrorCode::ShuttingDown, "server is draining");
                return true;
            }
            let opts = BatchOptions {
                deadline: (req.deadline_ms > 0)
                    .then(|| Duration::from_millis(u64::from(req.deadline_ms))),
                priority: wire_priority(req.priority),
            };
            reach_obs::counter_add("served.queries", req.pairs.len() as u64);
            match shared.svc.submit_batch_opts(&req.pairs, opts) {
                Ok(ticket) => {
                    inflight.fetch_add(1, Ordering::SeqCst);
                    let _ = tx.send(Work::Query {
                        request_id: id,
                        ticket,
                        received,
                    });
                }
                Err(e) => {
                    let (code, msg) = ErrorCode::from_serve_error(&e);
                    send_err(code, &msg);
                }
            }
        }
        opcode::WITNESS => {
            let req = match wire::decode_batch(&frame.payload) {
                Ok(req) => req,
                Err(e) => {
                    send_err(ErrorCode::BadPayload, e.0);
                    return true;
                }
            };
            if let Some(msg) = check_batch_quotas(shared, inflight, bucket, req.pairs.len()) {
                send_err(msg.0, msg.1);
                return true;
            }
            if shared.draining.load(Ordering::SeqCst) {
                send_err(ErrorCode::ShuttingDown, "server is draining");
                return true;
            }
            // One atomic epoch snapshot: the backing and the generation
            // tag cannot straddle a concurrent reload. source_tagged()
            // works for every index mode (ram, compressed, mmap).
            let (idx, generation) = shared.svc.source_tagged();
            let n = idx.num_vertices();
            if let Some(&(s, t)) = req
                .pairs
                .iter()
                .find(|&&(s, t)| s as usize >= n || t as usize >= n)
            {
                let bad = if s as usize >= n { s } else { t };
                send_err(
                    ErrorCode::InvalidVertex,
                    &format!("invalid vertex {bad}: index covers {n} vertices"),
                );
                return true;
            }
            reach_obs::counter_add("served.witness.queries", req.pairs.len() as u64);
            let witnesses: Vec<_> = req
                .pairs
                .iter()
                .map(|&(s, t)| idx.query_witness(s, t))
                .collect();
            let payload = wire::encode_witness_ok(generation, &witnesses);
            let _ = tx.send(Work::Frame(
                Frame::new(opcode::WITNESS_OK, id, payload).encode(),
            ));
        }
        opcode::RELOAD => {
            let path = match wire::decode_reload(&frame.payload) {
                Ok(p) => p,
                Err(e) => {
                    send_err(ErrorCode::BadPayload, e.0);
                    return true;
                }
            };
            if shared.draining.load(Ordering::SeqCst) {
                send_err(ErrorCode::ShuttingDown, "server is draining");
                return true;
            }
            let path: PathBuf = if path.is_empty() {
                match &shared.cfg.reload_path {
                    Some(p) => p.clone(),
                    None => {
                        send_err(
                            ErrorCode::ReloadFailed,
                            "empty reload path and no startup index path configured",
                        );
                        return true;
                    }
                }
            } else {
                PathBuf::from(path)
            };
            // Reload in the server's configured index mode: a ram-mode
            // server decodes and reshards; compressed/mmap servers
            // install the new file as a source without decoding it.
            let mode = shared.cfg.index_mode;
            let load_err = |e: storage::StorageError| {
                (
                    ErrorCode::ReloadFailed,
                    format!("cannot load {}: {e}", path.display()),
                )
            };
            let swap_err = |e: reach_serve::ServeError| ErrorCode::from_serve_error(&e);
            let swapped: Result<u64, (ErrorCode, String)> = match mode {
                IndexMode::Ram => storage::load_index(&path)
                    .map_err(load_err)
                    .and_then(|idx| shared.svc.try_swap_index(Arc::new(idx)).map_err(swap_err)),
                IndexMode::Compressed | IndexMode::Mmap => mode
                    .load(&path)
                    .map_err(load_err)
                    .and_then(|src| shared.svc.try_swap_source(src).map_err(swap_err)),
            };
            match swapped {
                Ok(generation) => {
                    reach_obs::counter_add("served.reloads", 1);
                    let payload = wire::encode_reload_ok(generation);
                    let _ = tx.send(Work::Frame(
                        Frame::new(opcode::RELOAD_OK, id, payload).encode(),
                    ));
                }
                Err((code, msg)) => send_err(code, &msg),
            }
        }
        opcode::DRAIN => {
            if !shared.draining.swap(true, Ordering::SeqCst) {
                reach_obs::counter_add("served.drains", 1);
            }
            let _ = tx.send(Work::Frame(
                Frame::new(opcode::DRAIN_OK, id, Vec::new()).encode(),
            ));
        }
        opcode::PING => {
            let _ = tx.send(Work::Frame(
                Frame::new(opcode::PONG, id, Vec::new()).encode(),
            ));
        }
        opcode::STATS => {
            let s = shared.svc.stats();
            let stats = WireStats {
                generation: s.generation,
                submitted: s.submitted,
                answered: s.answered,
                rejected: s.rejected(),
                shed: s.shed,
                cache_hits: s.cache_hits,
                cache_misses: s.cache_misses,
                swaps: s.swaps,
                connections: shared.active.load(Ordering::SeqCst),
            };
            let payload = wire::encode_stats_ok(&stats);
            let _ = tx.send(Work::Frame(
                Frame::new(opcode::STATS_OK, id, payload).encode(),
            ));
        }
        other => {
            send_err(
                ErrorCode::UnknownOpcode,
                &format!(
                    "opcode 0x{other:02x} unknown to protocol version {}",
                    wire::VERSION
                ),
            );
        }
    }
    true
}

/// The quota gauntlet shared by QUERY and WITNESS: batch-size cap, the
/// in-flight window, then the rate bucket. Returns the rejection to send,
/// if any.
fn check_batch_quotas(
    shared: &Shared,
    inflight: &AtomicU32,
    bucket: &mut Option<TokenBucket>,
    batch_len: usize,
) -> Option<(ErrorCode, &'static str)> {
    let quota = &shared.cfg.quota;
    if batch_len > quota.max_batch as usize {
        return Some((
            ErrorCode::BatchTooLarge,
            "batch exceeds the per-frame query cap",
        ));
    }
    if inflight.load(Ordering::SeqCst) >= quota.max_inflight {
        reach_obs::counter_add("served.quota.rejected", 1);
        return Some((
            ErrorCode::QuotaExceeded,
            "per-connection in-flight window exhausted",
        ));
    }
    if let Some(bucket) = bucket {
        if !bucket.try_take(batch_len as u32) {
            reach_obs::counter_add("served.quota.rejected", 1);
            return Some((
                ErrorCode::QuotaExceeded,
                "per-connection query-rate budget exhausted",
            ));
        }
    }
    None
}

/// Maps the wire priority byte (already validated by the decoder).
fn wire_priority(p: u8) -> Priority {
    match p {
        wire::priority::LOW => Priority::Low,
        wire::priority::HIGH => Priority::High,
        _ => Priority::Normal,
    }
}

/// The writer: the single thread allowed to write this connection's
/// socket. Processes work strictly in order; a write failure or a fatal
/// frame ends the connection (remaining tickets are dropped — their
/// batches still complete server-side and stay correctly accounted).
fn writer_loop(mut stream: TcpStream, rx: Receiver<Work>, inflight: &AtomicU32) {
    let mut write = |bytes: &[u8]| -> bool {
        let ok = stream
            .write_all(bytes)
            .and_then(|()| stream.flush())
            .is_ok();
        if ok {
            reach_obs::counter_add("served.frames.out", 1);
            reach_obs::counter_add("served.bytes.out", bytes.len() as u64);
        }
        ok
    };
    for work in rx {
        match work {
            Work::Frame(bytes) => {
                if !write(&bytes) {
                    break;
                }
            }
            Work::Query {
                request_id,
                ticket,
                received,
            } => {
                let frame = match ticket.wait_tagged() {
                    Ok((answers, generation)) => Frame::new(
                        opcode::QUERY_OK,
                        request_id,
                        wire::encode_query_ok(generation, &answers),
                    )
                    .encode(),
                    Err(e) => {
                        reach_obs::counter_add("served.errors", 1);
                        let (code, msg) = ErrorCode::from_serve_error(&e);
                        wire::error_frame(request_id, code, &msg)
                    }
                };
                inflight.fetch_sub(1, Ordering::SeqCst);
                let ok = write(&frame);
                reach_obs::record("served.request_ns", received.elapsed().as_nanos() as u64);
                if !ok {
                    break;
                }
            }
            Work::Fatal(bytes) => {
                let _ = write(&bytes);
                break;
            }
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}
