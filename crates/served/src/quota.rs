//! Per-client quotas, layered *in front of* the service's admission
//! control: a connection that exhausts its in-flight window or its
//! query-rate bucket is told so with
//! [`ErrorCode::QuotaExceeded`](crate::wire::ErrorCode::QuotaExceeded)
//! before its batch ever touches a shard queue — one greedy client
//! cannot monopolize the bounded queues that every connection shares.

use std::time::Instant;

/// The quota knobs applied to every connection (see
/// [`ServedConfig`](crate::server::ServedConfig)).
#[derive(Clone, Copy, Debug)]
pub struct QuotaConfig {
    /// Maximum un-responded QUERY frames per connection; further queries
    /// are rejected until responses drain. Must be ≥ 1.
    pub max_inflight: u32,
    /// Maximum `(s, t)` pairs per QUERY/WITNESS frame.
    pub max_batch: u32,
    /// Sustained queries-per-second budget per connection, enforced by a
    /// token bucket with a burst of one second's worth of tokens;
    /// `None` disables rate limiting.
    pub queries_per_sec: Option<u32>,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        QuotaConfig {
            max_inflight: 64,
            max_batch: 4096,
            queries_per_sec: None,
        }
    }
}

/// Token-bucket rate limiter: `rate` tokens accrue per second up to
/// `burst`; a batch of `n` queries takes `n` tokens or is rejected.
/// Owned by one connection's reader thread — no synchronization.
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    refilled: Instant,
}

impl TokenBucket {
    /// A full bucket accruing `rate` tokens/second with burst `rate`.
    pub fn new(rate: u32) -> TokenBucket {
        let rate = f64::from(rate.max(1));
        TokenBucket {
            rate,
            burst: rate,
            tokens: rate,
            refilled: Instant::now(),
        }
    }

    /// Takes `n` tokens if available after refill; `false` rejects.
    pub fn try_take(&mut self, n: u32) -> bool {
        let now = Instant::now();
        self.tokens =
            (self.tokens + self.rate * (now - self.refilled).as_secs_f64()).min(self.burst);
        self.refilled = now;
        let n = f64::from(n);
        if self.tokens >= n {
            self.tokens -= n;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_enforces_burst_then_refills() {
        let mut b = TokenBucket::new(100);
        // The initial burst is exactly one second's budget.
        assert!(b.try_take(100));
        assert!(!b.try_take(1));
        // Refill accrues with wall time.
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(b.try_take(1));
        // A request larger than the burst can never pass.
        let mut b = TokenBucket::new(10);
        assert!(!b.try_take(11));
        assert!(b.try_take(10));
    }
}
