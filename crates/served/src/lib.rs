//! `reach-served` — the network front door of the reachability query
//! service: a length-prefixed binary protocol over TCP in front of
//! [`reach_serve::QueryService`].
//!
//! The paper's distributed labeling earns its keep only when queries
//! arrive over a wire; this crate is that wire. It adds, on top of the
//! in-process serving layer:
//!
//! * **A binary protocol** ([`wire`]) — 14-byte header + length-prefixed
//!   payload, opcodes for reachability batches, witness batches, index
//!   reload, graceful drain, ping, and stats; typed error codes split
//!   into recoverable and connection-fatal classes. The normative spec
//!   is `docs/PROTOCOL.md` — complete enough to implement an
//!   independent client against.
//! * **Client multiplexing onto the batch machinery** ([`server`]) —
//!   each connection pipelines frames; reachability batches funnel into
//!   [`reach_serve::QueryService::submit_batch_opts`] and their
//!   [`reach_serve::BatchTicket`]s complete concurrently across
//!   connections, while a single writer thread per connection keeps the
//!   socket uncorrupted.
//! * **Per-client quotas** ([`quota`]) — an in-flight window, a
//!   per-frame batch cap, and a query-rate token bucket, all enforced
//!   before the service's shared admission queues are touched.
//! * **Graceful drain** — SIGTERM ([`shutdown`]), a wire `DRAIN` frame,
//!   or [`server::Server::drain`] stop admission, finish every in-flight
//!   batch, and end with the serving ledger asserted.
//! * **Wire-triggered hot reload** — a `RELOAD` frame loads a `.ridx`
//!   file and installs it through the generation-tagged
//!   [`reach_serve::QueryService::try_swap_index`] path; every response
//!   carries the generation that answered it.
//!
//! The load harness lives in `crates/bench/src/bin/wire_bench.rs`
//! (client-observed latency histograms → `BENCH_wire.json`); the
//! operator runbook is `docs/OPERATIONS.md`.

#![warn(missing_docs)]

pub mod client;
pub mod quota;
pub mod server;
pub mod shutdown;
pub mod wire;

pub use client::{ClientError, Response, WireClient};
pub use quota::QuotaConfig;
pub use server::{IndexMode, ServedConfig, Server};
pub use wire::{ErrorCode, Frame, WireStats};
