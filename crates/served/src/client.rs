//! A blocking wire client for `reach-served` — the reference
//! implementation of `docs/PROTOCOL.md`'s client side, used by the
//! integration suites and the `wire_bench` load generator.
//!
//! The client is deliberately low-level: [`WireClient::send_query`] and
//! friends write a frame and return its `request_id` without waiting, so
//! a caller can keep a pipeline of outstanding requests per connection;
//! [`WireClient::recv`] blocks for the next response frame (responses
//! arrive in request order per connection, but correlate by id — that is
//! the protocol's contract, not an ordering promise). The `call_*`
//! helpers wrap a one-request/one-response exchange for convenience.

use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use reach_graph::VertexId;

use crate::wire::{self, opcode, ErrorCode, Frame, FrameReader, Polled, ReadError, WireStats};

/// A decoded response frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// QUERY answered: the generation that answered and one bool per
    /// submitted pair, in submission order.
    QueryOk {
        /// Index generation the answers were computed from.
        generation: u64,
        /// Reachability answers, in submission order.
        answers: Vec<bool>,
    },
    /// WITNESS answered: `Some(hub)` per reachable pair, `None` per
    /// unreachable one.
    WitnessOk {
        /// Index generation the witnesses were computed from.
        generation: u64,
        /// Witness hubs, in submission order.
        witnesses: Vec<Option<VertexId>>,
    },
    /// RELOAD installed; the new serving generation.
    ReloadOk {
        /// Generation now being served.
        generation: u64,
    },
    /// DRAIN acknowledged; the server stops admitting new work.
    DrainOk,
    /// PING answered.
    Pong,
    /// STATS answered.
    StatsOk(WireStats),
    /// Typed failure. `code` is `None` when the server sent a code this
    /// build does not know (`raw_code` always carries the wire value).
    Error {
        /// The wire error code, decoded when known to this build.
        code: Option<ErrorCode>,
        /// The raw `u16` from the wire.
        raw_code: u16,
        /// Human-readable detail.
        message: String,
    },
}

/// Client-side failure of a wire exchange.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (includes the server closing mid-response).
    Io(std::io::Error),
    /// The peer sent bytes that do not parse as a protocol frame.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection to a `reach-served` server.
pub struct WireClient {
    stream: TcpStream,
    reader: FrameReader,
    next_id: u64,
}

impl WireClient {
    /// Connects and disables Nagle (the protocol is request/response).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<WireClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(WireClient {
            stream,
            reader: FrameReader::new(wire::DEFAULT_MAX_FRAME),
            next_id: 1,
        })
    }

    /// Bounds every subsequent [`WireClient::recv`] wait; `None` blocks
    /// indefinitely.
    pub fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn send(&mut self, op: u8, payload: Vec<u8>) -> std::io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let bytes = Frame::new(op, id, payload).encode();
        self.stream.write_all(&bytes)?;
        self.stream.flush()?;
        Ok(id)
    }

    /// Writes a QUERY frame (deadline 0 = none; `priority` per
    /// [`wire::priority`]) and returns its request id without waiting.
    pub fn send_query(
        &mut self,
        pairs: &[(VertexId, VertexId)],
        deadline_ms: u32,
        priority: u8,
    ) -> std::io::Result<u64> {
        let payload = wire::encode_batch(&wire::BatchRequest {
            deadline_ms,
            priority,
            pairs: pairs.to_vec(),
        });
        self.send(opcode::QUERY, payload)
    }

    /// Writes a WITNESS frame and returns its request id.
    pub fn send_witness(
        &mut self,
        pairs: &[(VertexId, VertexId)],
        deadline_ms: u32,
        priority: u8,
    ) -> std::io::Result<u64> {
        let payload = wire::encode_batch(&wire::BatchRequest {
            deadline_ms,
            priority,
            pairs: pairs.to_vec(),
        });
        self.send(opcode::WITNESS, payload)
    }

    /// Writes a RELOAD frame (`""` reloads the server's startup path).
    pub fn send_reload(&mut self, path: &str) -> std::io::Result<u64> {
        self.send(opcode::RELOAD, wire::encode_reload(path))
    }

    /// Writes a DRAIN frame.
    pub fn send_drain(&mut self) -> std::io::Result<u64> {
        self.send(opcode::DRAIN, Vec::new())
    }

    /// Writes a PING frame.
    pub fn send_ping(&mut self) -> std::io::Result<u64> {
        self.send(opcode::PING, Vec::new())
    }

    /// Writes a STATS frame.
    pub fn send_stats(&mut self) -> std::io::Result<u64> {
        self.send(opcode::STATS, Vec::new())
    }

    /// Blocks for the next response frame and decodes it, returning
    /// `(request_id, response)`.
    pub fn recv(&mut self) -> Result<(u64, Response), ClientError> {
        match self.reader.poll(&mut self.stream) {
            Ok(Polled::Frame(frame)) => decode_response(frame),
            // With no read timeout set this cannot occur; with one, a
            // timed-out wait surfaces as an Io error to the caller (the
            // partial frame stays buffered — recv may simply be retried).
            Ok(Polled::Pending) => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "timed out waiting for a response frame",
            ))),
            Err(ReadError::Eof { mid_frame }) => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                if mid_frame {
                    "server closed the connection mid-frame"
                } else {
                    "server closed the connection"
                },
            ))),
            Err(ReadError::Fatal { code, .. }) => Err(ClientError::Protocol(format!(
                "unparseable response frame: {code:?}"
            ))),
            Err(ReadError::Io(e)) => Err(ClientError::Io(e)),
        }
    }

    /// One QUERY round trip: send, then receive its response (panics on
    /// a cross-matched id, which would be a server bug).
    pub fn call_query(
        &mut self,
        pairs: &[(VertexId, VertexId)],
        deadline_ms: u32,
        priority: u8,
    ) -> Result<Response, ClientError> {
        let id = self.send_query(pairs, deadline_ms, priority)?;
        self.recv_for(id)
    }

    /// One WITNESS round trip.
    pub fn call_witness(
        &mut self,
        pairs: &[(VertexId, VertexId)],
    ) -> Result<Response, ClientError> {
        let id = self.send_witness(pairs, 0, wire::priority::NORMAL)?;
        self.recv_for(id)
    }

    /// One RELOAD round trip.
    pub fn call_reload(&mut self, path: &str) -> Result<Response, ClientError> {
        let id = self.send_reload(path)?;
        self.recv_for(id)
    }

    /// One DRAIN round trip.
    pub fn call_drain(&mut self) -> Result<Response, ClientError> {
        let id = self.send_drain()?;
        self.recv_for(id)
    }

    /// One PING round trip.
    pub fn call_ping(&mut self) -> Result<Response, ClientError> {
        let id = self.send_ping()?;
        self.recv_for(id)
    }

    /// One STATS round trip.
    pub fn call_stats(&mut self) -> Result<Response, ClientError> {
        let id = self.send_stats()?;
        self.recv_for(id)
    }

    /// Receives until the response for `id` arrives, discarding earlier
    /// responses (useful after abandoning pipelined requests).
    pub fn recv_for(&mut self, id: u64) -> Result<Response, ClientError> {
        loop {
            let (got, resp) = self.recv()?;
            if got == id {
                return Ok(resp);
            }
        }
    }
}

/// Decodes a response frame into a [`Response`].
fn decode_response(frame: Frame) -> Result<(u64, Response), ClientError> {
    let bad = |e: wire::PayloadError| ClientError::Protocol(format!("{}: {}", frame.opcode, e.0));
    let resp = match frame.opcode {
        opcode::QUERY_OK => {
            let (generation, answers) = wire::decode_query_ok(&frame.payload).map_err(bad)?;
            Response::QueryOk {
                generation,
                answers,
            }
        }
        opcode::WITNESS_OK => {
            let (generation, witnesses) = wire::decode_witness_ok(&frame.payload).map_err(bad)?;
            Response::WitnessOk {
                generation,
                witnesses,
            }
        }
        opcode::RELOAD_OK => Response::ReloadOk {
            generation: wire::decode_reload_ok(&frame.payload).map_err(bad)?,
        },
        opcode::DRAIN_OK => Response::DrainOk,
        opcode::PONG => Response::Pong,
        opcode::STATS_OK => Response::StatsOk(wire::decode_stats_ok(&frame.payload).map_err(bad)?),
        opcode::ERROR => {
            let (raw_code, code, message) = wire::decode_error(&frame.payload).map_err(bad)?;
            Response::Error {
                code,
                raw_code,
                message,
            }
        }
        other => {
            return Err(ClientError::Protocol(format!(
                "unknown response opcode 0x{other:02x}"
            )))
        }
    };
    Ok((frame.request_id, resp))
}
