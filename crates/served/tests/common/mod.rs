//! Shared fixtures for the `reach-served` integration suites: a small
//! hierarchy graph with a correct-by-construction closure index, a
//! server started on an ephemeral loopback port, and raw-socket frame
//! helpers for the protocol-robustness tests (which must be able to send
//! bytes a well-behaved `WireClient` never would).
#![allow(dead_code)]

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use reach_graph::DiGraph;
use reach_index::ReachIndex;
use reach_serve::testing::closure_index;
use reach_served::server::{ServedConfig, Server};
use reach_served::wire::{Frame, FrameReader, Polled, ReadError};

/// The standard test graph: deep enough that reachability answers are a
/// mix of true and false, small enough that closure indices are instant.
pub fn fixture() -> (DiGraph, Arc<ReachIndex>) {
    let g = reach_datasets::generators::hierarchy(40, 120, 0.9, 77);
    let idx = closure_index(&g);
    (g, idx)
}

/// Starts a server for `idx` on an ephemeral loopback port.
pub fn start(idx: Arc<ReachIndex>, cfg: ServedConfig) -> Server {
    Server::start(idx, cfg, "127.0.0.1:0").expect("bind ephemeral loopback port")
}

/// A deterministic uniform query batch over `g`.
pub fn batch(g: &DiGraph, count: usize, seed: u64) -> Vec<(u32, u32)> {
    reach_datasets::workload::workload(g, reach_datasets::workload::QueryMix::Uniform, count, seed)
}

/// A raw socket speaking hand-crafted bytes — the hostile client the
/// robustness tests need. Reads through a [`FrameReader`] with a 5 s
/// read timeout so a hung server fails the test instead of wedging it.
pub struct RawConn {
    pub stream: TcpStream,
    reader: FrameReader,
}

impl RawConn {
    pub fn connect(server: &Server) -> RawConn {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("set read timeout");
        RawConn {
            stream,
            reader: FrameReader::new(reach_served::wire::DEFAULT_MAX_FRAME),
        }
    }

    /// Writes raw bytes verbatim.
    pub fn send_bytes(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("write");
        self.stream.flush().expect("flush");
    }

    /// Writes a well-formed frame with an arbitrary opcode.
    pub fn send_frame(&mut self, opcode: u8, request_id: u64, payload: Vec<u8>) {
        self.send_bytes(&Frame::new(opcode, request_id, payload).encode());
    }

    /// Reads the next response frame; panics on timeout.
    pub fn read_frame(&mut self) -> Frame {
        match self.reader.poll(&mut self.stream) {
            Ok(Polled::Frame(f)) => f,
            Ok(Polled::Pending) => panic!("timed out waiting for a response frame"),
            Err(e) => panic!("expected a frame, got {e:?}"),
        }
    }

    /// Asserts the server has closed this connection (EOF on read).
    pub fn expect_eof(&mut self) {
        match self.reader.poll(&mut self.stream) {
            Err(ReadError::Eof { .. }) => {}
            other => panic!("expected EOF, got {other:?}"),
        }
    }
}

/// A unique temp path for index files (the process id plus a tag keeps
/// parallel test binaries from colliding).
pub fn temp_index_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "reach-served-test-{}-{tag}.ridx",
        std::process::id()
    ))
}
