//! Chaos over the wire: PR 6's fault-injection machinery
//! ([`ServeFaultPlan`], supervised recovery) running underneath live TCP
//! connections. Worker crashes, stalls, slow shards, and swap-install
//! failures must stay invisible at the protocol layer except as typed
//! *retryable* errors — clients that retry on [`ErrorCode::is_retryable`]
//! always converge to answers matching the pinned generation's index,
//! and the serving ledger still balances at shutdown.

mod common;

use std::sync::Arc;
use std::time::Duration;

use reach_index::{storage, ReachIndex};
use reach_serve::testing::closure_index;
use reach_serve::{ResilienceConfig, ServeConfig, ServeFaultPlan, SupervisorConfig};
use reach_served::server::ServedConfig;
use reach_served::wire::{self, ErrorCode};
use reach_served::{Response, WireClient};

/// A supervisor tuned for test latencies: detect within ~10 ms.
fn fast_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        check_interval: Duration::from_millis(1),
        stall_timeout: Duration::from_millis(10),
    }
}

/// One QUERY round trip with client-side retries on retryable codes.
/// Panics when the budget is exhausted or a non-retryable error arrives.
fn query_with_retries(client: &mut WireClient, pairs: &[(u32, u32)]) -> (u64, Vec<bool>) {
    for attempt in 0..200 {
        match client
            .call_query(pairs, 0, wire::priority::NORMAL)
            .expect("wire stays healthy under chaos")
        {
            Response::QueryOk {
                generation,
                answers,
            } => return (generation, answers),
            Response::Error { code, message, .. } => {
                let code = code.expect("typed code");
                assert!(
                    code.is_retryable(),
                    "non-retryable error under recoverable chaos: {code:?}: {message}"
                );
                std::thread::sleep(Duration::from_millis(1 + attempt / 10));
            }
            other => panic!("expected QUERY_OK or ERROR, got {other:?}"),
        }
    }
    panic!("retry budget exhausted — the service never recovered");
}

#[test]
fn crashes_and_stalls_stay_invisible_through_the_wire() {
    let (g, idx) = common::fixture();
    let serve = ServeConfig::with_workers(2).with_resilience(ResilienceConfig {
        fault_plan: ServeFaultPlan::new(11)
            .with_worker_crashes(0.05, 6)
            .with_worker_stalls(0.05, Duration::from_millis(5), 6)
            .with_slow_shard(0, Duration::from_millis(1)),
        supervisor: fast_supervisor(),
    });
    let server = common::start(
        Arc::clone(&idx),
        ServedConfig {
            serve,
            ..ServedConfig::default()
        },
    );
    let addr = server.local_addr();

    // Three concurrent clients, each verifying every answer against the
    // single (never swapped) generation-0 index.
    std::thread::scope(|scope| {
        for me in 0..3u64 {
            let g = &g;
            let idx = &idx;
            scope.spawn(move || {
                let mut client = WireClient::connect(addr).expect("connect");
                client
                    .set_recv_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                for round in 0..30 {
                    let pairs = common::batch(g, 8, 1000 * me + round);
                    let (generation, answers) = query_with_retries(&mut client, &pairs);
                    assert_eq!(generation, 0, "no swaps in this run");
                    for (&(s, t), &got) in pairs.iter().zip(&answers) {
                        assert_eq!(got, idx.query(s, t), "chaos answer for ({s},{t})");
                    }
                }
            });
        }
    });

    // `QueryService::shutdown` (inside) asserts the exactly-once ledger.
    let stats = server.shutdown();
    assert!(stats.answered >= 3 * 30, "every batch was answered");
    assert!(stats.is_balanced());
}

#[test]
fn wire_reloads_race_queries_under_swap_failure_injection() {
    let g = reach_datasets::generators::hierarchy(60, 220, 0.9, 21);
    let slices = reach_datasets::edge_fraction_slices(&g, 2, 5);
    let indices: Vec<Arc<ReachIndex>> = slices.iter().map(closure_index).collect();
    let paths: Vec<_> = (0..indices.len())
        .map(|i| common::temp_index_path(&format!("chaos-{i}")))
        .collect();
    for (idx, path) in indices.iter().zip(&paths) {
        storage::save_index(idx, path).expect("save slice index");
    }

    // Half of all swap installs fail by injection; a failed install must
    // surface as a typed SWAP_FAILED and leave the old generation
    // serving.
    let serve = ServeConfig::with_workers(2).with_resilience(ResilienceConfig {
        fault_plan: ServeFaultPlan::new(33).with_swap_failures(0.5),
        supervisor: fast_supervisor(),
    });
    let server = common::start(
        Arc::clone(&indices[0]),
        ServedConfig {
            serve,
            reload_path: Some(paths[0].clone()),
            ..ServedConfig::default()
        },
    );
    let addr = server.local_addr();
    const RELOADS: u64 = 6;

    std::thread::scope(|scope| {
        // Reloader: cycle through the slice files, retrying each install
        // until it lands. Generation g is therefore served by
        // indices[g % 2] — the same mapping the in-process swap harness
        // pins down.
        scope.spawn(|| {
            let mut client = WireClient::connect(addr).expect("connect reloader");
            client
                .set_recv_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            for next in 1..=RELOADS {
                let path = paths[(next % 2) as usize].to_str().unwrap();
                loop {
                    match client.call_reload(path).expect("reload round trip") {
                        Response::ReloadOk { generation } => {
                            assert_eq!(generation, next, "installs are strictly sequential");
                            break;
                        }
                        Response::Error { code, .. } => {
                            assert_eq!(
                                code,
                                Some(ErrorCode::SwapFailed),
                                "only injected install failures are expected"
                            );
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        other => panic!("expected RELOAD_OK or ERROR, got {other:?}"),
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        });

        // Queriers: race the reloads and hold every answer to the index
        // of the generation that produced it.
        for me in 0..2u64 {
            let g = &g;
            let indices = &indices;
            scope.spawn(move || {
                let mut client = WireClient::connect(addr).expect("connect querier");
                client
                    .set_recv_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                for round in 0..40 {
                    let pairs = common::batch(g, 8, 7000 * me + round);
                    let (generation, answers) = query_with_retries(&mut client, &pairs);
                    let expect = &indices[(generation % 2) as usize];
                    for (&(s, t), &got) in pairs.iter().zip(&answers) {
                        assert_eq!(
                            got,
                            expect.query(s, t),
                            "q({s},{t}) disagrees with generation {generation}'s index"
                        );
                    }
                }
            });
        }
    });

    let stats = server.shutdown();
    assert_eq!(stats.swaps, RELOADS, "every reload eventually installed");
    assert!(
        stats.swap_failures > 0,
        "the 50% failure injection fired at least once across retries"
    );
    for path in &paths {
        let _ = std::fs::remove_file(path);
    }
}
