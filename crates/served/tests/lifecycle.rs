//! Lifecycle suite: graceful drain and wire-triggered index reload.
//!
//! The drain contract — in-flight batches complete and their responses
//! are written, new work is rejected with `SHUTTING_DOWN` — is staged
//! deterministically with [`QueryService::pause`]: queries are pipelined
//! while the workers are held, the drain flips mid-pipeline, and the
//! responses prove which side of the drain each request landed on.
//!
//! The reload contract is PR 5's swap-consistency invariant carried over
//! the wire: every `QUERY_OK` tags the generation that answered it, and
//! its answers must equal direct [`ReachIndex::query`] calls on exactly
//! that generation's index — across reloads by explicit path, by the
//! empty default path, and past a failed reload that must change
//! nothing.

mod common;

use std::sync::Arc;
use std::time::Duration;

use reach_index::{storage, ReachIndex};
use reach_serve::testing::closure_index;
use reach_served::server::ServedConfig;
use reach_served::wire::{self, ErrorCode};
use reach_served::{shutdown, Response, WireClient};

fn connect(server: &reach_served::Server) -> WireClient {
    let mut client = WireClient::connect(server.local_addr()).expect("connect");
    client
        .set_recv_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    client
}

#[test]
fn drain_completes_inflight_and_rejects_new_work() {
    let (g, idx) = common::fixture();
    let server = common::start(idx.clone(), ServedConfig::default());
    let mut pipelined = connect(&server);
    let mut controller = connect(&server);

    // Hold the workers so two admitted batches stay in flight.
    server.service().pause();
    let b1 = common::batch(&g, 6, 1);
    let b2 = common::batch(&g, 6, 2);
    let id1 = pipelined
        .send_query(&b1, 0, wire::priority::NORMAL)
        .unwrap();
    let id2 = pipelined.send_query(&b2, 0, wire::priority::HIGH).unwrap();
    // The ledger counts batches: wait for both admissions.
    while server.service().stats().submitted < 2 {
        std::thread::sleep(Duration::from_millis(1));
    }

    // Drain lands between the in-flight pair and anything later.
    assert!(!server.is_draining());
    assert_eq!(controller.call_drain().unwrap(), Response::DrainOk);
    assert!(server.is_draining());
    // A second DRAIN is idempotent, and STATS still answers mid-drain.
    assert_eq!(controller.call_drain().unwrap(), Response::DrainOk);
    match controller.call_stats().unwrap() {
        Response::StatsOk(s) => assert_eq!(s.submitted, 2, "both batches show in STATS"),
        other => panic!("expected STATS_OK, got {other:?}"),
    }

    // New work after the drain began is refused...
    let b3 = common::batch(&g, 6, 3);
    let id3 = pipelined
        .send_query(&b3, 0, wire::priority::NORMAL)
        .unwrap();
    server.service().resume();

    // ...while the in-flight pair completes with correct answers.
    for (id, batch) in [(id1, &b1), (id2, &b2)] {
        let (got, resp) = pipelined.recv().expect("in-flight response survives drain");
        assert_eq!(got, id);
        match resp {
            Response::QueryOk { answers, .. } => {
                let want: Vec<bool> = batch.iter().map(|&(s, t)| idx.query(s, t)).collect();
                assert_eq!(answers, want);
            }
            other => panic!("expected QUERY_OK, got {other:?}"),
        }
    }
    let (got, resp) = pipelined.recv().unwrap();
    assert_eq!(got, id3);
    match resp {
        Response::Error { code, .. } => assert_eq!(code, Some(ErrorCode::ShuttingDown)),
        other => panic!("expected SHUTTING_DOWN, got {other:?}"),
    }

    // Once the clients hang up, the drain quiesces.
    drop(pipelined);
    drop(controller);
    assert!(
        server.wait_drained(Duration::from_secs(10)),
        "drain quiesces once clients disconnect"
    );
    let stats = server.shutdown();
    assert_eq!(stats.answered, 2, "exactly the in-flight batches answered");
}

#[test]
fn reload_over_wire_answers_match_the_pinned_generation() {
    // Three cumulative edge slices of one graph: same vertex set, growing
    // reachability — distinguishable indices for the generation check.
    let g = reach_datasets::generators::hierarchy(60, 220, 0.9, 9);
    let slices = reach_datasets::edge_fraction_slices(&g, 3, 7);
    let indices: Vec<Arc<ReachIndex>> = slices.iter().map(closure_index).collect();
    let paths: Vec<_> = (0..indices.len())
        .map(|i| common::temp_index_path(&format!("reload-{i}")))
        .collect();
    for (idx, path) in indices.iter().zip(&paths) {
        storage::save_index(idx, path).expect("save slice index");
    }

    let server = common::start(
        Arc::clone(&indices[0]),
        ServedConfig {
            reload_path: Some(paths[0].clone()),
            ..ServedConfig::default()
        },
    );
    let mut client = connect(&server);
    let pairs = common::batch(&g, 96, 40);

    // generation -> index under this reload schedule: gen 0 and the
    // empty-path reload serve slice 0; gens 1 and 2 serve slices 1 and 2.
    let verify = |client: &mut WireClient, expect_gen: u64, expect_idx: &ReachIndex| {
        match client
            .call_query(&pairs, 0, wire::priority::NORMAL)
            .unwrap()
        {
            Response::QueryOk {
                generation,
                answers,
            } => {
                assert_eq!(generation, expect_gen, "answers tag the serving generation");
                for (&(s, t), &got) in pairs.iter().zip(&answers) {
                    assert_eq!(
                        got,
                        expect_idx.query(s, t),
                        "q({s},{t}) disagrees with generation {generation}'s index"
                    );
                }
            }
            other => panic!("expected QUERY_OK, got {other:?}"),
        }
        match client.call_witness(&pairs).unwrap() {
            Response::WitnessOk {
                generation,
                witnesses,
            } => {
                assert_eq!(generation, expect_gen);
                for (&(s, t), got) in pairs.iter().zip(&witnesses) {
                    assert_eq!(*got, expect_idx.query_witness(s, t));
                }
            }
            other => panic!("expected WITNESS_OK, got {other:?}"),
        }
    };

    verify(&mut client, 0, &indices[0]);
    for next in 1..indices.len() {
        match client.call_reload(paths[next].to_str().unwrap()).unwrap() {
            Response::ReloadOk { generation } => assert_eq!(generation, next as u64),
            other => panic!("expected RELOAD_OK, got {other:?}"),
        }
        verify(&mut client, next as u64, &indices[next]);
    }

    // The empty path reloads the startup index (slice 0) as generation 3.
    match client.call_reload("").unwrap() {
        Response::ReloadOk { generation } => assert_eq!(generation, 3),
        other => panic!("expected RELOAD_OK, got {other:?}"),
    }
    verify(&mut client, 3, &indices[0]);

    // A reload that cannot load changes nothing: typed error, same
    // generation keeps serving.
    match client.call_reload("/nonexistent/nope.ridx").unwrap() {
        Response::Error { code, .. } => assert_eq!(code, Some(ErrorCode::ReloadFailed)),
        other => panic!("expected RELOAD_FAILED, got {other:?}"),
    }
    verify(&mut client, 3, &indices[0]);

    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.swaps, 3, "three reloads installed");
    for path in &paths {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn termination_signal_requests_a_drain() {
    let (_g, idx) = common::fixture();
    let server = common::start(idx, ServedConfig::default());
    let mut client = connect(&server);
    assert_eq!(client.call_ping().unwrap(), Response::Pong);

    // The handler only sets a flag; the serving loop (here, the test
    // standing in for the binary's main loop) turns it into a drain.
    shutdown::install();
    shutdown::raise_term_for_test();
    assert!(shutdown::termination_requested());
    server.drain();

    match client
        .call_query(&[(0, 1)], 0, wire::priority::NORMAL)
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, Some(ErrorCode::ShuttingDown)),
        other => panic!("expected SHUTTING_DOWN after SIGTERM, got {other:?}"),
    }
    drop(client);
    assert!(server.wait_drained(Duration::from_secs(10)));
    server.shutdown();
}
