//! Protocol-robustness suite: hostile bytes on the wire — corrupt
//! headers, truncated and oversized frames, unknown opcodes, malformed
//! payloads, mid-frame disconnects, and quota-exceeded paths — must all
//! yield *typed* error frames (fatal ones closing the connection,
//! recoverable ones leaving it usable), and must never panic the server
//! or hang a connection. Every test ends in `Server::shutdown`, whose
//! ledger assertion (`submitted == answered + rejected + shed`) proves
//! the abuse did not corrupt the serving accounting either.

mod common;

use std::time::Duration;

use common::RawConn;
use reach_served::server::ServedConfig;
use reach_served::wire::{self, opcode, ErrorCode};
use reach_served::{QuotaConfig, Response, WireClient};

/// Reads an ERROR frame and decodes its code, asserting the request id
/// echo.
fn expect_error(conn: &mut RawConn, request_id: u64) -> ErrorCode {
    let frame = conn.read_frame();
    assert_eq!(frame.opcode, opcode::ERROR, "expected an ERROR frame");
    assert_eq!(frame.request_id, request_id, "error echoes the request id");
    let (raw, code, _msg) = wire::decode_error(&frame.payload).expect("well-formed error payload");
    code.unwrap_or_else(|| panic!("unknown error code {raw}"))
}

/// A new connection still works — the canonical "server survived" probe.
fn assert_server_alive(server: &reach_served::Server) {
    let mut client = WireClient::connect(server.local_addr()).expect("connect after abuse");
    client
        .set_recv_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    assert_eq!(client.call_ping().expect("ping"), Response::Pong);
}

#[test]
fn bad_version_is_fatal_but_server_survives() {
    let (_g, idx) = common::fixture();
    let server = common::start(idx, ServedConfig::default());

    let mut conn = RawConn::connect(&server);
    let mut frame = wire::Frame::new(opcode::PING, 42, Vec::new());
    frame.version = 9;
    conn.send_bytes(&frame.encode());

    assert_eq!(expect_error(&mut conn, 42), ErrorCode::UnsupportedVersion);
    conn.expect_eof();
    assert_server_alive(&server);
    server.shutdown();
}

#[test]
fn oversized_frame_is_rejected_before_allocation() {
    let (_g, idx) = common::fixture();
    let server = common::start(
        idx,
        ServedConfig {
            max_frame: 1024,
            ..ServedConfig::default()
        },
    );

    // A header claiming a payload far beyond the cap, with no payload
    // bytes at all: the server must reject on the header alone.
    let mut conn = RawConn::connect(&server);
    let mut header = Vec::new();
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    header.push(wire::VERSION);
    header.push(opcode::QUERY);
    header.extend_from_slice(&7u64.to_le_bytes());
    conn.send_bytes(&header);

    assert_eq!(expect_error(&mut conn, 7), ErrorCode::FrameTooLarge);
    conn.expect_eof();
    assert_server_alive(&server);
    server.shutdown();
}

#[test]
fn garbage_bytes_close_the_connection_with_a_typed_error() {
    let (_g, idx) = common::fixture();
    let server = common::start(idx, ServedConfig::default());

    // 64 bytes of junk: whatever lands in the version byte is not 1, so
    // the reader reports a fatal framing violation rather than guessing.
    let mut conn = RawConn::connect(&server);
    let junk: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();
    assert_ne!(junk[4], wire::VERSION, "junk must not fake the version");
    conn.send_bytes(&junk);

    let frame = conn.read_frame();
    assert_eq!(frame.opcode, opcode::ERROR);
    let (_raw, code, _msg) = wire::decode_error(&frame.payload).expect("typed error");
    assert!(code.expect("known code").is_fatal());
    conn.expect_eof();
    assert_server_alive(&server);
    server.shutdown();
}

#[test]
fn unknown_opcode_is_skipped_and_the_connection_stays_usable() {
    let (_g, idx) = common::fixture();
    let server = common::start(idx, ServedConfig::default());

    let mut conn = RawConn::connect(&server);
    conn.send_frame(0x42, 5, vec![1, 2, 3, 4]);
    assert_eq!(expect_error(&mut conn, 5), ErrorCode::UnknownOpcode);

    // The length prefix let the server skip the whole frame: the very
    // same connection still answers.
    conn.send_frame(opcode::PING, 6, Vec::new());
    let pong = conn.read_frame();
    assert_eq!(pong.opcode, opcode::PONG);
    assert_eq!(pong.request_id, 6);
    server.shutdown();
}

#[test]
fn malformed_payload_is_a_recoverable_error() {
    let (_g, idx) = common::fixture();
    let server = common::start(idx, ServedConfig::default());
    let mut conn = RawConn::connect(&server);

    // A QUERY whose pair count claims more pairs than the payload holds.
    let mut payload = Vec::new();
    payload.extend_from_slice(&0u32.to_le_bytes()); // deadline_ms
    payload.push(wire::priority::NORMAL);
    payload.extend_from_slice(&5u32.to_le_bytes()); // count: 5
    payload.extend_from_slice(&1u32.to_le_bytes()); // ...but one vertex
    conn.send_frame(opcode::QUERY, 9, payload);
    assert_eq!(expect_error(&mut conn, 9), ErrorCode::BadPayload);

    // A QUERY with an undefined priority byte.
    let mut payload = Vec::new();
    payload.extend_from_slice(&0u32.to_le_bytes());
    payload.push(77);
    payload.extend_from_slice(&0u32.to_le_bytes());
    conn.send_frame(opcode::QUERY, 10, payload);
    assert_eq!(expect_error(&mut conn, 10), ErrorCode::BadPayload);

    // A RELOAD whose path is not UTF-8.
    let mut payload = Vec::new();
    payload.extend_from_slice(&2u32.to_le_bytes());
    payload.extend_from_slice(&[0xFF, 0xFE]);
    conn.send_frame(opcode::RELOAD, 11, payload);
    assert_eq!(expect_error(&mut conn, 11), ErrorCode::BadPayload);

    // All three were recoverable: the connection still answers.
    conn.send_frame(opcode::PING, 12, Vec::new());
    assert_eq!(conn.read_frame().opcode, opcode::PONG);
    server.shutdown();
}

#[test]
fn mid_frame_disconnect_does_not_wedge_the_server() {
    let (_g, idx) = common::fixture();
    let server = common::start(idx, ServedConfig::default());

    // Write half a header, then vanish.
    {
        let mut conn = RawConn::connect(&server);
        conn.send_bytes(&[0x10, 0x00, 0x00, 0x00, 0x01, 0x01]);
        // Dropped here: the socket closes mid-frame.
    }
    // And again with a complete header but a truncated payload.
    {
        let mut conn = RawConn::connect(&server);
        let frame = wire::Frame::new(opcode::QUERY, 3, vec![0u8; 64]).encode();
        conn.send_bytes(&frame[..frame.len() - 10]);
    }

    assert_server_alive(&server);
    let stats = server.shutdown();
    assert_eq!(stats.submitted, 0, "no partial frame ever became a batch");
}

#[test]
fn batch_over_the_frame_cap_is_rejected() {
    let (g, idx) = common::fixture();
    let server = common::start(
        idx,
        ServedConfig {
            quota: QuotaConfig {
                max_batch: 8,
                ..QuotaConfig::default()
            },
            ..ServedConfig::default()
        },
    );
    let mut client = WireClient::connect(server.local_addr()).unwrap();
    client
        .set_recv_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    let big = common::batch(&g, 9, 1);
    match client
        .call_query(&big, 0, wire::priority::NORMAL)
        .expect("typed error, not a dead socket")
    {
        Response::Error { code, .. } => assert_eq!(code, Some(ErrorCode::BatchTooLarge)),
        other => panic!("expected BATCH_TOO_LARGE, got {other:?}"),
    }

    // At the cap is fine.
    let ok = common::batch(&g, 8, 2);
    match client.call_query(&ok, 0, wire::priority::NORMAL).unwrap() {
        Response::QueryOk { answers, .. } => assert_eq!(answers.len(), 8),
        other => panic!("expected QUERY_OK, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn inflight_window_quota_yields_retryable_rejection() {
    let (g, idx) = common::fixture();
    let server = common::start(
        idx.clone(),
        ServedConfig {
            quota: QuotaConfig {
                max_inflight: 2,
                ..QuotaConfig::default()
            },
            ..ServedConfig::default()
        },
    );
    let mut client = WireClient::connect(server.local_addr()).unwrap();
    client
        .set_recv_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // Hold the workers so the first two queries stay in flight, then
    // overflow the window with a third.
    server.service().pause();
    let b1 = common::batch(&g, 4, 10);
    let b2 = common::batch(&g, 4, 11);
    let b3 = common::batch(&g, 4, 12);
    let id1 = client.send_query(&b1, 0, wire::priority::NORMAL).unwrap();
    let id2 = client.send_query(&b2, 0, wire::priority::NORMAL).unwrap();
    // Wait until both batches are admitted (the reader thread races us;
    // the ledger counts batches, not queries).
    while server.service().stats().submitted < 2 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let id3 = client.send_query(&b3, 0, wire::priority::NORMAL).unwrap();
    // The reader thread must see frame 3 while the window is still full
    // (its rejection is invisible until the writer drains, so give the
    // parse a generous head start before releasing the workers).
    std::thread::sleep(Duration::from_millis(300));
    server.service().resume();

    // Responses arrive in request order on one connection.
    for (id, batch) in [(id1, &b1), (id2, &b2)] {
        let (got, resp) = client.recv().expect("pipelined response");
        assert_eq!(got, id);
        match resp {
            Response::QueryOk { answers, .. } => {
                let want: Vec<bool> = batch.iter().map(|&(s, t)| idx.query(s, t)).collect();
                assert_eq!(answers, want, "in-flight answers are still correct");
            }
            other => panic!("expected QUERY_OK, got {other:?}"),
        }
    }
    let (got, resp) = client.recv().unwrap();
    assert_eq!(got, id3);
    match resp {
        Response::Error { code, .. } => {
            let code = code.expect("known code");
            assert_eq!(code, ErrorCode::QuotaExceeded);
            assert!(code.is_retryable(), "quota rejections invite a retry");
        }
        other => panic!("expected QUOTA_EXCEEDED, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn rate_bucket_quota_rejects_the_burst_overflow() {
    let (g, idx) = common::fixture();
    let server = common::start(
        idx,
        ServedConfig {
            quota: QuotaConfig {
                queries_per_sec: Some(5),
                ..QuotaConfig::default()
            },
            ..ServedConfig::default()
        },
    );
    let mut client = WireClient::connect(server.local_addr()).unwrap();
    client
        .set_recv_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    // The burst is one second's budget (5 queries): the first batch of 5
    // drains it, the immediate second batch bounces.
    let batch = common::batch(&g, 5, 20);
    match client
        .call_query(&batch, 0, wire::priority::NORMAL)
        .unwrap()
    {
        Response::QueryOk { .. } => {}
        other => panic!("first burst should pass, got {other:?}"),
    }
    match client
        .call_query(&batch, 0, wire::priority::NORMAL)
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, Some(ErrorCode::QuotaExceeded)),
        other => panic!("expected QUOTA_EXCEEDED, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn invalid_vertices_yield_typed_errors_on_both_query_paths() {
    let (_g, idx) = common::fixture();
    let n = idx.num_vertices() as u32;
    let server = common::start(idx, ServedConfig::default());
    let mut client = WireClient::connect(server.local_addr()).unwrap();
    client
        .set_recv_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    let bad = [(0u32, n + 100)];
    match client.call_query(&bad, 0, wire::priority::NORMAL).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, Some(ErrorCode::InvalidVertex)),
        other => panic!("expected INVALID_VERTEX from QUERY, got {other:?}"),
    }
    match client.call_witness(&bad).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, Some(ErrorCode::InvalidVertex)),
        other => panic!("expected INVALID_VERTEX from WITNESS, got {other:?}"),
    }
    // Both rejections were recoverable.
    assert_eq!(client.call_ping().unwrap(), Response::Pong);
    server.shutdown();
}

#[test]
fn witness_answers_match_the_index_and_agree_with_query() {
    let (g, idx) = common::fixture();
    let server = common::start(idx.clone(), ServedConfig::default());
    let mut client = WireClient::connect(server.local_addr()).unwrap();
    client
        .set_recv_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    let pairs = common::batch(&g, 64, 30);
    let witnesses = match client.call_witness(&pairs).unwrap() {
        Response::WitnessOk { witnesses, .. } => witnesses,
        other => panic!("expected WITNESS_OK, got {other:?}"),
    };
    assert_eq!(witnesses.len(), pairs.len());
    for (&(s, t), got) in pairs.iter().zip(&witnesses) {
        assert_eq!(*got, idx.query_witness(s, t), "witness for ({s},{t})");
        assert_eq!(
            got.is_some(),
            idx.query(s, t),
            "a witness exists exactly when ({s},{t}) is reachable"
        );
    }
    server.shutdown();
}
