//! Vertex-to-node assignment.

use reach_graph::VertexId;

/// Maps every vertex to one of `num_nodes` computation nodes.
///
/// The default is the paper's scheme — "we map graph vertices to different
/// computation nodes via vertex IDs" — i.e. `node(v) = v mod N`. A custom
/// assignment can be supplied for experiments on partition quality.
#[derive(Clone, Debug)]
pub struct Partition {
    num_nodes: usize,
    assignment: Assignment,
}

#[derive(Clone, Debug)]
enum Assignment {
    Modulo,
    Explicit(Vec<u16>),
}

impl Partition {
    /// The paper's id-modulo partitioning.
    pub fn modulo(num_nodes: usize) -> Self {
        assert!(num_nodes >= 1 && num_nodes <= u16::MAX as usize);
        Partition {
            num_nodes,
            assignment: Assignment::Modulo,
        }
    }

    /// An explicit per-vertex assignment; every entry must be `< num_nodes`.
    pub fn explicit(num_nodes: usize, assignment: Vec<u16>) -> Self {
        assert!(num_nodes >= 1 && num_nodes <= u16::MAX as usize);
        assert!(
            assignment.iter().all(|&n| (n as usize) < num_nodes),
            "assignment references a node >= {num_nodes}"
        );
        Partition {
            num_nodes,
            assignment: Assignment::Explicit(assignment),
        }
    }

    /// Number of computation nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The home node of `v`.
    #[inline]
    pub fn node_of(&self, v: VertexId) -> usize {
        match &self.assignment {
            Assignment::Modulo => v as usize % self.num_nodes,
            Assignment::Explicit(a) => a[v as usize] as usize,
        }
    }

    /// Whether every vertex of `0..n` has a home node — always true for
    /// the modulo scheme, bounded by the assignment table for explicit
    /// ones. Callers that re-target a partition at a new graph (e.g. the
    /// serving layer's index hot-swap) check this instead of letting
    /// [`Partition::node_of`] panic on an uncovered vertex.
    #[inline]
    pub fn covers(&self, n: usize) -> bool {
        match &self.assignment {
            Assignment::Modulo => true,
            Assignment::Explicit(a) => n <= a.len(),
        }
    }

    /// The vertices owned by `node` among `0..n`, ascending.
    pub fn owned(&self, node: usize, n: usize) -> Vec<VertexId> {
        (0..n as VertexId)
            .filter(|&v| self.node_of(v) == node)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulo_round_robins() {
        let p = Partition::modulo(4);
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(5), 1);
        assert_eq!(p.node_of(7), 3);
        assert_eq!(p.owned(1, 8), vec![1, 5]);
    }

    #[test]
    fn single_node_owns_everything() {
        let p = Partition::modulo(1);
        assert_eq!(p.owned(0, 5), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn explicit_assignment() {
        let p = Partition::explicit(2, vec![1, 1, 0]);
        assert_eq!(p.node_of(0), 1);
        assert_eq!(p.node_of(2), 0);
        assert_eq!(p.owned(1, 3), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "references a node")]
    fn explicit_out_of_range_panics() {
        Partition::explicit(2, vec![2]);
    }

    #[test]
    fn coverage_is_unbounded_for_modulo_and_table_sized_for_explicit() {
        assert!(Partition::modulo(3).covers(0));
        assert!(Partition::modulo(3).covers(1_000_000));
        let p = Partition::explicit(2, vec![0, 1, 0]);
        assert!(p.covers(3));
        assert!(!p.covers(4));
    }
}
