//! The super-step execution engine.
//!
//! [`Engine::run`] drives a [`VertexProgram`] to quiescence: super-step 0
//! calls `compute` on every vertex with an empty inbox (initialization);
//! each later super-step delivers the previous step's messages and calls
//! `compute` only on vertices that received something. The run terminates
//! when no messages and no global updates are produced, after which
//! `finalize` runs once per vertex (the paper's "only run after the final
//! super-step" blocks in Algorithms 3–4).
//!
//! # Threaded execution
//!
//! The cluster is simulated, but both halves of a super-step are genuinely
//! parallel: the per-node `compute` calls **and** the inter-super-step
//! barrier's message routing run on a pool of OS worker threads
//! ([`Engine::with_threads`]; the default honors the
//! `REACH_ENGINE_THREADS` environment variable, falling back to the
//! machine's available parallelism). Threading never changes results:
//!
//! * each simulated node owns a disjoint slice of vertex state, and each
//!   node is processed by exactly one worker per round, so computes never
//!   race;
//! * routing is a second pool round: the worker owning sender node `from`
//!   drains its pre-bucketed `sends[dest]` queues into per-`(from, dest)`
//!   staging cells, taking drop/delay fault draws from a decorrelated
//!   [`crate::FaultRng`] sub-stream keyed by `(superstep, from, dest)` —
//!   so the draws a message experiences depend only on its bucket, never
//!   on which worker routed it or in what global order;
//! * delivery reproduces the sequential order without a per-node inbox
//!   sort: every staging cell is target-sorted by its sender's worker, and
//!   the receiver splices the cells with a stable k-way merge (ascending
//!   target, ties in sender-node order, emission order within a sender);
//! * what remains on the coordinator is a deterministic node-ordered
//!   *reduction* — per-sender byte/fault accounting folded into
//!   [`crate::CommStats`], global-update application, checkpointing, and
//!   crash recovery — all while the workers are parked at the round
//!   barrier.
//!
//! Any thread count (including `1`, which runs the whole round inline on
//! the calling thread) therefore produces bit-identical states, globals,
//! and [`RunStats`]. The modeled clock is also unchanged: each node's
//! compute time is still measured independently per super-step and the
//! *maximum* is charged to the modeled parallel time, so modeled timings
//! stay deterministic in shape even though real wall-clock now shrinks
//! with the worker count. Opt-in core pinning
//! ([`Engine::with_pinning`] / `REACH_ENGINE_PIN`) additionally binds each
//! spawned worker to a fixed CPU, trading scheduler freedom for cache
//! locality; it never affects results either.
//!
//! # Fault tolerance
//!
//! An engine configured with [`Engine::with_faults`] survives the faults a
//! seeded [`FaultPlan`] injects:
//!
//! * **Message drops** are absorbed by the barrier's reliable transport:
//!   a dropped transmission is retransmitted (each attempt re-drawn from
//!   the fault stream, bounded by [`FaultPlan::max_retries`]), so delivery
//!   semantics are untouched — only retransmitted bytes and barrier time
//!   grow. **Message delays** make a remote message straggle behind its
//!   barrier; the barrier waits (charging straggler latency to the modeled
//!   clock) rather than letting the message leak into a later super-step,
//!   preserving the BSP contract that a message sent at super-step `s` is
//!   computed on at `s + 1`.
//! * **Node crashes** are survived by coordinated checkpointing: every
//!   [`Engine::with_checkpoint_interval`] super-steps the engine snapshots
//!   all vertex states, the replicated global, and the in-flight inboxes.
//!   When a node dies, its partition is reassigned round-robin to the
//!   survivors, the snapshot is restored (in-flight messages re-bucketed
//!   under the new assignment), and execution replays from the checkpoint
//!   super-step.
//!
//! Because none of the three faults can reorder delivery *across*
//! super-steps, any program insensitive to the within-inbox message order
//! produces bit-identical results under every recoverable fault schedule.

use std::cell::UnsafeCell;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard};
use std::time::Instant;

use reach_graph::{DiGraph, VertexId};

use crate::comm::{NetworkModel, RunStats};
use crate::fault::{CrashReason, EngineError, FaultPlan};
use crate::partition::Partition;

/// A user-defined vertex-centric computation.
pub trait VertexProgram {
    /// Per-vertex state, held on the vertex's home node.
    type State;
    /// Message type exchanged along edges (or to arbitrary vertices).
    type Msg: Clone;
    /// Global state replicated on every node (e.g. shared inverted lists).
    type Global: Default;
    /// An update to the global state, broadcast at the barrier.
    type Update: Clone;

    /// Initial state of vertex `v`.
    fn init_state(&self, v: VertexId) -> Self::State;

    /// The `compute()` function of §II-C. Called with an empty `msgs` slice
    /// exactly once at super-step 0.
    fn compute(
        &self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Update>,
        v: VertexId,
        state: &mut Self::State,
        msgs: &[Self::Msg],
        global: &Self::Global,
    );

    /// Folds broadcast updates into the replicated global state. Called
    /// once per barrier with every update produced that super-step, in
    /// deterministic (node, emission) order.
    fn apply_updates(&self, global: &mut Self::Global, updates: &[Self::Update]);

    /// Runs once per vertex after quiescence.
    fn finalize(&self, _v: VertexId, _state: &mut Self::State, _global: &Self::Global) {}

    /// Wire size of a message, for communication accounting.
    fn msg_bytes(&self, _m: &Self::Msg) -> usize {
        std::mem::size_of::<Self::Msg>()
    }

    /// Wire size of a global update.
    fn update_bytes(&self, _u: &Self::Update) -> usize {
        std::mem::size_of::<Self::Update>()
    }

    /// Stable-storage size of one vertex state, for checkpoint accounting.
    fn state_bytes(&self, _s: &Self::State) -> usize {
        std::mem::size_of::<Self::State>()
    }

    /// Stable-storage size of the replicated global, for checkpoint
    /// accounting.
    fn global_bytes(&self, _g: &Self::Global) -> usize {
        std::mem::size_of::<Self::Global>()
    }
}

/// Per-vertex execution context handed to [`VertexProgram::compute`].
///
/// Outgoing messages are bucketed by destination node at send time (the
/// home node of the target vertex under the current assignment), so the
/// barrier can route them without rescanning every send.
pub struct Ctx<'a, M, U> {
    /// Current super-step number (0 = initialization step).
    pub superstep: usize,
    graph: &'a DiGraph,
    /// The simulated node whose vertices this context computes for.
    node: usize,
    num_vertices: usize,
    /// Vertex → home-node map in effect this super-step.
    assignment: &'a [usize],
    /// `sends[dest]` = messages bound for node `dest`, in emission order.
    sends: &'a mut [Vec<(VertexId, M)>],
    updates: &'a mut Vec<U>,
    /// First invalid send of the round, surfaced at the barrier.
    error: &'a mut Option<EngineError>,
}

impl<'a, M, U> Ctx<'a, M, U> {
    /// Sends `msg` to vertex `to` for delivery next super-step. A target
    /// outside the graph fails the run with
    /// [`EngineError::InvalidSendTarget`] at the barrier.
    #[inline]
    pub fn send(&mut self, to: VertexId, msg: M) {
        if (to as usize) < self.num_vertices {
            self.sends[self.assignment[to as usize]].push((to, msg));
        } else if self.error.is_none() {
            *self.error = Some(EngineError::InvalidSendTarget {
                from_node: self.node,
                target: to,
                num_vertices: self.num_vertices,
                superstep: self.superstep,
            });
        }
    }

    /// Publishes a global update, replicated to all nodes at the barrier.
    #[inline]
    pub fn publish(&mut self, update: U) {
        self.updates.push(update);
    }

    /// Out-neighbors of `v` (the node-local adjacency fragment).
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &'a [VertexId] {
        self.graph.out(v)
    }

    /// In-neighbors of `v`.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &'a [VertexId] {
        self.graph.inn(v)
    }
}

/// Result of an engine run.
pub struct RunOutcome<P: VertexProgram> {
    /// Final per-vertex states (indexed by vertex id).
    pub states: Vec<P::State>,
    /// Final replicated global state.
    pub global: P::Global,
    /// Timing, traffic, and recovery statistics.
    pub stats: RunStats,
}

/// Checkpoint interval used when crashes are planned but the caller did
/// not choose one.
const DEFAULT_CHECKPOINT_INTERVAL: usize = 4;

/// Heartbeat-timeout cost of detecting a dead node, in super-step
/// latencies.
const CRASH_DETECTION_LATENCIES: f64 = 10.0;

/// One coordinated snapshot: everything needed to replay from
/// `superstep` — vertex states, the replicated global, and the in-flight
/// messages that were awaiting delivery, flattened in deterministic
/// (node, emission) order so they can be re-bucketed under a different
/// partition assignment.
struct Checkpoint<S, G, M> {
    superstep: usize,
    states: Vec<S>,
    global: G,
    mail: Vec<(VertexId, M)>,
    bytes: usize,
}

/// Buckets vertex ids by their assigned node.
fn bucket(assignment: &[usize], num_nodes: usize) -> Vec<Vec<VertexId>> {
    let mut owned = vec![Vec::new(); num_nodes];
    for (v, &node) in assignment.iter().enumerate() {
        owned[node].push(v as VertexId);
    }
    owned
}

/// Default worker-thread count: `REACH_ENGINE_THREADS` when set to a
/// positive integer, else the machine's available parallelism.
fn default_worker_threads() -> usize {
    if let Ok(raw) = std::env::var("REACH_ENGINE_THREADS") {
        if let Ok(threads) = raw.trim().parse::<usize>() {
            if threads >= 1 {
                return threads;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

// ---------------------------------------------------------------------------
// Worker-pool plumbing.
//
// One pool is spawned per run (`std::thread::scope`), and every round —
// one compute phase, one route phase, or the finalize phase — is a pair
// of barrier waits: the coordinator publishes the phase and super-step,
// everyone crosses the entry barrier, each participant (the coordinator
// doubles as worker 0) processes its fixed chunk of node slots, and
// everyone crosses the exit barrier. Between rounds the workers are
// parked inside `Barrier::wait`, which is what makes the coordinator's
// lock-free access to the shared state below sound: the barrier's
// internal lock/condvar pair provides the happens-before edge on every
// transfer of ownership.
// ---------------------------------------------------------------------------

/// Round phase: run `compute` over the chunk's node slots.
const PHASE_COMPUTE: u8 = 0;
/// Round phase: run `finalize` over the chunk's node slots.
const PHASE_FINALIZE: u8 = 1;
/// Round phase: route the chunk's staged sends (sort, fault draws, byte
/// accounting, staging for next-step delivery).
const PHASE_ROUTE: u8 = 2;
/// Round phase: the run is over; workers exit their loop.
const PHASE_SHUTDOWN: u8 = 3;

/// A shared, unsynchronized view of the per-vertex state vector.
///
/// # Safety protocol
///
/// During a round, a worker only touches states of vertices owned by the
/// node slot it currently holds locked, and `bucket` assigns every vertex
/// to exactly one node, so concurrent `get_mut` calls never alias.
/// Between rounds — all workers parked at the round barrier — the
/// coordinator has exclusive access to the whole table (checkpoint
/// snapshots, rollback restores).
struct StateTable<S> {
    ptr: *mut S,
    len: usize,
}

// SAFETY: see the protocol above; `S: Send` because worker threads obtain
// `&mut S` and could move values out/in.
unsafe impl<S: Send> Sync for StateTable<S> {}

impl<S> StateTable<S> {
    fn new(states: &mut [S]) -> Self {
        StateTable {
            ptr: states.as_mut_ptr(),
            len: states.len(),
        }
    }

    /// Shared reference to state `i`.
    ///
    /// # Safety
    /// The caller must hold access to `i` under the table's protocol, and
    /// no `&mut` to the same element may be live.
    unsafe fn get_ref(&self, i: usize) -> &S {
        debug_assert!(i < self.len);
        &*self.ptr.add(i)
    }

    /// Exclusive reference to state `i`.
    ///
    /// # Safety
    /// The caller must hold *exclusive* access to `i` under the table's
    /// protocol (own the node slot that owns vertex `i`, or be the
    /// coordinator between rounds).
    #[allow(clippy::mut_from_ref)]
    unsafe fn get_mut(&self, i: usize) -> &mut S {
        debug_assert!(i < self.len);
        &mut *self.ptr.add(i)
    }
}

/// An [`UnsafeCell`] shared under the round protocol: workers take shared
/// references during a round; the coordinator mutates only between rounds,
/// while every worker is parked at the round barrier.
struct SyncCell<T>(UnsafeCell<T>);

// SAFETY: mutation is coordinator-exclusive between rounds; rounds only
// read. The round barrier orders the two.
unsafe impl<T: Send + Sync> Sync for SyncCell<T> {}

impl<T> SyncCell<T> {
    fn new(value: T) -> Self {
        SyncCell(UnsafeCell::new(value))
    }

    /// # Safety
    /// No `&mut` from [`SyncCell::get_mut`] may be live.
    unsafe fn get_ref(&self) -> &T {
        &*self.0.get()
    }

    /// # Safety
    /// The caller must be the only thread touching the cell (the
    /// coordinator between rounds), and no other reference may be live.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get_mut(&self) -> &mut T {
        &mut *self.0.get()
    }

    fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

/// The staged-message matrix: one cell per `(from, dest)` node pair,
/// holding the messages `from` sent to `dest` at the last route phase,
/// stable-sorted by target vertex. This is the in-flight mail of the
/// cluster between two super-steps.
///
/// # Safety protocol
///
/// Cells are shared without locks under the round discipline:
///
/// * **route phase** — the worker holding node `from`'s slot exclusively
///   accesses *row* `from` (cells `(from, *)`), refilling them;
/// * **compute phase** — the worker holding node `dest`'s slot exclusively
///   accesses *column* `dest` (cells `(*, dest)`), draining them;
/// * **between rounds** — the coordinator has exclusive access to the
///   whole matrix (checkpoint snapshots, rollback restores, quiescence
///   checks).
///
/// Rows and columns intersect, but never within one round, and the round
/// barrier provides the happens-before edge between phases.
struct StagingMatrix<M> {
    cells: Vec<UnsafeCell<Vec<(VertexId, M)>>>,
    nodes: usize,
}

// SAFETY: see the protocol above; `M: Send` because workers obtain `&mut`
// access and move messages out/in across threads.
unsafe impl<M: Send> Sync for StagingMatrix<M> {}

impl<M> StagingMatrix<M> {
    fn new(nodes: usize) -> Self {
        StagingMatrix {
            cells: (0..nodes * nodes)
                .map(|_| UnsafeCell::new(Vec::new()))
                .collect(),
            nodes,
        }
    }

    /// Shared reference to cell `(from, dest)`.
    ///
    /// # Safety
    /// The caller must hold access under the matrix protocol and no `&mut`
    /// to the same cell may be live.
    unsafe fn cell_ref(&self, from: usize, dest: usize) -> &Vec<(VertexId, M)> {
        &*self.cells[from * self.nodes + dest].get()
    }

    /// Exclusive reference to cell `(from, dest)`.
    ///
    /// # Safety
    /// The caller must hold *exclusive* access under the matrix protocol
    /// (own row `from` in a route round, own column `dest` in a compute
    /// round, or be the coordinator between rounds).
    #[allow(clippy::mut_from_ref)]
    unsafe fn cell_mut(&self, from: usize, dest: usize) -> &mut Vec<(VertexId, M)> {
        &mut *self.cells[from * self.nodes + dest].get()
    }
}

/// Per-sender barrier accounting, filled by the route phase on the worker
/// pool and reduced into [`RunStats`] by the coordinator in node order.
/// All counters restart from zero each super-step.
#[derive(Default)]
struct RouteReport {
    /// Messages (and payload bytes) delivered node-locally.
    local_messages: usize,
    /// Payload bytes of node-local messages.
    local_bytes: usize,
    /// Messages that crossed between nodes.
    remote_messages: usize,
    /// Payload bytes of remote messages (goodput; retransmits excluded,
    /// matching [`crate::CommStats`]).
    remote_bytes: usize,
    /// Messages staged for next-step delivery (local + remote).
    staged: usize,
    /// Retransmission attempts caused by injected drops.
    retransmits: usize,
    /// Remote messages that straggled behind the barrier.
    delayed: usize,
    /// Slowest straggler delay drawn this super-step, in latencies.
    straggle: usize,
    /// Per-node byte loads this sender contributed (sender and receiver
    /// sides, retransmit attempts included) for the bottleneck-node model.
    node_bytes: Vec<usize>,
}

impl RouteReport {
    fn reset(&mut self, num_nodes: usize) {
        self.local_messages = 0;
        self.local_bytes = 0;
        self.remote_messages = 0;
        self.remote_bytes = 0;
        self.staged = 0;
        self.retransmits = 0;
        self.delayed = 0;
        self.straggle = 0;
        self.node_bytes.resize(num_nodes, 0);
        self.node_bytes.iter_mut().for_each(|b| *b = 0);
    }
}

/// Sub-stream salt for one `(superstep, from, dest)` routing bucket. The
/// packing is collision-free for super-steps below 2^24 and clusters below
/// 2^20 nodes (far beyond anything the engine runs); outside those bounds
/// salts may collide, which only correlates fault draws, never breaks
/// determinism.
fn route_salt(superstep: usize, from: usize, dest: usize) -> u64 {
    ((superstep as u64) << 40) ^ ((from as u64) << 20) ^ dest as u64
}

/// Per-simulated-node working set. Owned by exactly one worker during a
/// round and by the coordinator between rounds. All buffers are allocated
/// once per run and reused across super-steps, so the steady-state hot
/// path allocates nothing (capacities implicitly stay pre-sized at each
/// node's high-water message volume).
struct NodeSlot<P: VertexProgram> {
    /// Vertices homed on this node under the current assignment.
    owned: Vec<VertexId>,
    /// Delivery scratch: targets of the merged staged messages, aligned
    /// with `delivery`, so grouped messages reach `compute` as borrowed
    /// slices instead of per-vertex cloned `Vec`s.
    delivery_targets: Vec<VertexId>,
    /// Delivery scratch: message payloads, moved (not cloned) out of the
    /// staging cells.
    delivery: Vec<P::Msg>,
    /// Outgoing messages bucketed by destination node at send time.
    sends: Vec<Vec<(VertexId, P::Msg)>>,
    /// Global updates published this super-step, in emission order.
    updates: Vec<P::Update>,
    /// Barrier accounting produced when this node's sends were routed.
    route: RouteReport,
    /// Wall-clock seconds of this node's last compute/finalize phase.
    seconds: f64,
    /// First invalid send of the round, surfaced at the barrier in node
    /// order (also carries a route-phase `MessageLost`).
    error: Option<EngineError>,
}

/// Everything the coordinator and the workers share for one run.
struct ClusterShared<'e, P: VertexProgram> {
    program: &'e P,
    graph: &'e DiGraph,
    num_vertices: usize,
    num_nodes: usize,
    states: StateTable<P::State>,
    /// Replicated global state (read-only during rounds).
    global: SyncCell<P::Global>,
    /// Vertex → home-node map (rewritten only on crash recovery).
    assignment: SyncCell<Vec<usize>>,
    slots: Vec<Mutex<NodeSlot<P>>>,
    /// In-flight mail between super-steps, staged per `(from, dest)`.
    staging: StagingMatrix<P::Msg>,
    /// The fault plan in effect (a quiet plan when none was configured).
    plan: FaultPlan,
    /// Base salt of the per-bucket fault sub-streams.
    fault_salt: u64,
    /// Per-worker obs captures, folded into the coordinator's recorder at
    /// the exit barrier of every round.
    worker_obs: Vec<Mutex<Option<reach_obs::WorkerMetrics>>>,
    barrier: Barrier,
    superstep: AtomicUsize,
    phase: AtomicU8,
    /// First panic payload raised inside a round, re-raised on the caller
    /// thread after the pool shuts down.
    panicked: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Locks ignoring poisoning: a panic inside a round is caught, parked in
/// `ClusterShared::panicked`, and re-raised on the caller thread, so a
/// poisoned mutex only means "a panic is already in flight".
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Locks every node slot, in node order.
fn lock_slots<'s, P: VertexProgram>(
    slots: &'s [Mutex<NodeSlot<P>>],
) -> Vec<MutexGuard<'s, NodeSlot<P>>> {
    slots.iter().map(lock).collect()
}

/// Why the coordinator stopped: a typed engine error for the caller, or
/// "a panic payload is parked in `ClusterShared::panicked`".
enum Halt {
    Err(EngineError),
    Panic,
}

/// Processes one chunk of node slots for the current round. Runs on every
/// pool participant, including the coordinator.
fn run_chunk<P: VertexProgram>(shared: &ClusterShared<'_, P>, nodes: Range<usize>, phase: u8) {
    let superstep = shared.superstep.load(Ordering::Acquire);
    // SAFETY: during a round the coordinator never touches the global or
    // the assignment, so shared references are sound on every thread.
    let global = unsafe { shared.global.get_ref() };
    let assignment = unsafe { shared.assignment.get_ref() };
    for node in nodes {
        let mut guard = lock(&shared.slots[node]);
        let slot = &mut *guard;
        match phase {
            PHASE_FINALIZE => finalize_node(shared, slot, global),
            PHASE_ROUTE => route_node(shared, node, slot, superstep),
            _ => compute_node(shared, node, slot, assignment, global, superstep),
        }
    }
}

/// One node's route phase: target-sort each outgoing `sends[dest]` bucket,
/// take its drop/delay fault draws from the bucket's decorrelated
/// sub-stream, account bytes into the slot's [`RouteReport`], and stage
/// the bucket into the matrix for next-step delivery.
///
/// Everything here depends only on the bucket's own content and its
/// `(superstep, from, dest)` key, so routing parallelizes across senders
/// without observable effect: the coordinator's node-ordered reduction of
/// the reports reproduces the sequential accounting exactly.
fn route_node<P: VertexProgram>(
    shared: &ClusterShared<'_, P>,
    from: usize,
    slot: &mut NodeSlot<P>,
    superstep: usize,
) {
    let plan = &shared.plan;
    let draws = plan.drop_prob > 0.0 || plan.delay_prob > 0.0;
    let NodeSlot {
        sends,
        route,
        error,
        ..
    } = slot;
    route.reset(shared.num_nodes);
    for (dest, bucket) in sends.iter_mut().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        // Stable target sort on the sender's worker, so the receiver can
        // deliver with a k-way merge instead of sorting its whole inbox.
        bucket.sort_by_key(|&(t, _)| t);
        let mut rng = draws.then(|| {
            crate::fault::FaultRng::stream(shared.fault_salt, route_salt(superstep, from, dest))
        });
        for (_, msg) in bucket.iter() {
            let bytes = shared.program.msg_bytes(msg);
            if dest == from {
                route.local_messages += 1;
                route.local_bytes += bytes;
                continue;
            }
            route.remote_messages += 1;
            route.remote_bytes += bytes;
            // Reliable transport: resend until the transfer survives the
            // drop coin, within the retry budget. Every attempt consumes
            // sender and receiver bandwidth; only the last delivers.
            let mut attempts = 1usize;
            if let Some(rng) = rng.as_mut() {
                while plan.drop_prob > 0.0 && rng.chance(plan.drop_prob) {
                    attempts += 1;
                    if attempts > plan.max_retries {
                        if error.is_none() {
                            *error = Some(EngineError::MessageLost {
                                superstep,
                                retries: plan.max_retries,
                            });
                        }
                        return; // the run is failing; stop routing this sender
                    }
                }
                if plan.delay_prob > 0.0 && rng.chance(plan.delay_prob) {
                    // A straggler stalls the barrier; the slowest one sets
                    // the stall for the super-step.
                    route.straggle = route
                        .straggle
                        .max(rng.range_inclusive(1, plan.max_delay as u64) as usize);
                    route.delayed += 1;
                }
            }
            route.retransmits += attempts - 1;
            route.node_bytes[from] += attempts * bytes;
            route.node_bytes[dest] += attempts * bytes;
        }
        route.staged += bucket.len();
        // SAFETY: route-phase row exclusivity — this worker holds node
        // `from`'s slot, so it alone touches row `from` this round. The
        // cell was drained by last step's delivery (or is freshly empty),
        // so the swap hands the bucket over and recycles the capacity.
        let cell = unsafe { shared.staging.cell_mut(from, dest) };
        debug_assert!(cell.is_empty(), "staging cell reused before delivery");
        std::mem::swap(bucket, cell);
    }
}

/// One node's compute phase: deliver the inbox grouped by target vertex
/// and call the program, bucketing sends by destination node.
fn compute_node<P: VertexProgram>(
    shared: &ClusterShared<'_, P>,
    node: usize,
    slot: &mut NodeSlot<P>,
    assignment: &[usize],
    global: &P::Global,
    superstep: usize,
) {
    // Dead nodes own nothing and receive nothing, so this also skips them.
    if superstep == 0 && slot.owned.is_empty() {
        slot.seconds = 0.0;
        return;
    }
    let t0 = Instant::now();
    if superstep > 0 {
        // Splice the staged inbound cells (each target-sorted at route
        // time) into delivery order with a stable k-way merge: ascending
        // target, ties in sender-node order, emission order within a
        // sender — exactly the order the sort-based delivery produced.
        // Payloads move into the scratch buffers, clone-free, and the
        // drains leave every cell empty with its capacity intact.
        slot.delivery_targets.clear();
        slot.delivery.clear();
        // SAFETY: compute-phase column exclusivity — this worker holds
        // node `node`'s slot, so it alone drains column `node` this round.
        let mut sources: Vec<_> = (0..shared.num_nodes)
            .map(|from| {
                unsafe { shared.staging.cell_mut(from, node) }
                    .drain(..)
                    .peekable()
            })
            .collect();
        loop {
            let mut next: Option<VertexId> = None;
            for s in sources.iter_mut() {
                if let Some((t, _)) = s.peek() {
                    next = Some(next.map_or(*t, |m| m.min(*t)));
                }
            }
            let Some(v) = next else { break };
            for s in sources.iter_mut() {
                while s.peek().is_some_and(|(t, _)| *t == v) {
                    let (to, msg) = s.next().expect("peeked");
                    slot.delivery_targets.push(to);
                    slot.delivery.push(msg);
                }
            }
        }
        if slot.delivery_targets.is_empty() {
            slot.seconds = 0.0;
            return;
        }
    }
    let mut ctx = Ctx {
        superstep,
        graph: shared.graph,
        node,
        num_vertices: shared.num_vertices,
        assignment,
        sends: &mut slot.sends,
        updates: &mut slot.updates,
        error: &mut slot.error,
    };
    if superstep == 0 {
        for &v in &slot.owned {
            // SAFETY: vertex-state disjointness — `v` is owned by this
            // node and this node's slot is held by exactly one worker.
            let state = unsafe { shared.states.get_mut(v as usize) };
            shared.program.compute(&mut ctx, v, state, &[], global);
        }
    } else {
        let targets = &slot.delivery_targets;
        let msgs = &slot.delivery;
        let mut i = 0;
        while i < targets.len() {
            let v = targets[i];
            let mut j = i + 1;
            while j < targets.len() && targets[j] == v {
                j += 1;
            }
            // SAFETY: as above — delivery targets are owned by this node.
            let state = unsafe { shared.states.get_mut(v as usize) };
            shared
                .program
                .compute(&mut ctx, v, state, &msgs[i..j], global);
            i = j;
        }
    }
    slot.seconds = t0.elapsed().as_secs_f64();
}

/// One node's finalize phase.
fn finalize_node<P: VertexProgram>(
    shared: &ClusterShared<'_, P>,
    slot: &mut NodeSlot<P>,
    global: &P::Global,
) {
    let t0 = Instant::now();
    for &v in &slot.owned {
        // SAFETY: vertex-state disjointness, as in `compute_node`.
        let state = unsafe { shared.states.get_mut(v as usize) };
        shared.program.finalize(v, state, global);
    }
    slot.seconds = t0.elapsed().as_secs_f64();
}

/// A pool worker: park at the barrier, run the published phase over a
/// fixed node chunk, park again. Metrics recorded inside the chunk are
/// captured per round and handed to the coordinator, which merges them so
/// obs output matches a single-threaded run. Panics are caught (keeping
/// the barrier protocol alive) and re-raised on the caller thread.
fn worker_loop<P: VertexProgram>(
    shared: &ClusterShared<'_, P>,
    worker: usize,
    nodes: Range<usize>,
) {
    loop {
        shared.barrier.wait();
        let phase = shared.phase.load(Ordering::Acquire);
        if phase == PHASE_SHUTDOWN {
            return;
        }
        let (result, metrics) = reach_obs::scoped_worker(|| {
            panic::catch_unwind(AssertUnwindSafe(|| run_chunk(shared, nodes.clone(), phase)))
        });
        *lock(&shared.worker_obs[worker]) = Some(metrics);
        if let Err(payload) = result {
            lock(&shared.panicked).get_or_insert(payload);
        }
        shared.barrier.wait();
    }
}

/// Runs one barrier-to-barrier round: releases the workers, executes the
/// coordinator's own chunk, waits for everyone, then folds the workers'
/// obs captures into this thread's recorder. `Halt::Panic` means some
/// participant panicked and parked its payload.
fn run_round<P: VertexProgram>(
    shared: &ClusterShared<'_, P>,
    my_nodes: Range<usize>,
    phase: u8,
) -> Result<(), Halt> {
    shared.barrier.wait();
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        run_chunk(shared, my_nodes, phase);
    }));
    if let Err(payload) = result {
        lock(&shared.panicked).get_or_insert(payload);
    }
    shared.barrier.wait();
    for cell in &shared.worker_obs {
        if let Some(metrics) = lock(cell).take() {
            reach_obs::merge_worker(metrics);
        }
    }
    if lock(&shared.panicked).is_some() {
        return Err(Halt::Panic);
    }
    Ok(())
}

/// Default pinning choice: `REACH_ENGINE_PIN` set to `1`/`true`/`on`
/// enables it; anything else (or unset) leaves the scheduler free.
fn default_pinning() -> bool {
    matches!(
        std::env::var("REACH_ENGINE_PIN").as_deref().map(str::trim),
        Ok("1") | Ok("true") | Ok("on")
    )
}

/// The simulated cluster executor.
pub struct Engine<'g> {
    graph: &'g DiGraph,
    partition: Partition,
    network: NetworkModel,
    faults: Option<FaultPlan>,
    checkpoint_interval: Option<usize>,
    threads: Option<usize>,
    pin: Option<bool>,
    /// Safety cap; a run that exceeds it fails with
    /// [`EngineError::SuperstepCapExceeded`] (a vertex program that never
    /// goes quiet is a bug).
    pub max_supersteps: usize,
}

impl<'g> Engine<'g> {
    /// Creates an engine over `graph` with the given partition.
    pub fn new(graph: &'g DiGraph, partition: Partition) -> Self {
        Engine {
            graph,
            partition,
            network: NetworkModel::default(),
            faults: None,
            checkpoint_interval: None,
            threads: None,
            pin: None,
            max_supersteps: 1_000_000,
        }
    }

    /// Overrides the network cost model.
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Injects the faults of `plan` into the run. If the plan schedules
    /// crashes and no checkpoint interval was chosen, checkpointing is
    /// enabled at a default interval (`DEFAULT_CHECKPOINT_INTERVAL`, 4
    /// super-steps) so recovery has a base.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Takes a coordinated checkpoint every `every` super-steps (also
    /// useful fault-free, to measure checkpoint overhead).
    pub fn with_checkpoint_interval(mut self, every: usize) -> Self {
        assert!(every >= 1, "checkpoint interval must be at least 1");
        self.checkpoint_interval = Some(every);
        self
    }

    /// Executes each super-step's compute phase on `threads` OS worker
    /// threads (capped at the node count; `1` runs everything inline on
    /// the calling thread). The default honors `REACH_ENGINE_THREADS`,
    /// falling back to the machine's available parallelism. The thread
    /// count never changes results — see the module docs for the
    /// determinism argument.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "worker thread count must be at least 1");
        self.threads = Some(threads);
        self
    }

    /// The worker-thread count the next run will request (before the
    /// per-run cap at the node count).
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or_else(default_worker_threads)
    }

    /// Pins each spawned pool worker to a fixed CPU core
    /// (`core = worker_index % available_parallelism`, via
    /// `sched_setaffinity(2)`; a no-op off Linux). The coordinator — which
    /// doubles as worker 0 — is never pinned, so the caller's thread
    /// affinity is untouched. The default honors `REACH_ENGINE_PIN`
    /// (`1`/`true`/`on`). Pinning trades scheduler freedom for cache
    /// locality and, like the thread count, never changes results.
    pub fn with_pinning(mut self, pin: bool) -> Self {
        self.pin = Some(pin);
        self
    }

    /// Whether the next run will pin its spawned workers to cores.
    pub fn pinning(&self) -> bool {
        self.pin.unwrap_or_else(default_pinning)
    }

    /// The fault plan in effect, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Number of simulated nodes.
    pub fn num_nodes(&self) -> usize {
        self.partition.num_nodes()
    }

    /// The partition in use.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Runs `program` from freshly initialized states.
    pub fn run<P>(&self, program: &P) -> Result<RunOutcome<P>, EngineError>
    where
        P: VertexProgram + Sync,
        P::State: Clone + Send,
        P::Msg: Send,
        P::Update: Send,
        P::Global: Clone + Send + Sync,
    {
        let states = (0..self.graph.num_vertices() as VertexId)
            .map(|v| program.init_state(v))
            .collect();
        self.run_with(program, states, P::Global::default())
    }

    /// Runs `program` from caller-provided states and global (used by DRLb
    /// to carry labels across batches).
    pub fn run_with<P>(
        &self,
        program: &P,
        mut states: Vec<P::State>,
        global: P::Global,
    ) -> Result<RunOutcome<P>, EngineError>
    where
        P: VertexProgram + Sync,
        P::State: Clone + Send,
        P::Msg: Send,
        P::Update: Send,
        P::Global: Clone + Send + Sync,
    {
        let n = self.graph.num_vertices();
        if states.len() != n {
            return Err(EngineError::StateCountMismatch {
                expected: n,
                got: states.len(),
            });
        }
        let num_nodes = self.partition.num_nodes();
        let workers = self.threads().min(num_nodes.max(1));

        let assignment: Vec<usize> = (0..n)
            .map(|v| self.partition.node_of(v as VertexId))
            .collect();
        let slots: Vec<Mutex<NodeSlot<P>>> = bucket(&assignment, num_nodes)
            .into_iter()
            .map(|owned| {
                Mutex::new(NodeSlot {
                    owned,
                    delivery_targets: Vec::new(),
                    delivery: Vec::new(),
                    sends: (0..num_nodes).map(|_| Vec::new()).collect(),
                    updates: Vec::new(),
                    route: RouteReport::default(),
                    seconds: 0.0,
                    error: None,
                })
            })
            .collect();

        let plan = self.faults.clone().unwrap_or_else(|| FaultPlan::new(0));
        let fault_salt = plan.seed ^ 0x9E37_79B9_7F4A_7C15;
        let shared = ClusterShared {
            program,
            graph: self.graph,
            num_vertices: n,
            num_nodes,
            states: StateTable::new(&mut states),
            global: SyncCell::new(global),
            assignment: SyncCell::new(assignment),
            slots,
            staging: StagingMatrix::new(num_nodes),
            plan,
            fault_salt,
            worker_obs: (0..workers).map(|_| Mutex::new(None)).collect(),
            barrier: Barrier::new(workers),
            superstep: AtomicUsize::new(0),
            phase: AtomicU8::new(PHASE_COMPUTE),
            panicked: Mutex::new(None),
        };

        // Fixed, contiguous, near-even node chunks; chunk 0 belongs to the
        // coordinator, which doubles as a pool participant.
        let chunk = num_nodes.div_ceil(workers);
        let pin = self.pinning();
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let outcome = std::thread::scope(|scope| {
            for w in 1..workers {
                let shared = &shared;
                let range = (w * chunk).min(num_nodes)..((w + 1) * chunk).min(num_nodes);
                std::thread::Builder::new()
                    .name(format!("reach-engine-{w}"))
                    .spawn_scoped(scope, move || {
                        if pin {
                            // Best-effort: a failed pin (restricted
                            // affinity mask, non-Linux) is silently benign.
                            let _ = crate::affinity::pin_current_thread(w % cores);
                        }
                        worker_loop(shared, w, range)
                    })
                    .expect("spawn engine worker");
            }
            // Whatever happens — normal completion, engine error, or a
            // coordinator-side panic — the pool must be released before
            // the scope joins, or the workers would park forever.
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                self.coordinate(&shared, 0..chunk.min(num_nodes))
            }));
            shared.phase.store(PHASE_SHUTDOWN, Ordering::Release);
            shared.barrier.wait();
            outcome
        });
        let outcome = match outcome {
            Ok(result) => result,
            // A coordinator panic outside a round (routing, checkpointing,
            // `apply_updates`): re-raise now that the pool is down.
            Err(payload) => panic::resume_unwind(payload),
        };
        if let Some(payload) = lock(&shared.panicked).take() {
            // A vertex program panicked inside a round; surface it on the
            // caller thread exactly like a single-threaded run would.
            panic::resume_unwind(payload);
        }
        let stats = match outcome {
            Ok(stats) => stats,
            Err(Halt::Err(e)) => return Err(e),
            Err(Halt::Panic) => unreachable!("panic payload re-raised above"),
        };
        Ok(RunOutcome {
            states,
            global: shared.global.into_inner(),
            stats,
        })
    }

    /// The coordinator's side of a run: drives super-step rounds through
    /// the pool and performs every order-sensitive step itself — fault
    /// draws, routing, update application, checkpointing, recovery — in
    /// node order, while the workers are parked at the round barrier.
    fn coordinate<P>(
        &self,
        shared: &ClusterShared<'_, P>,
        my_nodes: Range<usize>,
    ) -> Result<RunStats, Halt>
    where
        P: VertexProgram,
        P::State: Clone,
        P::Global: Clone,
    {
        let program = shared.program;
        let n = shared.num_vertices;
        let num_nodes = self.partition.num_nodes();

        let plan = &shared.plan;
        let has_crashes = !plan.crashes().is_empty();
        let ckpt_every = self
            .checkpoint_interval
            .or(plan.checkpoint_interval)
            .or(if has_crashes {
                Some(DEFAULT_CHECKPOINT_INTERVAL)
            } else {
                None
            });
        let mut pending_crashes: Vec<_> = plan.crashes().to_vec();
        pending_crashes.reverse(); // pop() yields earliest-superstep first

        // Cluster membership is dynamic: a crash flips `alive` and rewrites
        // the shared assignment, so routing always consults these instead
        // of the static `Partition`.
        let mut alive = vec![true; num_nodes];
        let mut stats = RunStats::default();
        let mut checkpoint: Option<Checkpoint<P::State, P::Global, P::Msg>> = None;
        let mut superstep = 0usize;
        // High-water mark of executed super-steps: a super-step below it
        // has run before, i.e. it is being replayed after a rollback. Used
        // only to tag obs counters; recovery logic never consults it.
        let mut executed_high_water = 0usize;
        // Barrier scratch, reused across super-steps.
        let mut node_bytes = vec![0usize; num_nodes];
        let mut updates_flat: Vec<P::Update> = Vec::new();

        'superstep: loop {
            if superstep > self.max_supersteps {
                return Err(Halt::Err(EngineError::SuperstepCapExceeded {
                    cap: self.max_supersteps,
                }));
            }

            {
                // Workers are parked at the round barrier, so the
                // coordinator holds every slot plus exclusive access to the
                // states, the global, and the assignment.
                let mut slots = lock_slots(&shared.slots);

                // Coordinated checkpoint at the interval boundary. Skipped
                // when a snapshot of this exact super-step already exists
                // (i.e. we just rolled back to it).
                let due = ckpt_every.is_some_and(|c| superstep.is_multiple_of(c));
                if due && checkpoint.as_ref().is_none_or(|c| c.superstep != superstep) {
                    let _obs_ckpt = reach_obs::span("engine.checkpoint");
                    // Each node persists its own share (owned states +
                    // pending inbox) in parallel; the first live node also
                    // persists the shared global. The modeled cost is the
                    // bottleneck share.
                    // SAFETY: coordinator-exclusive between rounds.
                    let assignment = unsafe { shared.assignment.get_ref() };
                    let global = unsafe { shared.global.get_ref() };
                    let mut node_share = vec![0usize; num_nodes];
                    let mut snapshot = Vec::with_capacity(n);
                    for (v, &node) in assignment.iter().enumerate() {
                        // SAFETY: coordinator-exclusive between rounds.
                        let st = unsafe { shared.states.get_ref(v) };
                        node_share[node] += program.state_bytes(st);
                        snapshot.push(st.clone());
                    }
                    // In-flight mail lives in the staging matrix between
                    // rounds; each destination persists its own column.
                    // Snapshot order is (dest, then sender) with each cell
                    // target-sorted, so for any one target the entries keep
                    // sender order — the restore path's stable re-sort
                    // depends on that.
                    let mut mail = Vec::new();
                    for (dest, share) in node_share.iter_mut().enumerate() {
                        for from in 0..num_nodes {
                            // SAFETY: coordinator-exclusive between rounds.
                            let cell = unsafe { shared.staging.cell_ref(from, dest) };
                            for (to, m) in cell {
                                *share += program.msg_bytes(m);
                                mail.push((*to, m.clone()));
                            }
                        }
                    }
                    let coord = alive.iter().position(|&a| a).unwrap_or(0);
                    node_share[coord] += program.global_bytes(global);
                    let total: usize = node_share.iter().sum();
                    let max_share = node_share.iter().copied().max().unwrap_or(0);
                    stats.recovery.checkpoints += 1;
                    stats.recovery.checkpoint_bytes += total;
                    reach_obs::counter_add("engine.checkpoints", 1);
                    reach_obs::record("engine.checkpoint.bytes", total as u64);
                    stats.recovery.checkpoint_seconds +=
                        self.network.superstep_latency + max_share as f64 / self.network.bandwidth;
                    checkpoint = Some(Checkpoint {
                        superstep,
                        states: snapshot,
                        global: global.clone(),
                        mail,
                        bytes: total,
                    });
                }

                // Crash detection at barrier entry: fire every scheduled
                // crash whose super-step has arrived, then (if any fired)
                // roll back.
                let mut crashed = false;
                while pending_crashes
                    .last()
                    .is_some_and(|c| c.superstep <= superstep)
                {
                    let crash = pending_crashes.pop().expect("checked non-empty");
                    if crash.node >= num_nodes {
                        return Err(Halt::Err(EngineError::UnrecoverableCrash {
                            node: crash.node,
                            superstep,
                            reason: CrashReason::UnknownNode,
                        }));
                    }
                    if !alive[crash.node] {
                        continue; // already dead; nothing new to recover
                    }
                    alive[crash.node] = false;
                    let survivors: Vec<usize> = (0..num_nodes).filter(|&i| alive[i]).collect();
                    if survivors.is_empty() {
                        return Err(Halt::Err(EngineError::UnrecoverableCrash {
                            node: crash.node,
                            superstep,
                            reason: CrashReason::NoSurvivors,
                        }));
                    }
                    // Reassign the dead node's partition round-robin across
                    // the survivors.
                    // SAFETY: coordinator-exclusive between rounds.
                    let assignment = unsafe { shared.assignment.get_mut() };
                    let mut next = 0usize;
                    for node in assignment.iter_mut() {
                        if *node == crash.node {
                            *node = survivors[next % survivors.len()];
                            next += 1;
                        }
                    }
                    crashed = true;
                }
                if crashed {
                    let _obs_rec = reach_obs::span("engine.recovery");
                    // Rollback-and-replay: restore the snapshot, re-bucket
                    // its in-flight mail under the new assignment, and
                    // resume from the checkpoint super-step. (A crash
                    // schedule implies an initial checkpoint at super-step
                    // 0, so one always exists.)
                    let ck = checkpoint
                        .as_ref()
                        .expect("crashes imply checkpointing, so a snapshot exists");
                    // SAFETY: coordinator-exclusive between rounds.
                    let assignment = unsafe { shared.assignment.get_ref() };
                    for (v, saved) in ck.states.iter().enumerate() {
                        // SAFETY: coordinator-exclusive between rounds.
                        unsafe { shared.states.get_mut(v) }.clone_from(saved);
                    }
                    // SAFETY: coordinator-exclusive between rounds.
                    unsafe { shared.global.get_mut() }.clone_from(&ck.global);
                    for (slot, owned) in slots.iter_mut().zip(bucket(assignment, num_nodes)) {
                        slot.owned = owned;
                    }
                    // Drop staged in-flight mail, re-bucket the snapshot's
                    // mail under the new assignment (row 0 is as good as
                    // any), and restore the per-cell target-sort invariant
                    // the delivery merge relies on. The sort is stable and
                    // the snapshot kept sender order within a target, so
                    // delivery order matches what the crash-free schedule
                    // would have produced.
                    for from in 0..num_nodes {
                        for dest in 0..num_nodes {
                            // SAFETY: coordinator-exclusive between rounds.
                            unsafe { shared.staging.cell_mut(from, dest) }.clear();
                        }
                    }
                    for (to, msg) in &ck.mail {
                        // SAFETY: coordinator-exclusive between rounds.
                        unsafe { shared.staging.cell_mut(0, assignment[*to as usize]) }
                            .push((*to, msg.clone()));
                    }
                    for dest in 0..num_nodes {
                        // SAFETY: coordinator-exclusive between rounds.
                        unsafe { shared.staging.cell_mut(0, dest) }.sort_by_key(|&(t, _)| t);
                    }
                    stats.recovery.recoveries += 1;
                    stats.recovery.replayed_supersteps += superstep - ck.superstep;
                    reach_obs::counter_add("engine.recoveries", 1);
                    stats.recovery.recovery_seconds += CRASH_DETECTION_LATENCIES
                        * self.network.superstep_latency
                        + self.network.superstep_latency
                        + ck.bytes as f64 / self.network.bandwidth;
                    superstep = ck.superstep;
                    continue 'superstep;
                }
            }

            // Compute round: hand the slots to the pool.
            shared.superstep.store(superstep, Ordering::Release);
            shared.phase.store(PHASE_COMPUTE, Ordering::Release);
            let obs_compute = reach_obs::span("engine.compute");
            run_round(shared, my_nodes.clone(), PHASE_COMPUTE)?;
            drop(obs_compute);

            let mut slots = lock_slots(&shared.slots);

            // Surface the first invalid send in deterministic node order.
            for slot in slots.iter_mut() {
                if let Some(err) = slot.error.take() {
                    return Err(Halt::Err(err));
                }
            }

            let mut step_max_compute = 0.0f64;
            let mut step_sum_compute = 0.0f64;
            for slot in slots.iter() {
                step_max_compute = step_max_compute.max(slot.seconds);
                step_sum_compute += slot.seconds;
            }
            stats.compute_seconds += step_max_compute;
            stats.compute_seconds_serial += step_sum_compute;
            stats.supersteps += 1;
            // Tag replayed super-steps (rollback landed us below the
            // high-water mark) distinctly from first executions.
            if superstep < executed_high_water {
                reach_obs::counter_add("engine.supersteps.replayed", 1);
            } else {
                reach_obs::counter_add("engine.supersteps.first", 1);
                executed_high_water = superstep + 1;
            }

            // Barrier, phase 1 — route, on the pool: each node target-sorts
            // and stages its own send buckets, drawing drop/delay coins from
            // `(superstep, from, dest)`-keyed sub-streams so no draw depends
            // on routing order or thread count. The slots go back to the
            // workers for the round, so release them first.
            drop(slots);
            let num_alive = alive.iter().filter(|&&a| a).count();
            let _obs_barrier = reach_obs::span("engine.barrier");
            let barrier_t0 = Instant::now();
            shared.phase.store(PHASE_ROUTE, Ordering::Release);
            run_round(shared, my_nodes.clone(), PHASE_ROUTE)?;
            let route_ns = barrier_t0.elapsed().as_nanos() as u64;

            // Barrier, phase 2 — merge, the only serial section left: reduce
            // the per-node route reports in node order (stats, node_bytes,
            // straggle, first error), then replicate and apply updates.
            let merge_t0 = Instant::now();
            let mut slots = lock_slots(&shared.slots);
            node_bytes.iter_mut().for_each(|b| *b = 0);
            let mut staged_total = 0usize;
            let mut straggle = 0usize;
            // Per-super-step traffic, mirroring the `stats.comm` increments
            // below exactly: the recorder's series accumulate at the logical
            // super-step index across replays, just as the aggregates do, so
            // summed series equal the CommStats totals.
            let mut step_local_bytes = 0u64;
            let mut step_remote_bytes = 0u64;
            let mut step_broadcast_bytes = 0u64;
            for slot in slots.iter_mut() {
                // Surface the first routing failure in node order — the
                // same one the sender-ordered serial loop would have hit.
                if let Some(err) = slot.error.take() {
                    return Err(Halt::Err(err));
                }
                let r = &slot.route;
                stats.comm.local_messages += r.local_messages;
                stats.comm.local_bytes += r.local_bytes;
                stats.comm.remote_messages += r.remote_messages;
                stats.comm.remote_bytes += r.remote_bytes;
                stats.recovery.retransmits += r.retransmits;
                stats.recovery.delayed_messages += r.delayed;
                straggle = straggle.max(r.straggle);
                staged_total += r.staged;
                step_local_bytes += r.local_bytes as u64;
                step_remote_bytes += r.remote_bytes as u64;
                for (acc, add) in node_bytes.iter_mut().zip(&r.node_bytes) {
                    *acc += add;
                }
            }
            let mut any_traffic = staged_total > 0;

            for (from, slot) in slots.iter_mut().enumerate() {
                for u in slot.updates.drain(..) {
                    let bytes = program.update_bytes(&u);
                    if num_alive > 1 {
                        // Tree-broadcast semantics, matching the paper's
                        // Lemma 7 accounting: the shared payload is counted
                        // once (the sender injects one copy; every node
                        // receives one copy, which is what the bottleneck-
                        // node time model charges).
                        stats.comm.broadcast_bytes += bytes;
                        step_broadcast_bytes += bytes as u64;
                        node_bytes[from] += bytes;
                        for (other, &other_alive) in alive.iter().enumerate() {
                            if other != from && other_alive {
                                node_bytes[other] += bytes;
                            }
                        }
                    }
                    updates_flat.push(u);
                    any_traffic = true;
                }
            }

            if any_traffic {
                let max_bytes = node_bytes.iter().copied().max().unwrap_or(0);
                stats.comm_seconds += self.network.superstep_seconds(num_alive, max_bytes)
                    + straggle as f64 * self.network.superstep_latency;
            }
            reach_obs::series_add("engine.superstep.local_bytes", superstep, step_local_bytes);
            reach_obs::series_add(
                "engine.superstep.remote_bytes",
                superstep,
                step_remote_bytes,
            );
            reach_obs::series_add(
                "engine.superstep.broadcast_bytes",
                superstep,
                step_broadcast_bytes,
            );

            if !updates_flat.is_empty() {
                // SAFETY: coordinator-exclusive between rounds.
                program.apply_updates(unsafe { shared.global.get_mut() }, &updates_flat);
                updates_flat.clear();
            }

            if reach_obs::is_enabled() {
                // How the barrier splits between the parallel route round
                // and the coordinator's serial merge, per super-step.
                let merge_ns = merge_t0.elapsed().as_nanos() as u64;
                reach_obs::series_add("engine.route_ns", superstep, route_ns);
                reach_obs::series_add("engine.merge_ns", superstep, merge_ns);
                reach_obs::series_add("engine.barrier_ns", superstep, route_ns + merge_ns);
            }

            if staged_total == 0 {
                break;
            }
            superstep += 1;
        }

        // Final pass ("only run after the final super-step").
        shared.phase.store(PHASE_FINALIZE, Ordering::Release);
        let _obs_fin = reach_obs::span("engine.finalize");
        run_round(shared, my_nodes, PHASE_FINALIZE)?;
        let slots = lock_slots(&shared.slots);
        let mut fin_max = 0.0f64;
        let mut fin_sum = 0.0f64;
        for slot in slots.iter() {
            fin_max = fin_max.max(slot.seconds);
            fin_sum += slot.seconds;
        }
        stats.compute_seconds += fin_max;
        stats.compute_seconds_serial += fin_sum;

        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::fixtures;

    /// A toy program: flood hop counts from vertex 0 (forward BFS levels).
    struct BfsLevels;

    impl VertexProgram for BfsLevels {
        type State = Option<u32>;
        type Msg = u32;
        type Global = ();
        type Update = ();

        fn init_state(&self, _v: VertexId) -> Self::State {
            None
        }

        fn compute(
            &self,
            ctx: &mut Ctx<'_, u32, ()>,
            v: VertexId,
            state: &mut Self::State,
            msgs: &[u32],
            _global: &(),
        ) {
            if ctx.superstep == 0 {
                if v == 0 {
                    *state = Some(0);
                    for &w in ctx.out_neighbors(v) {
                        ctx.send(w, 1);
                    }
                }
            } else if state.is_none() {
                let level = *msgs.iter().min().expect("compute only with messages");
                *state = Some(level);
                for &w in ctx.out_neighbors(v) {
                    ctx.send(w, level + 1);
                }
            }
        }

        fn apply_updates(&self, _global: &mut (), _updates: &[()]) {}
    }

    #[test]
    fn bfs_levels_on_diamond() {
        let g = fixtures::diamond();
        let engine = Engine::new(&g, Partition::modulo(2));
        let out = engine.run(&BfsLevels).unwrap();
        assert_eq!(out.states, vec![Some(0), Some(1), Some(1), Some(2)]);
        assert!(out.stats.supersteps >= 3);
    }

    #[test]
    fn results_are_identical_across_node_counts() {
        let g = fixtures::paper_graph();
        let baseline = Engine::new(&g, Partition::modulo(1))
            .run(&BfsLevels)
            .unwrap()
            .states;
        for nodes in [2, 3, 8, 32] {
            let got = Engine::new(&g, Partition::modulo(nodes))
                .run(&BfsLevels)
                .unwrap()
                .states;
            assert_eq!(got, baseline, "nodes={nodes}");
        }
    }

    #[test]
    fn threaded_run_is_bit_identical_to_sequential() {
        let g = fixtures::paper_graph();
        let base = Engine::new(&g, Partition::modulo(4))
            .with_threads(1)
            .run(&BfsLevels)
            .unwrap();
        for threads in [2, 3, 4, 8] {
            let out = Engine::new(&g, Partition::modulo(4))
                .with_threads(threads)
                .run(&BfsLevels)
                .unwrap();
            assert_eq!(out.states, base.states, "threads={threads}");
            assert_eq!(out.stats.comm, base.stats.comm, "threads={threads}");
            assert_eq!(
                out.stats.supersteps, base.stats.supersteps,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn threaded_fault_injection_matches_sequential() {
        let g = fixtures::paper_graph();
        let plan = FaultPlan::new(99)
            .with_message_drops(0.3)
            .with_message_delays(0.2, 4)
            .with_crash(1, 2);
        let base = Engine::new(&g, Partition::modulo(4))
            .with_faults(plan.clone())
            .with_threads(1)
            .run(&BfsLevels)
            .unwrap();
        let out = Engine::new(&g, Partition::modulo(4))
            .with_faults(plan)
            .with_threads(4)
            .run(&BfsLevels)
            .unwrap();
        assert_eq!(out.states, base.states);
        assert_eq!(out.stats.comm, base.stats.comm);
        assert_eq!(out.stats.supersteps, base.stats.supersteps);
        assert_eq!(
            out.stats.recovery.retransmits,
            base.stats.recovery.retransmits
        );
        assert_eq!(
            out.stats.recovery.delayed_messages,
            base.stats.recovery.delayed_messages
        );
        assert_eq!(
            out.stats.recovery.recoveries,
            base.stats.recovery.recoveries
        );
        assert_eq!(
            out.stats.recovery.replayed_supersteps,
            base.stats.recovery.replayed_supersteps
        );
    }

    #[test]
    fn thread_count_is_capped_at_the_node_count() {
        let g = fixtures::diamond();
        let out = Engine::new(&g, Partition::modulo(2))
            .with_threads(64)
            .run(&BfsLevels)
            .unwrap();
        assert_eq!(out.states, vec![Some(0), Some(1), Some(1), Some(2)]);
    }

    #[test]
    fn default_thread_count_is_at_least_one() {
        let g = fixtures::diamond();
        assert!(Engine::new(&g, Partition::modulo(2)).threads() >= 1);
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        struct Bomb;
        impl VertexProgram for Bomb {
            type State = ();
            type Msg = ();
            type Global = ();
            type Update = ();
            fn init_state(&self, _v: VertexId) {}
            fn compute(
                &self,
                ctx: &mut Ctx<'_, (), ()>,
                v: VertexId,
                _s: &mut (),
                _m: &[()],
                _g: &(),
            ) {
                if ctx.superstep == 1 && v == 2 {
                    panic!("boom at vertex 2");
                }
                if ctx.superstep == 0 {
                    ctx.send(v, ()); // keep every vertex busy next step
                }
            }
            fn apply_updates(&self, _g: &mut (), _u: &[()]) {}
        }
        let g = fixtures::paper_graph();
        let payload = std::panic::catch_unwind(|| {
            let _ = Engine::new(&g, Partition::modulo(4))
                .with_threads(4)
                .run(&Bomb);
        })
        .expect_err("run must panic");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("boom"), "unexpected panic payload: {msg}");
    }

    #[test]
    fn single_node_run_has_no_remote_traffic() {
        let g = fixtures::paper_graph();
        let out = Engine::new(&g, Partition::modulo(1))
            .run(&BfsLevels)
            .unwrap();
        assert_eq!(out.stats.comm.remote_messages, 0);
        assert_eq!(out.stats.comm_seconds, 0.0);
        assert!(out.stats.comm.local_messages > 0);
    }

    #[test]
    fn multi_node_run_counts_remote_traffic() {
        let g = fixtures::paper_graph();
        let out = Engine::new(&g, Partition::modulo(4))
            .run(&BfsLevels)
            .unwrap();
        assert!(out.stats.comm.remote_messages > 0);
        assert!(out.stats.comm_seconds > 0.0);
        assert_eq!(
            out.stats.comm.remote_bytes,
            out.stats.comm.remote_messages * std::mem::size_of::<u32>()
        );
    }

    /// A program exercising global updates: every vertex publishes its id
    /// once; the global collects them all.
    struct CollectIds;

    impl VertexProgram for CollectIds {
        type State = ();
        type Msg = ();
        type Global = Vec<VertexId>;
        type Update = VertexId;

        fn init_state(&self, _v: VertexId) -> Self::State {}

        fn compute(
            &self,
            ctx: &mut Ctx<'_, (), VertexId>,
            v: VertexId,
            _state: &mut (),
            _msgs: &[()],
            _global: &Vec<VertexId>,
        ) {
            if ctx.superstep == 0 {
                ctx.publish(v);
            }
        }

        fn apply_updates(&self, global: &mut Vec<VertexId>, updates: &[VertexId]) {
            global.extend_from_slice(updates);
        }
    }

    #[test]
    fn global_updates_replicate_and_cost_broadcast_bytes() {
        let g = fixtures::paper_graph();
        let out = Engine::new(&g, Partition::modulo(4))
            .run(&CollectIds)
            .unwrap();
        let mut ids = out.global.clone();
        ids.sort_unstable();
        assert_eq!(ids, (0..11).collect::<Vec<_>>());
        assert_eq!(out.stats.comm.broadcast_bytes, 11 * 4); // 11 ids × 4 B, payload once
    }

    #[test]
    fn runaway_program_hits_superstep_cap() {
        struct PingPong;
        impl VertexProgram for PingPong {
            type State = ();
            type Msg = ();
            type Global = ();
            type Update = ();
            fn init_state(&self, _v: VertexId) {}
            fn compute(
                &self,
                ctx: &mut Ctx<'_, (), ()>,
                v: VertexId,
                _s: &mut (),
                _m: &[()],
                _g: &(),
            ) {
                if v == 0 || (v == 1 && ctx.superstep > 0) {
                    ctx.send(1, ());
                }
            }
            fn apply_updates(&self, _g: &mut (), _u: &[()]) {}
        }
        let g = fixtures::path(2);
        let mut engine = Engine::new(&g, Partition::modulo(1));
        engine.max_supersteps = 10;
        assert_eq!(
            engine.run(&PingPong).err().expect("run must fail"),
            EngineError::SuperstepCapExceeded { cap: 10 }
        );
    }

    /// A program whose only act is to send one message to a bogus target.
    struct WildSend;

    impl VertexProgram for WildSend {
        type State = ();
        type Msg = ();
        type Global = ();
        type Update = ();
        fn init_state(&self, _v: VertexId) {}
        fn compute(&self, ctx: &mut Ctx<'_, (), ()>, v: VertexId, _s: &mut (), _m: &[()], _g: &()) {
            if v == 3 && ctx.superstep == 0 {
                ctx.send(1_000_000, ());
            }
        }
        fn apply_updates(&self, _g: &mut (), _u: &[()]) {}
    }

    #[test]
    fn send_to_out_of_range_vertex_is_a_typed_error() {
        let g = fixtures::paper_graph();
        let err = Engine::new(&g, Partition::modulo(2))
            .run(&WildSend)
            .err()
            .expect("run must fail");
        assert_eq!(
            err,
            EngineError::InvalidSendTarget {
                from_node: 1, // vertex 3 lives on node 3 % 2
                target: 1_000_000,
                num_vertices: g.num_vertices(),
                superstep: 0,
            }
        );
    }

    #[test]
    fn run_with_wrong_state_count_is_a_typed_error() {
        let g = fixtures::diamond();
        let engine = Engine::new(&g, Partition::modulo(1));
        let err = engine
            .run_with(&BfsLevels, vec![None; 2], ())
            .err()
            .expect("run must fail");
        assert_eq!(
            err,
            EngineError::StateCountMismatch {
                expected: 4,
                got: 2
            }
        );
    }

    #[test]
    fn crash_recovery_reproduces_fault_free_states() {
        let g = fixtures::paper_graph();
        let baseline = Engine::new(&g, Partition::modulo(4))
            .run(&BfsLevels)
            .unwrap()
            .states;
        let out = Engine::new(&g, Partition::modulo(4))
            .with_faults(FaultPlan::new(11).with_crash(2, 2))
            .run(&BfsLevels)
            .unwrap();
        assert_eq!(out.states, baseline);
        assert_eq!(out.stats.recovery.recoveries, 1);
        assert!(out.stats.recovery.replayed_supersteps > 0);
        assert!(out.stats.recovery.checkpoints > 0);
        assert!(out.stats.recovery.recovery_seconds > 0.0);
    }

    #[test]
    fn cascading_crashes_down_to_one_node_still_recover() {
        let g = fixtures::paper_graph();
        let baseline = Engine::new(&g, Partition::modulo(3))
            .run(&BfsLevels)
            .unwrap()
            .states;
        let out = Engine::new(&g, Partition::modulo(3))
            .with_faults(FaultPlan::new(5).with_crash(0, 1).with_crash(2, 2))
            .with_checkpoint_interval(1)
            .run(&BfsLevels)
            .unwrap();
        assert_eq!(out.states, baseline);
        assert_eq!(out.stats.recovery.recoveries, 2);
    }

    #[test]
    fn losing_every_node_is_unrecoverable() {
        let g = fixtures::diamond();
        let err = Engine::new(&g, Partition::modulo(2))
            .with_faults(FaultPlan::new(3).with_crash(0, 1).with_crash(1, 1))
            .run(&BfsLevels)
            .err()
            .expect("run must fail");
        assert_eq!(
            err,
            EngineError::UnrecoverableCrash {
                node: 1,
                superstep: 1,
                reason: CrashReason::NoSurvivors
            }
        );
    }

    #[test]
    fn crashing_an_unknown_node_is_an_error() {
        let g = fixtures::diamond();
        let err = Engine::new(&g, Partition::modulo(2))
            .with_faults(FaultPlan::new(3).with_crash(9, 1))
            .run(&BfsLevels)
            .err()
            .expect("run must fail");
        assert!(matches!(
            err,
            EngineError::UnrecoverableCrash {
                node: 9,
                reason: CrashReason::UnknownNode,
                ..
            }
        ));
    }

    #[test]
    fn message_drops_retransmit_without_changing_results() {
        let g = fixtures::paper_graph();
        let clean = Engine::new(&g, Partition::modulo(4))
            .run(&BfsLevels)
            .unwrap();
        // The fixture routes only a handful of remote messages; 0.75 makes
        // the per-bucket sub-streams certain enough to fire at this seed.
        let noisy = Engine::new(&g, Partition::modulo(4))
            .with_faults(FaultPlan::new(42).with_message_drops(0.75))
            .run(&BfsLevels)
            .unwrap();
        assert_eq!(noisy.states, clean.states);
        assert!(noisy.stats.recovery.retransmits > 0);
        // Goodput accounting is unchanged; only modeled time grows.
        assert_eq!(noisy.stats.comm.remote_bytes, clean.stats.comm.remote_bytes);
        assert!(noisy.stats.comm_seconds > clean.stats.comm_seconds);
    }

    #[test]
    fn exhausting_the_retry_budget_loses_the_message() {
        let g = fixtures::paper_graph();
        let err = Engine::new(&g, Partition::modulo(4))
            .with_faults(
                FaultPlan::new(8)
                    .with_message_drops(0.999)
                    .with_max_retries(2),
            )
            .run(&BfsLevels)
            .err()
            .expect("run must fail");
        assert!(matches!(err, EngineError::MessageLost { retries: 2, .. }));
    }

    #[test]
    fn message_delays_straggle_the_barrier_without_changing_results() {
        let g = fixtures::paper_graph();
        let clean = Engine::new(&g, Partition::modulo(4))
            .run(&BfsLevels)
            .unwrap();
        let slow = Engine::new(&g, Partition::modulo(4))
            .with_faults(FaultPlan::new(17).with_message_delays(0.7, 6))
            .run(&BfsLevels)
            .unwrap();
        assert_eq!(slow.states, clean.states);
        assert!(slow.stats.recovery.delayed_messages > 0);
        assert!(slow.stats.comm_seconds > clean.stats.comm_seconds);
    }

    #[test]
    fn fault_free_checkpointing_only_adds_overhead() {
        let g = fixtures::paper_graph();
        let clean = Engine::new(&g, Partition::modulo(2))
            .run(&BfsLevels)
            .unwrap();
        let ckpt = Engine::new(&g, Partition::modulo(2))
            .with_checkpoint_interval(2)
            .run(&BfsLevels)
            .unwrap();
        assert_eq!(ckpt.states, clean.states);
        assert!(ckpt.stats.recovery.checkpoints > 0);
        assert!(ckpt.stats.recovery.checkpoint_bytes > 0);
        assert_eq!(ckpt.stats.recovery.recoveries, 0);
        assert!(ckpt.stats.total_seconds() > clean.stats.total_seconds());
        // The non-recovery portions of the run are untouched.
        assert_eq!(ckpt.stats.supersteps, clean.stats.supersteps);
        assert_eq!(ckpt.stats.comm, clean.stats.comm);
    }

    #[test]
    fn same_fault_seed_gives_identical_stats() {
        let g = fixtures::paper_graph();
        let plan = FaultPlan::new(99).with_message_drops(0.3).with_crash(1, 2);
        let a = Engine::new(&g, Partition::modulo(4))
            .with_faults(plan.clone())
            .run(&BfsLevels)
            .unwrap();
        let b = Engine::new(&g, Partition::modulo(4))
            .with_faults(plan)
            .run(&BfsLevels)
            .unwrap();
        assert_eq!(a.states, b.states);
        assert_eq!(a.stats.recovery.retransmits, b.stats.recovery.retransmits);
        assert_eq!(a.stats.recovery.recoveries, b.stats.recovery.recoveries);
        assert_eq!(a.stats.comm, b.stats.comm);
    }
}
