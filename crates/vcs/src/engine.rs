//! The super-step execution engine.
//!
//! [`Engine::run`] drives a [`VertexProgram`] to quiescence: super-step 0
//! calls `compute` on every vertex with an empty inbox (initialization);
//! each later super-step delivers the previous step's messages and calls
//! `compute` only on vertices that received something. The run terminates
//! when no messages and no global updates are produced, after which
//! `finalize` runs once per vertex (the paper's "only run after the final
//! super-step" blocks in Algorithms 3–4).
//!
//! The cluster is simulated: nodes execute sequentially, but each node's
//! compute time is measured independently per super-step and the *maximum*
//! is charged to the modeled parallel clock — so modeled timings behave as
//! if nodes ran concurrently, deterministically and without thread jitter.
//!
//! # Fault tolerance
//!
//! An engine configured with [`Engine::with_faults`] survives the faults a
//! seeded [`FaultPlan`] injects:
//!
//! * **Message drops** are absorbed by the barrier's reliable transport:
//!   a dropped transmission is retransmitted (each attempt re-drawn from
//!   the fault stream, bounded by [`FaultPlan::max_retries`]), so delivery
//!   semantics are untouched — only retransmitted bytes and barrier time
//!   grow. **Message delays** make a remote message straggle behind its
//!   barrier; the barrier waits (charging straggler latency to the modeled
//!   clock) rather than letting the message leak into a later super-step,
//!   preserving the BSP contract that a message sent at super-step `s` is
//!   computed on at `s + 1`.
//! * **Node crashes** are survived by coordinated checkpointing: every
//!   [`Engine::with_checkpoint_interval`] super-steps the engine snapshots
//!   all vertex states, the replicated global, and the in-flight inboxes.
//!   When a node dies, its partition is reassigned round-robin to the
//!   survivors, the snapshot is restored (in-flight messages re-bucketed
//!   under the new assignment), and execution replays from the checkpoint
//!   super-step.
//!
//! Because none of the three faults can reorder delivery *across*
//! super-steps, any program insensitive to the within-inbox message order
//! produces bit-identical results under every recoverable fault schedule.

use std::time::Instant;

use rand::{Rng, SeedableRng};
use reach_graph::{DiGraph, VertexId};

use crate::comm::{NetworkModel, RunStats};
use crate::fault::{CrashReason, EngineError, FaultPlan};
use crate::partition::Partition;

/// A user-defined vertex-centric computation.
pub trait VertexProgram {
    /// Per-vertex state, held on the vertex's home node.
    type State;
    /// Message type exchanged along edges (or to arbitrary vertices).
    type Msg: Clone;
    /// Global state replicated on every node (e.g. shared inverted lists).
    type Global: Default;
    /// An update to the global state, broadcast at the barrier.
    type Update: Clone;

    /// Initial state of vertex `v`.
    fn init_state(&self, v: VertexId) -> Self::State;

    /// The `compute()` function of §II-C. Called with an empty `msgs` slice
    /// exactly once at super-step 0.
    fn compute(
        &self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Update>,
        v: VertexId,
        state: &mut Self::State,
        msgs: &[Self::Msg],
        global: &Self::Global,
    );

    /// Folds broadcast updates into the replicated global state. Called
    /// once per barrier with every update produced that super-step, in
    /// deterministic (node, emission) order.
    fn apply_updates(&self, global: &mut Self::Global, updates: &[Self::Update]);

    /// Runs once per vertex after quiescence.
    fn finalize(&self, _v: VertexId, _state: &mut Self::State, _global: &Self::Global) {}

    /// Wire size of a message, for communication accounting.
    fn msg_bytes(&self, _m: &Self::Msg) -> usize {
        std::mem::size_of::<Self::Msg>()
    }

    /// Wire size of a global update.
    fn update_bytes(&self, _u: &Self::Update) -> usize {
        std::mem::size_of::<Self::Update>()
    }

    /// Stable-storage size of one vertex state, for checkpoint accounting.
    fn state_bytes(&self, _s: &Self::State) -> usize {
        std::mem::size_of::<Self::State>()
    }

    /// Stable-storage size of the replicated global, for checkpoint
    /// accounting.
    fn global_bytes(&self, _g: &Self::Global) -> usize {
        std::mem::size_of::<Self::Global>()
    }
}

/// Per-vertex execution context handed to [`VertexProgram::compute`].
pub struct Ctx<'a, M, U> {
    /// Current super-step number (0 = initialization step).
    pub superstep: usize,
    graph: &'a DiGraph,
    sends: Vec<(VertexId, M)>,
    updates: Vec<U>,
}

impl<'a, M, U> Ctx<'a, M, U> {
    /// Sends `msg` to vertex `to` for delivery next super-step. A target
    /// outside the graph fails the run with
    /// [`EngineError::InvalidSendTarget`] at the barrier.
    #[inline]
    pub fn send(&mut self, to: VertexId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Publishes a global update, replicated to all nodes at the barrier.
    #[inline]
    pub fn publish(&mut self, update: U) {
        self.updates.push(update);
    }

    /// Out-neighbors of `v` (the node-local adjacency fragment).
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &'a [VertexId] {
        self.graph.out(v)
    }

    /// In-neighbors of `v`.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &'a [VertexId] {
        self.graph.inn(v)
    }
}

/// Result of an engine run.
pub struct RunOutcome<P: VertexProgram> {
    /// Final per-vertex states (indexed by vertex id).
    pub states: Vec<P::State>,
    /// Final replicated global state.
    pub global: P::Global,
    /// Timing, traffic, and recovery statistics.
    pub stats: RunStats,
}

/// Checkpoint interval used when crashes are planned but the caller did
/// not choose one.
const DEFAULT_CHECKPOINT_INTERVAL: usize = 4;

/// Heartbeat-timeout cost of detecting a dead node, in super-step
/// latencies.
const CRASH_DETECTION_LATENCIES: f64 = 10.0;

/// One coordinated snapshot: everything needed to replay from
/// `superstep` — vertex states, the replicated global, and the in-flight
/// messages that were awaiting delivery, flattened in deterministic
/// (node, emission) order so they can be re-bucketed under a different
/// partition assignment.
struct Checkpoint<S, G, M> {
    superstep: usize,
    states: Vec<S>,
    global: G,
    mail: Vec<(VertexId, M)>,
    bytes: usize,
}

/// Buckets vertex ids by their assigned node.
fn bucket(assignment: &[usize], num_nodes: usize) -> Vec<Vec<VertexId>> {
    let mut owned = vec![Vec::new(); num_nodes];
    for (v, &node) in assignment.iter().enumerate() {
        owned[node].push(v as VertexId);
    }
    owned
}

/// The simulated cluster executor.
pub struct Engine<'g> {
    graph: &'g DiGraph,
    partition: Partition,
    network: NetworkModel,
    faults: Option<FaultPlan>,
    checkpoint_interval: Option<usize>,
    /// Safety cap; a run that exceeds it fails with
    /// [`EngineError::SuperstepCapExceeded`] (a vertex program that never
    /// goes quiet is a bug).
    pub max_supersteps: usize,
}

impl<'g> Engine<'g> {
    /// Creates an engine over `graph` with the given partition.
    pub fn new(graph: &'g DiGraph, partition: Partition) -> Self {
        Engine {
            graph,
            partition,
            network: NetworkModel::default(),
            faults: None,
            checkpoint_interval: None,
            max_supersteps: 1_000_000,
        }
    }

    /// Overrides the network cost model.
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Injects the faults of `plan` into the run. If the plan schedules
    /// crashes and no checkpoint interval was chosen, checkpointing is
    /// enabled at a default interval (`DEFAULT_CHECKPOINT_INTERVAL`, 4
    /// super-steps) so recovery has a base.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Takes a coordinated checkpoint every `every` super-steps (also
    /// useful fault-free, to measure checkpoint overhead).
    pub fn with_checkpoint_interval(mut self, every: usize) -> Self {
        assert!(every >= 1, "checkpoint interval must be at least 1");
        self.checkpoint_interval = Some(every);
        self
    }

    /// The fault plan in effect, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Number of simulated nodes.
    pub fn num_nodes(&self) -> usize {
        self.partition.num_nodes()
    }

    /// The partition in use.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Runs `program` from freshly initialized states.
    pub fn run<P>(&self, program: &P) -> Result<RunOutcome<P>, EngineError>
    where
        P: VertexProgram,
        P::State: Clone,
        P::Global: Clone,
    {
        let states = (0..self.graph.num_vertices() as VertexId)
            .map(|v| program.init_state(v))
            .collect();
        self.run_with(program, states, P::Global::default())
    }

    /// Runs `program` from caller-provided states and global (used by DRLb
    /// to carry labels across batches).
    pub fn run_with<P>(
        &self,
        program: &P,
        mut states: Vec<P::State>,
        mut global: P::Global,
    ) -> Result<RunOutcome<P>, EngineError>
    where
        P: VertexProgram,
        P::State: Clone,
        P::Global: Clone,
    {
        let n = self.graph.num_vertices();
        if states.len() != n {
            return Err(EngineError::StateCountMismatch {
                expected: n,
                got: states.len(),
            });
        }
        let num_nodes = self.partition.num_nodes();

        let quiet_plan = FaultPlan::new(0);
        let plan = self.faults.as_ref().unwrap_or(&quiet_plan);
        let has_crashes = !plan.crashes().is_empty();
        let ckpt_every = self
            .checkpoint_interval
            .or(plan.checkpoint_interval)
            .or(if has_crashes {
                Some(DEFAULT_CHECKPOINT_INTERVAL)
            } else {
                None
            });
        let mut rng = rand::rngs::StdRng::seed_from_u64(plan.seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut pending_crashes: Vec<_> = plan.crashes().to_vec();
        pending_crashes.reverse(); // pop() yields earliest-superstep first

        // Cluster membership is dynamic: a crash flips `alive` and rewrites
        // `assignment`, so routing always consults these instead of the
        // static `Partition`.
        let mut alive = vec![true; num_nodes];
        let mut assignment: Vec<usize> = (0..n)
            .map(|v| self.partition.node_of(v as VertexId))
            .collect();
        let mut owned = bucket(&assignment, num_nodes);

        let mut stats = RunStats::default();
        // inbox[node] = (target, msg) pairs to deliver this super-step.
        let mut inbox: Vec<Vec<(VertexId, P::Msg)>> = vec![Vec::new(); num_nodes];
        let mut checkpoint: Option<Checkpoint<P::State, P::Global, P::Msg>> = None;
        let mut superstep = 0usize;
        // High-water mark of executed super-steps: a super-step below it
        // has run before, i.e. it is being replayed after a rollback. Used
        // only to tag obs counters; recovery logic never consults it.
        let mut executed_high_water = 0usize;

        'superstep: loop {
            if superstep > self.max_supersteps {
                return Err(EngineError::SuperstepCapExceeded {
                    cap: self.max_supersteps,
                });
            }

            // Coordinated checkpoint at the interval boundary. Skipped when
            // a snapshot of this exact super-step already exists (i.e. we
            // just rolled back to it).
            let due = ckpt_every.is_some_and(|c| superstep.is_multiple_of(c));
            if due && checkpoint.as_ref().is_none_or(|c| c.superstep != superstep) {
                let _obs_ckpt = reach_obs::span("engine.checkpoint");
                // Each node persists its own share (owned states + pending
                // inbox) in parallel; the first live node also persists the
                // shared global. The modeled cost is the bottleneck share.
                let mut node_share = vec![0usize; num_nodes];
                for (v, st) in states.iter().enumerate() {
                    node_share[assignment[v]] += program.state_bytes(st);
                }
                for (node, mail) in inbox.iter().enumerate() {
                    for (_, m) in mail {
                        node_share[node] += program.msg_bytes(m);
                    }
                }
                let coord = alive.iter().position(|&a| a).unwrap_or(0);
                node_share[coord] += program.global_bytes(&global);
                let total: usize = node_share.iter().sum();
                let max_share = node_share.iter().copied().max().unwrap_or(0);
                stats.recovery.checkpoints += 1;
                stats.recovery.checkpoint_bytes += total;
                reach_obs::counter_add("engine.checkpoints", 1);
                reach_obs::record("engine.checkpoint.bytes", total as u64);
                stats.recovery.checkpoint_seconds +=
                    self.network.superstep_latency + max_share as f64 / self.network.bandwidth;
                checkpoint = Some(Checkpoint {
                    superstep,
                    states: states.clone(),
                    global: global.clone(),
                    mail: inbox.iter().flat_map(|m| m.iter().cloned()).collect(),
                    bytes: total,
                });
            }

            // Crash detection at barrier entry: fire every scheduled crash
            // whose super-step has arrived, then (if any fired) roll back.
            let mut crashed = false;
            while pending_crashes
                .last()
                .is_some_and(|c| c.superstep <= superstep)
            {
                let crash = pending_crashes.pop().expect("checked non-empty");
                if crash.node >= num_nodes {
                    return Err(EngineError::UnrecoverableCrash {
                        node: crash.node,
                        superstep,
                        reason: CrashReason::UnknownNode,
                    });
                }
                if !alive[crash.node] {
                    continue; // already dead; nothing new to recover
                }
                alive[crash.node] = false;
                let survivors: Vec<usize> = (0..num_nodes).filter(|&i| alive[i]).collect();
                if survivors.is_empty() {
                    return Err(EngineError::UnrecoverableCrash {
                        node: crash.node,
                        superstep,
                        reason: CrashReason::NoSurvivors,
                    });
                }
                // Reassign the dead node's partition round-robin across the
                // survivors.
                let mut next = 0usize;
                for node in assignment.iter_mut() {
                    if *node == crash.node {
                        *node = survivors[next % survivors.len()];
                        next += 1;
                    }
                }
                crashed = true;
            }
            if crashed {
                let _obs_rec = reach_obs::span("engine.recovery");
                // Rollback-and-replay: restore the snapshot, re-bucket its
                // in-flight mail under the new assignment, and resume from
                // the checkpoint super-step. (A crash schedule implies an
                // initial checkpoint at super-step 0, so one always exists.)
                let ck = checkpoint
                    .as_ref()
                    .expect("crashes imply checkpointing, so a snapshot exists");
                states = ck.states.clone();
                global = ck.global.clone();
                owned = bucket(&assignment, num_nodes);
                for mail in &mut inbox {
                    mail.clear();
                }
                for (to, msg) in &ck.mail {
                    inbox[assignment[*to as usize]].push((*to, msg.clone()));
                }
                stats.recovery.recoveries += 1;
                stats.recovery.replayed_supersteps += superstep - ck.superstep;
                reach_obs::counter_add("engine.recoveries", 1);
                stats.recovery.recovery_seconds += CRASH_DETECTION_LATENCIES
                    * self.network.superstep_latency
                    + self.network.superstep_latency
                    + ck.bytes as f64 / self.network.bandwidth;
                superstep = ck.superstep;
                continue 'superstep;
            }

            let mut all_sends: Vec<Vec<(VertexId, P::Msg)>> = vec![Vec::new(); num_nodes];
            let mut all_updates: Vec<Vec<P::Update>> = vec![Vec::new(); num_nodes];
            let mut step_max_compute = 0.0f64;
            let mut step_sum_compute = 0.0f64;

            let obs_compute = reach_obs::span("engine.compute");
            for node in 0..num_nodes {
                if !alive[node] {
                    continue;
                }
                let t0 = Instant::now();
                let mut ctx = Ctx {
                    superstep,
                    graph: self.graph,
                    sends: Vec::new(),
                    updates: Vec::new(),
                };
                if superstep == 0 {
                    for &v in &owned[node] {
                        program.compute(&mut ctx, v, &mut states[v as usize], &[], &global);
                    }
                } else {
                    // Deliver grouped by target vertex, deterministically.
                    let mail = &mut inbox[node];
                    mail.sort_by_key(|&(t, _)| t);
                    let mut i = 0;
                    while i < mail.len() {
                        let v = mail[i].0;
                        let mut j = i + 1;
                        while j < mail.len() && mail[j].0 == v {
                            j += 1;
                        }
                        let msgs: Vec<P::Msg> = mail[i..j].iter().map(|(_, m)| m.clone()).collect();
                        program.compute(&mut ctx, v, &mut states[v as usize], &msgs, &global);
                        i = j;
                    }
                    mail.clear();
                }
                let dt = t0.elapsed().as_secs_f64();
                step_max_compute = step_max_compute.max(dt);
                step_sum_compute += dt;
                all_sends[node] = ctx.sends;
                all_updates[node] = ctx.updates;
            }

            drop(obs_compute);

            stats.compute_seconds += step_max_compute;
            stats.compute_seconds_serial += step_sum_compute;
            stats.supersteps += 1;
            // Tag replayed super-steps (rollback landed us below the
            // high-water mark) distinctly from first executions.
            if superstep < executed_high_water {
                reach_obs::counter_add("engine.supersteps.replayed", 1);
            } else {
                reach_obs::counter_add("engine.supersteps.first", 1);
                executed_high_water = superstep + 1;
            }

            // Barrier: route messages and replicate updates, with per-node
            // byte accounting for the network model. Injected drops cost
            // retransmissions; injected delays make the barrier straggle.
            let num_alive = alive.iter().filter(|&&a| a).count();
            let mut node_bytes = vec![0usize; num_nodes];
            let mut any_traffic = false;
            let mut straggle = 0usize;
            let _obs_barrier = reach_obs::span("engine.barrier");
            // Per-super-step traffic, mirroring the `stats.comm` increments
            // below exactly: the recorder's series accumulate at the logical
            // super-step index across replays, just as the aggregates do, so
            // summed series equal the CommStats totals.
            let mut step_local_bytes = 0u64;
            let mut step_remote_bytes = 0u64;
            let mut step_broadcast_bytes = 0u64;

            for from in 0..num_nodes {
                for (to, msg) in std::mem::take(&mut all_sends[from]) {
                    if to as usize >= n {
                        return Err(EngineError::InvalidSendTarget {
                            from_node: from,
                            target: to,
                            num_vertices: n,
                            superstep,
                        });
                    }
                    let dest = assignment[to as usize];
                    let bytes = program.msg_bytes(&msg);
                    if dest == from {
                        stats.comm.local_messages += 1;
                        stats.comm.local_bytes += bytes;
                        step_local_bytes += bytes as u64;
                    } else {
                        stats.comm.remote_messages += 1;
                        stats.comm.remote_bytes += bytes;
                        step_remote_bytes += bytes as u64;
                        // Reliable transport: resend until the transfer
                        // survives the drop coin, within the retry budget.
                        // Every attempt consumes sender and receiver
                        // bandwidth; only the last delivers.
                        let mut attempts = 1usize;
                        while plan.drop_prob > 0.0 && rng.gen_bool(plan.drop_prob) {
                            attempts += 1;
                            if attempts > plan.max_retries {
                                return Err(EngineError::MessageLost {
                                    superstep,
                                    retries: plan.max_retries,
                                });
                            }
                        }
                        stats.recovery.retransmits += attempts - 1;
                        if plan.delay_prob > 0.0 && rng.gen_bool(plan.delay_prob) {
                            // A straggler stalls the barrier; the slowest
                            // one sets the stall for the super-step.
                            straggle = straggle.max(rng.gen_range(1..=plan.max_delay));
                            stats.recovery.delayed_messages += 1;
                        }
                        node_bytes[from] += attempts * bytes;
                        node_bytes[dest] += attempts * bytes;
                    }
                    inbox[dest].push((to, msg));
                    any_traffic = true;
                }
            }

            let mut updates_flat: Vec<P::Update> = Vec::new();
            for from in 0..num_nodes {
                for u in std::mem::take(&mut all_updates[from]) {
                    let bytes = program.update_bytes(&u);
                    if num_alive > 1 {
                        // Tree-broadcast semantics, matching the paper's
                        // Lemma 7 accounting: the shared payload is counted
                        // once (the sender injects one copy; every node
                        // receives one copy, which is what the bottleneck-
                        // node time model charges).
                        stats.comm.broadcast_bytes += bytes;
                        step_broadcast_bytes += bytes as u64;
                        node_bytes[from] += bytes;
                        for other in 0..num_nodes {
                            if other != from && alive[other] {
                                node_bytes[other] += bytes;
                            }
                        }
                    }
                    updates_flat.push(u);
                    any_traffic = true;
                }
            }

            if any_traffic {
                let max_bytes = node_bytes.iter().copied().max().unwrap_or(0);
                stats.comm_seconds += self.network.superstep_seconds(num_alive, max_bytes)
                    + straggle as f64 * self.network.superstep_latency;
            }
            reach_obs::series_add("engine.superstep.local_bytes", superstep, step_local_bytes);
            reach_obs::series_add(
                "engine.superstep.remote_bytes",
                superstep,
                step_remote_bytes,
            );
            reach_obs::series_add(
                "engine.superstep.broadcast_bytes",
                superstep,
                step_broadcast_bytes,
            );

            if !updates_flat.is_empty() {
                program.apply_updates(&mut global, &updates_flat);
            }

            if inbox.iter().all(Vec::is_empty) {
                break;
            }
            superstep += 1;
        }

        // Final pass ("only run after the final super-step").
        let _obs_fin = reach_obs::span("engine.finalize");
        let t0 = Instant::now();
        let mut fin_max = 0.0f64;
        for owned_by_node in &owned {
            let t = Instant::now();
            for &v in owned_by_node {
                program.finalize(v, &mut states[v as usize], &global);
            }
            fin_max = fin_max.max(t.elapsed().as_secs_f64());
        }
        stats.compute_seconds += fin_max;
        stats.compute_seconds_serial += t0.elapsed().as_secs_f64();

        Ok(RunOutcome {
            states,
            global,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::fixtures;

    /// A toy program: flood hop counts from vertex 0 (forward BFS levels).
    struct BfsLevels;

    impl VertexProgram for BfsLevels {
        type State = Option<u32>;
        type Msg = u32;
        type Global = ();
        type Update = ();

        fn init_state(&self, _v: VertexId) -> Self::State {
            None
        }

        fn compute(
            &self,
            ctx: &mut Ctx<'_, u32, ()>,
            v: VertexId,
            state: &mut Self::State,
            msgs: &[u32],
            _global: &(),
        ) {
            if ctx.superstep == 0 {
                if v == 0 {
                    *state = Some(0);
                    for &w in ctx.out_neighbors(v) {
                        ctx.send(w, 1);
                    }
                }
            } else if state.is_none() {
                let level = *msgs.iter().min().expect("compute only with messages");
                *state = Some(level);
                for &w in ctx.out_neighbors(v) {
                    ctx.send(w, level + 1);
                }
            }
        }

        fn apply_updates(&self, _global: &mut (), _updates: &[()]) {}
    }

    #[test]
    fn bfs_levels_on_diamond() {
        let g = fixtures::diamond();
        let engine = Engine::new(&g, Partition::modulo(2));
        let out = engine.run(&BfsLevels).unwrap();
        assert_eq!(out.states, vec![Some(0), Some(1), Some(1), Some(2)]);
        assert!(out.stats.supersteps >= 3);
    }

    #[test]
    fn results_are_identical_across_node_counts() {
        let g = fixtures::paper_graph();
        let baseline = Engine::new(&g, Partition::modulo(1))
            .run(&BfsLevels)
            .unwrap()
            .states;
        for nodes in [2, 3, 8, 32] {
            let got = Engine::new(&g, Partition::modulo(nodes))
                .run(&BfsLevels)
                .unwrap()
                .states;
            assert_eq!(got, baseline, "nodes={nodes}");
        }
    }

    #[test]
    fn single_node_run_has_no_remote_traffic() {
        let g = fixtures::paper_graph();
        let out = Engine::new(&g, Partition::modulo(1))
            .run(&BfsLevels)
            .unwrap();
        assert_eq!(out.stats.comm.remote_messages, 0);
        assert_eq!(out.stats.comm_seconds, 0.0);
        assert!(out.stats.comm.local_messages > 0);
    }

    #[test]
    fn multi_node_run_counts_remote_traffic() {
        let g = fixtures::paper_graph();
        let out = Engine::new(&g, Partition::modulo(4))
            .run(&BfsLevels)
            .unwrap();
        assert!(out.stats.comm.remote_messages > 0);
        assert!(out.stats.comm_seconds > 0.0);
        assert_eq!(
            out.stats.comm.remote_bytes,
            out.stats.comm.remote_messages * std::mem::size_of::<u32>()
        );
    }

    /// A program exercising global updates: every vertex publishes its id
    /// once; the global collects them all.
    struct CollectIds;

    impl VertexProgram for CollectIds {
        type State = ();
        type Msg = ();
        type Global = Vec<VertexId>;
        type Update = VertexId;

        fn init_state(&self, _v: VertexId) -> Self::State {}

        fn compute(
            &self,
            ctx: &mut Ctx<'_, (), VertexId>,
            v: VertexId,
            _state: &mut (),
            _msgs: &[()],
            _global: &Vec<VertexId>,
        ) {
            if ctx.superstep == 0 {
                ctx.publish(v);
            }
        }

        fn apply_updates(&self, global: &mut Vec<VertexId>, updates: &[VertexId]) {
            global.extend_from_slice(updates);
        }
    }

    #[test]
    fn global_updates_replicate_and_cost_broadcast_bytes() {
        let g = fixtures::paper_graph();
        let out = Engine::new(&g, Partition::modulo(4))
            .run(&CollectIds)
            .unwrap();
        let mut ids = out.global.clone();
        ids.sort_unstable();
        assert_eq!(ids, (0..11).collect::<Vec<_>>());
        assert_eq!(out.stats.comm.broadcast_bytes, 11 * 4); // 11 ids × 4 B, payload once
    }

    #[test]
    fn runaway_program_hits_superstep_cap() {
        struct PingPong;
        impl VertexProgram for PingPong {
            type State = ();
            type Msg = ();
            type Global = ();
            type Update = ();
            fn init_state(&self, _v: VertexId) {}
            fn compute(
                &self,
                ctx: &mut Ctx<'_, (), ()>,
                v: VertexId,
                _s: &mut (),
                _m: &[()],
                _g: &(),
            ) {
                if v == 0 || (v == 1 && ctx.superstep > 0) {
                    ctx.send(1, ());
                }
            }
            fn apply_updates(&self, _g: &mut (), _u: &[()]) {}
        }
        let g = fixtures::path(2);
        let mut engine = Engine::new(&g, Partition::modulo(1));
        engine.max_supersteps = 10;
        assert_eq!(
            engine.run(&PingPong).err().expect("run must fail"),
            EngineError::SuperstepCapExceeded { cap: 10 }
        );
    }

    /// A program whose only act is to send one message to a bogus target.
    struct WildSend;

    impl VertexProgram for WildSend {
        type State = ();
        type Msg = ();
        type Global = ();
        type Update = ();
        fn init_state(&self, _v: VertexId) {}
        fn compute(&self, ctx: &mut Ctx<'_, (), ()>, v: VertexId, _s: &mut (), _m: &[()], _g: &()) {
            if v == 3 && ctx.superstep == 0 {
                ctx.send(1_000_000, ());
            }
        }
        fn apply_updates(&self, _g: &mut (), _u: &[()]) {}
    }

    #[test]
    fn send_to_out_of_range_vertex_is_a_typed_error() {
        let g = fixtures::paper_graph();
        let err = Engine::new(&g, Partition::modulo(2))
            .run(&WildSend)
            .err()
            .expect("run must fail");
        assert_eq!(
            err,
            EngineError::InvalidSendTarget {
                from_node: 1, // vertex 3 lives on node 3 % 2
                target: 1_000_000,
                num_vertices: g.num_vertices(),
                superstep: 0,
            }
        );
    }

    #[test]
    fn run_with_wrong_state_count_is_a_typed_error() {
        let g = fixtures::diamond();
        let engine = Engine::new(&g, Partition::modulo(1));
        let err = engine
            .run_with(&BfsLevels, vec![None; 2], ())
            .err()
            .expect("run must fail");
        assert_eq!(
            err,
            EngineError::StateCountMismatch {
                expected: 4,
                got: 2
            }
        );
    }

    #[test]
    fn crash_recovery_reproduces_fault_free_states() {
        let g = fixtures::paper_graph();
        let baseline = Engine::new(&g, Partition::modulo(4))
            .run(&BfsLevels)
            .unwrap()
            .states;
        let out = Engine::new(&g, Partition::modulo(4))
            .with_faults(FaultPlan::new(11).with_crash(2, 2))
            .run(&BfsLevels)
            .unwrap();
        assert_eq!(out.states, baseline);
        assert_eq!(out.stats.recovery.recoveries, 1);
        assert!(out.stats.recovery.replayed_supersteps > 0);
        assert!(out.stats.recovery.checkpoints > 0);
        assert!(out.stats.recovery.recovery_seconds > 0.0);
    }

    #[test]
    fn cascading_crashes_down_to_one_node_still_recover() {
        let g = fixtures::paper_graph();
        let baseline = Engine::new(&g, Partition::modulo(3))
            .run(&BfsLevels)
            .unwrap()
            .states;
        let out = Engine::new(&g, Partition::modulo(3))
            .with_faults(FaultPlan::new(5).with_crash(0, 1).with_crash(2, 2))
            .with_checkpoint_interval(1)
            .run(&BfsLevels)
            .unwrap();
        assert_eq!(out.states, baseline);
        assert_eq!(out.stats.recovery.recoveries, 2);
    }

    #[test]
    fn losing_every_node_is_unrecoverable() {
        let g = fixtures::diamond();
        let err = Engine::new(&g, Partition::modulo(2))
            .with_faults(FaultPlan::new(3).with_crash(0, 1).with_crash(1, 1))
            .run(&BfsLevels)
            .err()
            .expect("run must fail");
        assert_eq!(
            err,
            EngineError::UnrecoverableCrash {
                node: 1,
                superstep: 1,
                reason: CrashReason::NoSurvivors
            }
        );
    }

    #[test]
    fn crashing_an_unknown_node_is_an_error() {
        let g = fixtures::diamond();
        let err = Engine::new(&g, Partition::modulo(2))
            .with_faults(FaultPlan::new(3).with_crash(9, 1))
            .run(&BfsLevels)
            .err()
            .expect("run must fail");
        assert!(matches!(
            err,
            EngineError::UnrecoverableCrash {
                node: 9,
                reason: CrashReason::UnknownNode,
                ..
            }
        ));
    }

    #[test]
    fn message_drops_retransmit_without_changing_results() {
        let g = fixtures::paper_graph();
        let clean = Engine::new(&g, Partition::modulo(4))
            .run(&BfsLevels)
            .unwrap();
        let noisy = Engine::new(&g, Partition::modulo(4))
            .with_faults(FaultPlan::new(42).with_message_drops(0.5))
            .run(&BfsLevels)
            .unwrap();
        assert_eq!(noisy.states, clean.states);
        assert!(noisy.stats.recovery.retransmits > 0);
        // Goodput accounting is unchanged; only modeled time grows.
        assert_eq!(noisy.stats.comm.remote_bytes, clean.stats.comm.remote_bytes);
        assert!(noisy.stats.comm_seconds > clean.stats.comm_seconds);
    }

    #[test]
    fn exhausting_the_retry_budget_loses_the_message() {
        let g = fixtures::paper_graph();
        let err = Engine::new(&g, Partition::modulo(4))
            .with_faults(
                FaultPlan::new(8)
                    .with_message_drops(0.999)
                    .with_max_retries(2),
            )
            .run(&BfsLevels)
            .err()
            .expect("run must fail");
        assert!(matches!(err, EngineError::MessageLost { retries: 2, .. }));
    }

    #[test]
    fn message_delays_straggle_the_barrier_without_changing_results() {
        let g = fixtures::paper_graph();
        let clean = Engine::new(&g, Partition::modulo(4))
            .run(&BfsLevels)
            .unwrap();
        let slow = Engine::new(&g, Partition::modulo(4))
            .with_faults(FaultPlan::new(17).with_message_delays(0.7, 6))
            .run(&BfsLevels)
            .unwrap();
        assert_eq!(slow.states, clean.states);
        assert!(slow.stats.recovery.delayed_messages > 0);
        assert!(slow.stats.comm_seconds > clean.stats.comm_seconds);
    }

    #[test]
    fn fault_free_checkpointing_only_adds_overhead() {
        let g = fixtures::paper_graph();
        let clean = Engine::new(&g, Partition::modulo(2))
            .run(&BfsLevels)
            .unwrap();
        let ckpt = Engine::new(&g, Partition::modulo(2))
            .with_checkpoint_interval(2)
            .run(&BfsLevels)
            .unwrap();
        assert_eq!(ckpt.states, clean.states);
        assert!(ckpt.stats.recovery.checkpoints > 0);
        assert!(ckpt.stats.recovery.checkpoint_bytes > 0);
        assert_eq!(ckpt.stats.recovery.recoveries, 0);
        assert!(ckpt.stats.total_seconds() > clean.stats.total_seconds());
        // The non-recovery portions of the run are untouched.
        assert_eq!(ckpt.stats.supersteps, clean.stats.supersteps);
        assert_eq!(ckpt.stats.comm, clean.stats.comm);
    }

    #[test]
    fn same_fault_seed_gives_identical_stats() {
        let g = fixtures::paper_graph();
        let plan = FaultPlan::new(99).with_message_drops(0.3).with_crash(1, 2);
        let a = Engine::new(&g, Partition::modulo(4))
            .with_faults(plan.clone())
            .run(&BfsLevels)
            .unwrap();
        let b = Engine::new(&g, Partition::modulo(4))
            .with_faults(plan)
            .run(&BfsLevels)
            .unwrap();
        assert_eq!(a.states, b.states);
        assert_eq!(a.stats.recovery.retransmits, b.stats.recovery.retransmits);
        assert_eq!(a.stats.recovery.recoveries, b.stats.recovery.recoveries);
        assert_eq!(a.stats.comm, b.stats.comm);
    }
}
