//! The super-step execution engine.
//!
//! [`Engine::run`] drives a [`VertexProgram`] to quiescence: super-step 0
//! calls `compute` on every vertex with an empty inbox (initialization);
//! each later super-step delivers the previous step's messages and calls
//! `compute` only on vertices that received something. The run terminates
//! when no messages and no global updates are produced, after which
//! `finalize` runs once per vertex (the paper's "only run after the final
//! super-step" blocks in Algorithms 3–4).
//!
//! The cluster is simulated: nodes execute sequentially, but each node's
//! compute time is measured independently per super-step and the *maximum*
//! is charged to the modeled parallel clock — so modeled timings behave as
//! if nodes ran concurrently, deterministically and without thread jitter.

use std::time::Instant;

use reach_graph::{DiGraph, VertexId};

use crate::comm::{NetworkModel, RunStats};
use crate::partition::Partition;

/// A user-defined vertex-centric computation.
pub trait VertexProgram {
    /// Per-vertex state, held on the vertex's home node.
    type State;
    /// Message type exchanged along edges (or to arbitrary vertices).
    type Msg: Clone;
    /// Global state replicated on every node (e.g. shared inverted lists).
    type Global: Default;
    /// An update to the global state, broadcast at the barrier.
    type Update: Clone;

    /// Initial state of vertex `v`.
    fn init_state(&self, v: VertexId) -> Self::State;

    /// The `compute()` function of §II-C. Called with an empty `msgs` slice
    /// exactly once at super-step 0.
    fn compute(
        &self,
        ctx: &mut Ctx<'_, Self::Msg, Self::Update>,
        v: VertexId,
        state: &mut Self::State,
        msgs: &[Self::Msg],
        global: &Self::Global,
    );

    /// Folds broadcast updates into the replicated global state. Called
    /// once per barrier with every update produced that super-step, in
    /// deterministic (node, emission) order.
    fn apply_updates(&self, global: &mut Self::Global, updates: &[Self::Update]);

    /// Runs once per vertex after quiescence.
    fn finalize(&self, _v: VertexId, _state: &mut Self::State, _global: &Self::Global) {}

    /// Wire size of a message, for communication accounting.
    fn msg_bytes(&self, _m: &Self::Msg) -> usize {
        std::mem::size_of::<Self::Msg>()
    }

    /// Wire size of a global update.
    fn update_bytes(&self, _u: &Self::Update) -> usize {
        std::mem::size_of::<Self::Update>()
    }
}

/// Per-vertex execution context handed to [`VertexProgram::compute`].
pub struct Ctx<'a, M, U> {
    /// Current super-step number (0 = initialization step).
    pub superstep: usize,
    graph: &'a DiGraph,
    sends: Vec<(VertexId, M)>,
    updates: Vec<U>,
}

impl<'a, M, U> Ctx<'a, M, U> {
    /// Sends `msg` to vertex `to` for delivery next super-step.
    #[inline]
    pub fn send(&mut self, to: VertexId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Publishes a global update, replicated to all nodes at the barrier.
    #[inline]
    pub fn publish(&mut self, update: U) {
        self.updates.push(update);
    }

    /// Out-neighbors of `v` (the node-local adjacency fragment).
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &'a [VertexId] {
        self.graph.out(v)
    }

    /// In-neighbors of `v`.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &'a [VertexId] {
        self.graph.inn(v)
    }
}

/// Result of an engine run.
pub struct RunOutcome<P: VertexProgram> {
    /// Final per-vertex states (indexed by vertex id).
    pub states: Vec<P::State>,
    /// Final replicated global state.
    pub global: P::Global,
    /// Timing and traffic statistics.
    pub stats: RunStats,
}

/// The simulated cluster executor.
pub struct Engine<'g> {
    graph: &'g DiGraph,
    partition: Partition,
    network: NetworkModel,
    /// Safety cap; exceeded runs panic (a vertex program that never goes
    /// quiet is a bug).
    pub max_supersteps: usize,
}

impl<'g> Engine<'g> {
    /// Creates an engine over `graph` with the given partition.
    pub fn new(graph: &'g DiGraph, partition: Partition) -> Self {
        Engine {
            graph,
            partition,
            network: NetworkModel::default(),
            max_supersteps: 1_000_000,
        }
    }

    /// Overrides the network cost model.
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Number of simulated nodes.
    pub fn num_nodes(&self) -> usize {
        self.partition.num_nodes()
    }

    /// The partition in use.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Runs `program` from freshly initialized states.
    pub fn run<P: VertexProgram>(&self, program: &P) -> RunOutcome<P> {
        let states = (0..self.graph.num_vertices() as VertexId)
            .map(|v| program.init_state(v))
            .collect();
        self.run_with(program, states, P::Global::default())
    }

    /// Runs `program` from caller-provided states and global (used by DRLb
    /// to carry labels across batches).
    pub fn run_with<P: VertexProgram>(
        &self,
        program: &P,
        mut states: Vec<P::State>,
        mut global: P::Global,
    ) -> RunOutcome<P> {
        let n = self.graph.num_vertices();
        assert_eq!(states.len(), n, "one state per vertex");
        let num_nodes = self.partition.num_nodes();
        let owned: Vec<Vec<VertexId>> =
            (0..num_nodes).map(|i| self.partition.owned(i, n)).collect();

        let mut stats = RunStats::default();
        // inbox[node] = (target, msg) pairs to deliver this super-step.
        let mut inbox: Vec<Vec<(VertexId, P::Msg)>> = vec![Vec::new(); num_nodes];
        let mut superstep = 0usize;

        loop {
            assert!(
                superstep <= self.max_supersteps,
                "vertex program exceeded {} super-steps",
                self.max_supersteps
            );

            let mut all_sends: Vec<Vec<(VertexId, P::Msg)>> = Vec::with_capacity(num_nodes);
            let mut all_updates: Vec<Vec<P::Update>> = Vec::with_capacity(num_nodes);
            let mut step_max_compute = 0.0f64;
            let mut step_sum_compute = 0.0f64;

            for node in 0..num_nodes {
                let t0 = Instant::now();
                let mut ctx = Ctx {
                    superstep,
                    graph: self.graph,
                    sends: Vec::new(),
                    updates: Vec::new(),
                };
                if superstep == 0 {
                    for &v in &owned[node] {
                        program.compute(&mut ctx, v, &mut states[v as usize], &[], &global);
                    }
                } else {
                    // Deliver grouped by target vertex, deterministically.
                    let mail = &mut inbox[node];
                    mail.sort_by_key(|&(t, _)| t);
                    let mut i = 0;
                    while i < mail.len() {
                        let v = mail[i].0;
                        let mut j = i + 1;
                        while j < mail.len() && mail[j].0 == v {
                            j += 1;
                        }
                        let msgs: Vec<P::Msg> =
                            mail[i..j].iter().map(|(_, m)| m.clone()).collect();
                        program.compute(&mut ctx, v, &mut states[v as usize], &msgs, &global);
                        i = j;
                    }
                    mail.clear();
                }
                let dt = t0.elapsed().as_secs_f64();
                step_max_compute = step_max_compute.max(dt);
                step_sum_compute += dt;
                all_sends.push(ctx.sends);
                all_updates.push(ctx.updates);
            }

            stats.compute_seconds += step_max_compute;
            stats.compute_seconds_serial += step_sum_compute;
            stats.supersteps += 1;

            // Barrier: route messages and replicate updates, with per-node
            // byte accounting for the network model.
            let mut node_bytes = vec![0usize; num_nodes];
            let mut any_traffic = false;

            for (from, sends) in all_sends.into_iter().enumerate() {
                for (to, msg) in sends {
                    let dest = self.partition.node_of(to);
                    let bytes = program.msg_bytes(&msg);
                    if dest == from {
                        stats.comm.local_messages += 1;
                        stats.comm.local_bytes += bytes;
                    } else {
                        stats.comm.remote_messages += 1;
                        stats.comm.remote_bytes += bytes;
                        node_bytes[from] += bytes;
                        node_bytes[dest] += bytes;
                    }
                    inbox[dest].push((to, msg));
                    any_traffic = true;
                }
            }

            let mut updates_flat: Vec<P::Update> = Vec::new();
            for (from, updates) in all_updates.into_iter().enumerate() {
                for u in updates {
                    let bytes = program.update_bytes(&u);
                    if num_nodes > 1 {
                        // Tree-broadcast semantics, matching the paper's
                        // Lemma 7 accounting: the shared payload is counted
                        // once (the sender injects one copy; every node
                        // receives one copy, which is what the bottleneck-
                        // node time model charges).
                        stats.comm.broadcast_bytes += bytes;
                        node_bytes[from] += bytes;
                        for (other, nb) in node_bytes.iter_mut().enumerate() {
                            if other != from {
                                *nb += bytes;
                            }
                        }
                    }
                    updates_flat.push(u);
                    any_traffic = true;
                }
            }

            if any_traffic {
                let max_bytes = node_bytes.iter().copied().max().unwrap_or(0);
                stats.comm_seconds += self.network.superstep_seconds(num_nodes, max_bytes);
            }

            if !updates_flat.is_empty() {
                program.apply_updates(&mut global, &updates_flat);
            }

            if inbox.iter().all(Vec::is_empty) {
                break;
            }
            superstep += 1;
        }

        // Final pass ("only run after the final super-step").
        let t0 = Instant::now();
        let mut fin_max = 0.0f64;
        for owned_by_node in &owned {
            let t = Instant::now();
            for &v in owned_by_node {
                program.finalize(v, &mut states[v as usize], &global);
            }
            fin_max = fin_max.max(t.elapsed().as_secs_f64());
        }
        stats.compute_seconds += fin_max;
        stats.compute_seconds_serial += t0.elapsed().as_secs_f64();

        RunOutcome {
            states,
            global,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_graph::fixtures;

    /// A toy program: flood hop counts from vertex 0 (forward BFS levels).
    struct BfsLevels;

    impl VertexProgram for BfsLevels {
        type State = Option<u32>;
        type Msg = u32;
        type Global = ();
        type Update = ();

        fn init_state(&self, _v: VertexId) -> Self::State {
            None
        }

        fn compute(
            &self,
            ctx: &mut Ctx<'_, u32, ()>,
            v: VertexId,
            state: &mut Self::State,
            msgs: &[u32],
            _global: &(),
        ) {
            if ctx.superstep == 0 {
                if v == 0 {
                    *state = Some(0);
                    for &w in ctx.out_neighbors(v) {
                        ctx.send(w, 1);
                    }
                }
            } else if state.is_none() {
                let level = *msgs.iter().min().expect("compute only with messages");
                *state = Some(level);
                for &w in ctx.out_neighbors(v) {
                    ctx.send(w, level + 1);
                }
            }
        }

        fn apply_updates(&self, _global: &mut (), _updates: &[()]) {}
    }

    #[test]
    fn bfs_levels_on_diamond() {
        let g = fixtures::diamond();
        let engine = Engine::new(&g, Partition::modulo(2));
        let out = engine.run(&BfsLevels);
        assert_eq!(out.states, vec![Some(0), Some(1), Some(1), Some(2)]);
        assert!(out.stats.supersteps >= 3);
    }

    #[test]
    fn results_are_identical_across_node_counts() {
        let g = fixtures::paper_graph();
        let baseline = Engine::new(&g, Partition::modulo(1)).run(&BfsLevels).states;
        for nodes in [2, 3, 8, 32] {
            let got = Engine::new(&g, Partition::modulo(nodes)).run(&BfsLevels).states;
            assert_eq!(got, baseline, "nodes={nodes}");
        }
    }

    #[test]
    fn single_node_run_has_no_remote_traffic() {
        let g = fixtures::paper_graph();
        let out = Engine::new(&g, Partition::modulo(1)).run(&BfsLevels);
        assert_eq!(out.stats.comm.remote_messages, 0);
        assert_eq!(out.stats.comm_seconds, 0.0);
        assert!(out.stats.comm.local_messages > 0);
    }

    #[test]
    fn multi_node_run_counts_remote_traffic() {
        let g = fixtures::paper_graph();
        let out = Engine::new(&g, Partition::modulo(4)).run(&BfsLevels);
        assert!(out.stats.comm.remote_messages > 0);
        assert!(out.stats.comm_seconds > 0.0);
        assert_eq!(
            out.stats.comm.remote_bytes,
            out.stats.comm.remote_messages * std::mem::size_of::<u32>()
        );
    }

    /// A program exercising global updates: every vertex publishes its id
    /// once; the global collects them all.
    struct CollectIds;

    impl VertexProgram for CollectIds {
        type State = ();
        type Msg = ();
        type Global = Vec<VertexId>;
        type Update = VertexId;

        fn init_state(&self, _v: VertexId) -> Self::State {}

        fn compute(
            &self,
            ctx: &mut Ctx<'_, (), VertexId>,
            v: VertexId,
            _state: &mut (),
            _msgs: &[()],
            _global: &Vec<VertexId>,
        ) {
            if ctx.superstep == 0 {
                ctx.publish(v);
            }
        }

        fn apply_updates(&self, global: &mut Vec<VertexId>, updates: &[VertexId]) {
            global.extend_from_slice(updates);
        }
    }

    #[test]
    fn global_updates_replicate_and_cost_broadcast_bytes() {
        let g = fixtures::paper_graph();
        let out = Engine::new(&g, Partition::modulo(4)).run(&CollectIds);
        let mut ids = out.global.clone();
        ids.sort_unstable();
        assert_eq!(ids, (0..11).collect::<Vec<_>>());
        assert_eq!(out.stats.comm.broadcast_bytes, 11 * 4); // 11 ids × 4 B, payload once
    }

    #[test]
    fn runaway_program_hits_superstep_cap() {
        struct PingPong;
        impl VertexProgram for PingPong {
            type State = ();
            type Msg = ();
            type Global = ();
            type Update = ();
            fn init_state(&self, _v: VertexId) {}
            fn compute(
                &self,
                ctx: &mut Ctx<'_, (), ()>,
                v: VertexId,
                _s: &mut (),
                _m: &[()],
                _g: &(),
            ) {
                if v == 0 || (v == 1 && ctx.superstep > 0) {
                    ctx.send(1, ());
                }
            }
            fn apply_updates(&self, _g: &mut (), _u: &[()]) {}
        }
        let g = fixtures::path(2);
        let mut engine = Engine::new(&g, Partition::modulo(1));
        engine.max_supersteps = 10;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.run(&PingPong)
        }));
        assert!(result.is_err(), "must panic at the cap");
    }
}
